//! The trace determinism suite: the **modelled half** of every trace is a pure
//! function of the workload — identical bytes on every run, every host, and
//! every `RAYON_NUM_THREADS` (see ARCHITECTURE.md, "Observability").
//!
//! Sim-track timestamps derive exclusively from the roofline cost model and the
//! deterministic shard schedule, so the event sequence (names, devices, tracks,
//! sim intervals, cost fields) is pinned bit-exactly across 1/2/4/7 devices.
//! Only the `wall_ns` field and wall-track events may vary between runs.

use gpu_countsketch::dist::{pipelined_sketch, ExecutorOptions, PipelinedRun};
use gpu_countsketch::gpu::DevicePool;
use gpu_countsketch::la::{Layout, Matrix};
use gpu_countsketch::obs::{TraceCollector, TraceEvent, Track};
use gpu_countsketch::sketch::{EmbeddingDim, Pipeline, SketchSpec};

/// The device grid of the multi-device suites: serial, powers of two, and a
/// prime count so shard-to-device assignment is maximally ragged.
const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Run the reference workload on `devices` devices with a collector attached
/// and return the run plus every recorded event.
fn traced_run(devices: usize) -> (PipelinedRun, Vec<TraceEvent>) {
    let a = Matrix::random_gaussian(420, 6, Layout::RowMajor, 42, 0);
    let plan = Pipeline::single(SketchSpec::countsketch(420, EmbeddingDim::Exact(32), 7));
    let pool = DevicePool::unlimited(devices);
    let collector = TraceCollector::shared();
    pool.attach_recorder(collector.clone());
    let run = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default())
        .expect("the reference workload always fits");
    (run, collector.snapshot())
}

/// The deterministic (modelled) half of an event: name, device, track, sim
/// interval bit patterns, and the cost fields — everything except `wall_ns`.
type SimKey = (String, usize, &'static str, Option<(u64, u64)>, [u64; 5]);

/// Project the deterministic half out of an event. Sim endpoints are compared
/// through their bit patterns — the contract is bit-exactness, not approximate
/// equality.
fn sim_key(e: &TraceEvent) -> SimKey {
    (
        e.name.clone(),
        e.device,
        e.track.name(),
        e.sim.map(|(s, t)| (s.to_bits(), t.to_bits())),
        [
            e.cost.bytes_read,
            e.cost.bytes_written,
            e.cost.flops,
            e.cost.launches,
            e.cost.comm_bytes,
        ],
    )
}

/// Run `f` with every parallel operation dispatched to a pool of exactly
/// `threads` threads.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(f)
}

#[test]
fn sim_half_is_bit_identical_across_repeated_runs() {
    for devices in DEVICE_COUNTS {
        let (_, first) = traced_run(devices);
        let (_, second) = traced_run(devices);
        assert!(!first.is_empty(), "{devices} devices produced no events");
        assert_eq!(
            first.iter().map(sim_key).collect::<Vec<_>>(),
            second.iter().map(sim_key).collect::<Vec<_>>(),
            "sim half diverged between runs on {devices} devices"
        );
    }
}

#[test]
fn sim_half_is_invariant_under_thread_count() {
    for devices in [1, 4] {
        let serial = with_threads(1, || traced_run(devices)).1;
        let threaded = with_threads(7, || traced_run(devices)).1;
        assert_eq!(
            serial.iter().map(sim_key).collect::<Vec<_>>(),
            threaded.iter().map(sim_key).collect::<Vec<_>>(),
            "sim half depends on the thread count on {devices} devices"
        );
    }
}

#[test]
fn trace_structure_is_pinned_per_device_count() {
    for devices in DEVICE_COUNTS {
        let (run, events) = traced_run(devices);

        // Every stream-timeline operation appears exactly once in the trace.
        let stream_events: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e.track, Track::Compute | Track::Comm))
            .collect();
        assert_eq!(
            stream_events.len(),
            run.timeline.entries().len(),
            "{devices} devices: stream events must mirror the timeline"
        );

        // The executor cuts two shards per device by default, and each shard
        // is one compute event on its owning device.
        let shards: usize = run.schedules.iter().map(|s| s.num_shards()).sum();
        let compute = events.iter().filter(|e| e.track == Track::Compute).count();
        assert_eq!(
            compute, shards,
            "{devices} devices: one compute event per shard"
        );

        // Exactly the pool's devices appear, and each runs compute + kernels.
        for d in 0..devices {
            assert!(
                events
                    .iter()
                    .any(|e| e.device == d && e.track == Track::Compute),
                "{devices} devices: device {d} has no compute track"
            );
            assert!(
                events
                    .iter()
                    .any(|e| e.device == d && e.track == Track::Kernel),
                "{devices} devices: device {d} has no kernel track"
            );
        }
        assert!(events.iter().all(|e| e.device < devices));

        // Per (device, track), sim intervals are monotone and non-overlapping:
        // events are recorded in clock order on every modelled track.
        for d in 0..devices {
            for track in [Track::Compute, Track::Comm, Track::Kernel] {
                let mut cursor = 0.0f64;
                for e in events.iter().filter(|e| e.device == d && e.track == track) {
                    let (start, end) = e.sim.expect("modelled events carry sim intervals");
                    assert!(
                        start >= cursor && end >= start,
                        "{devices} devices: {} track on device {d} overlaps",
                        track.name()
                    );
                    cursor = end;
                }
            }
        }
    }
}

#[test]
fn multi_device_traces_share_the_single_device_kernel_sequence() {
    // The kernel *names* executed per shard are schedule-independent; the
    // 1-device trace's kernel-label set must survive scaling out.
    let (_, one) = traced_run(1);
    let labels = |events: &[TraceEvent]| {
        let mut names: Vec<String> = events
            .iter()
            .filter(|e| e.track == Track::Kernel)
            .map(|e| e.name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    };
    let reference = labels(&one);
    assert!(!reference.is_empty());
    for devices in [2, 4, 7] {
        let (_, events) = traced_run(devices);
        for name in &reference {
            assert!(
                labels(&events).contains(name),
                "{devices} devices lost kernel label {name:?}"
            );
        }
    }
}
