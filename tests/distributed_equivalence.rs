//! Integration tests for `sketch-dist`: a P-rank distributed CountSketch must
//! reproduce the single-device kernel bit-for-bit from the same Philox seed,
//! and the modelled allreduce volume must scale as `2 (P-1) · k · n` words.

use gpu_countsketch::prelude::*;

const D: usize = 1 << 12;
const N: usize = 16;
const SEED: u64 = 2025;

#[test]
fn distributed_countsketch_is_bit_for_bit_equal_to_single_device() {
    let device = Device::unlimited();
    let a = Matrix::random_gaussian(D, N, Layout::RowMajor, SEED, 0);
    // Same Philox seed => same sketch on the "single device" and on the ranks.
    let sketch = SketchSpec::countsketch(D, EmbeddingDim::Square(2), SEED)
        .resolve(N)
        .build_countsketch(&device)
        .expect("valid spec");
    let single = sketch.apply_matrix(&device, &a).expect("single device");

    for p in [1usize, 2, 3, 4, 7, 16] {
        let dist = BlockRowMatrix::split(&a, p);
        let run = distributed_countsketch(&device, &dist, &sketch).expect("distributed");
        // Bit-for-bit: every element identical, not merely within rounding.
        assert_eq!(run.result.nrows(), single.nrows());
        assert_eq!(run.result.ncols(), single.ncols());
        for i in 0..single.nrows() {
            for j in 0..single.ncols() {
                assert!(
                    run.result.get(i, j).to_bits() == single.get(i, j).to_bits(),
                    "P = {p}: element ({i}, {j}) differs: {} vs {}",
                    run.result.get(i, j),
                    single.get(i, j)
                );
            }
        }
    }
}

#[test]
fn comm_volume_scales_linearly_in_processes_minus_one() {
    let device = Device::unlimited();
    let a = Matrix::random_gaussian(D, N, Layout::RowMajor, SEED, 1);
    let k = 2 * N * N;
    let sketch = SketchSpec::countsketch(D, EmbeddingDim::Exact(k), SEED)
        .build_countsketch(&device)
        .expect("valid spec");

    let words_at = |p: usize| {
        let dist = BlockRowMatrix::split(&a, p);
        distributed_countsketch(&device, &dist, &sketch)
            .expect("distributed")
            .comm
            .total_words()
    };

    // P = 1 is a no-op allreduce.
    assert_eq!(words_at(1), 0);
    // Ring allreduce of a k x n matrix: 2 (P-1) k n words in total.
    let expected = |p: u64| 2 * (p - 1) * (k as u64) * (N as u64);
    for p in [2u64, 4, 8, 16] {
        assert_eq!(words_at(p as usize), expected(p), "P = {p}");
    }
}

#[test]
fn all_three_distributed_sketches_agree_with_their_single_device_versions() {
    let device = Device::unlimited();
    let a = Matrix::random_gaussian(D, N, Layout::RowMajor, SEED, 2);
    let dist = BlockRowMatrix::split(&a, 8);

    let count = SketchSpec::countsketch(D, EmbeddingDim::Square(2), SEED)
        .resolve(N)
        .build_countsketch(&device)
        .expect("valid spec");
    let gauss = SketchSpec::gaussian(D, EmbeddingDim::Ratio(2), SEED)
        .resolve(N)
        .build_gaussian(&device)
        .expect("fits");
    let multi = Pipeline::count_gauss(D, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), SEED)
        .build_multisketch(&device, N)
        .expect("fits");

    let run_c = distributed_countsketch(&device, &dist, &count).expect("countsketch");
    let run_g = distributed_gaussian(&device, &dist, &gauss).expect("gaussian");
    let run_m = distributed_multisketch(&device, &dist, &multi).expect("multisketch");

    let single_c = count.apply_matrix(&device, &a).expect("single countsketch");
    let single_g = gauss.apply_matrix(&device, &a).expect("single gaussian");
    let single_m = multi.apply_matrix(&device, &a).expect("single multisketch");

    assert_eq!(run_c.result.max_abs_diff(&single_c).expect("shape"), 0.0);
    // GEMM-based paths reassociate row sums across ranks: equal up to rounding.
    assert!(run_g.result.max_abs_diff(&single_g).expect("shape") < 1e-10);
    assert!(run_m.result.max_abs_diff(&single_m).expect("shape") < 1e-9);

    // Section 7's headline: the multisketch reduces the same 2n x n matrix as
    // the Gaussian, far less than the CountSketch's 2n² x n.
    assert_eq!(run_m.comm.total_words(), run_g.comm.total_words());
    assert!(run_c.comm.total_words() > run_m.comm.total_words());
}
