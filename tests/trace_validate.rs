//! Chrome-trace validator: every trace the workspace exports must be
//! well-formed JSON whose modelled tracks obey the determinism contract
//! (see ARCHITECTURE.md, "Observability").
//!
//! The validator enforces:
//!
//! * the document parses and carries a `traceEvents` array;
//! * every complete (`"ph":"X"`) event has `name`/`pid`/`tid`/`ts`/`dur` and a
//!   full, non-negative cost `args` block (schema drift fails the run);
//! * per `(pid, tid)` track, `cat:"sim"` events are monotone and
//!   non-overlapping — modelled clocks never run backwards;
//! * thread/process metadata names every track that carries events.
//!
//! It runs against a self-generated 4-device trace, and additionally against
//! any files listed in `TRACE_VALIDATE_PATHS` (colon-separated) — CI points
//! this at the traces written by the `--trace` smoke runs.

use gpu_countsketch::dist::{pipelined_sketch, ExecutorOptions};
use gpu_countsketch::gpu::DevicePool;
use gpu_countsketch::la::{Layout, Matrix};
use gpu_countsketch::obs::{chrome_trace_with_metrics, JsonValue, MetricsRegistry, TraceCollector};
use gpu_countsketch::sketch::{EmbeddingDim, Pipeline, SketchSpec};
use std::collections::{BTreeMap, BTreeSet};

/// Cost fields every complete event must carry in `args`.
const COST_FIELDS: [&str; 6] = [
    "bytes_read",
    "bytes_written",
    "flops",
    "launches",
    "comm_bytes",
    "wall_ns",
];

/// Which `(pid, tid)` tracks carried events, per process.
#[derive(Debug)]
struct TraceSummary {
    tracks: BTreeMap<u64, BTreeSet<u64>>,
    events: usize,
}

/// Validate one Chrome-trace document. Returns a summary of the tracks seen,
/// or a message naming the first violation.
fn validate(doc: &JsonValue) -> Result<TraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;

    let mut named_tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut summary = TraceSummary {
        tracks: BTreeMap::new(),
        events: 0,
    };
    // Per (pid, tid): the end of the last sim event seen on that track.
    let mut cursors: BTreeMap<(u64, u64), f64> = BTreeMap::new();

    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = e
            .get("pid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = e
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        match ph {
            "M" => {
                if e.get("name").and_then(JsonValue::as_str) == Some("thread_name") {
                    named_tracks.insert((pid, tid));
                }
            }
            "X" => {
                summary.events += 1;
                e.get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: missing name"))?;
                let ts = e
                    .get("ts")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: missing ts"))?;
                let dur = e
                    .get("dur")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: missing dur"))?;
                if !(ts >= 0.0 && dur >= 0.0) {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                let args = e
                    .get("args")
                    .ok_or_else(|| format!("event {i}: missing args"))?;
                for field in COST_FIELDS {
                    let v = args
                        .get(field)
                        .ok_or_else(|| format!("event {i}: args missing {field}"))?;
                    if v.as_u64().is_none() {
                        return Err(format!("event {i}: args.{field} is not a count"));
                    }
                }
                let cat = e
                    .get("cat")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: missing cat"))?;
                if cat == "sim" {
                    let cursor = cursors.entry((pid, tid)).or_insert(0.0);
                    if ts + 1e-9 < *cursor {
                        return Err(format!(
                            "event {i}: sim track ({pid},{tid}) overlaps: ts {ts} < cursor {cursor}"
                        ));
                    }
                    *cursor = ts + dur;
                }
                summary.tracks.entry(pid).or_default().insert(tid);
            }
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }

    for (&pid, tids) in &summary.tracks {
        for &tid in tids {
            if !named_tracks.contains(&(pid, tid)) {
                return Err(format!("track ({pid},{tid}) carries events but is unnamed"));
            }
        }
    }
    Ok(summary)
}

/// Export one traced 4-device run as a Chrome-trace document.
fn four_device_doc() -> JsonValue {
    let a = Matrix::random_gaussian(420, 6, Layout::RowMajor, 42, 0);
    let plan = Pipeline::single(SketchSpec::countsketch(420, EmbeddingDim::Exact(32), 7));
    let pool = DevicePool::unlimited(4);
    let collector = TraceCollector::shared();
    pool.attach_recorder(collector.clone());
    let run = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default())
        .expect("the reference workload always fits");
    let metrics = MetricsRegistry::new();
    run.record_metrics(&metrics, &pool);
    chrome_trace_with_metrics(&collector.snapshot(), Some(&metrics))
}

#[test]
fn self_generated_four_device_trace_validates() {
    let doc = four_device_doc();
    let summary = validate(&doc).expect("the exported trace must validate");
    assert!(summary.events > 0);
    // One compute (tid 0) and one comm (tid 1) stream track per device, plus
    // the serial kernel track (tid 2).
    for pid in 0..4u64 {
        let tids = summary
            .tracks
            .get(&pid)
            .unwrap_or_else(|| panic!("device {pid} has no tracks"));
        for tid in [0u64, 1, 2] {
            assert!(tids.contains(&tid), "device {pid} missing tid {tid}");
        }
    }
    // The metrics summary rides along without confusing trace viewers.
    assert!(doc.get("sketchMetrics").is_some());
}

#[test]
fn exported_trace_round_trips_through_the_parser() {
    let doc = four_device_doc();
    let text = doc.render();
    let reparsed = JsonValue::parse(&text).expect("rendered traces re-parse");
    validate(&reparsed).expect("round-tripped trace still validates");
}

#[test]
fn validator_rejects_schema_drift() {
    let doc = four_device_doc();
    let events = match doc.get("traceEvents").unwrap() {
        JsonValue::Array(events) => events.clone(),
        _ => unreachable!("traceEvents is always an array"),
    };

    // Drop `dur` from the first complete event.
    let mut dropped = Vec::new();
    let mut removed = false;
    for e in &events {
        match e {
            JsonValue::Object(fields)
                if !removed && e.get("ph").and_then(JsonValue::as_str) == Some("X") =>
            {
                removed = true;
                dropped.push(JsonValue::Object(
                    fields.iter().filter(|(k, _)| k != "dur").cloned().collect(),
                ));
            }
            other => dropped.push(other.clone()),
        }
    }
    assert!(removed, "the trace has at least one complete event");
    let broken = JsonValue::Object(vec![("traceEvents".into(), JsonValue::Array(dropped))]);
    let err = validate(&broken).expect_err("missing dur must fail validation");
    assert!(err.contains("dur"), "unexpected error: {err}");

    // Rewind a sim event so its track overlaps.
    let mut skewed = Vec::new();
    let mut sim_seen = 0usize;
    for e in &events {
        match e {
            JsonValue::Object(fields)
                if e.get("cat").and_then(JsonValue::as_str) == Some("sim") && {
                    sim_seen += 1;
                    sim_seen == 2
                } =>
            {
                skewed.push(JsonValue::Object(
                    fields
                        .iter()
                        .map(|(k, v)| {
                            if k == "ts" {
                                (k.clone(), JsonValue::Float(-1.0))
                            } else {
                                (k.clone(), v.clone())
                            }
                        })
                        .collect(),
                ));
            }
            other => skewed.push(other.clone()),
        }
    }
    let broken = JsonValue::Object(vec![("traceEvents".into(), JsonValue::Array(skewed))]);
    validate(&broken).expect_err("a rewound sim timestamp must fail validation");
}

#[test]
fn env_listed_trace_files_validate() {
    let Ok(paths) = std::env::var("TRACE_VALIDATE_PATHS") else {
        return; // nothing exported in this run
    };
    let mut checked = 0usize;
    for path in paths.split(':').filter(|p| !p.is_empty()) {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read trace {path}: {e}"));
        let doc = JsonValue::parse(&text)
            .unwrap_or_else(|e| panic!("trace {path} is not valid JSON: {e}"));
        let summary =
            validate(&doc).unwrap_or_else(|e| panic!("trace {path} fails validation: {e}"));
        assert!(summary.events > 0, "trace {path} is empty");
        checked += 1;
    }
    assert!(
        checked > 0,
        "TRACE_VALIDATE_PATHS was set but named no files"
    );
}
