//! Cross-crate integration tests: the full pipelines the paper's evaluation exercises,
//! from random problem generation through sketching to the least squares solution.

use gpu_countsketch::la::norms::vec_norm2;
use gpu_countsketch::prelude::*;

/// The full sketch-and-solve pipeline with every sketch type agrees with the direct QR
/// solution up to the documented O(1) distortion, and never beats it.
#[test]
fn sketch_and_solve_pipeline_respects_the_distortion_envelope() {
    let pool = DevicePool::unlimited(1);
    let device = pool.device(0);
    let problem = LsqProblem::easy(device, 1 << 13, 12, 1).unwrap();
    let qr = solve(&pool, &problem, Method::Qr, 1).unwrap();
    let best = qr.relative_residual(device, &problem).unwrap();

    for method in [
        Method::Gaussian,
        Method::CountSketch,
        Method::MultiSketch,
        Method::Srht,
    ] {
        let sol = solve(&pool, &problem, method, 3).unwrap();
        let res = sol.relative_residual(device, &problem).unwrap();
        assert!(res + 1e-12 >= best, "{}: beat the optimum", method.label());
        assert!(
            res < 2.0 * best,
            "{}: residual {res} too far above the optimum {best}",
            method.label()
        );
    }
}

/// rand_cholQR (Algorithm 5) produces the true least squares solution through a
/// completely different path than Householder QR.
#[test]
fn rand_cholqr_matches_householder_qr() {
    let pool = DevicePool::unlimited(1);
    let problem = LsqProblem::hard(pool.device(0), 1 << 12, 8, 2).unwrap();
    let qr = solve(&pool, &problem, Method::Qr, 1).unwrap();
    let rc = solve(&pool, &problem, Method::RandCholQr, 1).unwrap();
    for (a, b) in rc.x.iter().zip(&qr.x) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }
}

/// The Figure 8 story end to end: at kappa = 1e10 the normal equations either fail or
/// lose many digits, the multisketched solver does not.
#[test]
fn ill_conditioning_breaks_normal_equations_but_not_multisketch() {
    let pool = DevicePool::unlimited(1);
    let device = pool.device(0);
    let problem = LsqProblem::conditioned(device, 1 << 12, 8, 1e10, 3).unwrap();

    let multi = solve(&pool, &problem, Method::MultiSketch, 5).unwrap();
    let multi_res = multi.relative_residual(device, &problem).unwrap();
    assert!(multi_res < 1e-5, "multisketch residual {multi_res}");

    match solve(&pool, &problem, Method::NormalEquations, 5) {
        Err(e) => assert!(e.is_gram_breakdown()),
        Ok(sol) => {
            let res = sol.relative_residual(device, &problem).unwrap();
            assert!(
                res > 10.0 * multi_res,
                "normal equations should be much less accurate: {res} vs {multi_res}"
            );
        }
    }
}

/// The device cost accounting is consistent across the whole pipeline: the breakdown
/// phases sum to the tracker totals for a full solve.
#[test]
fn breakdown_phases_cover_the_tracked_device_costs() {
    let pool = DevicePool::h100(1);
    let device = pool.device(0);
    let problem = LsqProblem::performance(device, 1 << 12, 8, 4).unwrap();
    device.tracker().reset();
    let sol = solve(&pool, &problem, Method::CountSketch, 6).unwrap();
    let tracked = device.tracker().snapshot();
    let from_phases = sol.breakdown.total_cost();
    // The phases must account for at least the large majority of the device traffic
    // (small glue operations like residual checks run outside named phases).
    assert!(from_phases.total_bytes() * 10 >= tracked.total_bytes() * 9);
    assert!(from_phases.flops <= tracked.flops);
}

/// Sketching is reproducible end to end: same seeds give the same solution up to the
/// non-associativity of the atomic reduction (the CUDA kernel the paper describes has
/// exactly the same property — the summation order inside `atomicAdd` is unordered).
#[test]
fn full_pipeline_is_reproducible() {
    let run = || {
        let pool = DevicePool::unlimited(1);
        let problem = LsqProblem::easy(pool.device(0), 1 << 12, 8, 9).unwrap();
        solve(&pool, &problem, Method::MultiSketch, 11).unwrap().x
    };
    let (a, b) = (run(), run());
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
    }
}

/// The distributed drivers reproduce the single-device sketch results exactly and the
/// reduced results feed the same downstream QR.
#[test]
fn distributed_multisketch_feeds_the_same_least_squares_solution() {
    let device = Device::unlimited();
    let d = 1 << 12;
    let n = 8;
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 7, 0);
    let multi = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 8)
        .build_multisketch(&device, n)
        .unwrap();

    let single = multi.apply_matrix(&device, &a).unwrap();
    let dist = BlockRowMatrix::split(&a, 4);
    let reduced = distributed_multisketch(&device, &dist, &multi).unwrap();
    assert!(reduced.result.max_abs_diff(&single).unwrap() < 1e-9);
    assert!(vec_norm2(reduced.result.as_slice()) > 0.0);
}

/// The modelled device refuses operations that the real 80 GB card would refuse.
#[test]
fn modelled_memory_limits_are_enforced() {
    let mut spec = DeviceSpec::h100();
    spec.memory_bytes = 1 << 20; // 1 MiB toy device
    let device = Device::new(spec);
    let err = SketchSpec::gaussian(1 << 16, EmbeddingDim::Exact(64), 1)
        .build_gaussian(&device)
        .unwrap_err();
    assert!(matches!(err, SketchError::WouldExceedMemory(_)));
}
