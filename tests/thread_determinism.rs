//! The thread-count determinism suite: every parallel entry point in the
//! workspace must produce **bit-for-bit identical** results whether the rayon
//! shim schedules 1, 2, 4 or 7 real threads.
//!
//! This is the threading model's core contract (see ARCHITECTURE.md, "Threading
//! & determinism model"): task boundaries are a pure function of problem size —
//! never of thread count — and every reduction folds its per-task partials in
//! ascending task order.  Changing `RAYON_NUM_THREADS` may change wall-clock
//! time; it must never change a single bit of any result.
//!
//! The grid deliberately includes 7 (prime, and more threads than the container
//! has cores) so task-to-thread assignment is maximally ragged: if any kernel's
//! result depended on which thread ran which task, these tests would flake.

use gpu_countsketch::dist::{pipelined_sketch, ExecutorOptions};
use gpu_countsketch::gpu::{Device, DevicePool};
use gpu_countsketch::la::{blas3, Layout, Matrix};
use gpu_countsketch::lowrank::{range_finder, LowRankParams, RangeSketch};
use gpu_countsketch::lsq::{sketch_and_solve, LsqProblem};
use gpu_countsketch::sketch::{fwht, EmbeddingDim, Operand, Pipeline, SketchSpec};
use gpu_countsketch::sparse::{spmm, CooMatrix, CsrMatrix};
use proptest::prelude::*;

/// The ISSUE's thread grid: 1 (serial reference), 2/4 (powers of two), 7
/// (prime and oversubscribed, so task-stealing order is maximally varied).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Run `f` with every parallel operation dispatched to a pool of exactly
/// `threads` threads.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(f)
}

/// Assert that `f` returns the same bits under every thread count in the grid.
fn assert_identical_across_threads(label: &str, f: impl Fn() -> Vec<u64>) {
    let reference = with_threads(THREAD_COUNTS[0], &f);
    for &t in &THREAD_COUNTS[1..] {
        let got = with_threads(t, &f);
        assert_eq!(
            got, reference,
            "{label}: result bits drifted at {t} threads"
        );
    }
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// A 1000 x 9 operand: neither dimension divides the shim's task grid evenly.
fn odd_operand() -> Matrix {
    Matrix::random_gaussian(1000, 9, Layout::RowMajor, 21, 0)
}

/// A sparse 1000 x 9 operand with an irregular pattern (~2.5 nnz per row).
fn odd_csr_operand() -> CsrMatrix {
    let dense = odd_operand();
    let mut coo = CooMatrix::new(dense.nrows(), dense.ncols());
    for i in 0..dense.nrows() {
        coo.push(i, i % 9, dense.get(i, i % 9));
        coo.push(i, (i * 5 + 2) % 9, dense.get(i, (i * 5 + 2) % 9));
        if i % 2 == 0 {
            coo.push(i, (i * 3 + 7) % 9, dense.get(i, (i * 3 + 7) % 9));
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// One plan per sketch kind, plus the two-stage Count-Gauss pipeline.
fn all_plans(d: usize) -> Vec<(&'static str, Pipeline)> {
    vec![
        (
            "CountSketch",
            Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(2), 7)),
        ),
        (
            "HashCountSketch",
            Pipeline::single(SketchSpec::hash_countsketch(d, EmbeddingDim::Exact(48), 11)),
        ),
        (
            "Gaussian",
            Pipeline::single(SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), 5)),
        ),
        (
            "SRHT",
            Pipeline::single(SketchSpec::srht(d, EmbeddingDim::Ratio(2), 3)),
        ),
        (
            "Count-Gauss",
            Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 13),
        ),
    ]
}

#[test]
fn random_fills_are_thread_count_invariant() {
    // Philox fills are counter-based, but the parallel fill loops must also cut
    // identical blocks at every thread count.
    assert_identical_across_threads("random_gaussian fill", || {
        bits(&Matrix::random_gaussian(1000, 9, Layout::RowMajor, 99, 3))
    });
    assert_identical_across_threads("random_gaussian fill (col-major)", || {
        bits(&Matrix::random_gaussian(513, 7, Layout::ColMajor, 17, 1))
    });
}

#[test]
fn gemm_is_thread_count_invariant() {
    let a = Matrix::random_gaussian(200, 150, Layout::RowMajor, 1, 0);
    let b = Matrix::random_gaussian(150, 40, Layout::RowMajor, 2, 0);
    let c = Matrix::random_gaussian(200, 40, Layout::RowMajor, 3, 0);
    assert_identical_across_threads("gemm", || {
        let device = Device::unlimited();
        bits(&blas3::gemm(&device, 1.5, &a, &b, -0.5, Some(&c)).expect("gemm succeeds"))
    });
}

#[test]
fn fwht_is_thread_count_invariant() {
    let pristine = Matrix::random_gaussian(1 << 12, 3, Layout::ColMajor, 5, 0);
    assert_identical_across_threads("fwht", || {
        let device = Device::unlimited();
        let mut work = pristine.clone();
        fwht::fwht_matrix_columns(&device, &mut work, fwht::DEFAULT_TILE);
        bits(&work)
    });
}

#[test]
fn spmm_is_thread_count_invariant() {
    let s = odd_csr_operand();
    let a = Matrix::random_gaussian(9, 6, Layout::RowMajor, 7, 0);
    assert_identical_across_threads("spmm", || {
        let device = Device::unlimited();
        bits(&spmm(&device, &s, &a))
    });
}

#[test]
fn every_sketch_kind_is_thread_count_invariant_on_dense_operands() {
    let a = odd_operand();
    for (label, plan) in all_plans(a.nrows()) {
        assert_identical_across_threads(label, || {
            let device = Device::unlimited();
            let sketch = plan.build_for(&device, a.ncols()).expect("plan builds");
            bits(&sketch.apply_matrix(&device, &a).expect("plan applies"))
        });
    }
}

#[test]
fn every_sketch_kind_is_thread_count_invariant_on_csr_operands() {
    let a = odd_csr_operand();
    for (label, plan) in all_plans(a.nrows()) {
        assert_identical_across_threads(&format!("{label}/CSR"), || {
            let device = Device::unlimited();
            let sketch = plan.build_for(&device, a.ncols()).expect("plan builds");
            bits(
                &sketch
                    .apply_operand(&device, Operand::Csr(&a))
                    .expect("plan applies to CSR"),
            )
        });
    }
}

#[test]
fn countsketch_vector_apply_is_thread_count_invariant() {
    // `apply_vector` has its own ordered-gather path, separate from the matrix
    // kernel — pin it too.
    let d = 1000;
    let x = Matrix::random_gaussian(d, 1, Layout::ColMajor, 23, 0);
    for (label, plan) in &all_plans(d)[..2] {
        assert_identical_across_threads(&format!("{label}/vector"), || {
            let device = Device::unlimited();
            let sketch = plan.build_for(&device, 1).expect("plan builds");
            let y = sketch
                .apply_vector(&device, x.as_slice())
                .expect("vector applies");
            y.iter().map(|v| v.to_bits()).collect()
        });
    }
}

#[test]
fn countsketch_of_csr_end_to_end_is_thread_count_invariant() {
    // The ISSUE's named end-to-end case: a CountSketch of a CSR operand through
    // the full pipelined executor on a multi-device pool, swept across thread
    // counts — sharding and threading must compose without changing bits.
    let a = odd_csr_operand();
    let plan = Pipeline::single(SketchSpec::countsketch(
        a.nrows(),
        EmbeddingDim::Square(2),
        7,
    ));
    for devices in [1usize, 4] {
        assert_identical_across_threads(
            &format!("CountSketch/CSR e2e @ {devices} devices"),
            || {
                let pool = DevicePool::unlimited(devices);
                let run = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default())
                    .expect("executes");
                bits(&run.result)
            },
        );
    }
}

#[test]
fn sketch_and_solve_is_thread_count_invariant() {
    let device = Device::unlimited();
    let problem = LsqProblem::performance(&device, 512, 8, 31).expect("problem builds");
    let plan = Pipeline::count_gauss(512, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 33);
    assert_identical_across_threads("sketch_and_solve", || {
        let pool = DevicePool::unlimited(1);
        let (solution, _) = sketch_and_solve(&pool, &problem, &plan, &ExecutorOptions::default())
            .expect("solver succeeds");
        solution.x.iter().map(|v| v.to_bits()).collect()
    });
}

#[test]
fn lowrank_range_finder_is_thread_count_invariant() {
    let a = Matrix::random_gaussian(300, 40, Layout::RowMajor, 41, 0);
    // CountSketch test matrix: the one range sketch that shards across a
    // multi-device pool, so both pool sizes run the same operator.
    let mut params = LowRankParams::new(5);
    params.sketch = RangeSketch::CountSketch;
    for devices in [1usize, 3] {
        assert_identical_across_threads(&format!("range_finder @ {devices} devices"), || {
            let pool = DevicePool::unlimited(devices);
            bits(&range_finder(&pool, &a, &params, &ExecutorOptions::default()).expect("runs"))
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary shapes and seeds: a CountSketch of a dense operand is bitwise
    /// thread-count-invariant.  Shapes straddle the shim's task-granularity
    /// thresholds so both the serial-inline and the multi-task paths run.
    #[test]
    fn countsketch_any_shape_is_thread_count_invariant(
        d in 64usize..600,
        n in 1usize..10,
        seed in 0u64..1000,
    ) {
        let a = Matrix::random_gaussian(d, n, Layout::RowMajor, seed, 0);
        let spec = SketchSpec::countsketch(d, EmbeddingDim::Exact(32), seed.wrapping_add(1));
        let reference = with_threads(1, || {
            let device = Device::unlimited();
            bits(&spec.build(&device).expect("builds").apply_matrix(&device, &a).expect("applies"))
        });
        for &t in &THREAD_COUNTS[1..] {
            let got = with_threads(t, || {
                let device = Device::unlimited();
                bits(&spec.build(&device).expect("builds").apply_matrix(&device, &a).expect("applies"))
            });
            prop_assert_eq!(&got, &reference, "d={} n={} seed={} t={}", d, n, seed, t);
        }
    }

    /// The shim's own entry points (`into_par_iter().map().sum()`,
    /// `par_iter_mut`, `par_chunks_mut`, `collect_into_vec`) are bitwise
    /// thread-count-invariant on float work of arbitrary length.
    #[test]
    fn shim_entry_points_are_thread_count_invariant(len in 1usize..5000, seed in 0u64..100) {
        use rayon::prelude::*;
        let run = || {
            // Non-associative float work: any reassociation of the fold order
            // or re-cut of the chunk boundaries changes the low bits.
            let mut data: Vec<f64> = (0..len)
                .map(|i| ((i as f64) + (seed as f64) * 0.1).sin())
                .collect();
            data.par_iter_mut()
                .enumerate()
                .for_each(|(i, x)| *x = x.mul_add(1.0000001, (i % 17) as f64 * 1e-7));
            data.par_chunks_mut(13).enumerate().for_each(|(c, chunk)| {
                let mut acc = c as f64;
                for x in chunk.iter_mut() {
                    acc += *x * 0.5;
                    *x = acc;
                }
            });
            let total: f64 = (0..len).into_par_iter().map(|i| data[i] / 3.0).sum::<f64>();
            let mut collected = Vec::new();
            (0..len)
                .into_par_iter()
                .map(|i| data[i] + total)
                .collect_into_vec(&mut collected);
            collected.push(total);
            collected.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        };
        let reference = with_threads(1, run);
        for &t in &THREAD_COUNTS[1..] {
            prop_assert_eq!(&with_threads(t, run), &reference, "len={} t={}", len, t);
        }
    }
}
