//! Bit-exact tenant isolation for the `sketch-serve` co-scheduler.
//!
//! The service contract: a tenant's job produces *exactly* the same bits
//! whether it runs co-scheduled on a busy shared pool or alone on a fresh
//! single-device pool.  Two mechanisms compose to give that guarantee —
//! per-tenant Philox seed namespaces ([`tenant_salt`] XORed into every stage
//! seed) make tenants' randomness disjoint, and the pipelined executor is
//! bit-for-bit identical across pool sizes.  These tests pin both, for every
//! sketch kind (plus the Count-Gauss pipeline), dense and CSR operands,
//! across 1/2/4/7-device pools, and under arbitrary proptest-chosen
//! admission interleavings.

use gpu_countsketch::prelude::*;
use gpu_countsketch::serve::{tenant_salt, QueuedJob};
use proptest::prelude::*;

/// Every sketch kind plus the two-stage Count-Gauss pipeline.
fn plans(d: usize, seed: u64) -> Vec<Pipeline> {
    vec![
        Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(2), seed)),
        Pipeline::single(SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), seed)),
        Pipeline::single(SketchSpec::srht(d, EmbeddingDim::Ratio(2), seed)),
        Pipeline::single(SketchSpec::hash_countsketch(
            d,
            EmbeddingDim::Square(2),
            seed,
        )),
        Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), seed),
    ]
}

/// One job per (plan, operand layout) for `tenant`: ten jobs covering every
/// kind over dense and CSR inputs.
fn jobs_for(tenant: &str, d: usize) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (i, plan) in plans(d, 40 + i_seed(tenant)).into_iter().enumerate() {
        jobs.push(JobSpec::new(
            tenant,
            plan.clone(),
            OperandSpec::Dense {
                rows: d,
                cols: 8,
                seed: 7,
            },
        ));
        jobs.push(JobSpec::new(
            tenant,
            plan,
            OperandSpec::Csr {
                rows: d,
                cols: 8,
                nnz_target: d / 2,
                seed: 7 + i as u64,
            },
        ));
    }
    jobs
}

/// Plans get per-tenant *spec* seeds too, so the salting has to do real work:
/// identical stage seeds across tenants would mask a broken namespace.
fn i_seed(tenant: &str) -> u64 {
    tenant.len() as u64
}

/// The reference bits: the job alone on a fresh single-device pool.
fn solo_result(job: &JobSpec) -> Matrix {
    let pool = DevicePool::unlimited(1);
    let run = Scheduler::new()
        .run(
            &pool,
            &[QueuedJob {
                job: job.clone(),
                seq: 0,
            }],
        )
        .expect("solo run fits one device");
    run.jobs.into_iter().next().unwrap().run.result
}

#[test]
fn cosched_matches_solo_bitwise_across_pool_sizes() {
    let d = 1 << 10;
    // Interleave two tenants' full workloads; one job asks for three devices
    // so multi-device subpools are exercised too.
    let mut specs = Vec::new();
    for (a, b) in jobs_for("alice", d).into_iter().zip(jobs_for("bob", d)) {
        specs.push(a);
        specs.push(b);
    }
    specs[4] = specs[4].clone().with_devices(3);
    let expected: Vec<Matrix> = specs.iter().map(solo_result).collect();

    for devices in [1usize, 2, 4, 7] {
        let pool = DevicePool::unlimited(devices);
        let queued: Vec<QueuedJob> = specs
            .iter()
            .enumerate()
            .map(|(seq, job)| QueuedJob {
                job: job.clone(),
                seq: seq as u64,
            })
            .collect();
        let run = Scheduler::new()
            .run(&pool, &queued)
            .expect("co-scheduled run fits the pool");
        assert_eq!(run.jobs.len(), specs.len());
        for job in &run.jobs {
            let diff = job
                .run
                .result
                .max_abs_diff(&expected[job.seq as usize])
                .expect("same sketch shape");
            assert_eq!(
                diff, 0.0,
                "{} job seq {} differs co-scheduled on {devices} devices",
                job.tenant, job.seq
            );
        }
    }
}

#[test]
fn tenant_namespaces_separate_and_repeat() {
    let d = 1 << 9;
    assert_ne!(tenant_salt("alice"), tenant_salt("bob"));
    assert_eq!(tenant_salt("alice"), tenant_salt("alice"));

    // The same spec under different tenants draws different randomness...
    let plan = Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(2), 3));
    let operand = OperandSpec::Dense {
        rows: d,
        cols: 8,
        seed: 7,
    };
    let alice = solo_result(&JobSpec::new("alice", plan.clone(), operand.clone()));
    let bob = solo_result(&JobSpec::new("bob", plan.clone(), operand.clone()));
    assert!(
        alice.max_abs_diff(&bob).unwrap() > 0.0,
        "different tenants must land in different seed namespaces"
    );

    // ...while the same tenant gets the same bits every time.
    let again = solo_result(&JobSpec::new("alice", plan, operand));
    assert_eq!(alice.max_abs_diff(&again).unwrap(), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any admission interleaving of N tenant jobs, on any pool size, with any
    /// arrival jitter, yields bit-identical per-tenant results to solo runs on
    /// a fresh pool.
    #[test]
    fn prop_interleavings_preserve_tenant_bits(shuffle_seed in 0u64..1000, devices in 1usize..8) {
        let d = 1 << 9;
        let mut specs: Vec<JobSpec> = Vec::new();
        for tenant in ["alice", "bob", "carol"] {
            for (i, plan) in plans(d, 60 + i_seed(tenant)).into_iter().enumerate().take(3) {
                let operand = if i.is_multiple_of(2) {
                    OperandSpec::Dense { rows: d, cols: 8, seed: 5 }
                } else {
                    OperandSpec::Csr { rows: d, cols: 8, nnz_target: d / 2, seed: 5 }
                };
                specs.push(JobSpec::new(tenant, plan, operand));
            }
        }
        let expected: Vec<Matrix> = specs.iter().map(solo_result).collect();

        // Deterministic Fisher–Yates driven by the proptest seed: the
        // admission order (and hence the packing) is arbitrary.
        let mut order: Vec<usize> = (0..specs.len()).collect();
        let mut state = shuffle_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let queued: Vec<QueuedJob> = order
            .iter()
            .enumerate()
            .map(|(seq, &idx)| {
                let mut job = specs[idx].clone().with_arrival(seq as f64 * 1e-7);
                if seq % 4 == 0 {
                    job = job.with_devices(1 + seq % 3);
                }
                QueuedJob { job, seq: idx as u64 }
            })
            .collect();
        let pool = DevicePool::unlimited(devices);
        let run = Scheduler::new().run(&pool, &queued).expect("run fits the pool");
        for job in &run.jobs {
            let diff = job.run.result.max_abs_diff(&expected[job.seq as usize]).unwrap();
            prop_assert!(
                diff == 0.0,
                "{} job {} differs under interleaving {shuffle_seed} on {devices} devices",
                job.tenant, job.seq
            );
        }
    }
}
