//! Checks that every intra-repository markdown link in the top-level docs
//! resolves to a real file or directory — the offline half of the CI doc-link
//! gate (rustdoc's `broken_intra_doc_links` covers the API docs; this covers
//! the repo guides).

use std::path::{Path, PathBuf};

/// Extract `[text](target)` link targets from markdown, skipping fenced code
/// blocks and inline code spans.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_code = false;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b']' if !in_code && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    if let Some(close) = line[i + 2..].find(')') {
                        targets.push(line[i + 2..i + 2 + close].to_string());
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    targets
}

fn check_file(repo_root: &Path, doc: &str) {
    let path = repo_root.join(doc);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut broken = Vec::new();
    for target in link_targets(&text) {
        // External links and pure in-page anchors are out of scope.
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with('#')
            || target.starts_with("mailto:")
        {
            continue;
        }
        let file_part = target.split('#').next().unwrap_or(&target);
        if file_part.is_empty() {
            continue;
        }
        let resolved: PathBuf = repo_root.join(file_part);
        if !resolved.exists() {
            broken.push(target);
        }
    }
    assert!(
        broken.is_empty(),
        "{doc} has broken intra-repo links: {broken:?}"
    );
}

#[test]
fn readme_links_resolve() {
    check_file(Path::new(env!("CARGO_MANIFEST_DIR")), "README.md");
}

#[test]
fn architecture_links_resolve() {
    check_file(Path::new(env!("CARGO_MANIFEST_DIR")), "ARCHITECTURE.md");
}

#[test]
fn architecture_is_cross_linked_from_readme() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README exists");
    assert!(
        link_targets(&readme)
            .iter()
            .any(|t| t.split('#').next() == Some("ARCHITECTURE.md")),
        "README.md must link to ARCHITECTURE.md"
    );
}

#[test]
fn link_extractor_handles_fences_and_code_spans() {
    let md = "see [a](real.md) and `[b](fake.md)`\n```\n[c](alsofake.md)\n```\n[d](other.md#frag)";
    let targets = link_targets(md);
    assert_eq!(
        targets,
        vec!["real.md".to_string(), "other.md#frag".to_string()]
    );
}
