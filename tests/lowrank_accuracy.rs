//! Integration tests for the `sketch-lowrank` subsystem, pinning the acceptance
//! criteria of the low-rank PR:
//!
//! 1. `rsvd` recovers an exactly rank-k matrix to ≤ 1e-8 Frobenius relative error,
//! 2. the rangefinder obeys an HMT-style spectral bound `‖A − QQᵀA‖₂ ≤ C·σ_{k+1}`,
//! 3. the single-pass streaming SVD reads each row block exactly once (asserted via
//!    the counting wrapper),
//! 4. Nyström matches RSVD within its PSD error bound on a random Gram matrix,
//! 5. every path (dense, sparse, streaming) is bit-for-bit seed-deterministic.

use gpu_countsketch::la::blas3::{gemm, gemm_op, gram_gemm};
use gpu_countsketch::la::cond::{geometric_singular_values, matrix_with_singular_values};
use gpu_countsketch::la::norms::frobenius_rel_diff;
use gpu_countsketch::la::{jacobi_svd, SmallSvd};
use gpu_countsketch::lowrank::SvdResult;
use gpu_countsketch::prelude::*;
use gpu_countsketch::sparse::{CooMatrix, CsrMatrix};

fn device() -> Device {
    Device::unlimited()
}

/// An m x n matrix with exactly `k` nonzero singular values `k, k-1, …, 1`.
fn rank_k_matrix(m: usize, n: usize, k: usize, seed: u64) -> Matrix {
    gpu_countsketch::la::cond::rank_k_matrix(&device(), m, n, k, seed).expect("valid spectrum")
}

fn frob_rel_err(a: &Matrix, approx: &Matrix) -> f64 {
    frobenius_rel_diff(&device(), a, approx).expect("matching shapes")
}

/// Spectral norm via the dense Jacobi SVD (inputs here are small and tall).
fn spectral_norm(a: &Matrix) -> f64 {
    let d = device();
    let svd: SmallSvd = jacobi_svd(&d, a).expect("tall input");
    svd.s[0]
}

#[test]
fn rsvd_recovers_exact_rank_k_to_1e8() {
    let d = device();
    let (m, n, k) = (200, 60, 8);
    let a = rank_k_matrix(m, n, k, 1);
    for sketch in [
        RangeSketch::Gaussian,
        RangeSketch::CountSketch,
        RangeSketch::Srht,
    ] {
        let params = LowRankParams::new(k).with_sketch(sketch).with_seed(11, 0);
        let svd = rsvd(&d, &a, &params).expect("rsvd succeeds");
        let back = svd.reconstruct(&d).expect("shapes agree");
        let err = frob_rel_err(&a, &back);
        assert!(
            err <= 1e-8,
            "{}: rank-{k} matrix not recovered, rel err {err}",
            sketch.name()
        );
    }
}

#[test]
fn rangefinder_satisfies_hmt_spectral_bound() {
    let d = device();
    let (m, n, k, p) = (150, 40, 8, 8);
    let sigma = geometric_singular_values(n, 1e4);
    let a = matrix_with_singular_values(&d, m, n, &sigma, 3).expect("valid spectrum");
    let params = LowRankParams::new(k).with_oversample(p).with_seed(5, 0);
    let q = range_finder(
        &DevicePool::unlimited(1),
        &a,
        &params,
        &ExecutorOptions::default(),
    )
    .expect("rangefinder succeeds");

    // Residual A − QQᵀA, materialised densely.
    let qta = gemm_op(&d, 1.0, Op::Trans, &q, Op::NoTrans, &a, 0.0, None).expect("QᵀA");
    let qqta = gemm(&d, 1.0, &q, &qta, 0.0, None).expect("QQᵀA");
    let resid = Matrix::from_fn(m, n, Layout::ColMajor, |i, j| a.get(i, j) - qqta.get(i, j));
    let err = spectral_norm(&resid);

    // HMT Theorem 10.6 expectation bound with a generous slack factor of 3:
    // (1 + 4 √(k+p) √(min(m,n)) / (p−1)) σ_{k+1}.
    let hmt = 1.0 + 4.0 * ((k + p) as f64).sqrt() * (m.min(n) as f64).sqrt() / ((p - 1) as f64);
    let bound = 3.0 * hmt * sigma[k];
    assert!(
        err <= bound,
        "‖A − QQᵀA‖₂ = {err} exceeds 3x the HMT bound {bound} (σ_k+1 = {})",
        sigma[k]
    );
    // Sanity: the error cannot beat the best rank-l approximation.
    let l = k + p;
    assert!(err >= 0.99 * sigma[l.min(n - 1)]);
}

#[test]
fn streaming_svd_reads_each_block_exactly_once_and_is_accurate() {
    let d = device();
    let (m, n, k) = (180, 48, 6);
    let a = rank_k_matrix(m, n, k, 7);
    let mut source = CountingBlockSource::new(BlockRowMatrix::split(&a, 9));
    let params = LowRankParams::new(k).with_seed(21, 3);
    let svd = streaming_svd(&d, &mut source, &params).expect("stream succeeds");

    // Single-pass: every one of the 9 row blocks fetched exactly once.
    assert_eq!(source.counts(), &[1usize; 9], "pipeline is not single-pass");

    let back = svd.reconstruct(&d).expect("shapes agree");
    let err = frob_rel_err(&a, &back);
    assert!(err <= 1e-8, "streaming rel err {err}");
}

#[test]
fn nystrom_matches_rsvd_within_psd_bound_on_gram_matrix() {
    let d = device();
    // A random Gram matrix with a decaying spectrum: eigenvalues are σ_i².
    let n = 40;
    let k = 6;
    let sigma = geometric_singular_values(n, 1e3);
    let factor = matrix_with_singular_values(&d, 2 * n, n, &sigma, 13).expect("valid spectrum");
    let g = gram_gemm(&d, &factor).expect("gram");

    let params = LowRankParams::new(k).with_seed(17, 0);
    let nys = nystrom(&d, &g, &params).expect("gram matrix is PSD");
    let svd = rsvd(&d, &g, &params).expect("rsvd succeeds");

    let nys_err = frob_rel_err(&g, &nys.reconstruct(&d).expect("shapes agree"));
    let svd_err = frob_rel_err(&g, &svd.reconstruct(&d).expect("shapes agree"));

    // The PSD-specialised path must land in the same error class as RSVD: within
    // a 10x factor plus the λ_{k+1}-level floor both methods share.
    let lambda_tail = sigma[k] * sigma[k];
    assert!(
        nys_err <= 10.0 * svd_err + lambda_tail,
        "nystrom err {nys_err} vs rsvd err {svd_err} (λ_k+1 = {lambda_tail})"
    );
    // Structural eigenvalue checks: the Nyström approximation never exceeds A in
    // the Loewner order, so each eigenvalue estimate under-approximates the truth,
    // and by Weyl's inequality the deviation is bounded by ‖A − Â‖₂ ≲ λ_{k+1}.
    for (computed, s) in nys.eigs.iter().zip(sigma.iter()) {
        let expected = s * s;
        assert!(
            *computed <= expected * (1.0 + 1e-9) + 1e-12,
            "Nyström over-estimated: {computed} vs {expected}"
        );
        assert!(
            expected - computed <= lambda_tail,
            "{computed} vs {expected} deviates beyond λ_k+1 = {lambda_tail}"
        );
    }
}

fn assert_bit_identical(a: &SvdResult, b: &SvdResult) {
    assert_eq!(a.s, b.s, "singular values differ");
    assert_eq!(a.u.as_slice(), b.u.as_slice(), "U differs");
    assert_eq!(a.vt.as_slice(), b.vt.as_slice(), "Vᵀ differs");
}

#[test]
fn rsvd_is_bit_for_bit_seed_deterministic_on_every_path() {
    let d = device();
    let (m, n, k) = (120, 36, 5);
    let a = rank_k_matrix(m, n, k, 9);
    for sketch in [
        RangeSketch::Gaussian,
        RangeSketch::CountSketch,
        RangeSketch::Srht,
    ] {
        let params = LowRankParams::new(k)
            .with_sketch(sketch)
            .with_power_iters(1)
            .with_seed(123, 7);

        // Dense path: two runs, identical bits.
        let r1 = rsvd(&d, &a, &params).expect("rsvd succeeds");
        let r2 = rsvd(&d, &a, &params).expect("rsvd succeeds");
        assert_bit_identical(&r1, &r2);

        // A different stream must change the factors.
        let r3 = rsvd(&d, &a, &params.with_seed(123, 8)).expect("rsvd succeeds");
        assert_ne!(r1.u.as_slice(), r3.u.as_slice(), "{}", sketch.name());
    }

    // Sparse path.
    let mut coo = CooMatrix::new(80, 24);
    for i in 0..80 {
        coo.push(i, i % 24, 1.0 + i as f64 * 0.05);
        coo.push(i, (i * 7 + 3) % 24, -0.25);
    }
    let csr = CsrMatrix::from_coo(&coo);
    let params = LowRankParams::new(6).with_seed(31, 2);
    let s1 = rsvd(&d, &csr, &params).expect("sparse rsvd succeeds");
    let s2 = rsvd(&d, &csr, &params).expect("sparse rsvd succeeds");
    assert_bit_identical(&s1, &s2);

    // Streaming path (fixed blocking): two runs, identical bits.
    let a2 = rank_k_matrix(96, 20, 4, 4);
    let params = LowRankParams::new(4).with_seed(77, 1);
    let run = |params: &LowRankParams| {
        let mut source = BlockRowMatrix::split(&a2, 6);
        streaming_svd(&d, &mut source, params).expect("stream succeeds")
    };
    assert_bit_identical(&run(&params), &run(&params));
}

#[test]
fn error_estimator_supports_adaptive_rank_growth() {
    let d = device();
    // Spectrum with a sharp knee at rank 6.
    let n = 30;
    let mut sigma = vec![1e-9; n];
    for (i, s) in sigma.iter_mut().take(6).enumerate() {
        *s = 10.0 / (1 << i) as f64;
    }
    let a = matrix_with_singular_values(&d, 90, n, &sigma, 19).expect("valid spectrum");

    // Zero oversampling so the basis width equals k exactly: the estimator must
    // reject every basis that cannot span the rank-6 head, and accept k = 6.
    let mut accepted = 0;
    for k in [2, 4, 6] {
        let params = LowRankParams::new(k).with_oversample(0).with_seed(3, 0);
        let q = range_finder(
            &DevicePool::unlimited(1),
            &a,
            &params,
            &ExecutorOptions::default(),
        )
        .expect("rangefinder succeeds");
        let est = estimate_range_error(&d, &a, &q, 6, 999, 0).expect("probes fit");
        if est < 1e-5 {
            accepted = k;
            break;
        }
    }
    // Only the k that clears the knee may be accepted.
    assert_eq!(accepted, 6, "adaptive search accepted the wrong rank");
}
