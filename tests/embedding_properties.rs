//! Property-based integration tests for the subspace-embedding guarantees every solver
//! in the workspace relies on (Definitions 1.1–1.2 of the paper).

use gpu_countsketch::la::cond::orthonormal_columns;
use gpu_countsketch::la::norms::vec_norm2;
use gpu_countsketch::prelude::*;
use gpu_countsketch::sketch::embedding::subspace_embedding_distortion;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every sketch preserves the norm of a random vector within a generous band when
    /// its embedding dimension follows the paper's conventions.
    #[test]
    fn prop_norms_are_preserved_within_the_band(seed in 0u64..200) {
        let device = Device::unlimited();
        let d = 4096usize;
        let n = 8usize;
        let x = gpu_countsketch::rng::fill::gaussian_vec(seed, 3, d);
        let nx = vec_norm2(&x);

        let plans = [
            Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(8), seed)),
            Pipeline::single(SketchSpec::gaussian(d, EmbeddingDim::Ratio(16), seed)),
            Pipeline::single(SketchSpec::srht(d, EmbeddingDim::Ratio(32), seed)),
            Pipeline::count_gauss(d, EmbeddingDim::Square(16), EmbeddingDim::Ratio(16), seed),
            Pipeline::single(SketchSpec::hash_countsketch(d, EmbeddingDim::Square(8), seed)),
        ];
        let operators: Vec<Box<dyn SketchOperator>> = plans
            .iter()
            .map(|plan| plan.build_for(&device, n).unwrap())
            .collect();
        for op in operators {
            let y = op.apply_vector(&device, &x).unwrap();
            let ratio = vec_norm2(&y) / nx;
            prop_assert!((0.4..1.6).contains(&ratio),
                "{}: ratio {ratio}", op.name());
        }
    }

    /// The sketched Gram matrix of an orthonormal basis stays close to the identity —
    /// the empirical subspace embedding property.
    #[test]
    fn prop_subspace_embedding_distortion_is_bounded(seed in 0u64..100) {
        let device = Device::unlimited();
        let d = 2048usize;
        let n = 4usize;
        let basis = orthonormal_columns(&device, d, n, seed).unwrap();
        let cs = SketchSpec::countsketch(d, EmbeddingDim::Square(16), seed + 1)
            .build_for(&device, n)
            .unwrap();
        let eps = subspace_embedding_distortion(&device, cs.as_ref(), &basis).unwrap();
        prop_assert!(eps < 0.8, "CountSketch distortion {eps}");
    }

    /// Sketching commutes with the block-row distribution for any process count.
    #[test]
    fn prop_distribution_is_exact(p in 1usize..8, seed in 0u64..100) {
        let device = Device::unlimited();
        let d = 512usize;
        let n = 4usize;
        let a = Matrix::random_gaussian(d, n, Layout::RowMajor, seed, 0);
        let cs = SketchSpec::countsketch(d, EmbeddingDim::Square(2), seed)
            .resolve(n)
            .build_countsketch(&device)
            .unwrap();
        let single = cs.apply_matrix(&device, &a).unwrap();
        let dist = BlockRowMatrix::split(&a, p);
        let reduced = distributed_countsketch(&device, &dist, &cs).unwrap();
        prop_assert!(reduced.result.max_abs_diff(&single).unwrap() < 1e-9);
    }

    /// The sketch-and-solve residual is sandwiched between the optimum and the
    /// theoretical distortion envelope.
    #[test]
    fn prop_sketch_and_solve_residual_bounds(seed in 0u64..50) {
        let pool = DevicePool::unlimited(1);
        let device = pool.device(0);
        let problem = LsqProblem::easy(device, 2048, 6, seed).unwrap();
        let best = solve(&pool, &problem, Method::Qr, seed).unwrap()
            .relative_residual(device, &problem).unwrap();
        let sol = solve(&pool, &problem, Method::CountSketch, seed + 1).unwrap();
        let res = sol.relative_residual(device, &problem).unwrap();
        prop_assert!(res + 1e-12 >= best);
        prop_assert!(res <= 2.5 * best, "residual {res} vs best {best}");
    }
}
