//! The multi-device determinism suite: sharded, pipelined execution across a
//! [`DevicePool`] must be **bit-for-bit identical** to single-device execution —
//! for every sketch kind, every device count (including a prime one), and uneven
//! shard splits.
//!
//! This is the contract that makes the multi-device executor safe to adopt
//! anywhere: scaling out changes the modelled timeline, never the answer.

use gpu_countsketch::dist::{pipelined_sketch, ExecutorOptions};
use gpu_countsketch::gpu::{Device, DevicePool};
use gpu_countsketch::la::{Layout, Matrix};
use gpu_countsketch::sketch::{EmbeddingDim, Operand, Pipeline, SketchSpec};
use gpu_countsketch::sparse::{CooMatrix, CsrMatrix};

/// Bitwise equality, element by element (stricter than `max_abs_diff == 0.0`,
/// which cannot distinguish `-0.0` from `0.0`).
fn assert_bits_equal(label: &str, got: &Matrix, want: &Matrix) {
    assert_eq!((got.nrows(), got.ncols()), (want.nrows(), want.ncols()));
    for i in 0..want.nrows() {
        for j in 0..want.ncols() {
            assert_eq!(
                got.get(i, j).to_bits(),
                want.get(i, j).to_bits(),
                "{label}: element ({i},{j}) drifted: {} vs {}",
                got.get(i, j),
                want.get(i, j)
            );
        }
    }
}

fn single_device_reference(plan: &Pipeline, a: &Matrix) -> Matrix {
    let device = Device::unlimited();
    plan.build_for(&device, a.ncols())
        .expect("plan builds")
        .apply_matrix(&device, a)
        .expect("plan applies")
}

/// The ISSUE's device grid: 1 (degenerate), 2/4 (powers of two), 7 (prime, so
/// every split of the 1000-row operand and the 9-column panels is uneven).
const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn check_across_devices(label: &str, plan: &Pipeline, a: &Matrix) {
    let reference = single_device_reference(plan, a);
    for devices in DEVICE_COUNTS {
        let pool = DevicePool::unlimited(devices);
        let run = pipelined_sketch(&pool, a, plan, &ExecutorOptions::default())
            .unwrap_or_else(|e| panic!("{label} failed on {devices} devices: {e}"));
        assert_bits_equal(
            &format!("{label} @ {devices} devices"),
            &run.result,
            &reference,
        );
    }
}

/// A 1000 x 9 operand: 1000 is divisible by neither 4, 7, 8 nor 14 shards, and 9
/// columns split unevenly across every pool of the grid.
fn odd_operand() -> Matrix {
    Matrix::random_gaussian(1000, 9, Layout::RowMajor, 21, 0)
}

#[test]
fn countsketch_is_bit_identical_across_device_counts() {
    let a = odd_operand();
    let plan = Pipeline::single(SketchSpec::countsketch(
        a.nrows(),
        EmbeddingDim::Square(2),
        7,
    ));
    check_across_devices("CountSketch", &plan, &a);
}

#[test]
fn gaussian_is_bit_identical_across_device_counts() {
    let a = odd_operand();
    let plan = Pipeline::single(SketchSpec::gaussian(a.nrows(), EmbeddingDim::Ratio(2), 5));
    check_across_devices("Gaussian", &plan, &a);
}

#[test]
fn srht_is_bit_identical_across_device_counts() {
    let a = odd_operand();
    let plan = Pipeline::single(SketchSpec::srht(a.nrows(), EmbeddingDim::Ratio(2), 3));
    check_across_devices("SRHT", &plan, &a);
}

#[test]
fn hash_countsketch_is_bit_identical_across_device_counts() {
    let a = odd_operand();
    let plan = Pipeline::single(SketchSpec::hash_countsketch(
        a.nrows(),
        EmbeddingDim::Exact(48),
        11,
    ));
    check_across_devices("HashCountSketch", &plan, &a);
}

#[test]
fn count_gauss_pipeline_is_bit_identical_across_device_counts() {
    let a = odd_operand();
    let plan = Pipeline::count_gauss(
        a.nrows(),
        EmbeddingDim::Square(2),
        EmbeddingDim::Ratio(2),
        13,
    );
    check_across_devices("Count-Gauss", &plan, &a);
}

/// A sparse 1000 x 9 operand with an irregular pattern (~2.5 nnz per row) built
/// from the dense odd operand, so the values are generic Gaussians.
fn odd_csr_operand() -> CsrMatrix {
    let dense = odd_operand();
    let mut coo = CooMatrix::new(dense.nrows(), dense.ncols());
    for i in 0..dense.nrows() {
        coo.push(i, i % 9, dense.get(i, i % 9));
        coo.push(i, (i * 5 + 2) % 9, dense.get(i, (i * 5 + 2) % 9));
        if i % 2 == 0 {
            coo.push(i, (i * 3 + 7) % 9, dense.get(i, (i * 3 + 7) % 9));
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn check_csr_across_devices(label: &str, plan: &Pipeline, a: &CsrMatrix) {
    let device = Device::unlimited();
    let reference = plan
        .build_for(&device, a.ncols())
        .expect("plan builds")
        .apply_operand(&device, Operand::Csr(a))
        .expect("plan applies to CSR");
    for devices in DEVICE_COUNTS {
        let pool = DevicePool::unlimited(devices);
        let run = pipelined_sketch(&pool, a, plan, &ExecutorOptions::default())
            .unwrap_or_else(|e| panic!("{label} failed on {devices} devices: {e}"));
        assert_bits_equal(
            &format!("{label}/CSR @ {devices} devices"),
            &run.result,
            &reference,
        );
    }
}

#[test]
fn csr_operands_are_bit_identical_across_device_counts() {
    let a = odd_csr_operand();
    let d = a.nrows();
    for (label, plan) in [
        (
            "CountSketch",
            Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(2), 7)),
        ),
        (
            "HashCountSketch",
            Pipeline::single(SketchSpec::hash_countsketch(d, EmbeddingDim::Exact(48), 11)),
        ),
        (
            "Gaussian",
            Pipeline::single(SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), 5)),
        ),
        (
            "SRHT",
            Pipeline::single(SketchSpec::srht(d, EmbeddingDim::Ratio(2), 3)),
        ),
        (
            "Count-Gauss",
            Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 13),
        ),
    ] {
        check_csr_across_devices(label, &plan, &a);
    }
}

#[test]
fn csr_and_dense_operands_shard_to_the_same_schedule() {
    // The engine must not special-case sparsity in its scheduling: the same
    // plan over a CSR operand and its dense counterpart cuts identical shards.
    let csr = odd_csr_operand();
    let plan = Pipeline::single(SketchSpec::countsketch(
        csr.nrows(),
        EmbeddingDim::Exact(32),
        3,
    ));
    let dense = {
        let rows = csr.to_dense();
        Matrix::from_fn(csr.nrows(), csr.ncols(), Layout::RowMajor, |i, j| {
            rows[i][j]
        })
    };
    let pool = DevicePool::unlimited(4);
    let run_csr = pipelined_sketch(&pool, &csr, &plan, &ExecutorOptions::default()).unwrap();
    let pool2 = DevicePool::unlimited(4);
    let run_dense = pipelined_sketch(&pool2, &dense, &plan, &ExecutorOptions::default()).unwrap();
    assert_eq!(run_csr.schedules, run_dense.schedules);
    assert_bits_equal("CSR vs dense operand", &run_csr.result, &run_dense.result);
}

#[test]
fn uneven_shard_splits_never_change_the_bits() {
    // Prime row count and a shards-per-device sweep: every schedule is ragged.
    let a = Matrix::random_gaussian(997, 5, Layout::RowMajor, 8, 0);
    let specs = [
        SketchSpec::countsketch(997, EmbeddingDim::Square(2), 2),
        SketchSpec::gaussian(997, EmbeddingDim::Ratio(2), 4),
        SketchSpec::srht(997, EmbeddingDim::Ratio(2), 6),
    ];
    for spec in specs {
        let plan = Pipeline::single(spec.clone());
        let reference = single_device_reference(&plan, &a);
        for shards_per_device in [1usize, 2, 3, 5] {
            let pool = DevicePool::unlimited(3);
            let run = pipelined_sketch(
                &pool,
                &a,
                &plan,
                &ExecutorOptions::default().with_shards_per_device(shards_per_device),
            )
            .expect("executes");
            assert_bits_equal(
                &format!("{} spd={shards_per_device}", spec.kind.as_str()),
                &run.result,
                &reference,
            );
        }
    }
}

#[test]
fn column_major_operands_are_also_bit_identical() {
    // The CountSketch fold charges the uncoalesced-read penalty on column-major
    // input but must still produce the same bits.
    let a = Matrix::random_gaussian(640, 6, Layout::ColMajor, 15, 0);
    let plan = Pipeline::single(SketchSpec::countsketch(640, EmbeddingDim::Square(2), 9));
    check_across_devices("CountSketch/col-major", &plan, &a);
}

#[test]
fn timeline_reports_are_consistent_on_every_pool() {
    let a = odd_operand();
    let plan = Pipeline::count_gauss(
        a.nrows(),
        EmbeddingDim::Square(2),
        EmbeddingDim::Ratio(2),
        1,
    );
    for devices in DEVICE_COUNTS {
        let pool = DevicePool::unlimited(devices);
        let run = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default()).unwrap();
        assert!(run.compute_only_seconds <= run.pipelined_seconds + 1e-15);
        assert!(run.pipelined_seconds <= run.serial_seconds + 1e-15);
        if devices >= 2 {
            assert!(
                run.pipelined_seconds < run.serial_seconds,
                "no overlap won on {devices} devices"
            );
        }
        let utils = run.utilizations();
        assert_eq!(utils.len(), devices);
        assert!(utils.iter().all(|&u| (0.0..=1.0 + 1e-12).contains(&u)));
        assert!(utils[0] > 0.0, "device 0 must have worked");
    }
}
