//! The multi-device determinism suite: sharded, pipelined execution across a
//! [`DevicePool`] must be **bit-for-bit identical** to single-device execution —
//! for every sketch kind, every device count (including a prime one), and uneven
//! shard splits.
//!
//! This is the contract that makes the multi-device executor safe to adopt
//! anywhere: scaling out changes the modelled timeline, never the answer.

use gpu_countsketch::dist::{pipelined_sketch, ExecutorOptions};
use gpu_countsketch::gpu::{Device, DevicePool};
use gpu_countsketch::la::{Layout, Matrix};
use gpu_countsketch::sketch::{EmbeddingDim, Pipeline, SketchSpec};

/// Bitwise equality, element by element (stricter than `max_abs_diff == 0.0`,
/// which cannot distinguish `-0.0` from `0.0`).
fn assert_bits_equal(label: &str, got: &Matrix, want: &Matrix) {
    assert_eq!((got.nrows(), got.ncols()), (want.nrows(), want.ncols()));
    for i in 0..want.nrows() {
        for j in 0..want.ncols() {
            assert_eq!(
                got.get(i, j).to_bits(),
                want.get(i, j).to_bits(),
                "{label}: element ({i},{j}) drifted: {} vs {}",
                got.get(i, j),
                want.get(i, j)
            );
        }
    }
}

fn single_device_reference(plan: &Pipeline, a: &Matrix) -> Matrix {
    let device = Device::unlimited();
    plan.build_for(&device, a.ncols())
        .expect("plan builds")
        .apply_matrix(&device, a)
        .expect("plan applies")
}

/// The ISSUE's device grid: 1 (degenerate), 2/4 (powers of two), 7 (prime, so
/// every split of the 1000-row operand and the 9-column panels is uneven).
const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn check_across_devices(label: &str, plan: &Pipeline, a: &Matrix) {
    let reference = single_device_reference(plan, a);
    for devices in DEVICE_COUNTS {
        let pool = DevicePool::unlimited(devices);
        let run = pipelined_sketch(&pool, a, plan, &ExecutorOptions::default())
            .unwrap_or_else(|e| panic!("{label} failed on {devices} devices: {e}"));
        assert_bits_equal(
            &format!("{label} @ {devices} devices"),
            &run.result,
            &reference,
        );
    }
}

/// A 1000 x 9 operand: 1000 is divisible by neither 4, 7, 8 nor 14 shards, and 9
/// columns split unevenly across every pool of the grid.
fn odd_operand() -> Matrix {
    Matrix::random_gaussian(1000, 9, Layout::RowMajor, 21, 0)
}

#[test]
fn countsketch_is_bit_identical_across_device_counts() {
    let a = odd_operand();
    let plan = Pipeline::single(SketchSpec::countsketch(
        a.nrows(),
        EmbeddingDim::Square(2),
        7,
    ));
    check_across_devices("CountSketch", &plan, &a);
}

#[test]
fn gaussian_is_bit_identical_across_device_counts() {
    let a = odd_operand();
    let plan = Pipeline::single(SketchSpec::gaussian(a.nrows(), EmbeddingDim::Ratio(2), 5));
    check_across_devices("Gaussian", &plan, &a);
}

#[test]
fn srht_is_bit_identical_across_device_counts() {
    let a = odd_operand();
    let plan = Pipeline::single(SketchSpec::srht(a.nrows(), EmbeddingDim::Ratio(2), 3));
    check_across_devices("SRHT", &plan, &a);
}

#[test]
fn hash_countsketch_is_bit_identical_across_device_counts() {
    let a = odd_operand();
    let plan = Pipeline::single(SketchSpec::hash_countsketch(
        a.nrows(),
        EmbeddingDim::Exact(48),
        11,
    ));
    check_across_devices("HashCountSketch", &plan, &a);
}

#[test]
fn count_gauss_pipeline_is_bit_identical_across_device_counts() {
    let a = odd_operand();
    let plan = Pipeline::count_gauss(
        a.nrows(),
        EmbeddingDim::Square(2),
        EmbeddingDim::Ratio(2),
        13,
    );
    check_across_devices("Count-Gauss", &plan, &a);
}

#[test]
fn uneven_shard_splits_never_change_the_bits() {
    // Prime row count and a shards-per-device sweep: every schedule is ragged.
    let a = Matrix::random_gaussian(997, 5, Layout::RowMajor, 8, 0);
    let specs = [
        SketchSpec::countsketch(997, EmbeddingDim::Square(2), 2),
        SketchSpec::gaussian(997, EmbeddingDim::Ratio(2), 4),
        SketchSpec::srht(997, EmbeddingDim::Ratio(2), 6),
    ];
    for spec in specs {
        let plan = Pipeline::single(spec.clone());
        let reference = single_device_reference(&plan, &a);
        for shards_per_device in [1usize, 2, 3, 5] {
            let pool = DevicePool::unlimited(3);
            let run = pipelined_sketch(
                &pool,
                &a,
                &plan,
                &ExecutorOptions::default().with_shards_per_device(shards_per_device),
            )
            .expect("executes");
            assert_bits_equal(
                &format!("{} spd={shards_per_device}", spec.kind.as_str()),
                &run.result,
                &reference,
            );
        }
    }
}

#[test]
fn column_major_operands_are_also_bit_identical() {
    // The CountSketch fold charges the uncoalesced-read penalty on column-major
    // input but must still produce the same bits.
    let a = Matrix::random_gaussian(640, 6, Layout::ColMajor, 15, 0);
    let plan = Pipeline::single(SketchSpec::countsketch(640, EmbeddingDim::Square(2), 9));
    check_across_devices("CountSketch/col-major", &plan, &a);
}

#[test]
fn timeline_reports_are_consistent_on_every_pool() {
    let a = odd_operand();
    let plan = Pipeline::count_gauss(
        a.nrows(),
        EmbeddingDim::Square(2),
        EmbeddingDim::Ratio(2),
        1,
    );
    for devices in DEVICE_COUNTS {
        let pool = DevicePool::unlimited(devices);
        let run = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default()).unwrap();
        assert!(run.compute_only_seconds <= run.pipelined_seconds + 1e-15);
        assert!(run.pipelined_seconds <= run.serial_seconds + 1e-15);
        if devices >= 2 {
            assert!(
                run.pipelined_seconds < run.serial_seconds,
                "no overlap won on {devices} devices"
            );
        }
        let utils = run.utilizations();
        assert_eq!(utils.len(), devices);
        assert!(utils.iter().all(|&u| (0.0..=1.0 + 1e-12).contains(&u)));
        assert!(utils[0] > 0.0, "device 0 must have worked");
    }
}
