//! Chaos suite: device death, stragglers, and bit-exact recovery.
//!
//! The fault contract: because every random ingredient of a sketch is a pure
//! function of a Philox seed, the pipelined executor can recompute a dead
//! device's stage on the survivors and land on **exactly** the bits the
//! fault-free run produces — no checkpoint, no replay log.  These tests pin
//! that end to end: a device dying at any injected sim-time, for every sketch
//! kind (plus the Count-Gauss pipeline), dense and CSR operands, on 2/4/7
//! device pools, yields results bit-for-bit identical to the no-fault run.
//! Stragglers only stretch the modelled clock, never the bits; the serve
//! layer retries dead-device jobs under a typed budget and renders
//! byte-identical ledgers across reruns.

use gpu_countsketch::prelude::*;
use gpu_countsketch::serve::{OperandData, QueuedJob, RejectReason, ServiceReport};
use proptest::prelude::*;

/// Every sketch kind plus the two-stage Count-Gauss pipeline.
fn plans(d: usize, seed: u64) -> Vec<Pipeline> {
    vec![
        Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(2), seed)),
        Pipeline::single(SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), seed)),
        Pipeline::single(SketchSpec::srht(d, EmbeddingDim::Ratio(2), seed)),
        Pipeline::single(SketchSpec::hash_countsketch(
            d,
            EmbeddingDim::Square(2),
            seed,
        )),
        Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), seed),
    ]
}

/// One dense and one CSR operand, materialised from the same seed recipe the
/// serve layer uses.
fn operands(d: usize, seed: u64) -> Vec<OperandData> {
    vec![
        OperandSpec::Dense {
            rows: d,
            cols: 8,
            seed,
        }
        .materialize(),
        OperandSpec::Csr {
            rows: d,
            cols: 8,
            nnz_target: d / 2,
            seed,
        }
        .materialize(),
    ]
}

fn run_plan(pool: &DevicePool, operand: &OperandData, plan: &Pipeline) -> PipelinedRun {
    let opts = ExecutorOptions::default();
    match operand {
        OperandData::Dense(m) => pipelined_sketch(pool, Operand::Dense(m), plan, &opts),
        OperandData::Csr(s) => pipelined_sketch(pool, Operand::Csr(s), plan, &opts),
    }
    .expect("run fits the modelled pool")
}

/// Strict bit equality — `max_abs_diff == 0` would conflate `-0.0` and `0.0`.
fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return false;
    }
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            if a.get(i, j).to_bits() != b.get(i, j).to_bits() {
                return false;
            }
        }
    }
    true
}

fn dies_at(device: usize, after_sim_seconds: f64) -> FaultPlan {
    FaultPlan::healthy().with_fault(device, FaultSpec::Dies { after_sim_seconds })
}

#[test]
fn device_death_recovers_bit_exactly_for_every_plan() {
    let d = 1 << 10;
    for devices in [2usize, 4, 7] {
        for (i, plan) in plans(d, 40).into_iter().enumerate() {
            for (which, operand) in operands(d, 7 + i as u64).iter().enumerate() {
                let clean = run_plan(&DevicePool::h100(devices), operand, &plan);
                assert!(clean.fault.is_clean());

                // The highest-ordinal device owns the last shard of every
                // stage, so a death at 30% of the fault-free makespan always
                // lands mid-flight.
                let pool = DevicePool::h100(devices);
                pool.apply_fault_plan(&dies_at(devices - 1, 0.3 * clean.pipelined_seconds));
                let run = run_plan(&pool, operand, &plan);

                let ctx = format!("plan {i} operand {which} on {devices} devices");
                assert!(
                    bits_equal(&run.result, &clean.result),
                    "recovered bits drifted: {ctx}"
                );
                assert_eq!(run.fault.failures.len(), 1, "death never fired: {ctx}");
                let f = &run.fault.failures[0];
                assert_eq!(f.device, devices - 1, "{ctx}");
                assert!(f.detected_at_seconds >= f.at_sim_seconds, "{ctx}");
                assert_eq!(run.fault.survivors, devices - 1, "{ctx}");
                assert!(run.fault.shards_recomputed > 0, "{ctx}");
            }
        }
    }
}

#[test]
fn cascading_deaths_peel_the_pool_down_to_a_lone_survivor() {
    let d = 1 << 10;
    let plan = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 9);
    let operand = &operands(d, 7)[0];
    let clean = run_plan(&DevicePool::h100(3), operand, &plan);

    let pool = DevicePool::h100(3);
    pool.apply_fault_plan(
        &FaultPlan::healthy()
            .with_fault(
                2,
                FaultSpec::Dies {
                    after_sim_seconds: 0.1 * clean.pipelined_seconds,
                },
            )
            .with_fault(
                1,
                FaultSpec::Dies {
                    after_sim_seconds: 0.2 * clean.pipelined_seconds,
                },
            ),
    );
    let run = run_plan(&pool, operand, &plan);

    assert!(bits_equal(&run.result, &clean.result));
    let mut dead: Vec<usize> = run.fault.failures.iter().map(|f| f.device).collect();
    dead.sort_unstable();
    assert_eq!(dead, vec![1, 2]);
    assert_eq!(run.fault.survivors, 1);
    assert!(run.fault.shards_recomputed > 0);
    assert!(run.fault.lost_seconds > 0.0);
}

#[test]
fn a_fully_dead_pool_surfaces_the_typed_error() {
    let d = 1 << 9;
    let plan = &plans(d, 3)[0];
    let operand = &operands(d, 7)[0];
    let pool = DevicePool::h100(2);
    pool.apply_fault_plan(
        &FaultPlan::healthy()
            .with_fault(
                0,
                FaultSpec::Dies {
                    after_sim_seconds: 0.0,
                },
            )
            .with_fault(
                1,
                FaultSpec::Dies {
                    after_sim_seconds: 0.0,
                },
            ),
    );
    let opts = ExecutorOptions::default();
    let a = match operand {
        OperandData::Dense(m) => m,
        OperandData::Csr(_) => unreachable!(),
    };
    let err = pipelined_sketch(&pool, Operand::Dense(a), plan, &opts)
        .expect_err("no survivor can absorb the work");
    assert!(err.is_device_failure(), "got {err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (death time, victim ordinal, straggler factor, plan, pool size):
    /// the recovered result is bit-identical to the fault-free run.  Late
    /// death times (past the makespan) legitimately never fire — the run is
    /// then clean, and the bits must *still* match.
    #[test]
    fn prop_chaos_never_changes_the_bits(
        devices in 2usize..8,
        victim_draw in 0usize..1000,
        frac_permille in 0u64..1200,
        straggler_tenths in 10u64..80,
        plan_idx in 0usize..5,
    ) {
        let d = 1 << 9;
        let plan = plans(d, 60)[plan_idx].clone();
        let operand = &operands(d, 5)[plan_idx % 2];
        let clean = run_plan(&DevicePool::h100(devices), operand, &plan);

        let victim = victim_draw % devices;
        let slow = (victim + 1) % devices;
        let fault_at = frac_permille as f64 * 1e-3 * clean.pipelined_seconds;
        let pool = DevicePool::h100(devices);
        pool.apply_fault_plan(
            &FaultPlan::healthy()
                .with_fault(victim, FaultSpec::Dies { after_sim_seconds: fault_at })
                .with_fault(slow, FaultSpec::Straggler {
                    slowdown_factor: straggler_tenths as f64 / 10.0,
                }),
        );
        let run = run_plan(&pool, operand, &plan);

        prop_assert!(
            bits_equal(&run.result, &clean.result),
            "bits drifted: plan {plan_idx}, victim {victim} at {frac_permille} permille, \
             {straggler_tenths}/10x straggler, {devices} devices"
        );
        if !run.fault.is_clean() {
            prop_assert_eq!(run.fault.survivors, devices - run.fault.failures.len());
            prop_assert!(run.fault.shards_recomputed > 0);
            for f in &run.fault.failures {
                prop_assert!(f.detected_at_seconds >= f.at_sim_seconds);
                prop_assert!(f.recovered_at_seconds >= f.detected_at_seconds);
            }
        }
    }

    /// A 1.0x straggler is a bitwise no-op: result, pipelined makespan, and
    /// serial cost all carry identical bits to the healthy pool's.
    #[test]
    fn prop_unit_straggler_is_bitwise_invisible(
        devices in 1usize..8,
        victim_draw in 0usize..1000,
        plan_idx in 0usize..5,
    ) {
        let d = 1 << 9;
        let plan = plans(d, 60)[plan_idx].clone();
        let operand = &operands(d, 5)[plan_idx % 2];
        let clean = run_plan(&DevicePool::h100(devices), operand, &plan);

        let pool = DevicePool::h100(devices);
        pool.apply_fault_plan(&FaultPlan::healthy().with_fault(
            victim_draw % devices,
            FaultSpec::Straggler { slowdown_factor: 1.0 },
        ));
        let run = run_plan(&pool, operand, &plan);

        prop_assert!(bits_equal(&run.result, &clean.result));
        prop_assert_eq!(
            run.pipelined_seconds.to_bits(),
            clean.pipelined_seconds.to_bits()
        );
        prop_assert_eq!(run.serial_seconds.to_bits(), clean.serial_seconds.to_bits());
        prop_assert!(run.fault.is_clean());
    }
}

// ---------------------------------------------------------------------------
// Serve layer: retries, ledgers, and rerun determinism under chaos.
// ---------------------------------------------------------------------------

/// One job per (plan, operand layout) for `tenant`.
fn jobs_for(tenant: &str, d: usize) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (i, plan) in plans(d, 40 + tenant.len() as u64).into_iter().enumerate() {
        jobs.push(JobSpec::new(
            tenant,
            plan.clone(),
            OperandSpec::Dense {
                rows: d,
                cols: 8,
                seed: 7,
            },
        ));
        jobs.push(JobSpec::new(
            tenant,
            plan,
            OperandSpec::Csr {
                rows: d,
                cols: 8,
                nnz_target: d / 2,
                seed: 7 + i as u64,
            },
        ));
    }
    jobs
}

/// The reference bits: the job alone on a fresh fault-free single-device pool.
fn solo_result(job: &JobSpec) -> Matrix {
    let pool = DevicePool::unlimited(1);
    let run = Scheduler::new()
        .run(
            &pool,
            &[QueuedJob {
                job: job.clone(),
                seq: 0,
            }],
        )
        .expect("solo run fits one device");
    run.jobs.into_iter().next().unwrap().run.result
}

#[test]
fn serve_chaos_retries_bitwise_and_renders_byte_identical_ledgers() {
    let d = 1 << 9;
    let specs: Vec<JobSpec> = jobs_for("alice", d)
        .into_iter()
        .take(4)
        .chain(jobs_for("bob", d).into_iter().take(4))
        .collect();
    let chaos = || -> ServiceReport {
        // Device 0 is dead on arrival and device 1 limps at 4x: every job
        // claiming ordinal 0 fails once and retries onto the survivors.
        let pool = DevicePool::unlimited(3);
        pool.apply_fault_plan(
            &FaultPlan::healthy()
                .with_fault(
                    0,
                    FaultSpec::Dies {
                        after_sim_seconds: 0.0,
                    },
                )
                .with_fault(
                    1,
                    FaultSpec::Straggler {
                        slowdown_factor: 4.0,
                    },
                ),
        );
        let mut engine = ServeEngine::new(&pool, AdmissionController::new(), 32);
        for job in &specs {
            engine.submit(job.clone()).expect("queue has room");
        }
        engine.run().expect("chaos run completes")
    };

    let first = chaos();
    assert!(
        first.service.retries >= 1,
        "the dead device must force at least one retry"
    );
    assert_eq!(first.jobs_run(), specs.len() as u64);
    // Retried jobs still land on the solo-run bits: recovery changes the
    // placement, never the result.
    for job in &first.service.jobs {
        assert!(
            bits_equal(&job.run.result, &solo_result(&specs[job.seq as usize])),
            "{} job seq {} drifted under chaos",
            job.tenant,
            job.seq
        );
    }

    // The whole report — ledgers, rejection reasons, timeline — renders to
    // the same bytes on a fresh pool with the same fault plan.
    let second = chaos();
    assert_eq!(first.to_json().render(), second.to_json().render());
}

#[test]
fn retry_exhaustion_is_ledgered_with_the_typed_reason() {
    let d = 1 << 9;
    let pool = DevicePool::unlimited(1);
    pool.apply_fault_plan(&dies_at(0, 0.0));
    let admission = AdmissionController::new()
        .with_tenant("doomed", TenantLimits::unlimited().with_max_retries(0));
    let mut engine = ServeEngine::new(&pool, admission, 4);
    engine
        .submit(jobs_for("doomed", d).remove(0))
        .expect("queue has room");
    let report = engine.run().expect("abandonment is not an engine error");

    let ledger = &report.tenants["doomed"];
    assert_eq!((ledger.jobs_run, ledger.jobs_rejected), (0, 1));
    assert_eq!(ledger.rejected_by_reason["retries_exhausted"], 1);
    assert_eq!(report.service.abandoned.len(), 1);
    let abandoned = &report.service.abandoned[0];
    assert_eq!(
        abandoned.reason,
        RejectReason::RetriesExhausted { attempts: 1 }
    );
    assert_eq!(abandoned.tenant, "doomed");
}
