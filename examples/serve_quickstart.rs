//! Multi-tenant serving quickstart: replay the checked-in mixed-tenant job
//! file through the `sketch-serve` engine and print the per-tenant ledger.
//!
//! The job file (`examples/jobs/mixed_tenants.json`) declares the whole
//! service run: the queue bound, default and per-tenant admission limits, and
//! a stream of jobs across three tenants mixing sketch kinds, dense and CSR
//! operands, and deadline classes.  One `batch-lab` job is *meant* to be
//! rejected — its tenant caps in-flight jobs at two — so the ledger shows
//! both sides of admission control.
//!
//! Tenant isolation is bit-exact: the last block re-runs one tenant's job
//! alone on a fresh single-device pool and checks the co-scheduled result
//! matches bit for bit.
//!
//! Run with: `cargo run --release --example serve_quickstart`

use gpu_countsketch::prelude::*;
use gpu_countsketch::serve::JobFile;

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/jobs/mixed_tenants.json"
    );
    let text = std::fs::read_to_string(path).expect("job file is checked in");
    let file = JobFile::from_json(&text).expect("job file is valid");
    println!(
        "loaded {} jobs across {} declared tenant policies from {path}",
        file.jobs.len(),
        file.tenant_limits.len()
    );

    // Four modelled H100s on NVLink serve the whole stream.
    let pool = DevicePool::h100(4);
    let mut engine = ServeEngine::new(&pool, file.admission(), file.queue_capacity);
    for job in file.jobs.clone() {
        let tenant = job.tenant.clone();
        match engine.submit(job) {
            Ok(seq) => println!("  admitted  {tenant} (seq {seq})"),
            Err(err) => println!("  rejected  {err}"),
        }
    }

    let report = engine.run().expect("service run fits the modelled pool");
    println!(
        "\n{:<10} {:>4} {:>9} {:>12} {:>12} {:>12}",
        "tenant", "run", "rejected", "compute_s", "comm_bytes", "wait_p95_s"
    );
    for (tenant, ledger) in &report.tenants {
        println!(
            "{:<10} {:>4} {:>9} {:>12.6} {:>12} {:>12.6}",
            tenant,
            ledger.jobs_run,
            ledger.jobs_rejected,
            ledger.compute_seconds,
            ledger.comm_bytes,
            ledger.queue_wait_p95()
        );
    }
    println!(
        "\nservice makespan {:.6} s on {} devices (back-to-back would take {:.6} s)",
        report.service.makespan(),
        report.service.devices,
        report.service.timeline.serial_seconds()
    );

    // Bit-exact tenant isolation: re-run the first scheduled job alone on a
    // fresh pool of one and compare against its co-scheduled result.
    let solo_pool = DevicePool::h100(1);
    let scheduler = Scheduler::new();
    let first = &report.service.jobs[0];
    let solo_spec = file
        .jobs
        .iter()
        .find(|j| j.tenant == first.tenant)
        .expect("scheduled job came from the file");
    let mut queue = JobQueue::new(1);
    queue.push(solo_spec.clone()).expect("queue of one");
    let solo = scheduler
        .run(&solo_pool, &queue.drain())
        .expect("solo run fits one device");
    let diff = solo.jobs[0]
        .run
        .result
        .max_abs_diff(&first.run.result)
        .expect("same sketch shape");
    assert_eq!(diff, 0.0, "co-scheduled bits match the solo run");
    println!(
        "isolation check: {}'s job is bit-identical co-scheduled vs solo (max |diff| = {diff:.1})",
        first.tenant
    );
}
