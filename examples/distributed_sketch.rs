//! Section 7 as an example: apply one global sketch to a block-row distributed matrix
//! and compare communication volume and per-process compute across sketch types.
//!
//! Run with: `cargo run --release --example distributed_sketch`

use gpu_countsketch::prelude::*;

fn main() {
    let d = 1 << 14;
    let n = 32;
    let p = 8;
    let device = Device::unlimited();
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 5, 0);
    let dist = BlockRowMatrix::split(&a, p);
    println!("A is {d} x {n}, distributed block-row across {p} simulated processes\n");

    // The three Section 7 sketches as declarative pipelines; `distributed_sketch`
    // builds each one for the distributed operand and dispatches to its driver.
    let count_plan = Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(2), 1));
    let gauss_plan = Pipeline::single(SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), 2));
    let multi_plan = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 3);

    let single = count_plan
        .build_for(&device, n)
        .expect("valid spec")
        .apply_matrix(&device, &a)
        .expect("single-device reference");
    let out_count = distributed_sketch(&device, &dist, &count_plan).expect("dims match");
    let out_gauss = distributed_sketch(&device, &dist, &gauss_plan).expect("dims match");
    let out_multi = distributed_sketch(&device, &dist, &multi_plan).expect("dims match");

    println!(
        "distributed CountSketch equals the single-device result: max diff {:.2e}\n",
        out_count.result.max_abs_diff(&single).expect("same shape")
    );

    println!(
        "{:<14} {:>12} {:>18} {:>22}",
        "sketch", "output dim", "comm words", "max per-process flops"
    );
    for (label, run) in [
        ("Gaussian", &out_gauss),
        ("CountSketch", &out_count),
        ("MultiSketch", &out_multi),
    ] {
        let max_flops = run
            .per_process_cost
            .iter()
            .map(|c| c.flops)
            .max()
            .unwrap_or(0);
        println!(
            "{:<14} {:>12} {:>18} {:>22}",
            label,
            run.result.nrows(),
            run.comm.total_words(),
            max_flops
        );
    }

    println!("\nThe multisketch communicates as little as the Gaussian (2n rows reduced)");
    println!("while doing CountSketch-level work per process — Section 7's conclusion that");
    println!("it 'will almost certainly outperform the Gaussian in a distributed setting'.");
}
