//! Randomized low-rank approximation tour: RSVD with every test-matrix family,
//! the single-pass streaming SVD, Nyström on a PSD Gram matrix, and the posterior
//! error estimator driving an adaptive rank search.
//!
//! Run with: `cargo run --release --example low_rank_approx`

use gpu_countsketch::la::blas3::gram_gemm;
use gpu_countsketch::la::cond::{geometric_singular_values, matrix_with_singular_values};
use gpu_countsketch::la::norms::frobenius_rel_diff;
use gpu_countsketch::prelude::*;

fn frob_rel_err(device: &Device, a: &Matrix, approx: &Matrix) -> f64 {
    frobenius_rel_diff(device, a, approx).expect("matching shapes")
}

fn main() {
    let device = Device::h100();
    let (m, n, k) = (2048, 128, 10);

    // A low-rank-plus-noise test matrix: 10 strong directions, then a noise floor
    // five orders of magnitude down.
    let mut sigma = geometric_singular_values(k, 1e2);
    sigma.resize(n, 1e-7);
    let a = matrix_with_singular_values(&device, m, n, &sigma, 42).expect("valid spectrum");
    println!("A is {m} x {n} with numerical rank {k} (noise floor 1e-7)\n");

    // --- RSVD with each test-matrix family -------------------------------------
    for sketch in [
        RangeSketch::Gaussian,
        RangeSketch::CountSketch,
        RangeSketch::Srht,
    ] {
        let device = Device::h100();
        let params = LowRankParams::new(k)
            .with_sketch(sketch)
            .with_power_iters(1)
            .with_seed(7, 0);
        let svd = rsvd(&device, &a, &params).expect("rsvd succeeds");
        let back = svd.reconstruct(&device).expect("shapes agree");
        println!(
            "RSVD {:>11}: rel err {:.2e}   sigma_1 {:.4}   modelled H100 time {:.3} ms",
            sketch.name(),
            frob_rel_err(&device, &a, &back),
            svd.s[0],
            device.model_time(&device.tracker().snapshot()) * 1e3,
        );
    }

    // --- Deterministic truncated QR baseline ------------------------------------
    {
        let device = Device::h100();
        let det = gpu_countsketch::lowrank::deterministic_svd(&device, &a, k).expect("tall input");
        let back = det.reconstruct(&device).expect("shapes agree");
        println!(
            "Truncated QR SVD : rel err {:.2e}   sigma_1 {:.4}   modelled H100 time {:.3} ms\n",
            frob_rel_err(&device, &a, &back),
            det.s[0],
            device.model_time(&device.tracker().snapshot()) * 1e3,
        );
    }

    // --- Single-pass streaming SVD ----------------------------------------------
    {
        let device = Device::h100();
        let params = LowRankParams::new(k).with_seed(7, 0);
        let mut source = CountingBlockSource::new(BlockRowMatrix::split(&a, 16));
        let svd = streaming_svd(&device, &mut source, &params).expect("stream succeeds");
        let back = svd.reconstruct(&device).expect("shapes agree");
        println!(
            "Streaming SVD    : rel err {:.2e}   over 16 blocks, each read {} time(s)",
            frob_rel_err(&device, &a, &back),
            source.counts().iter().max().expect("non-empty"),
        );
    }

    // --- Nyström on the PSD Gram matrix -----------------------------------------
    {
        let device = Device::h100();
        let g = gram_gemm(&device, &a).expect("gram of tall matrix");
        let params = LowRankParams::new(k).with_seed(9, 0);
        let nys = nystrom(&device, &g, &params).expect("gram matrix is PSD");
        let back = nys.reconstruct(&device).expect("shapes agree");
        println!(
            "Nystrom on AᵀA   : rel err {:.2e}   lambda_1 {:.4}  (= sigma_1² {:.4})\n",
            frob_rel_err(&device, &g, &back),
            nys.eigs[0],
            sigma[0] * sigma[0],
        );
    }

    // --- Adaptive rank search via the posterior error estimator ------------------
    // The probe norms amplify the 1e-7 noise floor by ~10·√n, so a tolerance of
    // 1e-4 asks for "everything above the noise" without chasing the floor itself.
    let device = Device::h100();
    let tol = 1e-4;
    let mut rank = 2;
    println!("Adaptive rangefinder: grow k until the posterior estimate drops below {tol:.0e}");
    loop {
        let params = LowRankParams::new(rank).with_oversample(4).with_seed(3, 0);
        let q = range_finder(
            &DevicePool::h100(1),
            &a,
            &params,
            &ExecutorOptions::default(),
        )
        .expect("rangefinder succeeds");
        let est = estimate_range_error(&device, &a, &q, 6, 1234, 0).expect("probes fit");
        println!("  k = {rank:>2}  ->  estimated ‖A − QQᵀA‖₂ ≲ {est:.3e}");
        if est < tol || rank >= n {
            println!("  accepted k = {rank}");
            break;
        }
        rank += 2;
    }
}
