//! Survey of the least squares solvers the paper compares (Figure 5 + 6 in miniature):
//! runtime breakdown and relative residual of every method on one problem.
//!
//! Run with: `cargo run --release --example least_squares_survey`

use gpu_countsketch::prelude::*;

fn main() {
    let d = 1 << 15;
    let n = 32;
    let device = Device::h100();
    let problem = LsqProblem::easy(&device, d, n, 42).expect("valid problem size");
    println!("Overdetermined least squares: A is {d} x {n}, b = A*ones + noise, cond(A) = 1e2\n");
    println!(
        "{:<14} {:>14} {:>16} {:>24}",
        "method", "model ms", "residual", "dominant phase"
    );

    for method in Method::ALL {
        // Serial = pool of one on the unified engine.
        let pool = DevicePool::h100(1);
        match solve(&pool, &problem, method, 7) {
            Ok(sol) => {
                let residual = sol
                    .relative_residual(pool.device(0), &problem)
                    .expect("residual is computable");
                let dominant = sol
                    .breakdown
                    .phases
                    .iter()
                    .max_by(|a, b| a.model_seconds.total_cmp(&b.model_seconds))
                    .map(|p| format!("{} ({:.3} ms)", p.phase.label(), p.model_seconds * 1e3))
                    .unwrap_or_default();
                println!(
                    "{:<14} {:>14.3} {:>16.3e} {:>24}",
                    sol.method,
                    sol.model_ms(),
                    residual,
                    dominant
                );
            }
            Err(e) => println!("{:<14} failed: {e}", method.label()),
        }
    }

    println!("\nSketch-and-solve methods trade an O(1) residual distortion for speed;");
    println!("rand_cholQR and QR have no distortion; the normal equations are fast but");
    println!("lose stability once cond(A) exceeds ~1e8 (see the ill_conditioned example).");
}
