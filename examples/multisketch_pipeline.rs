//! The multisketch pipeline in detail: CountSketch stage, Gaussian stage, the Section
//! 6.1 transpose trick, and the subspace-embedding distortion each stage introduces.
//!
//! Run with: `cargo run --release --example multisketch_pipeline`

use gpu_countsketch::la::cond::orthonormal_columns;
use gpu_countsketch::prelude::*;
use gpu_countsketch::sketch::embedding::subspace_embedding_distortion;

fn main() {
    let d = 1 << 14;
    let n = 16;
    let device = Device::h100();

    println!(
        "MultiSketch pipeline on a {d} x {n} operand (k1 = 2n^2 = {}, k2 = 2n = {})\n",
        2 * n * n,
        2 * n
    );
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 1, 0);
    // The multisketch is the declarative Count→Gauss pipeline (k₁ = 2n², k₂ = 2n);
    // build the fused operator so the Section 6.1 transpose trick is available.
    let multi = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 3)
        .build_multisketch(&device, n)
        .expect("fits in device memory");

    // Stage 1: CountSketch d -> 2n^2 (one pass over A, row-major reads).
    device.tracker().reset();
    let y = multi
        .count_stage()
        .apply_matrix(&device, &a)
        .expect("dimensions match");
    println!(
        "stage 1 CountSketch : {:>9} rows -> {:>7} rows, modelled {:.3} ms",
        d,
        y.nrows(),
        device.model_time(&device.tracker().snapshot()) * 1e3
    );

    // Stage 2: Gaussian 2n^2 -> 2n, applied with the transpose trick.
    device.tracker().reset();
    let z = multi.apply_matrix(&device, &a).expect("dimensions match");
    println!(
        "full multisketch    : {:>9} rows -> {:>7} rows, modelled {:.3} ms (transpose trick)",
        d,
        z.nrows(),
        device.model_time(&device.tracker().snapshot()) * 1e3
    );

    device.tracker().reset();
    let naive = multi.clone().with_naive_layout_handling();
    let _ = naive.apply_matrix(&device, &a).expect("dimensions match");
    println!(
        "full multisketch    : same result via naive layout conversion, modelled {:.3} ms",
        device.model_time(&device.tracker().snapshot()) * 1e3
    );

    // How good an embedding is it?  Measure on an orthonormal basis of a random subspace.
    let basis = orthonormal_columns(&device, d, n, 9).expect("QR succeeds");
    let eps_count = subspace_embedding_distortion(&device, multi.count_stage(), &basis).unwrap();
    let eps_multi = subspace_embedding_distortion(&device, &multi, &basis).unwrap();
    println!("\nempirical subspace distortion:");
    println!("  CountSketch stage only : {eps_count:.3}");
    println!("  full multisketch       : {eps_multi:.3}");
    println!("\nThe Gaussian stage compounds the distortion slightly — the (1+e1)(1+e2)");
    println!("factor of Table 1 — in exchange for an output of only 2n rows.");
}
