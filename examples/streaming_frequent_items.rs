//! The original CountSketch application (Charikar et al.) plus the paper's future-work
//! streaming variant: estimate heavy hitters in a stream, and sketch a matrix with the
//! hash-based CountSketch that stores no index arrays at all.
//!
//! Run with: `cargo run --release --example streaming_frequent_items`

use gpu_countsketch::prelude::*;

fn main() {
    // Part 1: classic frequency estimation with a depth-5 CountSketch.
    let mut sketch = FrequencyCountSketch::new(5, 1024, 42);
    let heavy_items: [(u64, usize); 3] = [(7, 5000), (123, 3000), (999, 1500)];
    for (item, count) in heavy_items {
        for _ in 0..count {
            sketch.update(item, 1.0);
        }
    }
    for i in 0..20_000u64 {
        sketch.update(10_000 + (i % 4000), 1.0);
    }

    println!("Streaming frequency estimation (depth 5, width 1024):");
    println!("{:>8} {:>10} {:>12}", "item", "true", "estimated");
    for (item, count) in heavy_items {
        println!("{:>8} {:>10} {:>12.1}", item, count, sketch.estimate(item));
    }
    println!(
        "{:>8} {:>10} {:>12.1}  (never inserted)",
        424242,
        0,
        sketch.estimate(424242)
    );

    // Part 2: the hash-based (on-the-fly) CountSketch of the paper's Section 8.
    let device = Device::h100();
    let d = 1 << 14;
    let n = 16;
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 1, 0);
    let hash_sketch = SketchSpec::hash_countsketch(d, EmbeddingDim::Square(2), 9)
        .resolve(n)
        .build_hash_countsketch(&device)
        .expect("valid spec");
    let explicit = hash_sketch.to_explicit();
    let y_hash = hash_sketch.apply_matrix(&device, &a).expect("dims match");
    let y_explicit = explicit.apply_matrix(&device, &a).expect("dims match");
    println!("\nHash-based CountSketch (no stored row map / signs):");
    println!(
        "  output {} x {}, matches the explicit CountSketch to {:.2e}",
        y_hash.nrows(),
        y_hash.ncols(),
        y_hash.max_abs_diff(&y_explicit).expect("same shape")
    );
    println!(
        "  generation cost: {:?} (zero — suitable for streaming)",
        hash_sketch.generation_cost()
    );
}
