//! Spec-driven Figure 5 survey: every sketched least squares method is *named by a
//! JSON file* — no sketch constructor appears in this code.  The checked-in
//! `examples/specs/fig5_methods.json` carries one [`Pipeline`] per method with the
//! paper's Section 6 embedding-dimension rules, plus the problem shape; this example
//! just loads, builds, runs, and prints the Figure-5 style breakdown.
//!
//! Run with: `cargo run --release --example spec_driven_survey`

use gpu_countsketch::lsq::{normal_equations, rand_cholqr_least_squares, sketch_and_solve};
use gpu_countsketch::prelude::*;

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/fig5_methods.json"
    );
    let text = std::fs::read_to_string(path).expect("spec file is checked in");
    let doc = JsonValue::parse(&text).expect("spec file is valid JSON");

    let problem_spec = doc.get("problem").expect("spec has a problem section");
    let d = problem_spec.get("d").and_then(JsonValue::as_usize).unwrap();
    let n = problem_spec.get("n").and_then(JsonValue::as_usize).unwrap();
    let seed = problem_spec
        .get("seed")
        .and_then(JsonValue::as_u64)
        .unwrap();
    let kappa = problem_spec
        .get("kappa")
        .and_then(JsonValue::as_f64)
        .unwrap_or(1e2);

    // Serial execution through the unified engine: a pool of one H100 (swap in
    // DevicePool::h100(4) to shard every sketch below across four devices — the
    // solutions stay bit-identical).
    let pool = DevicePool::single(DeviceSpec::h100());
    let device = pool.device(0);
    // The Figure 5 performance problem: cond(A) = kappa, b = A·1 + N(0, 0.1²) noise.
    let problem =
        LsqProblem::with_noise(device, d, n, kappa, 0.0, 0.1, seed).expect("valid problem");
    println!("Figure 5 sweep from {path}");
    println!("problem: A is {d} x {n}, cond(A) = {kappa:.1e}, seed {seed}\n");
    println!(
        "{:<14} {:>12} {:>14} {:>26}",
        "method", "model ms", "residual", "dominant phase"
    );

    let report = |sol: &LsqSolution| {
        let residual = sol
            .relative_residual(device, &problem)
            .expect("residual is computable");
        let dominant = sol
            .breakdown
            .phases
            .iter()
            .max_by(|a, b| a.model_seconds.total_cmp(&b.model_seconds))
            .map(|p| format!("{} ({:.3} ms)", p.phase.label(), p.model_seconds * 1e3))
            .unwrap_or_default();
        println!(
            "{:<14} {:>12.3} {:>14.3e} {:>26}",
            sol.method,
            sol.model_ms(),
            residual,
            dominant
        );
    };

    // The deterministic baseline is not in the JSON — it has no sketch to describe.
    let baseline = normal_equations(device, &problem).expect("well conditioned");
    report(&baseline);

    for entry in doc
        .get("methods")
        .and_then(JsonValue::as_array)
        .expect("spec has a methods array")
    {
        let label = entry
            .get("label")
            .and_then(JsonValue::as_str)
            .expect("method has a label");
        let solver = entry
            .get("solver")
            .and_then(JsonValue::as_str)
            .expect("method has a solver");
        let plan = Pipeline::from_json_value(entry.get("pipeline").expect("method has a pipeline"))
            .expect("pipeline parses");

        let (mut sol, _run) = match solver {
            "rand-cholqr" => {
                rand_cholqr_least_squares(&pool, &problem, &plan, &ExecutorOptions::default())
                    .expect("solvable")
            }
            _ => sketch_and_solve(&pool, &problem, &plan, &ExecutorOptions::default())
                .expect("solvable"),
        };
        // Report under the JSON's label; leak is fine for a handful of labels in an
        // example process.
        sol.method = Box::leak(label.to_string().into_boxed_str());
        report(&sol);
    }

    println!("\nEvery sketched method above was constructed from the JSON spec alone —");
    println!("swap the file to name a different experiment (dimensions, rules, seeds).");
}
