//! The Figure 8 experiment as an example: sweep the condition number of `A` and watch
//! the normal equations fail while the sketched solvers and QR stay accurate.
//!
//! Run with: `cargo run --release --example ill_conditioned_stability`

use gpu_countsketch::prelude::*;

fn main() {
    let d = 1 << 13;
    let n = 16;
    println!("Least squares with b = A*ones (exact solution exists), A is {d} x {n}\n");
    println!(
        "{:>10}  {:>14} {:>14} {:>14} {:>14}",
        "cond(A)", "Normal Eq", "Count", "Multi", "QR"
    );

    for exponent in (0..=16).step_by(2) {
        let kappa = 10f64.powi(exponent);
        let pool = DevicePool::unlimited(1);
        let device = pool.device(0);
        let problem =
            LsqProblem::conditioned(device, d, n, kappa, 42 + exponent as u64).expect("valid");
        let mut cells = Vec::new();
        for method in [
            Method::NormalEquations,
            Method::CountSketch,
            Method::MultiSketch,
            Method::Qr,
        ] {
            let cell = match solve(&pool, &problem, method, 7) {
                Ok(sol) => match sol.relative_residual(device, &problem) {
                    Ok(r) if r.is_finite() => format!("{r:.3e}"),
                    _ => "NaN".to_string(),
                },
                Err(e) if e.is_gram_breakdown() => "POTRF fail".to_string(),
                Err(_) => "failed".to_string(),
            };
            cells.push(cell);
        }
        println!(
            "{:>10.1e}  {:>14} {:>14} {:>14} {:>14}",
            kappa, cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!("\nThe normal equations square the condition number, so they lose accuracy (and");
    println!("eventually the Cholesky factorisation fails outright) once cond(A) passes ~1e8,");
    println!("while the sketch-and-solve and QR solvers keep tracking the exact solution —");
    println!("exactly the behaviour of Figure 8 in the paper.");
}
