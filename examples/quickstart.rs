//! Quickstart: generate a CountSketch, apply it with the Algorithm 2 kernel, and
//! compare its modelled H100 time against the Gram matrix — the paper's core claim in
//! twenty lines.
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_countsketch::la::blas3::gram_gemm;
use gpu_countsketch::prelude::*;

fn main() {
    let d = 1 << 16;
    let n = 64;
    println!("Sketching a {d} x {n} matrix (row-major, as Section 6.1 prescribes)\n");
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 42, 0);

    // CountSketch with the paper's embedding dimension k = 2n^2 (the Square(2) rule),
    // described declaratively and applied via Algorithm 2.
    let device = Device::h100();
    let sketch = SketchSpec::countsketch(d, EmbeddingDim::Square(2), 7)
        .build_for(&device, n)
        .expect("valid spec");
    let y = sketch
        .apply_matrix(&device, &a)
        .expect("fits on the device");
    let count_cost = device.tracker().snapshot();
    println!(
        "CountSketch (Alg 2): {} x {} -> {} x {}   modelled H100 time {:.3} ms",
        d,
        n,
        y.nrows(),
        y.ncols(),
        device.model_time(&count_cost) * 1e3
    );

    // The Gram matrix A^T A — the dominant cost of the normal equations.
    let device = Device::h100();
    let gram = gram_gemm(&device, &a).expect("shapes are compatible");
    let gram_cost = device.tracker().snapshot();
    println!(
        "Gram matrix (GeMM) : {} x {} -> {} x {}   modelled H100 time {:.3} ms",
        d,
        n,
        gram.nrows(),
        gram.ncols(),
        device.model_time(&gram_cost) * 1e3
    );

    // The multisketch reduces all the way to 2n rows for barely more than the
    // CountSketch; as a spec it is simply the Count→Gauss pipeline.
    let device = Device::h100();
    let multi = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 9)
        .build_for(&device, n)
        .expect("fits on the device");
    let z = multi.apply_matrix(&device, &a).expect("fits on the device");
    println!(
        "MultiSketch        : {} x {} -> {} x {}   modelled H100 time {:.3} ms",
        d,
        n,
        z.nrows(),
        z.ncols(),
        device.model_time(&device.tracker().snapshot()) * 1e3
    );

    println!("\nThe CountSketch and multisketch are the memory-bound single-pass operations");
    println!("the paper builds its sketch-and-solve least squares solver on.");
}
