//! Property tests for the operand-generic, buffer-reusing apply path.
//!
//! For all four operators (CountSketch, Gaussian, SRHT, MultiSketch):
//! `apply_into` into a *reused, dirty* buffer must be bit-for-bit identical to the
//! allocating `apply_matrix` / `apply_operand` wrappers, on both dense and CSR
//! operands — and the CountSketch/Gaussian hot paths must perform zero device
//! allocations.

use proptest::prelude::*;
use sketch_core::{EmbeddingDim, Operand, Pipeline, SketchOperator, SketchSpec};
use sketch_gpu_sim::Device;
use sketch_la::{Layout, Matrix};
use sketch_sparse::{CooMatrix, CsrMatrix};

fn device() -> Device {
    Device::unlimited()
}

/// A sparse CSR copy of a dense matrix with some entries dropped (so the CSR
/// structure is non-trivial).
fn sparsified(a: &Matrix) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nrows() * a.ncols());
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            if (i + j) % 3 != 0 {
                coo.push(i, j, a.get(i, j));
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Dense twin of a CSR matrix.
fn densified(s: &CsrMatrix) -> Matrix {
    let rows = s.to_dense();
    Matrix::from_fn(s.nrows(), s.ncols(), Layout::RowMajor, |i, j| rows[i][j])
}

/// The four operators the paper compares, built through specs for a `d`-row operand
/// with `n` columns.
fn operators(device: &Device, d: usize, n: usize, seed: u64) -> Vec<Box<dyn SketchOperator>> {
    vec![
        SketchSpec::countsketch(d, EmbeddingDim::Square(2), seed)
            .build_for(device, n)
            .unwrap(),
        SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), seed + 1)
            .build_for(device, n)
            .unwrap(),
        SketchSpec::srht(d, EmbeddingDim::Ratio(2), seed + 2)
            .build_for(device, n)
            .unwrap(),
        Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), seed + 3)
            .build_for(device, n)
            .unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// apply_into into a reused buffer == allocating apply_matrix, bitwise, for every
    /// operator on a dense operand.
    #[test]
    fn apply_into_matches_apply_matrix_on_dense_operands(
        d in 16usize..128,
        n in 2usize..6,
        seed in 0u64..1000,
    ) {
        let dev = device();
        let a = Matrix::random_gaussian(d, n, Layout::RowMajor, seed, 0);
        for op in operators(&dev, d, n, seed) {
            let allocated = op.apply_matrix(&dev, &a).unwrap();
            // Dirty buffer in the operator's natural layout.
            let mut reused =
                Matrix::from_fn(op.output_dim(), n, op.output_layout(), |_, _| f64::NAN);
            op.apply_into(&dev, Operand::Dense(&a), &mut reused.view_mut()).unwrap();
            prop_assert_eq!(
                reused.as_slice(), allocated.as_slice(),
                "{} differs between apply_into and apply_matrix", op.name()
            );
        }
    }

    /// apply_into into a reused buffer == allocating apply_operand, bitwise, for every
    /// operator on a CSR operand.
    #[test]
    fn apply_into_matches_apply_operand_on_csr_operands(
        d in 16usize..96,
        n in 2usize..6,
        seed in 0u64..1000,
    ) {
        let dev = device();
        let dense = Matrix::random_gaussian(d, n, Layout::RowMajor, seed, 1);
        let csr = sparsified(&dense);
        for op in operators(&dev, d, n, seed) {
            let allocated = op.apply_operand(&dev, Operand::Csr(&csr)).unwrap();
            let mut reused =
                Matrix::from_fn(op.output_dim(), n, op.output_layout(), |_, _| f64::NAN);
            op.apply_into(&dev, Operand::Csr(&csr), &mut reused.view_mut()).unwrap();
            prop_assert_eq!(
                reused.as_slice(), allocated.as_slice(),
                "{} differs between apply_into and apply_operand on CSR", op.name()
            );
        }
    }

    /// The CSR path computes the same values as the dense path (up to roundoff from
    /// the different accumulation orders).
    #[test]
    fn csr_and_dense_operands_agree_numerically(
        d in 16usize..96,
        n in 2usize..5,
        seed in 0u64..1000,
    ) {
        let dev = device();
        let base = Matrix::random_gaussian(d, n, Layout::RowMajor, seed, 2);
        let csr = sparsified(&base);
        let dense = densified(&csr);
        for op in operators(&dev, d, n, seed) {
            let y_dense = op.apply_matrix(&dev, &dense).unwrap();
            let y_csr = op.apply_operand(&dev, Operand::Csr(&csr)).unwrap();
            prop_assert!(
                y_dense.max_abs_diff(&y_csr).unwrap() < 1e-9,
                "{} CSR/dense drift", op.name()
            );
        }
    }
}

/// The acceptance-criterion certification: zero intermediate device allocations on
/// the CountSketch and Gaussian apply_into hot paths.
#[test]
fn apply_into_is_allocation_free_on_the_hot_paths() {
    let dev = device();
    let d = 1 << 10;
    let n = 8;
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 3, 0);
    let csr = sparsified(&a);

    let count = SketchSpec::countsketch(d, EmbeddingDim::Square(2), 1)
        .build_for(&dev, n)
        .unwrap();
    let gauss = SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), 2)
        .build_for(&dev, n)
        .unwrap();

    for op in [&count, &gauss] {
        let mut out = Matrix::zeros_with_layout(op.output_dim(), n, op.output_layout());
        for operand in [Operand::Dense(&a), Operand::Csr(&csr)] {
            let before = dev.memory().allocations();
            op.apply_into(&dev, operand, &mut out.view_mut()).unwrap();
            assert_eq!(
                dev.memory().allocations(),
                before,
                "{} apply_into allocated device memory",
                op.name()
            );
        }
        // The allocating wrapper, by contrast, reserves the output.
        let before = dev.memory().allocations();
        let _ = op.apply_matrix(&dev, &a).unwrap();
        assert!(dev.memory().allocations() > before);
    }
}
