//! Property tests for the `Operand` slicing contract: slices taken along a
//! sketch kind's `ShardAxis` recompose **bit-for-bit** to the unsliced
//! `apply_into`, for dense and CSR operands, under uneven (prime-size) splits.
//!
//! This is the substrate the executor's sharding stands on:
//!
//! * column-sharded kinds (Gaussian, SRHT) applied to `slice_cols` panels must
//!   produce bitwise slices of the full result (`slice ∘ apply_into ==
//!   apply_into`), because their per-column kernels never see other columns;
//! * row-sharded kinds (CountSketch, hash CountSketch) must reproduce the exact
//!   single-device accumulation chain when their `slice_rows` views are folded
//!   into one shared accumulator in shard order — the ordered ring fold.

use proptest::prelude::*;
use sketch_core::{CountSketch, EmbeddingDim, Operand, SketchKind, SketchOperator, SketchSpec};
use sketch_gpu_sim::Device;
use sketch_la::{Layout, Matrix};
use sketch_sparse::{CooMatrix, CsrMatrix};

fn device() -> Device {
    Device::unlimited()
}

/// Sparse copy of a dense matrix with a deterministic ~60% fill pattern.
fn csr_of(a: &Matrix) -> CsrMatrix {
    let mut coo = CooMatrix::new(a.nrows(), a.ncols());
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            if (i * 31 + j * 17) % 5 != 0 {
                coo.push(i, j, a.get(i, j));
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.nrows() == b.nrows()
        && a.ncols() == b.ncols()
        && (0..a.nrows())
            .all(|i| (0..a.ncols()).all(|j| a.get(i, j).to_bits() == b.get(i, j).to_bits()))
}

/// Cut `extent` into `pieces` contiguous ranges, first `extent % pieces` one
/// element longer (the executor's balanced split).
fn balanced_ranges(extent: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    let pieces = pieces.clamp(1, extent);
    let base = extent / pieces;
    let extra = extent % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Column recomposition: apply the *full* operator to each column slice and
/// stitch the panels; must equal the unsliced apply bit-for-bit.
fn check_col_recomposition(spec: &SketchSpec, operand: Operand<'_>, pieces: usize) -> bool {
    let dev = device();
    let op = spec.build(&dev).expect("spec builds");
    let n = operand.ncols();
    let k = op.output_dim();

    let mut full = Matrix::zeros_with_layout(k, n, op.output_layout());
    op.apply_into(&dev, operand, &mut full.view_mut())
        .expect("full apply");

    let mut stitched = Matrix::zeros_with_layout(k, n, op.output_layout());
    for range in balanced_ranges(n, pieces) {
        let slice = operand.slice_cols(&dev, range.clone());
        let mut panel = Matrix::zeros_with_layout(k, range.len(), op.output_layout());
        op.apply_into(&dev, slice.as_operand(), &mut panel.view_mut())
            .expect("panel apply");
        for (j, global) in range.enumerate() {
            for i in 0..k {
                stitched.set(i, global, panel.get(i, j));
            }
        }
    }
    bits_equal(&full, &stitched)
}

/// Row recomposition: fold each `slice_rows` view into one shared accumulator
/// in shard order — the executor's ordered ring fold — and compare against the
/// unsliced Algorithm-2 apply.
fn check_row_recomposition(spec: &SketchSpec, operand: Operand<'_>, pieces: usize) -> bool {
    let dev = device();
    let sketch: CountSketch = match spec.kind {
        SketchKind::CountSketch => spec.build_countsketch(&dev).expect("builds"),
        SketchKind::HashCountSketch => spec
            .build_hash_countsketch(&dev)
            .expect("builds")
            .to_explicit(),
        _ => unreachable!("row recomposition only covers the CountSketch families"),
    };
    let n = operand.ncols();
    let k = sketch.output_dim();

    let mut full = Matrix::zeros_with_layout(k, n, Layout::RowMajor);
    sketch
        .apply_into(&dev, operand, &mut full.view_mut())
        .expect("full apply");

    let rows = sketch.rows();
    let signs = sketch.signs();
    let mut folded = Matrix::zeros_with_layout(k, n, Layout::RowMajor);
    for range in balanced_ranges(operand.nrows(), pieces) {
        let slice = operand.slice_rows(range.clone());
        match slice.as_operand() {
            Operand::Dense(block) => {
                for (local, global) in range.enumerate() {
                    let sign = if signs[global] { 1.0 } else { -1.0 };
                    for c in 0..n {
                        folded.add_to(rows[global], c, sign * block.get(local, c));
                    }
                }
            }
            Operand::CsrRows(view) => {
                for (local, global) in range.enumerate() {
                    let sign = if signs[global] { 1.0 } else { -1.0 };
                    for (c, v) in view.row(local) {
                        folded.add_to(rows[global], c, sign * v);
                    }
                }
            }
            Operand::Csr(s) => {
                for (local, global) in range.enumerate() {
                    let sign = if signs[global] { 1.0 } else { -1.0 };
                    for (c, v) in s.row(local) {
                        folded.add_to(rows[global], c, sign * v);
                    }
                }
            }
        }
    }
    bits_equal(&full, &folded)
}

/// The four sketch kinds at a given input dimension, paired with their shard
/// axis handler.
fn specs(d: usize, seed: u64) -> Vec<SketchSpec> {
    vec![
        SketchSpec::countsketch(d, EmbeddingDim::Exact(13), seed),
        SketchSpec::hash_countsketch(d, EmbeddingDim::Exact(13), seed + 1),
        SketchSpec::gaussian(d, EmbeddingDim::Exact(11), seed + 2),
        SketchSpec::srht(d, EmbeddingDim::Exact(11), seed + 3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// slice ∘ apply_into == apply_into along each kind's ShardAxis, for dense
    /// and CSR operands, with uneven splits (prime piece counts included).
    #[test]
    fn prop_slices_recompose_bit_for_bit(
        d in 31usize..160,
        n in 5usize..12,
        pieces in 2usize..8,
        seed in 0u64..200,
    ) {
        let dense = Matrix::random_gaussian(d, n, Layout::RowMajor, seed, 0);
        let sparse = csr_of(&dense);
        for spec in specs(d, seed) {
            for operand in [Operand::Dense(&dense), Operand::Csr(&sparse)] {
                let ok = match spec.shard_axis() {
                    sketch_core::ShardAxis::Rows =>
                        check_row_recomposition(&spec, operand, pieces),
                    sketch_core::ShardAxis::Cols =>
                        check_col_recomposition(&spec, operand, pieces),
                };
                prop_assert!(
                    ok,
                    "{} drifted under {pieces}-way slicing of a {} operand",
                    spec.kind.as_str(),
                    operand.describe()
                );
            }
        }
    }

    /// Row slices of a CSR operand are zero-copy views whose rows match the
    /// parent exactly, and column slices tile the parent's entries.
    #[test]
    fn prop_csr_slices_view_the_parent_exactly(
        d in 17usize..97,
        n in 4usize..10,
        pieces in 2usize..6,
        seed in 0u64..100,
    ) {
        let dense = Matrix::random_gaussian(d, n, Layout::RowMajor, seed, 1);
        let sparse = csr_of(&dense);
        let operand = Operand::Csr(&sparse);
        let dev = device();

        let mut nnz_sum = 0usize;
        for range in balanced_ranges(d, pieces) {
            let slice = operand.slice_rows(range.clone());
            prop_assert!(slice.is_borrowed(), "CSR row slices must not copy");
            if let Operand::CsrRows(view) = slice.as_operand() {
                nnz_sum += view.nnz();
                for (local, global) in range.enumerate() {
                    let got: Vec<(usize, f64)> = view.row(local).collect();
                    let want: Vec<(usize, f64)> = sparse.row(global).collect();
                    prop_assert_eq!(got, want);
                }
            } else {
                prop_assert!(false, "expected a CsrRows view");
            }
        }
        prop_assert_eq!(nnz_sum, sparse.nnz());

        let mut col_nnz = 0usize;
        for range in balanced_ranges(n, pieces) {
            let slice = operand.slice_cols(&dev, range.clone());
            if let Operand::Csr(panel) = slice.as_operand() {
                col_nnz += panel.nnz();
                for i in 0..d {
                    let want: Vec<(usize, f64)> = sparse
                        .row(i)
                        .filter(|(j, _)| range.contains(j))
                        .map(|(j, v)| (j - range.start, v))
                        .collect();
                    let got: Vec<(usize, f64)> = panel.row(i).collect();
                    prop_assert_eq!(got, want);
                }
            } else {
                prop_assert!(false, "expected a materialised CSR panel");
            }
        }
        prop_assert_eq!(col_nnz, sparse.nnz());
    }
}
