//! The [`Operand`] abstraction: one borrowed view over dense and sparse inputs.
//!
//! Every hot path in the workspace multiplies *something* by a tall-and-skinny
//! operand that is either a dense [`Matrix`] or a [`CsrMatrix`].  `Operand` is the
//! shared, copyable view both sides use:
//! [`SketchOperator::apply_into`](crate::SketchOperator::apply_into) consumes it
//! on the sketching side, and the low-rank pipeline's `MatVecLike` resolves to it on
//! the workload side, so the dense/CSR split is handled exactly once.

use crate::error::Error;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{blas3, Matrix, Op};
use sketch_sparse::{spmm, CsrMatrix, CsrRowsView};
use std::ops::Range;

/// A borrowed sketching/multiplication operand: dense, CSR, or a zero-copy
/// block-row window of a CSR matrix.
#[derive(Debug, Clone, Copy)]
pub enum Operand<'a> {
    /// A dense matrix (either layout).
    Dense(&'a Matrix),
    /// A sparse matrix in CSR form.
    Csr(&'a CsrMatrix),
    /// A contiguous row range of a CSR matrix, borrowed without copying
    /// (the [`ShardAxis::Rows`](crate::ShardAxis::Rows) slice produced by
    /// [`Operand::slice_rows`]).
    CsrRows(CsrRowsView<'a>),
}

impl<'a> Operand<'a> {
    /// Number of rows (the leading dimension a sketch checks against).
    pub fn nrows(&self) -> usize {
        match self {
            Operand::Dense(a) => a.nrows(),
            Operand::Csr(a) => a.nrows(),
            Operand::CsrRows(v) => v.nrows(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        match self {
            Operand::Dense(a) => a.ncols(),
            Operand::Csr(a) => a.ncols(),
            Operand::CsrRows(v) => v.ncols(),
        }
    }

    /// Short human-readable shape description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Operand::Dense(a) => format!("dense {}x{}", a.nrows(), a.ncols()),
            Operand::Csr(a) => format!("CSR {}x{} nnz={}", a.nrows(), a.ncols(), a.nnz()),
            Operand::CsrRows(v) => {
                format!("CSR rows view {}x{} nnz={}", v.nrows(), v.ncols(), v.nnz())
            }
        }
    }

    /// Compute `A · B` with `B` dense `ncols x p`; the result is `nrows x p`.
    ///
    /// Dense operands route through the GEMM kernel, CSR operands through SpMM.
    /// A [`CsrRows`](Operand::CsrRows) view is materialised before the SpMM
    /// (a real SpMM reads the window through offset pointers, so the copy is
    /// not charged); the sketching hot paths iterate the view directly instead
    /// of coming through here.
    pub fn mul_right(&self, device: &Device, b: &Matrix) -> Result<Matrix, Error> {
        if b.nrows() != self.ncols() {
            return Err(Error::dimension_mismatch(
                match self {
                    Operand::Dense(_) => "gemm",
                    Operand::Csr(_) | Operand::CsrRows(_) => "spmm",
                },
                self.ncols(),
                b.nrows(),
                format!(
                    "B dense {}x{} against {}",
                    b.nrows(),
                    b.ncols(),
                    self.describe()
                ),
            ));
        }
        match self {
            Operand::Dense(a) => Ok(blas3::gemm(device, 1.0, a, b, 0.0, None)?),
            Operand::Csr(a) => Ok(spmm(device, a, b)),
            Operand::CsrRows(v) => Ok(spmm(device, &v.to_csr(), b)),
        }
    }

    /// Compute `Aᵀ · B` with `B` dense `nrows x p`; the result is `ncols x p`.
    ///
    /// The CSR path materialises the transpose (counting sort) on every call; callers
    /// that repeat the product should cache the transpose themselves (as
    /// `sketch-lowrank`'s `SparseOperand` does).
    pub fn mul_transpose_right(&self, device: &Device, b: &Matrix) -> Result<Matrix, Error> {
        if b.nrows() != self.nrows() {
            return Err(Error::dimension_mismatch(
                match self {
                    Operand::Dense(_) => "gemm_t",
                    Operand::Csr(_) | Operand::CsrRows(_) => "spmm_t",
                },
                self.nrows(),
                b.nrows(),
                format!(
                    "B dense {}x{} against {}ᵀ",
                    b.nrows(),
                    b.ncols(),
                    self.describe()
                ),
            ));
        }
        match self {
            Operand::Dense(a) => Ok(blas3::gemm_op(
                device,
                1.0,
                Op::Trans,
                a,
                Op::NoTrans,
                b,
                0.0,
                None,
            )?),
            Operand::Csr(a) => Ok(spmm(device, &a.transpose(), b)),
            Operand::CsrRows(v) => Ok(spmm(device, &v.to_csr().transpose(), b)),
        }
    }

    /// Bytes the operand occupies on the device.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Operand::Dense(a) => a.size_bytes(),
            Operand::Csr(a) => {
                KernelCost::f64_bytes(a.nnz() as u64)
                    + (std::mem::size_of::<usize>() as u64) * (a.nnz() + a.nrows() + 1) as u64
            }
            Operand::CsrRows(v) => v.size_bytes(),
        }
    }

    /// Slice the contiguous row range `rows` of the operand, as a view wherever
    /// the storage allows it.
    ///
    /// This is the [`ShardAxis::Rows`](crate::ShardAxis::Rows) half of the sharding
    /// contract: CSR operands produce a genuine zero-copy [`CsrRowsView`] over the
    /// parent `row_ptr`, and a full-range slice of any operand is the operand
    /// itself.  Dense sub-ranges materialise a block (layout preserved); on real
    /// hardware that block is a pointer-offset view, so no [`KernelCost`] is
    /// charged — matching the executor's block-row convention.
    ///
    /// # Panics
    /// Panics if the range does not fit inside `0..self.nrows()`.
    pub fn slice_rows(&self, rows: Range<usize>) -> OperandSlice<'a> {
        assert!(
            rows.start <= rows.end && rows.end <= self.nrows(),
            "row range {}..{} out of bounds for {} rows",
            rows.start,
            rows.end,
            self.nrows()
        );
        if rows == (0..self.nrows()) {
            return OperandSlice::Borrowed(*self);
        }
        match self {
            Operand::Dense(m) => OperandSlice::Dense(Matrix::from_fn(
                rows.len(),
                m.ncols(),
                m.layout(),
                |i, j| m.get(rows.start + i, j),
            )),
            Operand::Csr(s) => OperandSlice::Borrowed(Operand::CsrRows(s.slice_rows(rows))),
            // Re-slicing a view just narrows the window — still zero-copy.
            Operand::CsrRows(v) => OperandSlice::Borrowed(Operand::CsrRows(v.slice_rows(rows))),
        }
    }

    /// Slice the contiguous column range `cols` of the operand.
    ///
    /// This is the [`ShardAxis::Cols`](crate::ShardAxis::Cols) half of the sharding
    /// contract (the Gaussian/SRHT panel axis).  A full-range slice is free; dense
    /// sub-panels materialise a layout-preserving block (view-equivalent on real
    /// hardware, uncharged, like [`slice_rows`](Self::slice_rows)); CSR sub-panels
    /// must build per-panel CSC-style buffers, so the `O(nnz)` filtering pass **is**
    /// charged to `device` as a [`KernelCost`].
    ///
    /// # Panics
    /// Panics if the range does not fit inside `0..self.ncols()`.
    pub fn slice_cols(&self, device: &Device, cols: Range<usize>) -> OperandSlice<'a> {
        assert!(
            cols.start <= cols.end && cols.end <= self.ncols(),
            "column range {}..{} out of bounds for {} columns",
            cols.start,
            cols.end,
            self.ncols()
        );
        if cols == (0..self.ncols()) {
            return OperandSlice::Borrowed(*self);
        }
        match self {
            Operand::Dense(m) => OperandSlice::Dense(Matrix::from_fn(
                m.nrows(),
                cols.len(),
                m.layout(),
                |i, j| m.get(i, cols.start + j),
            )),
            Operand::Csr(s) => {
                let panel = s.slice_cols(cols);
                device.record(csr_col_slice_cost(s.nnz(), s.nrows(), panel.nnz()));
                OperandSlice::Csr(panel)
            }
            Operand::CsrRows(v) => {
                let panel = v.slice_cols(cols);
                device.record(csr_col_slice_cost(v.nnz(), v.nrows(), panel.nnz()));
                OperandSlice::Csr(panel)
            }
        }
    }
}

/// Modelled cost of carving a CSC-style column panel out of a CSR matrix: stream
/// every stored entry (value + column index) plus the row pointers, write the
/// panel's entries and its fresh row pointer array.
fn csr_col_slice_cost(parent_nnz: usize, nrows: usize, panel_nnz: usize) -> KernelCost {
    let idx = std::mem::size_of::<usize>() as u64;
    KernelCost::new(
        KernelCost::f64_bytes(parent_nnz as u64) + idx * (parent_nnz + nrows + 1) as u64,
        KernelCost::f64_bytes(panel_nnz as u64) + idx * (panel_nnz + nrows + 1) as u64,
        parent_nnz as u64,
        1,
    )
}

/// The result of slicing an [`Operand`]: either a borrowed view (free) or a
/// materialised panel, itself viewable as an [`Operand`] via
/// [`as_operand`](Self::as_operand).
#[derive(Debug)]
pub enum OperandSlice<'a> {
    /// A zero-copy view: the full-range slice of any operand, or a
    /// [`CsrRowsView`] row window.
    Borrowed(Operand<'a>),
    /// A materialised dense block or panel.
    Dense(Matrix),
    /// A materialised CSR panel (rebased column indices).
    Csr(CsrMatrix),
}

impl OperandSlice<'_> {
    /// View the slice as an [`Operand`] for `apply_into` / the product helpers.
    pub fn as_operand(&self) -> Operand<'_> {
        match self {
            OperandSlice::Borrowed(op) => *op,
            OperandSlice::Dense(m) => Operand::Dense(m),
            OperandSlice::Csr(s) => Operand::Csr(s),
        }
    }

    /// Whether the slice borrowed the parent storage (no copy was made).
    pub fn is_borrowed(&self) -> bool {
        matches!(self, OperandSlice::Borrowed(_))
    }
}

impl<'a> From<&'a Matrix> for Operand<'a> {
    fn from(a: &'a Matrix) -> Self {
        Operand::Dense(a)
    }
}

impl<'a> From<&'a CsrMatrix> for Operand<'a> {
    fn from(a: &'a CsrMatrix) -> Self {
        Operand::Csr(a)
    }
}

impl<'a> From<CsrRowsView<'a>> for Operand<'a> {
    fn from(v: CsrRowsView<'a>) -> Self {
        Operand::CsrRows(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_la::Layout;
    use sketch_sparse::CooMatrix;

    fn device() -> Device {
        Device::unlimited()
    }

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 2, -1.0);
        coo.push(3, 1, 0.5);
        coo.push(3, 2, 4.0);
        CsrMatrix::from_coo(&coo)
    }

    fn dense_of(csr: &CsrMatrix) -> Matrix {
        let rows = csr.to_dense();
        Matrix::from_fn(csr.nrows(), csr.ncols(), Layout::ColMajor, |i, j| {
            rows[i][j]
        })
    }

    #[test]
    fn shapes_and_descriptions() {
        let m = Matrix::zeros(7, 2);
        let d = Operand::from(&m);
        assert_eq!(d.nrows(), 7);
        assert_eq!(d.ncols(), 2);
        assert!(d.describe().contains("dense 7x2"));

        let s = sample_csr();
        let c = Operand::from(&s);
        assert_eq!((c.nrows(), c.ncols()), (4, 3));
        assert!(c.describe().contains("CSR 4x3"));
        assert!(c.describe().contains("nnz=4"));
        assert!(c.size_bytes() > 0);
        assert_eq!(d.size_bytes(), m.size_bytes());
    }

    #[test]
    fn sparse_products_match_dense_products() {
        let d = device();
        let s = sample_csr();
        let a = dense_of(&s);
        let b = Matrix::random_gaussian(3, 2, Layout::ColMajor, 1, 0);
        let bt = Matrix::random_gaussian(4, 2, Layout::ColMajor, 1, 1);

        let sparse = Operand::Csr(&s).mul_right(&d, &b).unwrap();
        let dense = Operand::Dense(&a).mul_right(&d, &b).unwrap();
        assert!(sparse.max_abs_diff(&dense).unwrap() < 1e-14);

        let sparse_t = Operand::Csr(&s).mul_transpose_right(&d, &bt).unwrap();
        let dense_t = Operand::Dense(&a).mul_transpose_right(&d, &bt).unwrap();
        assert!(sparse_t.max_abs_diff(&dense_t).unwrap() < 1e-14);
    }

    #[test]
    fn dimension_mismatches_are_errors_not_panics() {
        let d = device();
        let s = sample_csr();
        let a = dense_of(&s);
        let wrong = Matrix::zeros(5, 2);
        for op in [Operand::Csr(&s), Operand::Dense(&a)] {
            let e = op.mul_right(&d, &wrong).unwrap_err();
            assert!(e.is_dimension_mismatch(), "{e}");
            assert!(op.mul_transpose_right(&d, &wrong).is_err());
        }
    }

    #[test]
    fn full_range_slices_are_borrowed_views() {
        let d = device();
        let s = sample_csr();
        let a = dense_of(&s);
        for op in [Operand::Dense(&a), Operand::Csr(&s)] {
            assert!(op.slice_rows(0..op.nrows()).is_borrowed());
            assert!(op.slice_cols(&d, 0..op.ncols()).is_borrowed());
        }
    }

    #[test]
    fn csr_row_slices_are_zero_copy_views() {
        let s = sample_csr();
        let op = Operand::Csr(&s);
        let slice = op.slice_rows(1..4);
        assert!(slice.is_borrowed(), "CSR row slicing must not copy");
        let view = slice.as_operand();
        assert_eq!((view.nrows(), view.ncols()), (3, 3));
        assert!(view.describe().contains("CSR rows view"));
        assert!(view.size_bytes() > 0);
        // The view's rows match the parent's.
        if let Operand::CsrRows(v) = view {
            for i in 0..3 {
                let got: Vec<(usize, f64)> = v.row(i).collect();
                let want: Vec<(usize, f64)> = s.row(1 + i).collect();
                assert_eq!(got, want);
            }
        } else {
            panic!("expected a CsrRows view");
        }
    }

    #[test]
    fn sliced_products_match_the_parent_range() {
        let d = device();
        let s = sample_csr();
        let a = dense_of(&s);
        let b = Matrix::random_gaussian(3, 2, Layout::ColMajor, 4, 0);
        for op in [Operand::Dense(&a), Operand::Csr(&s)] {
            let slice = op.slice_rows(1..3);
            let got = slice.as_operand().mul_right(&d, &b).unwrap();
            let full = op.mul_right(&d, &b).unwrap();
            for i in 0..2 {
                for j in 0..2 {
                    assert_eq!(got.get(i, j), full.get(1 + i, j));
                }
            }
        }
    }

    #[test]
    fn csr_col_slices_materialise_and_charge_the_copy() {
        let d = device();
        let s = sample_csr();
        let before = d.tracker().snapshot();
        let panel = Operand::Csr(&s).slice_cols(&d, 1..3);
        let cost = d.tracker().snapshot() - before;
        assert!(cost.bytes_read > 0, "CSR column panel must charge its copy");
        assert!(!panel.is_borrowed());
        let dense = dense_of(&s);
        let dense_panel = Operand::Dense(&dense).slice_cols(&d, 1..3);
        let view = panel.as_operand();
        assert_eq!((view.nrows(), view.ncols()), (4, 2));
        for i in 0..4 {
            for j in 0..2 {
                let dp = match dense_panel.as_operand() {
                    Operand::Dense(m) => m.get(i, j),
                    _ => unreachable!(),
                };
                let sp = match view {
                    Operand::Csr(c) => c.to_dense()[i][j],
                    _ => unreachable!(),
                };
                assert_eq!(sp, dp);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rows_out_of_bounds_panics() {
        let s = sample_csr();
        Operand::Csr(&s).slice_rows(2..5);
    }
}
