//! The [`Operand`] abstraction: one borrowed view over dense and sparse inputs.
//!
//! Every hot path in the workspace multiplies *something* by a tall-and-skinny
//! operand that is either a dense [`Matrix`] or a [`CsrMatrix`].  `Operand` is the
//! shared, copyable view both sides use:
//! [`SketchOperator::apply_into`](crate::SketchOperator::apply_into) consumes it
//! on the sketching side, and the low-rank pipeline's `MatVecLike` resolves to it on
//! the workload side, so the dense/CSR split is handled exactly once.

use crate::error::Error;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{blas3, Matrix, Op};
use sketch_sparse::{spmm, CsrMatrix};

/// A borrowed sketching/multiplication operand: dense or CSR.
#[derive(Debug, Clone, Copy)]
pub enum Operand<'a> {
    /// A dense matrix (either layout).
    Dense(&'a Matrix),
    /// A sparse matrix in CSR form.
    Csr(&'a CsrMatrix),
}

impl<'a> Operand<'a> {
    /// Number of rows (the leading dimension a sketch checks against).
    pub fn nrows(&self) -> usize {
        match self {
            Operand::Dense(a) => a.nrows(),
            Operand::Csr(a) => a.nrows(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        match self {
            Operand::Dense(a) => a.ncols(),
            Operand::Csr(a) => a.ncols(),
        }
    }

    /// Short human-readable shape description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Operand::Dense(a) => format!("dense {}x{}", a.nrows(), a.ncols()),
            Operand::Csr(a) => format!("CSR {}x{} nnz={}", a.nrows(), a.ncols(), a.nnz()),
        }
    }

    /// Compute `A · B` with `B` dense `ncols x p`; the result is `nrows x p`.
    ///
    /// Dense operands route through the GEMM kernel, CSR operands through SpMM.
    pub fn mul_right(&self, device: &Device, b: &Matrix) -> Result<Matrix, Error> {
        if b.nrows() != self.ncols() {
            return Err(Error::dimension_mismatch(
                match self {
                    Operand::Dense(_) => "gemm",
                    Operand::Csr(_) => "spmm",
                },
                self.ncols(),
                b.nrows(),
                format!(
                    "B dense {}x{} against {}",
                    b.nrows(),
                    b.ncols(),
                    self.describe()
                ),
            ));
        }
        match self {
            Operand::Dense(a) => Ok(blas3::gemm(device, 1.0, a, b, 0.0, None)?),
            Operand::Csr(a) => Ok(spmm(device, a, b)),
        }
    }

    /// Compute `Aᵀ · B` with `B` dense `nrows x p`; the result is `ncols x p`.
    ///
    /// The CSR path materialises the transpose (counting sort) on every call; callers
    /// that repeat the product should cache the transpose themselves (as
    /// `sketch-lowrank`'s `SparseOperand` does).
    pub fn mul_transpose_right(&self, device: &Device, b: &Matrix) -> Result<Matrix, Error> {
        if b.nrows() != self.nrows() {
            return Err(Error::dimension_mismatch(
                match self {
                    Operand::Dense(_) => "gemm_t",
                    Operand::Csr(_) => "spmm_t",
                },
                self.nrows(),
                b.nrows(),
                format!(
                    "B dense {}x{} against {}ᵀ",
                    b.nrows(),
                    b.ncols(),
                    self.describe()
                ),
            ));
        }
        match self {
            Operand::Dense(a) => Ok(blas3::gemm_op(
                device,
                1.0,
                Op::Trans,
                a,
                Op::NoTrans,
                b,
                0.0,
                None,
            )?),
            Operand::Csr(a) => Ok(spmm(device, &a.transpose(), b)),
        }
    }

    /// Bytes the operand occupies on the device.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Operand::Dense(a) => a.size_bytes(),
            Operand::Csr(a) => {
                KernelCost::f64_bytes(a.nnz() as u64)
                    + (std::mem::size_of::<usize>() as u64) * (a.nnz() + a.nrows() + 1) as u64
            }
        }
    }
}

impl<'a> From<&'a Matrix> for Operand<'a> {
    fn from(a: &'a Matrix) -> Self {
        Operand::Dense(a)
    }
}

impl<'a> From<&'a CsrMatrix> for Operand<'a> {
    fn from(a: &'a CsrMatrix) -> Self {
        Operand::Csr(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_la::Layout;
    use sketch_sparse::CooMatrix;

    fn device() -> Device {
        Device::unlimited()
    }

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 2, -1.0);
        coo.push(3, 1, 0.5);
        coo.push(3, 2, 4.0);
        CsrMatrix::from_coo(&coo)
    }

    fn dense_of(csr: &CsrMatrix) -> Matrix {
        let rows = csr.to_dense();
        Matrix::from_fn(csr.nrows(), csr.ncols(), Layout::ColMajor, |i, j| {
            rows[i][j]
        })
    }

    #[test]
    fn shapes_and_descriptions() {
        let m = Matrix::zeros(7, 2);
        let d = Operand::from(&m);
        assert_eq!(d.nrows(), 7);
        assert_eq!(d.ncols(), 2);
        assert!(d.describe().contains("dense 7x2"));

        let s = sample_csr();
        let c = Operand::from(&s);
        assert_eq!((c.nrows(), c.ncols()), (4, 3));
        assert!(c.describe().contains("CSR 4x3"));
        assert!(c.describe().contains("nnz=4"));
        assert!(c.size_bytes() > 0);
        assert_eq!(d.size_bytes(), m.size_bytes());
    }

    #[test]
    fn sparse_products_match_dense_products() {
        let d = device();
        let s = sample_csr();
        let a = dense_of(&s);
        let b = Matrix::random_gaussian(3, 2, Layout::ColMajor, 1, 0);
        let bt = Matrix::random_gaussian(4, 2, Layout::ColMajor, 1, 1);

        let sparse = Operand::Csr(&s).mul_right(&d, &b).unwrap();
        let dense = Operand::Dense(&a).mul_right(&d, &b).unwrap();
        assert!(sparse.max_abs_diff(&dense).unwrap() < 1e-14);

        let sparse_t = Operand::Csr(&s).mul_transpose_right(&d, &bt).unwrap();
        let dense_t = Operand::Dense(&a).mul_transpose_right(&d, &bt).unwrap();
        assert!(sparse_t.max_abs_diff(&dense_t).unwrap() < 1e-14);
    }

    #[test]
    fn dimension_mismatches_are_errors_not_panics() {
        let d = device();
        let s = sample_csr();
        let a = dense_of(&s);
        let wrong = Matrix::zeros(5, 2);
        for op in [Operand::Csr(&s), Operand::Dense(&a)] {
            let e = op.mul_right(&d, &wrong).unwrap_err();
            assert!(e.is_dimension_mismatch(), "{e}");
            assert!(op.mul_transpose_right(&d, &wrong).is_err());
        }
    }
}
