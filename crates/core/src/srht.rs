//! The Subsampled Randomized Hadamard Transform (Section 5).
//!
//! `S = (1/√k) P H_d D` where `D` flips signs, `H_d` is the (unnormalised) Hadamard
//! transform applied with the radix-4 FWHT of [`crate::fwht`], and `P` samples `k` rows
//! uniformly at random.  Following the paper, every step works in column-major order:
//! the FWHT dominates the cost and coalesces best on columns, and converting the operand
//! to row-major for the cheap sampling/scaling steps costs more than it saves.
//!
//! Inputs whose row count is not a power of two are zero-padded up to the next power of
//! two, which leaves all inner products unchanged.

use crate::error::Error;
use crate::fwht::{fwht_matrix_columns, global_passes, DEFAULT_TILE};
use crate::operand::Operand;
use crate::traits::SketchOperator;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{Layout, Matrix, MatrixViewMut};
use sketch_rng::fill;

/// The SRHT operator.
#[derive(Debug, Clone)]
pub struct Srht {
    /// Logical input dimension (rows of the operand).
    d: usize,
    /// Padded transform length (next power of two ≥ `d`).
    d_pad: usize,
    /// Output dimension.
    k: usize,
    /// Rademacher signs of `D` (length `d`).
    signs: Vec<f64>,
    /// Sampled row indices of `P` (length `k`, drawn from `0..d_pad`).
    sample: Vec<usize>,
    /// Modelled shared-memory tile used by the FWHT traffic model.
    tile: usize,
    generation_cost: KernelCost,
}

impl Srht {
    /// Generate an SRHT with the default shared-memory tile.
    pub fn generate(device: &Device, d: usize, k: usize, seed: u64) -> Result<Self, Error> {
        Self::generate_with_tile(device, d, k, seed, DEFAULT_TILE)
    }

    /// Generate an SRHT with an explicit tile size (exposed for the FWHT ablation).
    pub fn generate_with_tile(
        device: &Device,
        d: usize,
        k: usize,
        seed: u64,
        tile: usize,
    ) -> Result<Self, Error> {
        if k == 0 {
            return Err(Error::invalid_param(
                "SRHT output dimension must be positive",
            ));
        }
        if d == 0 {
            return Err(Error::invalid_param(
                "SRHT input dimension must be positive",
            ));
        }
        let d_pad = d.next_power_of_two();
        let signs = fill::rademacher_vec(seed, 0, d);
        let sample = fill::uniform_index_vec(seed, 1, k, d_pad);
        // Generation: d signs + k sampled indices.
        let generation_cost = KernelCost::new(0, d as u64 + 4 * k as u64, (d + k) as u64, 1);
        device.record(generation_cost);
        Ok(Self {
            d,
            d_pad,
            k,
            signs,
            sample,
            tile,
            generation_cost,
        })
    }

    /// The padded transform length.
    pub fn padded_dim(&self) -> usize {
        self.d_pad
    }

    /// The modelled shared-memory tile (in doubles).
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Build the sign-flipped, zero-padded, column-major work matrix `D A` from a
    /// dense or CSR operand.
    fn build_work_matrix(&self, device: &Device, a: &Operand<'_>) -> Matrix {
        let n = a.ncols();
        let mut work = Matrix::zeros_with_layout(self.d_pad, n, Layout::ColMajor);
        match a {
            Operand::Dense(m) => {
                for j in 0..n {
                    let col = work.col_mut(j).expect("col-major");
                    for i in 0..self.d {
                        col[i] = self.signs[i] * m.get(i, j);
                    }
                }
                // Sign flip + copy: read A and the signs once, write the padded work
                // matrix.
                let dn = (self.d * n) as u64;
                device.record(KernelCost::new(
                    KernelCost::f64_bytes(dn) + KernelCost::f64_bytes(self.d as u64),
                    KernelCost::f64_bytes((self.d_pad * n) as u64),
                    dn,
                    1,
                ));
            }
            Operand::Csr(s) => {
                for i in 0..self.d {
                    for (j, v) in s.row(i) {
                        work.set(i, j, self.signs[i] * v);
                    }
                }
                self.record_work_matrix_cost(device, s.nnz(), n);
            }
            Operand::CsrRows(v) => {
                for i in 0..self.d {
                    for (j, val) in v.row(i) {
                        work.set(i, j, self.signs[i] * val);
                    }
                }
                self.record_work_matrix_cost(device, v.nnz(), n);
            }
        }
        work
    }

    /// Cost of scattering a sparse operand into the padded work matrix.
    fn record_work_matrix_cost(&self, device: &Device, nnz: usize, n: usize) {
        let nnz = nnz as u64;
        let idx_bytes = (std::mem::size_of::<usize>() as u64) * (nnz + self.d as u64 + 1);
        device.record(KernelCost::new(
            KernelCost::f64_bytes(nnz + self.d as u64) + idx_bytes,
            KernelCost::f64_bytes((self.d_pad * n) as u64),
            nnz,
            1,
        ));
    }

    /// Sample and scale the transformed work matrix into the caller's buffer:
    /// `out = (1/√k) P (H D A)`.
    fn sample_rows_into(&self, device: &Device, work: &Matrix, out: &mut MatrixViewMut<'_>) {
        let n = work.ncols();
        let scale = 1.0 / (self.k as f64).sqrt();
        for j in 0..n {
            let src = work.col(j).expect("col-major");
            for (i, &row) in self.sample.iter().enumerate() {
                out.set(i, j, scale * src[row]);
            }
        }
        let kn = (self.k * n) as u64;
        device.record(KernelCost::new(
            KernelCost::f64_bytes(kn) + 4 * self.k as u64,
            KernelCost::f64_bytes(kn),
            kn,
            1,
        ));
    }
}

impl SketchOperator for Srht {
    fn input_dim(&self) -> usize {
        self.d
    }

    fn output_dim(&self) -> usize {
        self.k
    }

    fn name(&self) -> &'static str {
        "SRHT"
    }

    fn output_layout(&self) -> Layout {
        Layout::ColMajor
    }

    /// Sign-flip + FWHT + sample.  The padded FWHT work matrix is inherent to the
    /// transform (it is the `H D A` intermediate the paper also materialises) and is
    /// reserved on the modelled device here; only the *output* is caller-owned.
    fn apply_into(
        &self,
        device: &Device,
        a: Operand<'_>,
        out: &mut MatrixViewMut<'_>,
    ) -> Result<(), Error> {
        self.check_operand(&a)?;
        self.check_output(out, a.ncols())?;
        let _work_res =
            device.try_reserve(KernelCost::f64_bytes((self.d_pad * a.ncols()) as u64))?;
        let mut work = self.build_work_matrix(device, &a);
        fwht_matrix_columns(device, &mut work, self.tile);
        self.sample_rows_into(device, &work, out);
        Ok(())
    }

    fn apply_vector(&self, device: &Device, x: &[f64]) -> Result<Vec<f64>, Error> {
        self.check_input_dim(x.len())?;
        let a = Matrix::from_vec(x.len(), 1, Layout::ColMajor, x.to_vec());
        let y = self.apply_matrix(device, &a)?;
        Ok(y.col_to_vec(0))
    }

    fn generation_cost(&self) -> KernelCost {
        self.generation_cost
    }

    fn algorithmic_cost(&self, ncols: usize) -> KernelCost {
        let d = self.d_pad as u64;
        let n = ncols as u64;
        let bits = if self.d_pad > 1 {
            self.d_pad.trailing_zeros() as u64
        } else {
            0
        };
        // Table 1: dn·log n arithmetic and dn·log n read/writes.  We charge the ideal
        // tiled traffic (the global passes an optimal shared-memory FWHT must make) as
        // the useful volume, which is what Figure 3 normalises against.
        let passes = global_passes(self.d_pad, self.tile);
        KernelCost::new(
            KernelCost::f64_bytes(d * n) * passes,
            KernelCost::f64_bytes(d * n) * passes,
            2 * d * n * bits,
            1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_la::norms::vec_norm2;

    fn device() -> Device {
        Device::unlimited()
    }

    /// Dense reference: build S explicitly by applying the operator to the identity.
    fn dense_srht_apply(s: &Srht, x: &[f64]) -> Vec<f64> {
        let d = x.len();
        let d_pad = s.padded_dim();
        // D x, padded.
        let mut v = vec![0.0; d_pad];
        for i in 0..d {
            v[i] = s.signs[i] * x[i];
        }
        // H v via the O(d²) definition.
        let mut h = vec![0.0; d_pad];
        for (i, slot) in h.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                // Hadamard entry (-1)^{popcount(i & j)}.
                let sign = if ((i & j) as u64).count_ones().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                acc += sign * vj;
            }
            *slot = acc;
        }
        let scale = 1.0 / (s.output_dim() as f64).sqrt();
        s.sample.iter().map(|&r| scale * h[r]).collect()
    }

    #[test]
    fn srht_matches_dense_reference_on_vectors() {
        let d = device();
        let s = Srht::generate(&d, 64, 16, 3).unwrap();
        let x = fill::gaussian_vec(5, 0, 64);
        let got = s.apply_vector(&d, &x).unwrap();
        let want = dense_srht_apply(&s, &x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn srht_pads_non_power_of_two_inputs() {
        let d = device();
        let s = Srht::generate(&d, 100, 20, 4).unwrap();
        assert_eq!(s.padded_dim(), 128);
        let x = fill::gaussian_vec(6, 0, 100);
        let got = s.apply_vector(&d, &x).unwrap();
        let want = dense_srht_apply(&s, &x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn srht_matrix_apply_is_columnwise_vector_apply() {
        let d = device();
        let s = Srht::generate(&d, 32, 8, 7).unwrap();
        let a = Matrix::random_gaussian(32, 4, Layout::ColMajor, 8, 0);
        let y = s.apply_matrix(&d, &a).unwrap();
        for c in 0..4 {
            let col = a.col_to_vec(c);
            let yc = s.apply_vector(&d, &col).unwrap();
            for i in 0..8 {
                assert!((y.get(i, c) - yc[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn srht_roughly_preserves_norms() {
        let d = device();
        let dim = 4096;
        let s = Srht::generate(&d, dim, 256, 11).unwrap();
        let x = fill::gaussian_vec(13, 0, dim);
        let y = s.apply_vector(&d, &x).unwrap();
        let ratio = vec_norm2(&y) / vec_norm2(&x);
        assert!((ratio - 1.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn srht_is_linear() {
        let d = device();
        let s = Srht::generate(&d, 64, 16, 2).unwrap();
        let x = fill::gaussian_vec(1, 0, 64);
        let y = fill::gaussian_vec(1, 1, 64);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a - 3.0 * b).collect();
        let s_combo = s.apply_vector(&d, &combo).unwrap();
        let sx = s.apply_vector(&d, &x).unwrap();
        let sy = s.apply_vector(&d, &y).unwrap();
        for i in 0..16 {
            assert!((s_combo[i] - (2.0 * sx[i] - 3.0 * sy[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_into_reused_buffer_is_bit_identical_to_apply_matrix() {
        let d = device();
        let s = Srht::generate(&d, 48, 12, 5).unwrap();
        let a = Matrix::random_gaussian(48, 3, Layout::ColMajor, 9, 0);
        let y = s.apply_matrix(&d, &a).unwrap();
        let mut out = Matrix::from_fn(12, 3, Layout::ColMajor, |_, _| f64::NAN);
        s.apply_into(&d, crate::Operand::Dense(&a), &mut out.view_mut())
            .unwrap();
        assert_eq!(out.as_slice(), y.as_slice());
    }

    #[test]
    fn csr_operand_matches_dense_operand() {
        use sketch_sparse::{CooMatrix, CsrMatrix};
        let d = device();
        let s = Srht::generate(&d, 40, 8, 3).unwrap();
        let mut coo = CooMatrix::new(40, 4);
        for i in 0..40 {
            coo.push(i, i % 4, ((i + 1) as f64).ln());
        }
        let csr = CsrMatrix::from_coo(&coo);
        let rows = csr.to_dense();
        let dense = Matrix::from_fn(40, 4, Layout::ColMajor, |i, j| rows[i][j]);
        let y_dense = s.apply_matrix(&d, &dense).unwrap();
        let y_sparse = s.apply_operand(&d, crate::Operand::Csr(&csr)).unwrap();
        assert!(y_dense.max_abs_diff(&y_sparse).unwrap() < 1e-10);
    }

    #[test]
    fn apply_into_models_the_work_matrix_memory() {
        use sketch_gpu_sim::DeviceSpec;
        // The padded FWHT work matrix (64 x 4 doubles = 2 KiB) is inherent to the
        // transform, so even the buffer-reusing path must report OOM on a 1 KiB
        // device.
        let mut spec = DeviceSpec::h100();
        spec.memory_bytes = 1024;
        let d = Device::new(spec);
        let s = Srht::generate(&d, 64, 8, 1).unwrap();
        let a = Matrix::zeros_with_layout(64, 4, Layout::ColMajor);
        let mut out = Matrix::zeros(8, 4);
        assert!(matches!(
            s.apply_into(&d, crate::Operand::Dense(&a), &mut out.view_mut()),
            Err(Error::WouldExceedMemory(_))
        ));
    }

    #[test]
    fn srht_rejects_bad_parameters_and_dimensions() {
        let d = device();
        assert!(Srht::generate(&d, 0, 4, 1).is_err());
        assert!(Srht::generate(&d, 16, 0, 1).is_err());
        let s = Srht::generate(&d, 16, 4, 1).unwrap();
        assert!(s.apply_vector(&d, &[0.0; 15]).is_err());
    }

    #[test]
    fn larger_tiles_reduce_modelled_traffic() {
        let dev_small = device();
        let dev_large = device();
        let a = Matrix::random_gaussian(1 << 12, 2, Layout::ColMajor, 3, 0);
        let s_small = Srht::generate_with_tile(&dev_small, 1 << 12, 64, 1, 64).unwrap();
        let s_large = Srht::generate_with_tile(&dev_large, 1 << 12, 64, 1, 1 << 12).unwrap();
        dev_small.tracker().reset();
        dev_large.tracker().reset();
        let _ = s_small.apply_matrix(&dev_small, &a).unwrap();
        let _ = s_large.apply_matrix(&dev_large, &a).unwrap();
        assert!(
            dev_small.tracker().snapshot().total_bytes()
                > dev_large.tracker().snapshot().total_bytes()
        );
        assert_eq!(s_small.tile(), 64);
    }

    #[test]
    fn generation_and_algorithmic_costs_are_populated() {
        let d = device();
        let s = Srht::generate(&d, 1 << 10, 64, 9).unwrap();
        assert!(s.generation_cost().bytes_written > 0);
        let c = s.algorithmic_cost(8);
        assert!(c.flops > 0);
        assert!(c.total_bytes() > 0);
        assert_eq!(s.name(), "SRHT");
    }
}
