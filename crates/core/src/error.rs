//! The one workspace error type.
//!
//! Every layer built on the sketching substrate — the operators themselves, the least
//! squares solvers (`sketch-lsq`), the low-rank pipeline (`sketch-lowrank`) and the
//! distributed drivers (`sketch-dist`) — used to carry its own error enum with its own
//! copy of the dimension-mismatch variant.  They now all re-export this [`Error`]:
//! one `?` works across the whole workspace, and a dimension mismatch always says
//! *which* operator rejected *what* operand.

use sketch_gpu_sim::MemoryError;
use sketch_la::LaError;
use std::fmt;

/// Backwards-compatible name used throughout the sketching layer.
pub type SketchError = Error;

/// The workspace-wide error type.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The operand's dimensions do not match what the operator or routine expects.
    DimensionMismatch {
        /// The operator ([`SketchOperator::name`](crate::SketchOperator::name)) or
        /// routine that rejected the operand.
        op: String,
        /// Input dimension the operator expects.
        expected: usize,
        /// Leading dimension the operand actually has.
        found: usize,
        /// Shape description of the rejected operand (e.g. `"dense 4096x8"`).
        operand: String,
    },
    /// The operation would not fit in modelled device memory.
    ///
    /// This is the typed equivalent of the blank Gaussian bars in Figures 2 and 5
    /// ("the GPU ran out of memory").
    WouldExceedMemory(MemoryError),
    /// An underlying dense linear algebra routine failed.
    ///
    /// The most important instance: the Cholesky factorisation of the Gram matrix
    /// failing for ill-conditioned problems, which is how the normal equations break
    /// down in Figure 8.
    La(LaError),
    /// A routine was configured with an invalid parameter (e.g. zero output
    /// dimension, a malformed [`SketchSpec`](crate::SketchSpec), or an unparsable
    /// spec document).
    InvalidParameter {
        /// Description of the offending parameter.
        detail: String,
    },
    /// A least squares problem's dimensions are unusable (e.g. fewer rows than
    /// columns).
    BadProblem {
        /// Description of what is wrong.
        detail: String,
    },
    /// A simulated device died mid-run (an injected
    /// [`FaultSpec::Dies`](sketch_gpu_sim::FaultSpec::Dies) fault fired) and
    /// the executor could not — or was not asked to — recover around it.
    ///
    /// The pipelined executor normally absorbs these by recomputing the dead
    /// device's shards on the survivors; the error escapes only when every
    /// device in the pool is dead.
    DeviceFailed {
        /// Physical ordinal of the device that died.
        ordinal: usize,
        /// Simulated seconds into the run at which it died.
        after_sim_seconds: f64,
    },
}

impl Error {
    /// Construct a dimension mismatch carrying the offending operator's name and the
    /// operand's shape, so a failing pipeline says which sketch rejected what.
    pub fn dimension_mismatch(
        op: impl Into<String>,
        expected: usize,
        found: usize,
        operand: impl Into<String>,
    ) -> Self {
        Error::DimensionMismatch {
            op: op.into(),
            expected,
            found,
            operand: operand.into(),
        }
    }

    /// Construct an invalid-parameter error.
    pub fn invalid_param(detail: impl Into<String>) -> Self {
        Error::InvalidParameter {
            detail: detail.into(),
        }
    }

    /// Construct a bad-problem error.
    pub fn bad_problem(detail: impl Into<String>) -> Self {
        Error::BadProblem {
            detail: detail.into(),
        }
    }

    /// Whether this error is the normal-equations instability signature: the Gram
    /// matrix lost positive definiteness.
    pub fn is_gram_breakdown(&self) -> bool {
        matches!(self, Error::La(LaError::NotPositiveDefinite { .. }))
    }

    /// Whether this error is a modelled device out-of-memory failure.
    pub fn is_out_of_memory(&self) -> bool {
        matches!(self, Error::WouldExceedMemory(_))
    }

    /// Whether this error is a dimension mismatch (of any operator or routine).
    pub fn is_dimension_mismatch(&self) -> bool {
        matches!(self, Error::DimensionMismatch { .. })
    }

    /// Construct a device-failure error.
    pub fn device_failed(ordinal: usize, after_sim_seconds: f64) -> Self {
        Error::DeviceFailed {
            ordinal,
            after_sim_seconds,
        }
    }

    /// Whether this error is a simulated device death (the retryable fault the
    /// serve layer requeues jobs on).
    pub fn is_device_failure(&self) -> bool {
        matches!(self, Error::DeviceFailed { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch {
                op,
                expected,
                found,
                operand,
            } => write!(
                f,
                "{op}: dimension mismatch — expected {expected}, found {found} ({operand})"
            ),
            Error::WouldExceedMemory(e) => write!(f, "would exceed device memory: {e}"),
            Error::La(e) => write!(f, "linear algebra failure: {e}"),
            Error::InvalidParameter { detail } => write!(f, "invalid parameter: {detail}"),
            Error::BadProblem { detail } => write!(f, "unusable problem: {detail}"),
            Error::DeviceFailed {
                ordinal,
                after_sim_seconds,
            } => write!(
                f,
                "device {ordinal} died {after_sim_seconds:.6}s into the simulated run"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::WouldExceedMemory(e) => Some(e),
            Error::La(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LaError> for Error {
    fn from(e: LaError) -> Self {
        Error::La(e)
    }
}

impl From<MemoryError> for Error {
    fn from(e: MemoryError) -> Self {
        Error::WouldExceedMemory(e)
    }
}

impl From<sketch_obs::JsonError> for Error {
    fn from(e: sketch_obs::JsonError) -> Self {
        Error::invalid_param(e.message())
    }
}

impl From<sketch_gpu_sim::DeviceFailed> for Error {
    fn from(e: sketch_gpu_sim::DeviceFailed) -> Self {
        Error::DeviceFailed {
            ordinal: e.ordinal,
            after_sim_seconds: e.after_sim_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let e = Error::dimension_mismatch("CountSketch (Alg 2)", 10, 5, "dense 5x3");
        let msg = e.to_string();
        assert!(msg.contains("CountSketch (Alg 2)"));
        assert!(msg.contains("10"));
        assert!(msg.contains("dense 5x3"));
        assert!(e.is_dimension_mismatch());

        let e: Error = MemoryError {
            requested: 1,
            in_use: 2,
            capacity: 3,
        }
        .into();
        assert!(e.to_string().contains("device memory"));
        assert!(e.is_out_of_memory());

        let e: Error = LaError::SingularTriangular { index: 0 }.into();
        assert!(e.to_string().contains("linear algebra"));

        let e = Error::invalid_param("k must be positive");
        assert!(e.to_string().contains("k must be positive"));

        let e = Error::bad_problem("d < n");
        assert!(e.to_string().contains("d < n"));

        let e: Error = sketch_gpu_sim::DeviceFailed {
            ordinal: 3,
            after_sim_seconds: 0.25,
        }
        .into();
        assert!(e.to_string().contains("device 3"));
        assert!(e.is_device_failure());
        assert!(!e.is_out_of_memory());
        assert_eq!(e, Error::device_failed(3, 0.25));
    }

    #[test]
    fn predicates_identify_the_figure8_breakdown() {
        let e: Error = LaError::NotPositiveDefinite {
            column: 2,
            pivot: -1e-3,
        }
        .into();
        assert!(e.is_gram_breakdown());
        assert!(!e.is_out_of_memory());
        assert!(!Error::invalid_param("x").is_gram_breakdown());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::invalid_param("x"), Error::invalid_param("x"));
        assert_ne!(Error::invalid_param("x"), Error::invalid_param("y"));
    }
}
