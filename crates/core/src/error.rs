//! Error type shared by the sketch operators.

use sketch_gpu_sim::MemoryError;
use sketch_la::LaError;
use std::fmt;

/// Errors returned when generating or applying a sketch.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// The operand's leading dimension does not match the sketch's input dimension.
    DimensionMismatch {
        /// Input dimension the sketch expects.
        expected: usize,
        /// Leading dimension of the operand that was supplied.
        found: usize,
    },
    /// The sketch (or its intermediate product) would not fit in modelled device memory.
    ///
    /// This is the typed equivalent of the blank Gaussian bars in Figures 2 and 5
    /// ("the GPU ran out of memory").
    WouldExceedMemory(MemoryError),
    /// An underlying dense linear algebra routine failed.
    La(LaError),
    /// The operator was configured with an invalid parameter (e.g. zero output
    /// dimension).
    InvalidParameter {
        /// Description of the offending parameter.
        detail: String,
    },
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::DimensionMismatch { expected, found } => write!(
                f,
                "sketch expects input dimension {expected} but operand has leading dimension {found}"
            ),
            SketchError::WouldExceedMemory(e) => write!(f, "sketch would exceed device memory: {e}"),
            SketchError::La(e) => write!(f, "linear algebra failure while sketching: {e}"),
            SketchError::InvalidParameter { detail } => write!(f, "invalid sketch parameter: {detail}"),
        }
    }
}

impl std::error::Error for SketchError {}

impl From<LaError> for SketchError {
    fn from(e: LaError) -> Self {
        SketchError::La(e)
    }
}

impl From<MemoryError> for SketchError {
    fn from(e: MemoryError) -> Self {
        SketchError::WouldExceedMemory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let e = SketchError::DimensionMismatch {
            expected: 10,
            found: 5,
        };
        assert!(e.to_string().contains("10"));

        let e: SketchError = MemoryError {
            requested: 1,
            in_use: 2,
            capacity: 3,
        }
        .into();
        assert!(e.to_string().contains("device memory"));

        let e: SketchError = LaError::SingularTriangular { index: 0 }.into();
        assert!(e.to_string().contains("linear algebra"));

        let e = SketchError::InvalidParameter {
            detail: "k must be positive".into(),
        };
        assert!(e.to_string().contains("k must be positive"));
    }
}
