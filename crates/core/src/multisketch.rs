//! The Count-Gauss multisketch (Section 1, Section 6).
//!
//! A CountSketch `S₁ ∈ R^{k₁ x d}` (cheap, but needs `k₁ = O(n²/ε²δ)`) followed by a
//! Gaussian `S₂ ∈ R^{k₂ x k₁}` (expensive per row, but only `k₂ = O(n/ε²)` rows are
//! needed once the CountSketch has already shrunk the problem).  The combination reduces
//! `A ∈ R^{d x n}` all the way to `2n x n` in `O(dn + n⁴)` work — the "MultiSketch" row
//! of Table 1 — while only ever making a single pass over `A`.
//!
//! Section 6.1 describes a layout trick this module reproduces: the CountSketch output
//! `Y` is produced row-major; instead of converting it to column-major before the GEMM,
//! the row-major buffer is reinterpreted as `Yᵀ` in column-major, the product is formed
//! as `Zᵀ = Yᵀ Gᵀ`, and only the small `k₂ x n` result is transposed back.

use crate::countsketch::CountSketch;
use crate::error::Error;
use crate::gaussian::GaussianSketch;
use crate::operand::Operand;
use crate::traits::SketchOperator;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{blas3, Layout, MatrixViewMut, Op};

/// Seed salt applied to the Gaussian stage when a multisketch (or the equivalent
/// Count→Gauss [`Pipeline`](crate::Pipeline)) is generated from one seed, so the two
/// stages draw from independent Philox streams.
pub(crate) const GAUSS_STAGE_SEED_SALT: u64 = 0xA5A5_5A5A_DEAD_BEEF;

/// The Count-Gauss multisketch operator.
#[derive(Debug, Clone)]
pub struct MultiSketch {
    count: CountSketch,
    gauss: GaussianSketch,
    /// Whether `apply_matrix` uses the transpose trick (default) or the naive
    /// convert-then-multiply path (kept for the ablation bench).
    use_transpose_trick: bool,
}

impl MultiSketch {
    /// Build a multisketch from its two stages.
    ///
    /// The Gaussian's input dimension must equal the CountSketch's output dimension.
    pub fn new(count: CountSketch, gauss: GaussianSketch) -> Result<Self, Error> {
        if gauss.input_dim() != count.output_dim() {
            return Err(Error::invalid_param(format!(
                "Gaussian stage expects input dimension {}, CountSketch produces {}",
                gauss.input_dim(),
                count.output_dim()
            )));
        }
        Ok(Self {
            count,
            gauss,
            use_transpose_trick: true,
        })
    }

    /// Generate the paper's default configuration for a `d x n` operand:
    /// CountSketch to `k₁ = 2n²`, Gaussian to `k₂ = 2n`.
    pub fn generate_default(device: &Device, d: usize, n: usize, seed: u64) -> Result<Self, Error> {
        let k1 = 2 * n * n;
        let k2 = 2 * n;
        Self::generate(device, d, k1, k2, seed)
    }

    /// Generate a multisketch with explicit intermediate (`k1`) and final (`k2`)
    /// dimensions.
    pub fn generate(
        device: &Device,
        d: usize,
        k1: usize,
        k2: usize,
        seed: u64,
    ) -> Result<Self, Error> {
        let count = CountSketch::generate(device, d, k1, seed);
        let gauss = GaussianSketch::generate(device, k1, k2, seed ^ GAUSS_STAGE_SEED_SALT)?;
        Self::new(count, gauss)
    }

    /// Disable the transpose trick (ablation: convert `Y` to column-major, then GEMM).
    pub fn with_naive_layout_handling(mut self) -> Self {
        self.use_transpose_trick = false;
        self
    }

    /// The CountSketch stage.
    pub fn count_stage(&self) -> &CountSketch {
        &self.count
    }

    /// The Gaussian stage.
    pub fn gauss_stage(&self) -> &GaussianSketch {
        &self.gauss
    }

    /// Intermediate dimension `k₁`.
    pub fn intermediate_dim(&self) -> usize {
        self.count.output_dim()
    }
}

impl SketchOperator for MultiSketch {
    fn input_dim(&self) -> usize {
        self.count.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.gauss.output_dim()
    }

    fn name(&self) -> &'static str {
        "MultiSketch (Count-Gauss)"
    }

    fn output_layout(&self) -> Layout {
        Layout::ColMajor
    }

    /// The two-stage pipeline.  The `k₁ x n` CountSketch intermediate is inherent to
    /// the composition; the final `k₂ x n` result lands in the caller's buffer.
    fn apply_into(
        &self,
        device: &Device,
        a: Operand<'_>,
        out: &mut MatrixViewMut<'_>,
    ) -> Result<(), Error> {
        self.check_operand(&a)?;
        self.check_output(out, a.ncols())?;
        // Stage 1: CountSketch, produced row-major (Algorithm 2).
        let y = self.count.apply_operand(device, a)?;

        if self.use_transpose_trick {
            // Stage 2 with the Section 6.1 trick: reinterpret the row-major Y as the
            // column-major Yᵀ, compute Zᵀ = Yᵀ Gᵀ, and transpose the small result.
            let yt = y.reinterpret_transposed(); // k1 x n row-major  ->  n x k1 col-major
            let zt = blas3::gemm_op(
                device,
                1.0,
                Op::NoTrans,
                &yt,
                Op::Trans,
                self.gauss.matrix(),
                0.0,
                None,
            )?;
            zt.transpose_into(device, out)?;
        } else {
            // Naive path: convert the large k1 x n matrix to column-major first.
            // Stage 2 must hold the k1 x k2 Gaussian on the device (the k2 x n
            // output is the caller's reservation, per the apply_into contract).
            let y_cm = y.to_layout(device, Layout::ColMajor);
            let _res_s = device.try_reserve(self.gauss.size_bytes())?;
            self.gauss.apply_into(device, Operand::Dense(&y_cm), out)?;
        }
        Ok(())
    }

    fn apply_vector(&self, device: &Device, x: &[f64]) -> Result<Vec<f64>, Error> {
        self.check_input_dim(x.len())?;
        let y = self.count.apply_vector(device, x)?;
        self.gauss.apply_vector(device, &y)
    }

    fn generation_cost(&self) -> KernelCost {
        self.count.generation_cost() + self.gauss.generation_cost()
    }

    fn algorithmic_cost(&self, ncols: usize) -> KernelCost {
        // Table 1: dn + n⁴ arithmetic and dn + n⁴ read/writes (the n⁴ term is the
        // Gaussian stage applied to the k₁ x n intermediate).
        let count_cost = self.count.algorithmic_cost(ncols);
        let k1 = self.intermediate_dim() as u64;
        let k2 = self.output_dim() as u64;
        let n = ncols as u64;
        let gauss_stage = KernelCost::new(
            KernelCost::f64_bytes(k1 * n),
            KernelCost::f64_bytes(k2 * n),
            2 * k1 * k2 * n,
            1,
        );
        count_cost + gauss_stage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_la::norms::vec_norm2;
    use sketch_la::Matrix;

    fn device() -> Device {
        Device::unlimited()
    }

    #[test]
    fn default_generation_uses_paper_dimensions() {
        let d = device();
        let ms = MultiSketch::generate_default(&d, 1000, 8, 3).unwrap();
        assert_eq!(ms.input_dim(), 1000);
        assert_eq!(ms.intermediate_dim(), 2 * 8 * 8);
        assert_eq!(ms.output_dim(), 16);
        assert_eq!(ms.name(), "MultiSketch (Count-Gauss)");
    }

    #[test]
    fn transpose_trick_matches_naive_path() {
        let d = device();
        let a = Matrix::random_gaussian(500, 6, Layout::RowMajor, 1, 0);
        let ms = MultiSketch::generate_default(&d, 500, 6, 5).unwrap();
        let z_trick = ms.apply_matrix(&d, &a).unwrap();
        let z_naive = ms
            .clone()
            .with_naive_layout_handling()
            .apply_matrix(&d, &a)
            .unwrap();
        assert!(z_trick.max_abs_diff(&z_naive).unwrap() < 1e-9);
        assert_eq!(z_trick.nrows(), 12);
        assert_eq!(z_trick.ncols(), 6);
    }

    #[test]
    fn matrix_and_vector_applications_agree() {
        let d = device();
        let dim = 300;
        let ms = MultiSketch::generate(&d, dim, 64, 8, 7).unwrap();
        let x = sketch_rng::fill::gaussian_vec(2, 0, dim);
        let a = Matrix::from_fn(dim, 1, Layout::RowMajor, |i, _| x[i]);
        let zv = ms.apply_vector(&d, &x).unwrap();
        let zm = ms.apply_matrix(&d, &a).unwrap();
        for i in 0..8 {
            assert!((zv[i] - zm.get(i, 0)).abs() < 1e-10);
        }
    }

    #[test]
    fn composition_equals_sequential_stages() {
        let d = device();
        let dim = 400;
        let ms = MultiSketch::generate(&d, dim, 50, 10, 9).unwrap();
        let a = Matrix::random_gaussian(dim, 3, Layout::RowMajor, 4, 0);
        let z = ms.apply_matrix(&d, &a).unwrap();

        let y = ms.count_stage().apply_matrix(&d, &a).unwrap();
        let y_cm = y.to_layout(&d, Layout::ColMajor);
        let z_seq = ms.gauss_stage().apply_matrix(&d, &y_cm).unwrap();
        assert!(z.max_abs_diff(&z_seq).unwrap() < 1e-9);
    }

    #[test]
    fn multisketch_roughly_preserves_norms() {
        let d = device();
        let dim = 4096;
        let n = 8;
        let ms = MultiSketch::generate_default(&d, dim, n, 11).unwrap();
        let x = sketch_rng::fill::gaussian_vec(21, 0, dim);
        let z = ms.apply_vector(&d, &x).unwrap();
        let ratio = vec_norm2(&z) / vec_norm2(&x);
        assert!((ratio - 1.0).abs() < 0.6, "ratio {ratio}");
    }

    #[test]
    fn naive_path_models_the_gaussian_stage_memory() {
        use sketch_gpu_sim::DeviceSpec;
        // Capacity fits the 16 KiB Gaussian stage alone, but not alongside the
        // 1 KiB output reservation the allocating wrapper holds across the apply.
        let mut spec = DeviceSpec::h100();
        spec.memory_bytes = 16 * 1024 + 512;
        let dev = Device::new(spec);
        let ms = MultiSketch::generate(&dev, 256, 128, 16, 1).unwrap();
        let a = Matrix::random_gaussian(256, 8, Layout::RowMajor, 2, 0);
        // The transpose trick never materialises the Gaussian stage reservation.
        assert!(ms.apply_matrix(&dev, &a).is_ok());
        // The naive path must charge it — and report OOM on this device.
        let naive = ms.clone().with_naive_layout_handling();
        assert!(matches!(
            naive.apply_matrix(&dev, &a),
            Err(Error::WouldExceedMemory(_))
        ));
    }

    #[test]
    fn mismatched_stage_dimensions_are_rejected() {
        let d = device();
        let count = CountSketch::generate(&d, 100, 32, 1);
        let gauss = GaussianSketch::generate(&d, 64, 8, 1).unwrap();
        assert!(matches!(
            MultiSketch::new(count, gauss),
            Err(Error::InvalidParameter { .. })
        ));
    }

    #[test]
    fn input_dimension_mismatch_is_rejected() {
        let d = device();
        let ms = MultiSketch::generate_default(&d, 100, 4, 1).unwrap();
        let a = Matrix::zeros_with_layout(90, 4, Layout::RowMajor);
        assert!(ms.apply_matrix(&d, &a).is_err());
        assert!(ms.apply_vector(&d, &[0.0; 99]).is_err());
    }

    #[test]
    fn generation_cost_is_much_smaller_than_full_gaussian() {
        // Generating the multisketch needs 4n³ Gaussians versus 2n·d for a full
        // Gaussian sketch — with d = 2^15 and n = 8 that is a ~64x difference.
        let d = device();
        let dim = 1 << 15;
        let n = 8;
        let ms = MultiSketch::generate_default(&d, dim, n, 1).unwrap();
        let full = GaussianSketch::generate(&d, dim, 2 * n, 2).unwrap();
        assert!(ms.generation_cost().bytes_written * 4 < full.generation_cost().bytes_written);
    }

    #[test]
    fn algorithmic_cost_contains_both_stages() {
        let d = device();
        let ms = MultiSketch::generate_default(&d, 1000, 4, 1).unwrap();
        let c = ms.algorithmic_cost(4);
        let count_only = ms.count_stage().algorithmic_cost(4);
        assert!(c.flops > count_only.flops);
        assert!(c.total_bytes() > count_only.total_bytes());
    }
}
