//! The dense Gaussian sketch, applied with GEMM.
//!
//! `S ∈ R^{k x d}` with `s_ij ~ N(0, 1/k)`.  The paper applies it with cuBLAS GEMM and
//! charges the generation of the `k·d` Gaussians to the sketch ("the Gaussian sketch is
//! noticeably slower than computing the Gram matrix, because one performs a GeMM using a
//! matrix that is twice as large and one has to generate 2n·d i.i.d. Gaussian random
//! variables").  At the largest problem sizes the `k x d` matrix simply does not fit on
//! the 80 GB card — the blank bars of Figures 2 and 5 — which this implementation
//! reproduces through the device memory tracker.

use crate::error::Error;
use crate::operand::Operand;
use crate::traits::SketchOperator;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{blas2, blas3, Layout, Matrix, MatrixViewMut, Op};
use sketch_rng::fill;

/// Approximate flop cost of producing one Gaussian variate with Box–Muller.
const FLOPS_PER_GAUSSIAN: u64 = 12;

/// A dense Gaussian sketch `S ∈ R^{k x d}` with entries `N(0, 1/k)`.
#[derive(Debug, Clone)]
pub struct GaussianSketch {
    matrix: Matrix,
    generation_cost: KernelCost,
}

impl GaussianSketch {
    /// Generate the sketch, reserving (and then releasing) the modelled device memory it
    /// would occupy.  Fails with [`Error::WouldExceedMemory`] exactly where the
    /// paper reports GPU out-of-memory failures.
    pub fn generate(device: &Device, d: usize, k: usize, seed: u64) -> Result<Self, Error> {
        if k == 0 {
            return Err(Error::invalid_param(
                "Gaussian sketch output dimension must be positive",
            ));
        }
        let bytes = KernelCost::f64_bytes((k * d) as u64);
        if !device.memory().would_fit(bytes) {
            // Report the same error try_reserve would produce, without reserving.
            return Err(device
                .try_reserve(bytes)
                .expect_err("would_fit said no")
                .into());
        }
        let scale = 1.0 / (k as f64).sqrt();
        let data = fill::scaled_gaussian_vec(seed, 0, k * d, scale);
        let matrix = Matrix::from_vec(k, d, Layout::RowMajor, data);
        let generation_cost = KernelCost::new(0, bytes, (k * d) as u64 * FLOPS_PER_GAUSSIAN, 1);
        device.record(generation_cost);
        Ok(Self {
            matrix,
            generation_cost,
        })
    }

    /// The explicit sketch matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Bytes the stored sketch occupies on the device.
    pub fn size_bytes(&self) -> u64 {
        self.matrix.size_bytes()
    }

    /// Cost of the gather-per-nonzero sparse application path.
    fn record_csr_apply_cost(&self, device: &Device, nnz: usize, nrows: usize, ncols: usize) {
        let nnz = nnz as u64;
        let n64 = ncols as u64;
        let k64 = self.output_dim() as u64;
        let idx_bytes = (std::mem::size_of::<usize>() as u64) * (nnz + nrows as u64 + 1);
        device.record(KernelCost::new(
            KernelCost::f64_bytes(nnz + k64 * nnz) + idx_bytes,
            KernelCost::f64_bytes(k64 * n64),
            2 * k64 * nnz,
            1,
        ));
    }
}

impl SketchOperator for GaussianSketch {
    fn input_dim(&self) -> usize {
        self.matrix.ncols()
    }

    fn output_dim(&self) -> usize {
        self.matrix.nrows()
    }

    fn name(&self) -> &'static str {
        "Gaussian"
    }

    fn output_layout(&self) -> Layout {
        Layout::ColMajor
    }

    /// GEMM straight into the caller's buffer (dense operands), or a dense×CSR
    /// accumulation for sparse operands.  No intermediate matrix is allocated.
    fn apply_into(
        &self,
        device: &Device,
        a: Operand<'_>,
        out: &mut MatrixViewMut<'_>,
    ) -> Result<(), Error> {
        self.check_operand(&a)?;
        self.check_output(out, a.ncols())?;
        match a {
            Operand::Dense(m) => {
                blas3::gemm_into(
                    device,
                    1.0,
                    Op::NoTrans,
                    &self.matrix,
                    Op::NoTrans,
                    m,
                    0.0,
                    None,
                    out,
                )?;
            }
            Operand::Csr(s) => {
                // Y[:, c] += a_jc * S[:, j] for every stored entry: the dense sketch
                // columns are gathered per non-zero, which is exactly how cuSPARSE
                // would drive a dense-times-sparse product from the right.
                out.fill(0.0);
                for j in 0..s.nrows() {
                    for (c, v) in s.row(j) {
                        for i in 0..self.output_dim() {
                            out.add_to(i, c, self.matrix.get(i, j) * v);
                        }
                    }
                }
                self.record_csr_apply_cost(device, s.nnz(), s.nrows(), s.ncols());
            }
            Operand::CsrRows(v) => {
                out.fill(0.0);
                for j in 0..v.nrows() {
                    for (c, val) in v.row(j) {
                        for i in 0..self.output_dim() {
                            out.add_to(i, c, self.matrix.get(i, j) * val);
                        }
                    }
                }
                self.record_csr_apply_cost(device, v.nnz(), v.nrows(), v.ncols());
            }
        }
        Ok(())
    }

    fn apply_matrix(&self, device: &Device, a: &Matrix) -> Result<Matrix, Error> {
        self.apply_operand(device, Operand::Dense(a))
    }

    fn apply_operand(&self, device: &Device, a: Operand<'_>) -> Result<Matrix, Error> {
        self.check_operand(&a)?;
        // The sketch itself plus the result must fit on the device alongside A.
        let _res_s = device.try_reserve(self.size_bytes())?;
        let _res_y = device.try_reserve(KernelCost::f64_bytes(
            (self.output_dim() * a.ncols()) as u64,
        ))?;
        let mut y = Matrix::zeros(self.output_dim(), a.ncols());
        self.apply_into(device, a, &mut y.view_mut())?;
        Ok(y)
    }

    fn apply_vector(&self, device: &Device, x: &[f64]) -> Result<Vec<f64>, Error> {
        self.check_input_dim(x.len())?;
        let _res_s = device.try_reserve(self.size_bytes())?;
        Ok(blas2::gemv(
            device,
            1.0,
            Op::NoTrans,
            &self.matrix,
            x,
            0.0,
            None,
        )?)
    }

    fn generation_cost(&self) -> KernelCost {
        self.generation_cost
    }

    fn algorithmic_cost(&self, ncols: usize) -> KernelCost {
        let d = self.input_dim() as u64;
        let k = self.output_dim() as u64;
        let n = ncols as u64;
        // Table 1: dn² arithmetic (with k = O(n) this is 2·d·k·n flops) and dn
        // read/writes of the operand.
        KernelCost::new(
            KernelCost::f64_bytes(d * n),
            KernelCost::f64_bytes(k * n),
            2 * d * k * n,
            1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_gpu_sim::DeviceSpec;
    use sketch_la::norms::vec_norm2;
    use sketch_sparse::{CooMatrix, CsrMatrix};

    fn device() -> Device {
        Device::unlimited()
    }

    #[test]
    fn entries_have_variance_one_over_k() {
        let d = device();
        let g = GaussianSketch::generate(&d, 400, 100, 3).unwrap();
        let data = g.matrix().as_slice();
        let var: f64 = data.iter().map(|x| x * x).sum::<f64>() / data.len() as f64;
        assert!((var - 0.01).abs() < 2e-3, "variance {var}");
    }

    #[test]
    fn apply_matrix_matches_manual_gemv_per_column() {
        let d = device();
        let g = GaussianSketch::generate(&d, 50, 10, 1).unwrap();
        let a = Matrix::random_gaussian(50, 3, Layout::ColMajor, 2, 0);
        let y = g.apply_matrix(&d, &a).unwrap();
        for c in 0..3 {
            let col = a.col_to_vec(c);
            let yc = g.apply_vector(&d, &col).unwrap();
            for i in 0..10 {
                assert!((y.get(i, c) - yc[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn apply_into_reused_buffer_is_bit_identical_to_apply_matrix() {
        let d = device();
        let g = GaussianSketch::generate(&d, 60, 12, 5).unwrap();
        let a = Matrix::random_gaussian(60, 4, Layout::RowMajor, 6, 0);
        let y = g.apply_matrix(&d, &a).unwrap();
        let mut out = Matrix::from_fn(12, 4, Layout::ColMajor, |_, _| f64::NAN);
        g.apply_into(&d, Operand::Dense(&a), &mut out.view_mut())
            .unwrap();
        assert_eq!(out.as_slice(), y.as_slice());
    }

    #[test]
    fn csr_operand_matches_dense_operand() {
        let d = device();
        let g = GaussianSketch::generate(&d, 30, 8, 2).unwrap();
        let mut coo = CooMatrix::new(30, 5);
        for i in 0..30 {
            coo.push(i, i % 5, (i as f64 * 0.3).cos());
            if i % 3 == 0 {
                coo.push(i, (i + 2) % 5, -1.5);
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let rows = csr.to_dense();
        let dense = Matrix::from_fn(30, 5, Layout::RowMajor, |i, j| rows[i][j]);
        let y_dense = g.apply_matrix(&d, &dense).unwrap();
        let y_sparse = g.apply_operand(&d, Operand::Csr(&csr)).unwrap();
        assert!(y_dense.max_abs_diff(&y_sparse).unwrap() < 1e-12);
    }

    #[test]
    fn apply_into_performs_zero_device_allocations() {
        let d = device();
        let g = GaussianSketch::generate(&d, 64, 8, 9).unwrap();
        let a = Matrix::random_gaussian(64, 4, Layout::RowMajor, 1, 0);
        let mut out = Matrix::zeros(8, 4);
        let before = d.memory().allocations();
        g.apply_into(&d, Operand::Dense(&a), &mut out.view_mut())
            .unwrap();
        assert_eq!(
            d.memory().allocations(),
            before,
            "apply_into must not reserve device memory"
        );
        let _ = g.apply_matrix(&d, &a).unwrap();
        assert!(d.memory().allocations() > before);

        // A disabled recorder must keep the hot path allocation-free too: the
        // launch site reads one relaxed flag and does nothing else.
        d.set_recorder(Some(std::sync::Arc::new(sketch_gpu_sim::obs::NoopRecorder)));
        let with_noop = d.memory().allocations();
        g.apply_into(&d, Operand::Dense(&a), &mut out.view_mut())
            .unwrap();
        assert_eq!(
            d.memory().allocations(),
            with_noop,
            "a NoopRecorder must not change the zero-allocation certification"
        );
    }

    #[test]
    fn norm_preservation_is_reasonable_for_k_2n() {
        // For a 1-dimensional subspace (a single vector) and k = 128 the distortion
        // should be small with overwhelming probability.
        let d = device();
        let dim = 2048;
        let g = GaussianSketch::generate(&d, dim, 128, 5).unwrap();
        let x = fill::gaussian_vec(9, 0, dim);
        let y = g.apply_vector(&d, &x).unwrap();
        let ratio = vec_norm2(&y) / vec_norm2(&x);
        assert!((ratio - 1.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn csr_operand_path_reports_oom_like_the_dense_path() {
        // Device that can generate the sketch but cannot hold sketch + output during
        // an apply: both the dense and the CSR allocating paths must report OOM.
        let mut spec = DeviceSpec::h100();
        spec.memory_bytes = 530 * 1024;
        let d = Device::new(spec);
        let g = GaussianSketch::generate(&d, 1024, 64, 1).unwrap(); // 512 KiB sketch
        let a = Matrix::zeros_with_layout(1024, 64, sketch_la::Layout::RowMajor);
        let mut coo = CooMatrix::new(1024, 64);
        coo.push(0, 0, 1.0);
        let csr = CsrMatrix::from_coo(&coo);
        assert!(matches!(
            g.apply_matrix(&d, &a),
            Err(Error::WouldExceedMemory(_))
        ));
        assert!(matches!(
            g.apply_operand(&d, Operand::Csr(&csr)),
            Err(Error::WouldExceedMemory(_))
        ));
    }

    #[test]
    fn oom_reproduces_the_blank_bars() {
        // 1 GiB device cannot hold a 2n x d Gaussian for d = 2^24, n = 64.
        let mut spec = DeviceSpec::h100();
        spec.memory_bytes = 1 << 30;
        let d = Device::new(spec);
        let err = GaussianSketch::generate(&d, 1 << 24, 128, 1).unwrap_err();
        assert!(matches!(err, Error::WouldExceedMemory(_)));
    }

    #[test]
    fn generation_is_reproducible() {
        let d = device();
        let a = GaussianSketch::generate(&d, 64, 16, 42).unwrap();
        let b = GaussianSketch::generate(&d, 64, 16, 42).unwrap();
        assert_eq!(a.matrix(), b.matrix());
    }

    #[test]
    fn invalid_k_and_dimension_mismatch_are_rejected() {
        let d = device();
        assert!(matches!(
            GaussianSketch::generate(&d, 10, 0, 1),
            Err(Error::InvalidParameter { .. })
        ));
        let g = GaussianSketch::generate(&d, 10, 4, 1).unwrap();
        assert!(g.apply_vector(&d, &[0.0; 9]).is_err());
        let a = Matrix::zeros(11, 2);
        assert!(g.apply_matrix(&d, &a).is_err());
    }

    #[test]
    fn generation_cost_scales_with_k_times_d() {
        let d = device();
        let g = GaussianSketch::generate(&d, 100, 20, 1).unwrap();
        assert_eq!(g.generation_cost().bytes_written, 8 * 2000);
        assert_eq!(g.name(), "Gaussian");
        assert_eq!(g.input_dim(), 100);
        assert_eq!(g.output_dim(), 20);
        let c = g.algorithmic_cost(5);
        assert_eq!(c.flops, 2 * 100 * 20 * 5);
    }
}
