//! The [`SketchOperator`] abstraction shared by every sketch in the workspace.

use crate::error::Error;
use crate::operand::Operand;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{Layout, Matrix, MatrixViewMut};

/// A random linear operator `S : R^d -> R^k` that can be applied to matrices and
/// vectors on the simulated device.
///
/// The trait deliberately mirrors how the paper's evaluation drives the sketches: a
/// sketch is *generated* once (with a cost the paper charges as "Sketch gen time") and
/// then *applied* to the coefficient matrix and the right-hand side.
///
/// The hot path is [`apply_into`](Self::apply_into): operand-generic (dense or CSR via
/// [`Operand`]) and allocation-free — the caller owns the `k x n` output buffer and
/// reuses it across calls.  [`apply_matrix`](Self::apply_matrix) and
/// [`apply_vector`](Self::apply_vector) are thin allocating wrappers kept for
/// convenience.
pub trait SketchOperator {
    /// Input dimension `d` (number of rows the operand must have).
    fn input_dim(&self) -> usize;

    /// Output dimension `k` (number of rows of the sketched result).
    fn output_dim(&self) -> usize;

    /// Short name used in reports ("CountSketch", "Gaussian", …).
    fn name(&self) -> &'static str;

    /// The layout this operator naturally produces (what
    /// [`apply_matrix`](Self::apply_matrix) allocates): row-major for the
    /// scatter-style CountSketch kernels, column-major for the GEMM-backed sketches.
    fn output_layout(&self) -> Layout {
        Layout::RowMajor
    }

    /// Apply the sketch to an operand, writing `out = S A` into a caller-owned
    /// `k x n` buffer.  Implementations overwrite every element of `out` (dirty
    /// buffers are fine) and perform **zero** intermediate matrix allocations on the
    /// CountSketch and Gaussian hot paths.
    ///
    /// Memory modelling of the *output* is the caller's job on this path: the
    /// allocating wrappers
    /// ([`apply_matrix`](Self::apply_matrix)/[`apply_operand`](Self::apply_operand))
    /// reserve it on the device, while the CountSketch/Gaussian `apply_into` hot
    /// paths touch the [`MemoryTracker`](sketch_gpu_sim::MemoryTracker) not at all.
    /// Operators with *inherent* intermediates (the multisketch's `k₁ x n` stage,
    /// the SRHT's padded FWHT work matrix) still reserve those inside `apply_into`.
    fn apply_into(
        &self,
        device: &Device,
        a: Operand<'_>,
        out: &mut MatrixViewMut<'_>,
    ) -> Result<(), Error>;

    /// Apply the sketch to a dense matrix: `Y = S A` with `A ∈ R^{d x n}`.
    ///
    /// Thin allocating wrapper over [`apply_into`](Self::apply_into): reserves the
    /// output on the modelled device, allocates it in the operator's natural layout,
    /// and delegates — so the two paths are bit-for-bit identical by construction.
    fn apply_matrix(&self, device: &Device, a: &Matrix) -> Result<Matrix, Error> {
        self.apply_operand(device, Operand::Dense(a))
    }

    /// Apply the sketch to any [`Operand`], allocating the output (the CSR-capable
    /// sibling of [`apply_matrix`](Self::apply_matrix)).
    fn apply_operand(&self, device: &Device, a: Operand<'_>) -> Result<Matrix, Error> {
        self.check_operand(&a)?;
        let n = a.ncols();
        let _reservation =
            device.try_reserve(KernelCost::f64_bytes((self.output_dim() * n) as u64))?;
        let mut y = Matrix::zeros_with_layout(self.output_dim(), n, self.output_layout());
        self.apply_into(device, a, &mut y.view_mut())?;
        Ok(y)
    }

    /// Apply the sketch to a vector: `y = S x` with `x ∈ R^d`.
    fn apply_vector(&self, device: &Device, x: &[f64]) -> Result<Vec<f64>, Error>;

    /// Cost charged for generating the sketch's random ingredients (the "Sketch gen
    /// time" component of Figures 2 and 5).
    fn generation_cost(&self) -> KernelCost;

    /// The *algorithmic* (Table 1) cost of applying this sketch to a `d x n` matrix:
    /// the arithmetic and the useful read/write volume, excluding implementation
    /// overheads such as atomic read-modify-write traffic or index arrays.
    ///
    /// Figure 3's percent-of-peak-throughput numbers divide this useful traffic by the
    /// measured (or modelled) runtime, which is why a kernel that moves extra bytes
    /// internally lands below 100 % even when it saturates the memory system.
    fn algorithmic_cost(&self, ncols: usize) -> KernelCost;

    /// Check that an operand with `rows` leading dimension is compatible.
    fn check_input_dim(&self, rows: usize) -> Result<(), Error> {
        if rows == self.input_dim() {
            Ok(())
        } else {
            Err(Error::dimension_mismatch(
                self.name(),
                self.input_dim(),
                rows,
                format!("leading dimension {rows}"),
            ))
        }
    }

    /// Check a full operand, producing an error that names this operator and the
    /// operand's shape.
    fn check_operand(&self, a: &Operand<'_>) -> Result<(), Error> {
        if a.nrows() == self.input_dim() {
            Ok(())
        } else {
            Err(Error::dimension_mismatch(
                self.name(),
                self.input_dim(),
                a.nrows(),
                a.describe(),
            ))
        }
    }

    /// Check that a caller-provided output buffer matches `k x n` for an operand
    /// with `ncols` columns.
    fn check_output(&self, out: &MatrixViewMut<'_>, ncols: usize) -> Result<(), Error> {
        if out.nrows() == self.output_dim() && out.ncols() == ncols {
            Ok(())
        } else {
            // Report whichever dimension actually mismatches.
            let (expected, found) = if out.nrows() != self.output_dim() {
                (self.output_dim(), out.nrows())
            } else {
                (ncols, out.ncols())
            };
            Err(Error::dimension_mismatch(
                self.name(),
                expected,
                found,
                format!(
                    "output buffer {}x{}, expected {}x{ncols}",
                    out.nrows(),
                    out.ncols(),
                    self.output_dim()
                ),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_gpu_sim::Device;

    /// A trivial sketch (identity on the first k coordinates) to exercise the trait's
    /// default methods.
    struct TakeFirst {
        d: usize,
        k: usize,
    }

    impl SketchOperator for TakeFirst {
        fn input_dim(&self) -> usize {
            self.d
        }
        fn output_dim(&self) -> usize {
            self.k
        }
        fn name(&self) -> &'static str {
            "TakeFirst"
        }
        fn apply_into(
            &self,
            device: &Device,
            a: Operand<'_>,
            out: &mut MatrixViewMut<'_>,
        ) -> Result<(), Error> {
            self.check_operand(&a)?;
            self.check_output(out, a.ncols())?;
            out.fill(0.0);
            match a {
                Operand::Dense(m) => {
                    for i in 0..self.k {
                        for j in 0..m.ncols() {
                            out.set(i, j, m.get(i, j));
                        }
                    }
                }
                Operand::Csr(s) => {
                    for i in 0..self.k {
                        for (j, v) in s.row(i) {
                            out.set(i, j, v);
                        }
                    }
                }
                Operand::CsrRows(view) => {
                    for i in 0..self.k {
                        for (j, v) in view.row(i) {
                            out.set(i, j, v);
                        }
                    }
                }
            }
            device.record(self.algorithmic_cost(a.ncols()));
            Ok(())
        }
        fn apply_vector(&self, _device: &Device, x: &[f64]) -> Result<Vec<f64>, Error> {
            self.check_input_dim(x.len())?;
            Ok(x[..self.k].to_vec())
        }
        fn generation_cost(&self) -> KernelCost {
            KernelCost::zero()
        }
        fn algorithmic_cost(&self, ncols: usize) -> KernelCost {
            KernelCost::new(
                KernelCost::f64_bytes((self.k * ncols) as u64),
                KernelCost::f64_bytes((self.k * ncols) as u64),
                0,
                1,
            )
        }
    }

    #[test]
    fn check_input_dim_accepts_and_rejects_with_context() {
        let s = TakeFirst { d: 10, k: 3 };
        assert!(s.check_input_dim(10).is_ok());
        let err = s.check_input_dim(9).unwrap_err();
        match err {
            Error::DimensionMismatch {
                op,
                expected,
                found,
                ..
            } => {
                assert_eq!(op, "TakeFirst");
                assert_eq!((expected, found), (10, 9));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn default_apply_matrix_wraps_apply_into() {
        let device = Device::unlimited();
        let s = TakeFirst { d: 4, k: 2 };
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let y = s.apply_matrix(&device, &a).unwrap();
        assert_eq!(y.nrows(), 2);
        assert_eq!(y.get(1, 1), 4.0);

        // The reusing path writes the same bits into a dirty buffer.
        let mut out = Matrix::from_fn(2, 2, Layout::RowMajor, |_, _| f64::NAN);
        s.apply_into(&device, Operand::Dense(&a), &mut out.view_mut())
            .unwrap();
        assert_eq!(out.as_slice(), y.as_slice());
    }

    #[test]
    fn trait_object_usage_works() {
        let device = Device::unlimited();
        let s: Box<dyn SketchOperator> = Box::new(TakeFirst { d: 4, k: 2 });
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(s.apply_vector(&device, &x).unwrap(), vec![1.0, 2.0]);
        assert_eq!(s.name(), "TakeFirst");
        assert_eq!(s.output_dim(), 2);
        assert_eq!(s.generation_cost(), KernelCost::zero());
        assert!(s.algorithmic_cost(3).total_bytes() > 0);
    }

    #[test]
    fn output_buffer_shape_is_validated() {
        let device = Device::unlimited();
        let s = TakeFirst { d: 4, k: 2 };
        let a = Matrix::zeros(4, 3);
        let mut wrong = Matrix::zeros(3, 3);
        let err = s
            .apply_into(&device, Operand::Dense(&a), &mut wrong.view_mut())
            .unwrap_err();
        assert!(err.is_dimension_mismatch());
    }
}
