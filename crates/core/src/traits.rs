//! The [`SketchOperator`] abstraction shared by every sketch in the workspace.

use crate::error::SketchError;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::Matrix;

/// A random linear operator `S : R^d -> R^k` that can be applied to matrices and
/// vectors on the simulated device.
///
/// The trait deliberately mirrors how the paper's evaluation drives the sketches: a
/// sketch is *generated* once (with a cost the paper charges as "Sketch gen time") and
/// then *applied* to the coefficient matrix and the right-hand side.
pub trait SketchOperator {
    /// Input dimension `d` (number of rows the operand must have).
    fn input_dim(&self) -> usize;

    /// Output dimension `k` (number of rows of the sketched result).
    fn output_dim(&self) -> usize;

    /// Short name used in reports ("CountSketch", "Gaussian", …).
    fn name(&self) -> &'static str;

    /// Apply the sketch to a matrix: `Y = S A` with `A ∈ R^{d x n}`.
    fn apply_matrix(&self, device: &Device, a: &Matrix) -> Result<Matrix, SketchError>;

    /// Apply the sketch to a vector: `y = S x` with `x ∈ R^d`.
    fn apply_vector(&self, device: &Device, x: &[f64]) -> Result<Vec<f64>, SketchError>;

    /// Cost charged for generating the sketch's random ingredients (the "Sketch gen
    /// time" component of Figures 2 and 5).
    fn generation_cost(&self) -> KernelCost;

    /// The *algorithmic* (Table 1) cost of applying this sketch to a `d x n` matrix:
    /// the arithmetic and the useful read/write volume, excluding implementation
    /// overheads such as atomic read-modify-write traffic or index arrays.
    ///
    /// Figure 3's percent-of-peak-throughput numbers divide this useful traffic by the
    /// measured (or modelled) runtime, which is why a kernel that moves extra bytes
    /// internally lands below 100 % even when it saturates the memory system.
    fn algorithmic_cost(&self, ncols: usize) -> KernelCost;

    /// Check that an operand with `rows` leading dimension is compatible.
    fn check_input_dim(&self, rows: usize) -> Result<(), SketchError> {
        if rows == self.input_dim() {
            Ok(())
        } else {
            Err(SketchError::DimensionMismatch {
                expected: self.input_dim(),
                found: rows,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_gpu_sim::Device;

    /// A trivial sketch (identity on the first k coordinates) to exercise the trait's
    /// default method.
    struct TakeFirst {
        d: usize,
        k: usize,
    }

    impl SketchOperator for TakeFirst {
        fn input_dim(&self) -> usize {
            self.d
        }
        fn output_dim(&self) -> usize {
            self.k
        }
        fn name(&self) -> &'static str {
            "TakeFirst"
        }
        fn apply_matrix(&self, _device: &Device, a: &Matrix) -> Result<Matrix, SketchError> {
            self.check_input_dim(a.nrows())?;
            a.submatrix(self.k, a.ncols()).map_err(SketchError::from)
        }
        fn apply_vector(&self, _device: &Device, x: &[f64]) -> Result<Vec<f64>, SketchError> {
            self.check_input_dim(x.len())?;
            Ok(x[..self.k].to_vec())
        }
        fn generation_cost(&self) -> KernelCost {
            KernelCost::zero()
        }
        fn algorithmic_cost(&self, ncols: usize) -> KernelCost {
            KernelCost::new(
                KernelCost::f64_bytes((self.k * ncols) as u64),
                KernelCost::f64_bytes((self.k * ncols) as u64),
                0,
                1,
            )
        }
    }

    #[test]
    fn check_input_dim_accepts_and_rejects() {
        let s = TakeFirst { d: 10, k: 3 };
        assert!(s.check_input_dim(10).is_ok());
        let err = s.check_input_dim(9).unwrap_err();
        assert_eq!(
            err,
            SketchError::DimensionMismatch {
                expected: 10,
                found: 9
            }
        );
    }

    #[test]
    fn trait_object_usage_works() {
        let device = Device::unlimited();
        let s: Box<dyn SketchOperator> = Box::new(TakeFirst { d: 4, k: 2 });
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(s.apply_vector(&device, &x).unwrap(), vec![1.0, 2.0]);
        assert_eq!(s.name(), "TakeFirst");
        assert_eq!(s.output_dim(), 2);
        assert_eq!(s.generation_cost(), KernelCost::zero());
        assert!(s.algorithmic_cost(3).total_bytes() > 0);
    }
}
