//! # sketch-core
//!
//! The paper's primary contribution: a high performance CountSketch kernel and the
//! sketch operators it is compared against and combined with.
//!
//! * [`CountSketch`] — the dedicated atomic-reduction kernel of **Algorithm 2** (row
//!   `j` of `A` is added to or subtracted from row `r_j` of `Y`), plus the SpMM baseline
//!   the paper measures against and a gather-based ablation variant,
//! * [`HashCountSketch`] — the "build the CountSketch on the fly with a hash" streaming
//!   variant the paper lists as future work (Section 8),
//! * [`GaussianSketch`] — the dense `k x d` Gaussian sketch applied with GEMM,
//! * [`Srht`] — the subsampled randomized Hadamard transform of **Section 5**, built on
//!   the radix-4 fast Walsh–Hadamard transform of **Algorithm 3** with a shared-memory
//!   tile model,
//! * [`MultiSketch`] — the Count-Gauss multisketch (CountSketch down to `k₁ = 2n²`,
//!   Gaussian down to `k₂ = 2n`), including the transpose trick of Section 6.1,
//! * [`embedding`] — empirical subspace-embedding distortion checks (Definitions
//!   1.1–1.2),
//! * [`complexity`] — the symbolic Table 1 (embedding dimensions, arithmetic,
//!   read/writes, distortion) used by the `table1` bench binary.
//!
//! All operators implement [`SketchOperator`] so the least squares solvers in
//! `sketch-lsq` and the distributed driver in `sketch-dist` are generic over the sketch.
//! Sketches are normally constructed *declaratively*: a [`SketchSpec`] (or a
//! multi-stage [`Pipeline`]) names the kind, dimensions (exact or as the paper's
//! `2n` / `2n²` embedding rules), and Philox seed, serializes to JSON, and builds the
//! live operator on a device.  The hot path is [`SketchOperator::apply_into`]:
//! operand-generic (dense or CSR via [`Operand`]) and allocation-free.
//!
//! ```
//! use sketch_core::{EmbeddingDim, SketchSpec, SketchOperator};
//! use sketch_gpu_sim::Device;
//! use sketch_la::{Layout, Matrix};
//!
//! let device = Device::h100();
//! let d = 1024;
//! let n = 8;
//! let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 42, 0);
//! // CountSketch with the paper's k = 2n² convention, built from a declarative spec.
//! let spec = SketchSpec::countsketch(d, EmbeddingDim::Square(2), 7);
//! let sketch = spec.build_for(&device, n).unwrap();
//! let y = sketch.apply_matrix(&device, &a).unwrap();
//! assert_eq!(y.nrows(), 2 * n * n);
//! assert_eq!(y.ncols(), n);
//! ```

pub mod complexity;
pub mod countsketch;
pub mod embedding;
pub mod error;
pub mod fwht;
pub mod gaussian;
pub mod multisketch;
pub mod operand;
pub mod spec;
pub mod srht;
pub mod streaming;
pub mod traits;

pub use countsketch::{CountSketch, HashCountSketch};
pub use error::{Error, SketchError};
pub use gaussian::GaussianSketch;
pub use multisketch::MultiSketch;
pub use operand::{Operand, OperandSlice};
pub use spec::{
    json::JsonValue, ComposedSketch, EmbeddingDim, Pipeline, ShardAxis, SketchKind, SketchSpec,
};
pub use srht::Srht;
pub use streaming::FrequencyCountSketch;
pub use traits::SketchOperator;
