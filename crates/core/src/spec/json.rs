//! The workspace JSON implementation, re-exported from `sketch-obs`.
//!
//! [`JsonValue`] used to live here; it moved to the bottom crate so the
//! observability exporters (which gpu-sim depends on, below this crate) can
//! share it.  The spec layer's path `sketch_core::spec::json::JsonValue` and
//! the crate-root re-export `sketch_core::JsonValue` are unchanged, and a
//! [`JsonError`] converts into the workspace [`Error`](crate::Error)
//! (`InvalidParameter`) with the same message as before the move.

pub use sketch_obs::json::{JsonError, JsonValue};
