//! The original streaming CountSketch of Charikar, Chen and Farach-Colton.
//!
//! The paper's CountSketch is named after the frequent-items data structure of
//! reference \[7\]; Section 8 points out that a hash-based, on-the-fly formulation would
//! make the GPU kernel "more amenable to streaming applications".  This module provides
//! that streaming application — approximate frequency estimation over a stream of item
//! identifiers — both as a faithful nod to the original algorithm and as the workload
//! behind the `streaming_frequent_items` example.

use sketch_rng::{PhiloxRng, Rng};

/// A CountSketch frequency estimator with `depth` independent hash rows of `width`
/// counters each; estimates are medians over the rows.
#[derive(Debug, Clone)]
pub struct FrequencyCountSketch {
    depth: usize,
    width: usize,
    /// Per-row hash seeds for the bucket hash.
    bucket_seeds: Vec<u64>,
    /// Per-row hash seeds for the sign hash.
    sign_seeds: Vec<u64>,
    /// `depth x width` counter table, row-major.
    counters: Vec<f64>,
}

impl FrequencyCountSketch {
    /// Create an estimator.
    ///
    /// # Panics
    /// Panics if `depth` or `width` is zero.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(width > 0, "width must be positive");
        let mut rng = PhiloxRng::seed_from(seed);
        let bucket_seeds = (0..depth).map(|_| rng.gen::<u64>()).collect();
        let sign_seeds = (0..depth).map(|_| rng.gen::<u64>()).collect();
        Self {
            depth,
            width,
            bucket_seeds,
            sign_seeds,
            counters: vec![0.0; depth * width],
        }
    }

    /// Number of hash rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    fn mix(seed: u64, item: u64) -> u64 {
        let mut x = item ^ seed.rotate_left(31);
        x = (x ^ (x >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x = (x ^ (x >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^ (x >> 33)
    }

    #[inline]
    fn bucket(&self, row: usize, item: u64) -> usize {
        (Self::mix(self.bucket_seeds[row], item) % self.width as u64) as usize
    }

    #[inline]
    fn sign(&self, row: usize, item: u64) -> f64 {
        if Self::mix(self.sign_seeds[row], item) & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    }

    /// Process one occurrence of `item` with weight `count`.
    pub fn update(&mut self, item: u64, count: f64) {
        for row in 0..self.depth {
            let b = self.bucket(row, item);
            let s = self.sign(row, item);
            self.counters[row * self.width + b] += s * count;
        }
    }

    /// Estimate the total weight of `item` seen so far (median over the rows).
    pub fn estimate(&self, item: u64) -> f64 {
        let mut votes: Vec<f64> = (0..self.depth)
            .map(|row| {
                self.sign(row, item) * self.counters[row * self.width + self.bucket(row, item)]
            })
            .collect();
        votes.sort_by(|a, b| a.partial_cmp(b).expect("no NaN counters"));
        let mid = self.depth / 2;
        if self.depth % 2 == 1 {
            votes[mid]
        } else {
            0.5 * (votes[mid - 1] + votes[mid])
        }
    }

    /// Merge another sketch built with the same parameters and seeds (e.g. from another
    /// shard of the stream).
    ///
    /// # Panics
    /// Panics if the two sketches are not mergeable (different shape or seeds).
    pub fn merge(&mut self, other: &FrequencyCountSketch) {
        assert_eq!(self.depth, other.depth, "depth mismatch");
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.bucket_seeds, other.bucket_seeds, "seed mismatch");
        assert_eq!(self.sign_seeds, other.sign_seeds, "seed mismatch");
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hitters_are_estimated_accurately() {
        let mut sketch = FrequencyCountSketch::new(5, 256, 42);
        // One heavy item among uniform noise.
        for i in 0..5000u64 {
            sketch.update(i % 500, 1.0);
        }
        for _ in 0..2000 {
            sketch.update(7, 1.0);
        }
        let est = sketch.estimate(7);
        let true_count = 2000.0 + 10.0; // item 7 also appears in the background stream
        assert!(
            (est - true_count).abs() < 0.15 * true_count,
            "estimate {est} vs {true_count}"
        );
    }

    #[test]
    fn unseen_items_estimate_near_zero() {
        let mut sketch = FrequencyCountSketch::new(5, 512, 1);
        for i in 0..1000u64 {
            sketch.update(i, 1.0);
        }
        let est = sketch.estimate(999_999);
        assert!(est.abs() < 50.0, "estimate {est}");
    }

    #[test]
    fn weighted_updates_accumulate() {
        let mut sketch = FrequencyCountSketch::new(3, 64, 9);
        sketch.update(5, 2.5);
        sketch.update(5, 1.5);
        assert!((sketch.estimate(5) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_processing_the_union() {
        let mut left = FrequencyCountSketch::new(5, 128, 7);
        let mut right = FrequencyCountSketch::new(5, 128, 7);
        let mut combined = FrequencyCountSketch::new(5, 128, 7);
        for i in 0..500u64 {
            left.update(i % 37, 1.0);
            combined.update(i % 37, 1.0);
        }
        for i in 0..500u64 {
            right.update(i % 11, 1.0);
            combined.update(i % 11, 1.0);
        }
        left.merge(&right);
        for item in 0..40u64 {
            assert!((left.estimate(item) - combined.estimate(item)).abs() < 1e-9);
        }
    }

    #[test]
    fn even_depth_uses_average_of_middle_votes() {
        let mut sketch = FrequencyCountSketch::new(4, 64, 3);
        sketch.update(1, 10.0);
        let est = sketch.estimate(1);
        assert!((est - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "depth mismatch")]
    fn merge_rejects_incompatible_shapes() {
        let mut a = FrequencyCountSketch::new(3, 64, 1);
        let b = FrequencyCountSketch::new(4, 64, 1);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_is_rejected() {
        FrequencyCountSketch::new(3, 0, 1);
    }

    #[test]
    fn accessors_report_shape() {
        let s = FrequencyCountSketch::new(3, 64, 1);
        assert_eq!(s.depth(), 3);
        assert_eq!(s.width(), 64);
    }
}
