//! Symbolic complexity summary — the contents of the paper's Table 1.
//!
//! | Sketch | Embed dim | Arithmetic | Read/Writes | Max distortion |
//! |---|---|---|---|---|
//! | Gaussian | ε⁻²n | dn² | dn | 1 + ε |
//! | SRHT | ε⁻²n·log n | dn·log n | dn·log n | 1 + ε |
//! | CountSketch | ε⁻²n² | dn | dn | 1 + ε |
//! | MultiSketch(ε₁, ε₂) | ε₂⁻²n | dn + n⁴ | dn + n⁴ | (1 + ε₁)(1 + ε₂) |
//!
//! The `table1` benchmark binary prints these formulas evaluated at the paper's problem
//! sizes alongside the counters measured from the actual kernels, so a reader can check
//! that the implementation's measured traffic matches the asymptotic claims.

/// The sketching methods compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SketchKind {
    /// Dense Gaussian sketch applied with GEMM.
    Gaussian,
    /// Subsampled randomized Hadamard transform.
    Srht,
    /// CountSketch (either the Algorithm 2 kernel or the SpMM baseline).
    CountSketch,
    /// CountSketch followed by a Gaussian sketch.
    MultiSketch,
}

impl SketchKind {
    /// All kinds, in the order Table 1 lists them.
    pub const ALL: [SketchKind; 4] = [
        SketchKind::Gaussian,
        SketchKind::Srht,
        SketchKind::CountSketch,
        SketchKind::MultiSketch,
    ];

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            SketchKind::Gaussian => "Gaussian",
            SketchKind::Srht => "SRHT",
            SketchKind::CountSketch => "CountSketch",
            SketchKind::MultiSketch => "MultiSketch",
        }
    }

    /// Asymptotically optimal embedding dimension for an `n`-dimensional subspace at
    /// distortion `eps` (the "Embed Dim." column).
    ///
    /// For the multisketch the two distortions are taken equal to `eps`, matching the
    /// `MultiSketch(ε₁, ε₂)` row with `ε₁ = ε₂ = ε`.
    pub fn embedding_dim(&self, n: usize, eps: f64) -> f64 {
        let n = n as f64;
        let inv_eps2 = eps.powi(-2);
        match self {
            SketchKind::Gaussian => inv_eps2 * n,
            SketchKind::Srht => inv_eps2 * n * n.max(2.0).log2(),
            SketchKind::CountSketch => inv_eps2 * n * n,
            SketchKind::MultiSketch => inv_eps2 * n,
        }
    }

    /// Arithmetic operations required to apply the sketch to a dense `d x n` matrix
    /// (the "Arithmetic" column).
    pub fn arithmetic(&self, d: usize, n: usize) -> f64 {
        let d = d as f64;
        let n = n as f64;
        match self {
            SketchKind::Gaussian => d * n * n,
            SketchKind::Srht => d * n * n.max(2.0).log2(),
            SketchKind::CountSketch => d * n,
            SketchKind::MultiSketch => d * n + n.powi(4),
        }
    }

    /// Memory reads/writes required to apply the sketch to a dense `d x n` matrix
    /// (the "Read/Writes" column), in units of matrix elements.
    pub fn read_writes(&self, d: usize, n: usize) -> f64 {
        let d = d as f64;
        let n = n as f64;
        match self {
            SketchKind::Gaussian => d * n,
            SketchKind::Srht => d * n * n.max(2.0).log2(),
            SketchKind::CountSketch => d * n,
            SketchKind::MultiSketch => d * n + n.powi(4),
        }
    }

    /// Worst-case distortion factor (the "Max Distortion" column).
    pub fn max_distortion(&self, eps: f64) -> f64 {
        match self {
            SketchKind::MultiSketch => (1.0 + eps) * (1.0 + eps),
            _ => 1.0 + eps,
        }
    }

    /// The embedding dimension the paper's experiments actually use for a width-`n`
    /// problem (`k = 2n` for Gaussian/SRHT/multisketch output, `k = 2n²` for the
    /// CountSketch and the multisketch's intermediate stage).
    pub fn experimental_embedding_dim(&self, n: usize) -> usize {
        match self {
            SketchKind::Gaussian | SketchKind::Srht | SketchKind::MultiSketch => 2 * n,
            SketchKind::CountSketch => 2 * n * n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_order_match_table1() {
        let labels: Vec<&str> = SketchKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec!["Gaussian", "SRHT", "CountSketch", "MultiSketch"]
        );
    }

    #[test]
    fn countsketch_needs_quadratic_embedding_dimension() {
        let n = 64;
        let eps = 0.5;
        let cs = SketchKind::CountSketch.embedding_dim(n, eps);
        let gauss = SketchKind::Gaussian.embedding_dim(n, eps);
        assert!((cs / gauss - n as f64).abs() < 1e-9);
    }

    #[test]
    fn multisketch_matches_gaussian_embedding_dim_but_countsketch_arithmetic() {
        let (d, n, eps) = (1 << 21, 128, 0.5);
        assert_eq!(
            SketchKind::MultiSketch.embedding_dim(n, eps),
            SketchKind::Gaussian.embedding_dim(n, eps)
        );
        // dn + n⁴ is far below dn² for these sizes.
        assert!(SketchKind::MultiSketch.arithmetic(d, n) < SketchKind::Gaussian.arithmetic(d, n));
        assert!(
            SketchKind::MultiSketch.arithmetic(d, n) >= SketchKind::CountSketch.arithmetic(d, n)
        );
    }

    #[test]
    fn srht_costs_carry_the_log_factor() {
        let (d, n) = (1 << 20, 64);
        let ratio = SketchKind::Srht.read_writes(d, n) / SketchKind::CountSketch.read_writes(d, n);
        assert!((ratio - 6.0).abs() < 1e-9); // log2(64) = 6
    }

    #[test]
    fn distortion_compounds_for_multisketch() {
        assert!((SketchKind::Gaussian.max_distortion(0.1) - 1.1).abs() < 1e-12);
        assert!((SketchKind::MultiSketch.max_distortion(0.1) - 1.21).abs() < 1e-12);
    }

    #[test]
    fn experimental_dimensions_match_section6() {
        let n = 128;
        assert_eq!(SketchKind::Gaussian.experimental_embedding_dim(n), 256);
        assert_eq!(SketchKind::Srht.experimental_embedding_dim(n), 256);
        assert_eq!(SketchKind::MultiSketch.experimental_embedding_dim(n), 256);
        assert_eq!(
            SketchKind::CountSketch.experimental_embedding_dim(n),
            2 * 128 * 128
        );
    }
}
