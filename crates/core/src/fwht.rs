//! Fast Walsh–Hadamard transforms (Algorithm 3).
//!
//! The SRHT of Section 5 needs an FWHT that is fast on the device.  The paper adapts the
//! single-vector radix-4 FWHT from NVIDIA's CUDA samples to operate on all columns of a
//! matrix and to exploit shared memory: once the butterfly span fits into the available
//! shared memory, the remaining stages are executed entirely out of the on-chip tile,
//! which removes `O(log tile)` global read/write passes.  [`fwht_matrix_columns`] models
//! exactly that saving in its traffic accounting.

use rayon::prelude::*;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{Layout, Matrix};

/// Default modelled "shared memory" tile: 2048 doubles = 16 KiB per column tile.
pub const DEFAULT_TILE: usize = 2048;

/// One radix-2 butterfly stage with half-span `h` (pairs `(i, i + h)`).
fn radix2_stage(a: &mut [f64], h: usize) {
    let d = a.len();
    let mut b = 0;
    while b < d {
        for k in 0..h {
            let i0 = b + k;
            let i1 = i0 + h;
            let (x, y) = (a[i0], a[i1]);
            a[i0] = x + y;
            a[i1] = x - y;
        }
        b += 2 * h;
    }
}

/// One radix-4 butterfly stage with stride `s` (Algorithm 3's inner loop body).
fn radix4_stage(a: &mut [f64], stride: usize) {
    let d = a.len();
    let span = stride * 4;
    let mut b = 0;
    while b < d {
        for k in 0..stride {
            let i0 = b + k;
            let i1 = i0 + stride;
            let i2 = i0 + 2 * stride;
            let i3 = i0 + 3 * stride;
            let (x, y, z, t) = (a[i0], a[i1], a[i2], a[i3]);
            let xx = x + z;
            let yy = y + t;
            let zz = x - z;
            let tt = y - t;
            a[i0] = xx + yy;
            a[i1] = xx - yy;
            a[i2] = zz + tt;
            a[i3] = zz - tt;
        }
        b += span;
    }
}

/// In-place unnormalised Walsh–Hadamard transform using radix-4 stages (Algorithm 3),
/// with a single radix-2 stage when `log2(len)` is odd.
///
/// # Panics
/// Panics if the length is not a power of two (the SRHT pads to the next power of two
/// before calling this).
pub fn fwht_in_place(a: &mut [f64]) {
    let d = a.len();
    if d <= 1 {
        return;
    }
    assert!(d.is_power_of_two(), "FWHT length must be a power of two");
    let bits = d.trailing_zeros() as usize;
    let pairs = bits / 2;
    let mut stride = d / 4;
    for _ in 0..pairs {
        radix4_stage(a, stride);
        stride /= 4;
    }
    if bits % 2 == 1 {
        radix2_stage(a, 1);
    }
}

/// Reference radix-2 implementation (used by tests and the FWHT ablation bench).
pub fn fwht_radix2_in_place(a: &mut [f64]) {
    let d = a.len();
    if d <= 1 {
        return;
    }
    assert!(d.is_power_of_two(), "FWHT length must be a power of two");
    let mut h = 1;
    while h < d {
        radix2_stage(a, h);
        h *= 2;
    }
}

/// Number of *global-memory* passes the tiled device implementation needs for a
/// transform of length `d` with a shared-memory tile of `tile` doubles.
///
/// Radix-4 stages whose butterfly span exceeds the tile each stream the whole vector
/// through global memory; all remaining stages run out of the tile and cost one
/// combined pass.
pub fn global_passes(d: usize, tile: usize) -> u64 {
    if d <= 1 {
        return 0;
    }
    let bits = (d.max(2)).trailing_zeros() as usize;
    let pairs = bits / 2;
    let mut passes = 0u64;
    let mut stride = d / 4;
    let tile = tile.max(4);
    for _ in 0..pairs {
        if stride * 4 > tile {
            passes += 1;
        }
        stride /= 4;
    }
    if bits % 2 == 1 && 2 > tile {
        passes += 1;
    }
    // All in-tile stages together cost one read + write pass.
    passes + 1
}

/// Apply the unnormalised FWHT to every column of a column-major matrix in parallel,
/// recording the tiled traffic model on `device`.
///
/// # Panics
/// Panics if the matrix is not column-major or its row count is not a power of two.
pub fn fwht_matrix_columns(device: &Device, a: &mut Matrix, tile: usize) {
    assert_eq!(
        a.layout(),
        Layout::ColMajor,
        "the SRHT pipeline keeps everything column-major (Section 5)"
    );
    let d = a.nrows();
    let n = a.ncols();
    if d > 1 {
        assert!(d.is_power_of_two(), "FWHT length must be a power of two");
    }
    {
        let data = a.as_mut_slice();
        data.par_chunks_mut(d.max(1)).for_each(|col| {
            fwht_in_place(col);
        });
    }

    let passes = global_passes(d, tile);
    let dn = (d * n) as u64;
    let bits = if d > 1 { d.trailing_zeros() as u64 } else { 0 };
    device.record(KernelCost::new(
        KernelCost::f64_bytes(dn) * passes,
        KernelCost::f64_bytes(dn) * passes,
        2 * dn * bits,
        passes.max(1),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// O(d²) reference: multiply by the Hadamard matrix built from the recursion.
    fn dense_hadamard_apply(x: &[f64]) -> Vec<f64> {
        let d = x.len();
        let mut h = vec![vec![1.0f64]];
        while h.len() < d {
            let m = h.len();
            let mut next = vec![vec![0.0; 2 * m]; 2 * m];
            for i in 0..m {
                for j in 0..m {
                    next[i][j] = h[i][j];
                    next[i][j + m] = h[i][j];
                    next[i + m][j] = h[i][j];
                    next[i + m][j + m] = -h[i][j];
                }
            }
            h = next;
        }
        (0..d)
            .map(|i| (0..d).map(|j| h[i][j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn radix4_matches_dense_hadamard_for_power_of_four() {
        for d in [4usize, 16, 64] {
            let x: Vec<f64> = (0..d).map(|i| (i as f64 * 0.7).sin()).collect();
            let mut a = x.clone();
            fwht_in_place(&mut a);
            let expect = dense_hadamard_apply(&x);
            for (got, want) in a.iter().zip(&expect) {
                assert!((got - want).abs() < 1e-10, "d={d}");
            }
        }
    }

    #[test]
    fn radix4_matches_dense_hadamard_for_odd_log2() {
        for d in [2usize, 8, 32, 128] {
            let x: Vec<f64> = (0..d).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let mut a = x.clone();
            fwht_in_place(&mut a);
            let expect = dense_hadamard_apply(&x);
            for (got, want) in a.iter().zip(&expect) {
                assert!((got - want).abs() < 1e-10, "d={d}");
            }
        }
    }

    #[test]
    fn radix4_and_radix2_agree() {
        for d in [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
            let x: Vec<f64> = (0..d).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
            let mut a = x.clone();
            let mut b = x.clone();
            fwht_in_place(&mut a);
            fwht_radix2_in_place(&mut b);
            assert_eq!(a, b, "d={d}");
        }
    }

    #[test]
    fn fwht_is_an_involution_up_to_scaling() {
        let d = 256;
        let x: Vec<f64> = (0..d).map(|i| (i as f64).cos()).collect();
        let mut a = x.clone();
        fwht_in_place(&mut a);
        fwht_in_place(&mut a);
        for (got, want) in a.iter().zip(&x) {
            assert!((got - d as f64 * want).abs() < 1e-9);
        }
    }

    #[test]
    fn fwht_preserves_energy_with_hadamard_scaling() {
        // ||H x||² = d ||x||² because HᵀH = d I.
        let d = 512;
        let x: Vec<f64> = (0..d).map(|i| ((i % 13) as f64) / 13.0 - 0.5).collect();
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let mut a = x;
        fwht_in_place(&mut a);
        let ea: f64 = a.iter().map(|v| v * v).sum();
        assert!((ea - d as f64 * ex).abs() / (d as f64 * ex) < 1e-12);
    }

    #[test]
    fn trivial_lengths_are_noops() {
        let mut a: Vec<f64> = vec![];
        fwht_in_place(&mut a);
        let mut b = vec![3.0];
        fwht_in_place(&mut b);
        assert_eq!(b, vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_is_rejected() {
        let mut a = vec![1.0; 12];
        fwht_in_place(&mut a);
    }

    #[test]
    fn global_passes_decrease_with_larger_tiles() {
        let d = 1 << 20;
        let small = global_passes(d, 256);
        let large = global_passes(d, 1 << 16);
        let whole = global_passes(d, d);
        assert!(small > large);
        assert_eq!(whole, 1);
        assert_eq!(global_passes(1, 16), 0);
    }

    #[test]
    fn matrix_fwht_transforms_each_column_independently() {
        let device = Device::unlimited();
        let d = 64;
        let n = 3;
        let mut m = Matrix::random_gaussian(d, n, Layout::ColMajor, 5, 0);
        let cols: Vec<Vec<f64>> = (0..n).map(|j| m.col_to_vec(j)).collect();
        fwht_matrix_columns(&device, &mut m, DEFAULT_TILE);
        for (j, col) in cols.iter().enumerate() {
            let mut expect = col.clone();
            fwht_in_place(&mut expect);
            for i in 0..d {
                assert!((m.get(i, j) - expect[i]).abs() < 1e-10);
            }
        }
        // Cost was recorded.
        assert!(device.tracker().snapshot().total_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "column-major")]
    fn matrix_fwht_requires_col_major() {
        let device = Device::unlimited();
        let mut m = Matrix::zeros_with_layout(8, 2, Layout::RowMajor);
        fwht_matrix_columns(&device, &mut m, DEFAULT_TILE);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_fwht_matches_radix2(pow in 1u32..11, seed in 0u64..1000) {
            let d = 1usize << pow;
            let x = sketch_rng::fill::gaussian_vec(seed, 0, d);
            let mut a = x.clone();
            let mut b = x;
            fwht_in_place(&mut a);
            fwht_radix2_in_place(&mut b);
            for (ai, bi) in a.iter().zip(&b) {
                prop_assert!((ai - bi).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_parseval_identity(pow in 1u32..11, seed in 0u64..1000) {
            let d = 1usize << pow;
            let x = sketch_rng::fill::gaussian_vec(seed, 1, d);
            let ex: f64 = x.iter().map(|v| v * v).sum();
            let mut a = x;
            fwht_in_place(&mut a);
            let ea: f64 = a.iter().map(|v| v * v).sum();
            prop_assert!((ea - d as f64 * ex).abs() <= 1e-9 * (1.0 + d as f64 * ex));
        }
    }
}
