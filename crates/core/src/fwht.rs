//! Fast Walsh–Hadamard transforms (Algorithm 3).
//!
//! The SRHT of Section 5 needs an FWHT that is fast on the device.  The paper adapts the
//! single-vector radix-4 FWHT from NVIDIA's CUDA samples to operate on all columns of a
//! matrix and to exploit shared memory: once the butterfly span fits into the available
//! shared memory, the remaining stages are executed entirely out of the on-chip tile,
//! which removes `O(log tile)` global read/write passes.  [`fwht_matrix_columns`] runs
//! exactly that schedule on the host via [`fwht_tiled_in_place`] — large-span stages as
//! whole-vector passes, then every cache-tile-sized block finished in one resident
//! sweep — so the recorded traffic model and the executed memory traffic agree.
//!
//! All implementations here run their butterfly stages in **descending span order**, and
//! one radix-4 stage performs bit-for-bit the adds of its two constituent radix-2 stages
//! in the same order.  Any radix-2/radix-4 split and any tile size therefore produces
//! bitwise-identical output — tiling is a scheduling choice, not a numeric one, which is
//! what keeps the repo's bitwise determinism gates indifferent to FWHT tuning.

use rayon::prelude::*;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{Layout, Matrix};

/// Default modelled "shared memory" tile: 2048 doubles = 16 KiB per column tile.
pub const DEFAULT_TILE: usize = 2048;

/// One radix-2 butterfly stage with half-span `h` (pairs `(i, i + h)`).
///
/// Blocks are walked with `chunks_exact_mut` and each half as a zipped iterator pair,
/// so the inner loop carries no bounds checks and vectorizes; the butterflies and their
/// order are identical to the indexed formulation.
fn radix2_stage(a: &mut [f64], h: usize) {
    for block in a.chunks_exact_mut(2 * h) {
        let (lo, hi) = block.split_at_mut(h);
        for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
            let (xv, yv) = (*x, *y);
            *x = xv + yv;
            *y = xv - yv;
        }
    }
}

/// One radix-4 butterfly stage with stride `s` (Algorithm 3's inner loop body).
///
/// Same bounds-check-free structure as [`radix2_stage`]: each span splits into its four
/// quarter lanes and the butterfly runs over the zipped lanes.
fn radix4_stage(a: &mut [f64], stride: usize) {
    for block in a.chunks_exact_mut(4 * stride) {
        let (q0, rest) = block.split_at_mut(stride);
        let (q1, rest) = rest.split_at_mut(stride);
        let (q2, q3) = rest.split_at_mut(stride);
        for (((p0, p1), p2), p3) in q0
            .iter_mut()
            .zip(q1.iter_mut())
            .zip(q2.iter_mut())
            .zip(q3.iter_mut())
        {
            let (x, y, z, t) = (*p0, *p1, *p2, *p3);
            let xx = x + z;
            let yy = y + t;
            let zz = x - z;
            let tt = y - t;
            *p0 = xx + yy;
            *p1 = xx - yy;
            *p2 = zz + tt;
            *p3 = zz - tt;
        }
    }
}

/// In-place unnormalised Walsh–Hadamard transform using radix-4 stages (Algorithm 3),
/// with a single radix-2 stage when `log2(len)` is odd.
///
/// # Panics
/// Panics if the length is not a power of two (the SRHT pads to the next power of two
/// before calling this).
pub fn fwht_in_place(a: &mut [f64]) {
    let d = a.len();
    if d <= 1 {
        return;
    }
    assert!(d.is_power_of_two(), "FWHT length must be a power of two");
    let bits = d.trailing_zeros() as usize;
    let pairs = bits / 2;
    let mut stride = d / 4;
    for _ in 0..pairs {
        radix4_stage(a, stride);
        stride /= 4;
    }
    if bits % 2 == 1 {
        radix2_stage(a, 1);
    }
}

/// Reference radix-2 implementation (used by tests and the FWHT ablation bench).
///
/// Stages run in descending span order (`h = d/2` down to `1`), matching the radix-4
/// kernel's schedule: one radix-4 stage at stride `s` performs exactly the adds of the
/// radix-2 stages at `h = 2s` then `h = s`, so this reference is **bitwise** equal to
/// [`fwht_in_place`] and [`fwht_tiled_in_place`], not merely close.
pub fn fwht_radix2_in_place(a: &mut [f64]) {
    let d = a.len();
    if d <= 1 {
        return;
    }
    assert!(d.is_power_of_two(), "FWHT length must be a power of two");
    let mut h = d / 2;
    while h >= 1 {
        radix2_stage(a, h);
        h /= 2;
    }
}

/// Cache-tiled in-place FWHT: radix-4 stages run as whole-vector passes while their
/// butterfly span exceeds `tile`; once the remaining sub-transforms fit, every
/// `tile`-sized block is finished in a single resident sweep ([`fwht_in_place`] on the
/// block — the remaining stages touch no indices outside it).
///
/// Bitwise identical to [`fwht_in_place`] for every `tile`: a stage's butterflies are
/// disjoint, so executing them block-by-block instead of stage-by-stage reorders only
/// independent operations.  This is the host realisation of the shared-memory schedule
/// that [`global_passes`] has always charged for.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fwht_tiled_in_place(a: &mut [f64], tile: usize) {
    let d = a.len();
    if d <= 1 {
        return;
    }
    assert!(d.is_power_of_two(), "FWHT length must be a power of two");
    let tile = tile.max(4);
    let mut len = d;
    while len > tile {
        radix4_stage(a, len / 4);
        len /= 4;
    }
    for chunk in a.chunks_mut(len) {
        fwht_in_place(chunk);
    }
}

/// Number of *global-memory* passes the tiled device implementation needs for a
/// transform of length `d` with a shared-memory tile of `tile` doubles.
///
/// Radix-4 stages whose butterfly span exceeds the tile each stream the whole vector
/// through global memory; all remaining stages run out of the tile and cost one
/// combined pass.
pub fn global_passes(d: usize, tile: usize) -> u64 {
    if d <= 1 {
        return 0;
    }
    let bits = (d.max(2)).trailing_zeros() as usize;
    let pairs = bits / 2;
    let mut passes = 0u64;
    let mut stride = d / 4;
    let tile = tile.max(4);
    for _ in 0..pairs {
        if stride * 4 > tile {
            passes += 1;
        }
        stride /= 4;
    }
    if bits % 2 == 1 && 2 > tile {
        passes += 1;
    }
    // All in-tile stages together cost one read + write pass.
    passes + 1
}

/// Apply the unnormalised FWHT to every column of a column-major matrix in parallel,
/// executing the cache-tiled schedule ([`fwht_tiled_in_place`] with the same `tile` the
/// traffic model charges for) and recording that model on `device`.
///
/// Parallel task boundaries are one column each — a pure function of the matrix shape,
/// never of thread count or tile tuning — and the tiled kernel is bitwise identical to
/// the un-tiled one, so results are bit-for-bit stable under both knobs.
///
/// # Panics
/// Panics if the matrix is not column-major or its row count is not a power of two.
pub fn fwht_matrix_columns(device: &Device, a: &mut Matrix, tile: usize) {
    assert_eq!(
        a.layout(),
        Layout::ColMajor,
        "the SRHT pipeline keeps everything column-major (Section 5)"
    );
    let d = a.nrows();
    let n = a.ncols();
    if d > 1 {
        assert!(d.is_power_of_two(), "FWHT length must be a power of two");
    }
    {
        let data = a.as_mut_slice();
        data.par_chunks_mut(d.max(1)).for_each(|col| {
            fwht_tiled_in_place(col, tile);
        });
    }

    let passes = global_passes(d, tile);
    let dn = (d * n) as u64;
    let bits = if d > 1 { d.trailing_zeros() as u64 } else { 0 };
    device.record(KernelCost::new(
        KernelCost::f64_bytes(dn) * passes,
        KernelCost::f64_bytes(dn) * passes,
        2 * dn * bits,
        passes.max(1),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// O(d²) reference: multiply by the Hadamard matrix built from the recursion.
    fn dense_hadamard_apply(x: &[f64]) -> Vec<f64> {
        let d = x.len();
        let mut h = vec![vec![1.0f64]];
        while h.len() < d {
            let m = h.len();
            let mut next = vec![vec![0.0; 2 * m]; 2 * m];
            for i in 0..m {
                for j in 0..m {
                    next[i][j] = h[i][j];
                    next[i][j + m] = h[i][j];
                    next[i + m][j] = h[i][j];
                    next[i + m][j + m] = -h[i][j];
                }
            }
            h = next;
        }
        (0..d)
            .map(|i| (0..d).map(|j| h[i][j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn radix4_matches_dense_hadamard_for_power_of_four() {
        for d in [4usize, 16, 64] {
            let x: Vec<f64> = (0..d).map(|i| (i as f64 * 0.7).sin()).collect();
            let mut a = x.clone();
            fwht_in_place(&mut a);
            let expect = dense_hadamard_apply(&x);
            for (got, want) in a.iter().zip(&expect) {
                assert!((got - want).abs() < 1e-10, "d={d}");
            }
        }
    }

    #[test]
    fn radix4_matches_dense_hadamard_for_odd_log2() {
        for d in [2usize, 8, 32, 128] {
            let x: Vec<f64> = (0..d).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let mut a = x.clone();
            fwht_in_place(&mut a);
            let expect = dense_hadamard_apply(&x);
            for (got, want) in a.iter().zip(&expect) {
                assert!((got - want).abs() < 1e-10, "d={d}");
            }
        }
    }

    #[test]
    fn radix4_and_radix2_agree_bitwise() {
        // Descending-order radix-2 runs the exact adds of the radix-4 schedule, so the
        // agreement is bit-for-bit even on irrational data.
        for d in [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
            let x = sketch_rng::fill::gaussian_vec(42, d as u64, d);
            let mut a = x.clone();
            let mut b = x;
            fwht_in_place(&mut a);
            fwht_radix2_in_place(&mut b);
            for (i, (ai, bi)) in a.iter().zip(&b).enumerate() {
                assert_eq!(ai.to_bits(), bi.to_bits(), "d={d} i={i}");
            }
        }
    }

    #[test]
    fn tiled_fwht_is_bitwise_equal_to_untiled_for_any_tile() {
        for d in [2usize, 8, 64, 256, 4096] {
            let x = sketch_rng::fill::gaussian_vec(7, d as u64, d);
            let mut want = x.clone();
            fwht_in_place(&mut want);
            for tile in [1usize, 4, 16, 64, 2048, 1 << 20] {
                let mut got = x.clone();
                fwht_tiled_in_place(&mut got, tile);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(g.to_bits(), w.to_bits(), "d={d} tile={tile} i={i}");
                }
            }
        }
    }

    #[test]
    fn tiled_fwht_matches_radix2_reference_up_to_2_pow_20() {
        // Satellite gate: every power-of-two length up to 2^20, bit-for-bit against the
        // independent radix-2 reference, at the production DEFAULT_TILE.
        for pow in 1u32..=20 {
            let d = 1usize << pow;
            let x = sketch_rng::fill::gaussian_vec(1234, pow as u64, d);
            let mut tiled = x.clone();
            let mut reference = x;
            fwht_tiled_in_place(&mut tiled, DEFAULT_TILE);
            fwht_radix2_in_place(&mut reference);
            assert!(
                tiled
                    .iter()
                    .zip(&reference)
                    .all(|(t, r)| t.to_bits() == r.to_bits()),
                "d=2^{pow} differs from the radix-2 reference"
            );
        }
    }

    #[test]
    fn fwht_is_an_involution_up_to_scaling() {
        let d = 256;
        let x: Vec<f64> = (0..d).map(|i| (i as f64).cos()).collect();
        let mut a = x.clone();
        fwht_in_place(&mut a);
        fwht_in_place(&mut a);
        for (got, want) in a.iter().zip(&x) {
            assert!((got - d as f64 * want).abs() < 1e-9);
        }
    }

    #[test]
    fn fwht_preserves_energy_with_hadamard_scaling() {
        // ||H x||² = d ||x||² because HᵀH = d I.
        let d = 512;
        let x: Vec<f64> = (0..d).map(|i| ((i % 13) as f64) / 13.0 - 0.5).collect();
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let mut a = x;
        fwht_in_place(&mut a);
        let ea: f64 = a.iter().map(|v| v * v).sum();
        assert!((ea - d as f64 * ex).abs() / (d as f64 * ex) < 1e-12);
    }

    #[test]
    fn trivial_lengths_are_noops() {
        let mut a: Vec<f64> = vec![];
        fwht_in_place(&mut a);
        let mut b = vec![3.0];
        fwht_in_place(&mut b);
        assert_eq!(b, vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_is_rejected() {
        let mut a = vec![1.0; 12];
        fwht_in_place(&mut a);
    }

    #[test]
    fn global_passes_decrease_with_larger_tiles() {
        let d = 1 << 20;
        let small = global_passes(d, 256);
        let large = global_passes(d, 1 << 16);
        let whole = global_passes(d, d);
        assert!(small > large);
        assert_eq!(whole, 1);
        assert_eq!(global_passes(1, 16), 0);
    }

    #[test]
    fn matrix_fwht_transforms_each_column_independently() {
        let device = Device::unlimited();
        let d = 64;
        let n = 3;
        let mut m = Matrix::random_gaussian(d, n, Layout::ColMajor, 5, 0);
        let cols: Vec<Vec<f64>> = (0..n).map(|j| m.col_to_vec(j)).collect();
        fwht_matrix_columns(&device, &mut m, DEFAULT_TILE);
        for (j, col) in cols.iter().enumerate() {
            let mut expect = col.clone();
            fwht_in_place(&mut expect);
            for i in 0..d {
                assert!((m.get(i, j) - expect[i]).abs() < 1e-10);
            }
        }
        // Cost was recorded.
        assert!(device.tracker().snapshot().total_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "column-major")]
    fn matrix_fwht_requires_col_major() {
        let device = Device::unlimited();
        let mut m = Matrix::zeros_with_layout(8, 2, Layout::RowMajor);
        fwht_matrix_columns(&device, &mut m, DEFAULT_TILE);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_fwht_matches_radix2(pow in 1u32..11, seed in 0u64..1000) {
            let d = 1usize << pow;
            let x = sketch_rng::fill::gaussian_vec(seed, 0, d);
            let mut a = x.clone();
            let mut b = x;
            fwht_in_place(&mut a);
            fwht_radix2_in_place(&mut b);
            for (ai, bi) in a.iter().zip(&b) {
                prop_assert!(ai.to_bits() == bi.to_bits());
            }
        }

        #[test]
        fn prop_tiled_fwht_is_tile_invariant(pow in 1u32..13, tile_pow in 0u32..14, seed in 0u64..1000) {
            let d = 1usize << pow;
            let x = sketch_rng::fill::gaussian_vec(seed, 2, d);
            let mut tiled = x.clone();
            let mut plain = x;
            fwht_tiled_in_place(&mut tiled, 1usize << tile_pow);
            fwht_in_place(&mut plain);
            for (ti, pi) in tiled.iter().zip(&plain) {
                prop_assert!(ti.to_bits() == pi.to_bits());
            }
        }

        #[test]
        fn prop_parseval_identity(pow in 1u32..11, seed in 0u64..1000) {
            let d = 1usize << pow;
            let x = sketch_rng::fill::gaussian_vec(seed, 1, d);
            let ex: f64 = x.iter().map(|v| v * v).sum();
            let mut a = x;
            fwht_in_place(&mut a);
            let ea: f64 = a.iter().map(|v| v * v).sum();
            prop_assert!((ea - d as f64 * ex).abs() <= 1e-9 * (1.0 + d as f64 * ex));
        }
    }
}
