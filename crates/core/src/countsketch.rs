//! The CountSketch operator and its three application strategies.
//!
//! Definition 4.1: the CountSketch `S ∈ R^{k x d}` has exactly one `±1` per column, at a
//! uniformly random row.  Applying it to `A ∈ R^{d x n}` therefore adds or subtracts
//! each row of `A` into one row of `Y = S A` (equation (2) of the paper), which is what
//! **Algorithm 2** parallelises with one thread per input row and atomic adds on the
//! output:
//!
//! ```text
//! parallel for j = 1..d:
//!     atomicAdd(Y[r_j, :],  s_j ? A[j, :] : -A[j, :])
//! ```
//!
//! The *cost model* charges exactly that atomic kernel.  The host *execution*,
//! however, inverts the row map and gathers over output rows (`invert_row_map`),
//! because atomic f64 adds have a scheduling-dependent fold order under the real
//! thread pool and would break the workspace's bit-exactness contract.  The gather
//! folds each output cell's contributions in ascending input-row order — the serial
//! scatter's order — so results are bit-identical for any `RAYON_NUM_THREADS`.
//!
//! Three ways of applying the same operator are provided:
//!
//! * [`SketchOperator::apply_into`] / [`SketchOperator::apply_matrix`] — the paper's
//!   dedicated kernel (Algorithm 2), operand-generic (dense or CSR) and, through
//!   `apply_into`, allocation-free,
//! * [`CountSketch::apply_matrix_gather`] — an atomics-free ablation that first inverts
//!   the row map and then lets every *output* row gather its inputs,
//! * [`CountSketch::apply_matrix_spmm`] — the naive baseline: materialise `S` as a CSR
//!   sparse matrix and call the generic SpMM (the cuSPARSE path of Figures 2–4).
//!
//! [`HashCountSketch`] is the streaming variant of Section 8 (future work in the paper):
//! `r_j` and `s_j` are recomputed from a hash of `j` instead of being stored, trading a
//! little arithmetic for zero generation time and zero index storage.

use crate::error::Error;
use crate::operand::Operand;
use crate::traits::SketchOperator;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{Layout, Matrix, MatrixViewMut};
use sketch_rng::fill;
use sketch_sparse::{spmm, CooMatrix, CsrMatrix};

/// Extra read factor charged when the kernel must stream a column-major `A` row-wise
/// (uncoalesced reads); the row-major layout recommended by Section 6.1 avoids it.
const COL_MAJOR_READ_PENALTY: u64 = 2;

/// The explicit CountSketch: a stored row map `r` and sign vector `s`.
#[derive(Debug, Clone)]
pub struct CountSketch {
    d: usize,
    k: usize,
    rows: Vec<usize>,
    signs: Vec<bool>,
    generation_cost: KernelCost,
}

impl CountSketch {
    /// Generate a CountSketch `S ∈ R^{k x d}` from a seed.
    ///
    /// Only `d` uniform integers and `d` random signs are generated — the cheapness of
    /// this step relative to generating `k·d` Gaussians is half the paper's argument.
    pub fn generate(device: &Device, d: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "CountSketch output dimension must be positive");
        let rows = fill::uniform_index_vec(seed, 0, d, k);
        let signs = fill::rademacher_bool_vec(seed, 1, d);
        // Generation traffic: write d 4-byte integers and d 1-byte flags; a handful of
        // flops for the rejection sampling.
        let generation_cost = KernelCost::new(0, (d as u64) * 5, d as u64, 1);
        device.record(generation_cost);
        Self {
            d,
            k,
            rows,
            signs,
            generation_cost,
        }
    }

    /// Construct from explicit row map and signs (used by tests and the distributed
    /// driver, which carves one big CountSketch into per-process pieces).
    pub fn from_parts(d: usize, k: usize, rows: Vec<usize>, signs: Vec<bool>) -> Self {
        assert_eq!(rows.len(), d, "need one target row per input row");
        assert_eq!(signs.len(), d, "need one sign per input row");
        assert!(rows.iter().all(|&r| r < k), "row map entry out of range");
        Self {
            d,
            k,
            rows,
            signs,
            generation_cost: KernelCost::zero(),
        }
    }

    /// The stored row map (`r_j` values).
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// The stored signs (`true` = `+1`).
    pub fn signs(&self) -> &[bool] {
        &self.signs
    }

    /// Modelled cost of one Algorithm-2 style application of a CountSketch
    /// with `d_rows` input rows and `k` output rows to an operand with `ncols`
    /// columns.
    ///
    /// Exposed so other drivers (e.g. `sketch-dist`, which applies row slices
    /// of one global sketch per rank) charge exactly the same model as the
    /// single-device kernel instead of duplicating the formula.
    pub fn apply_cost(d_rows: usize, k: usize, ncols: usize, col_major_input: bool) -> KernelCost {
        let d = d_rows as u64;
        let n = ncols as u64;
        let k = k as u64;
        let read_a = KernelCost::f64_bytes(d * n)
            * if col_major_input {
                COL_MAJOR_READ_PENALTY
            } else {
                1
            };
        // Atomic add = read-modify-write on the output row, plus the initial zeroing of
        // Y and the index/sign reads.
        KernelCost::new(
            read_a + KernelCost::f64_bytes(d * n) + d * 5,
            KernelCost::f64_bytes(d * n) + KernelCost::f64_bytes(k * n),
            d * n,
            2,
        )
    }

    /// Modelled cost of scattering a CSR operand with `nnz` non-zeros through an
    /// Algorithm-2 style kernel into a `k x n` output.
    pub fn apply_cost_csr(d_rows: usize, k: usize, ncols: usize, nnz: usize) -> KernelCost {
        let d = d_rows as u64;
        let n = ncols as u64;
        let k = k as u64;
        let nnz = nnz as u64;
        let idx_bytes = (std::mem::size_of::<usize>() as u64) * (nnz + d + 1);
        KernelCost::new(
            KernelCost::f64_bytes(nnz) + idx_bytes + d * 5,
            KernelCost::f64_bytes(nnz) + KernelCost::f64_bytes(k * n),
            nnz,
            2,
        )
    }

    /// Record the cost of one Algorithm-2 style application to a `d x n` operand.
    fn record_apply_cost(&self, device: &Device, ncols: usize, col_major_input: bool) {
        device.record(Self::apply_cost(self.d, self.k, ncols, col_major_input));
    }

    /// Atomics-free ablation: invert the row map once, then let each *output* row gather
    /// and sum the input rows assigned to it.
    ///
    /// This trades the atomic RMW traffic for an extra index pass and a less balanced
    /// work distribution; the `ablations` bench compares it against Algorithm 2.
    pub fn apply_matrix_gather(&self, device: &Device, a: &Matrix) -> Result<Matrix, Error> {
        self.check_input_dim(a.nrows())?;
        let n = a.ncols();
        let _reservation = device.try_reserve(KernelCost::f64_bytes((self.k * n) as u64))?;

        let (counts, members) = invert_row_map(self.k, &self.rows);
        let mut y = Matrix::zeros_with_layout(self.k, n, Layout::RowMajor);
        {
            let data = y.as_mut_slice();
            let signs = &self.signs;
            data.par_chunks_mut_outer(n, |m, out_row| {
                for &j in &members[counts[m]..counts[m + 1]] {
                    let sign = if signs[j] { 1.0 } else { -1.0 };
                    for (c, slot) in out_row.iter_mut().enumerate() {
                        *slot += sign * a.get(j, c);
                    }
                }
            });
        }

        let d = self.d as u64;
        let n64 = n as u64;
        let k = self.k as u64;
        device.record(KernelCost::new(
            // Gathered reads of A (uncoalesced) + index arrays read twice.
            KernelCost::f64_bytes(d * n64) * COL_MAJOR_READ_PENALTY + 2 * d * 13,
            KernelCost::f64_bytes(k * n64) + d * 8,
            d * n64,
            3,
        ));
        Ok(y)
    }

    /// The naive baseline: materialise `S` as CSR and multiply with the generic SpMM.
    pub fn apply_matrix_spmm(&self, device: &Device, a: &Matrix) -> Result<Matrix, Error> {
        self.check_input_dim(a.nrows())?;
        let _reservation =
            device.try_reserve(KernelCost::f64_bytes((self.k * a.ncols()) as u64))?;
        let s = self.to_sparse();
        Ok(spmm(device, &s, a))
    }

    /// Materialise the operator as a `k x d` CSR matrix with one `±1` per column.
    pub fn to_sparse(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.k, self.d, self.d);
        for (j, (&r, &s)) in self.rows.iter().zip(self.signs.iter()).enumerate() {
            coo.push(r, j, if s { 1.0 } else { -1.0 });
        }
        CsrMatrix::from_coo(&coo)
    }
}

/// Small extension trait so the gather kernel can parallelise over output rows without
/// pulling the full rayon prelude into this module's public surface.
trait ParChunksOuter {
    fn par_chunks_mut_outer(&mut self, chunk: usize, body: impl Fn(usize, &mut [f64]) + Sync);
}

impl ParChunksOuter for [f64] {
    fn par_chunks_mut_outer(&mut self, chunk: usize, body: impl Fn(usize, &mut [f64]) + Sync) {
        use rayon::prelude::*;
        self.par_chunks_mut(chunk.max(1))
            .enumerate()
            .for_each(|(i, slice)| body(i, slice));
    }
}

/// Invert a CountSketch row map by counting sort: returns `(counts, members)`
/// where `members[counts[r]..counts[r + 1]]` lists, **in ascending input-row
/// order**, every `j` with `target(j) == r`.
///
/// The ascending order inside each bucket is load-bearing: the gather kernels
/// below fold each output cell's contributions in exactly the order the serial
/// scatter would, so their results are bit-for-bit identical for any thread
/// count — the same ascending-global-row-order contract the distributed driver
/// proves at the shard level.
fn invert_row_map(k: usize, targets: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut counts = vec![0usize; k + 1];
    for &r in targets {
        counts[r + 1] += 1;
    }
    for i in 0..k {
        counts[i + 1] += counts[i];
    }
    let mut members = vec![0usize; targets.len()];
    let mut cursor = counts.clone();
    for (j, &r) in targets.iter().enumerate() {
        members[cursor[r]] = j;
        cursor[r] += 1;
    }
    (counts, members)
}

/// Shared Algorithm-2 scatter used by both the explicit and the hash-based operator:
/// zero `out`, then add `sign(j) * A[j, :]` into row `row_of(j)` of `out`.
///
/// On the GPU this is the atomic scatter of Algorithm 2 (and the cost model
/// charges it as such); on the host the row map is inverted first and every
/// *output* row gathers its inputs in ascending `j`.  Disjoint output rows make
/// the parallel loop scheduling-order-immune, and the ascending fold reproduces
/// the serial scatter's per-cell accumulation order — so the result is
/// bit-for-bit identical for 1 or N threads.
fn scatter_rows_into(
    d: usize,
    out: &mut MatrixViewMut<'_>,
    a: Operand<'_>,
    target_of: impl Fn(usize) -> (usize, f64) + Sync,
) {
    let n = a.ncols();
    let k = out.nrows();
    out.fill(0.0);
    if out.layout() == Layout::RowMajor {
        let targets: Vec<usize> = (0..d).map(|j| target_of(j).0).collect();
        let (counts, members) = invert_row_map(k, &targets);
        let data = out.as_mut_slice();
        match a {
            Operand::Dense(m) if m.layout() == Layout::RowMajor => {
                let a_data = m.as_slice();
                data.par_chunks_mut_outer(n, |r, out_row| {
                    for &j in &members[counts[r]..counts[r + 1]] {
                        let (_, sign) = target_of(j);
                        let row = &a_data[j * n..(j + 1) * n];
                        for (slot, &v) in out_row.iter_mut().zip(row) {
                            *slot += sign * v;
                        }
                    }
                });
            }
            Operand::Dense(m) => {
                data.par_chunks_mut_outer(n, |r, out_row| {
                    for &j in &members[counts[r]..counts[r + 1]] {
                        let (_, sign) = target_of(j);
                        for (c, slot) in out_row.iter_mut().enumerate() {
                            *slot += sign * m.get(j, c);
                        }
                    }
                });
            }
            Operand::Csr(s) => {
                data.par_chunks_mut_outer(n, |r, out_row| {
                    for &j in &members[counts[r]..counts[r + 1]] {
                        let (_, sign) = target_of(j);
                        for (c, v) in s.row(j) {
                            out_row[c] += sign * v;
                        }
                    }
                });
            }
            Operand::CsrRows(v) => {
                data.par_chunks_mut_outer(n, |r, out_row| {
                    for &j in &members[counts[r]..counts[r + 1]] {
                        let (_, sign) = target_of(j);
                        for (c, val) in v.row(j) {
                            out_row[c] += sign * val;
                        }
                    }
                });
            }
        }
    } else {
        // Column-major output: strided rows cannot be handed out as disjoint
        // slices, so keep the serial ascending-j scatter (identical fold order).
        match a {
            Operand::Dense(m) => {
                for j in 0..d {
                    let (target, sign) = target_of(j);
                    for c in 0..n {
                        out.add_to(target, c, sign * m.get(j, c));
                    }
                }
            }
            Operand::Csr(s) => {
                for j in 0..d {
                    let (target, sign) = target_of(j);
                    for (c, v) in s.row(j) {
                        out.add_to(target, c, sign * v);
                    }
                }
            }
            Operand::CsrRows(v) => {
                for j in 0..d {
                    let (target, sign) = target_of(j);
                    for (c, val) in v.row(j) {
                        out.add_to(target, c, sign * val);
                    }
                }
            }
        }
    }
}

impl SketchOperator for CountSketch {
    fn input_dim(&self) -> usize {
        self.d
    }

    fn output_dim(&self) -> usize {
        self.k
    }

    fn name(&self) -> &'static str {
        "CountSketch (Alg 2)"
    }

    /// Apply via **Algorithm 2**: modelled as one parallel task per input row with
    /// atomic adds, executed on the host as a deterministic ordered gather into the
    /// caller-owned output (see the module docs).
    ///
    /// Dense `A` should be row-major for coalesced reads (Section 6.1); a column-major
    /// operand is accepted but charged the uncoalesced-read penalty.  CSR operands are
    /// scattered non-zero by non-zero.  No intermediate output matrix is allocated.
    fn apply_into(
        &self,
        device: &Device,
        a: Operand<'_>,
        out: &mut MatrixViewMut<'_>,
    ) -> Result<(), Error> {
        self.check_operand(&a)?;
        self.check_output(out, a.ncols())?;
        let rows = &self.rows;
        let signs = &self.signs;
        scatter_rows_into(self.d, out, a, |j| {
            (rows[j], if signs[j] { 1.0 } else { -1.0 })
        });
        match a {
            Operand::Dense(m) => {
                self.record_apply_cost(device, m.ncols(), m.layout() == Layout::ColMajor);
            }
            Operand::Csr(s) => {
                device.record(Self::apply_cost_csr(self.d, self.k, s.ncols(), s.nnz()));
            }
            Operand::CsrRows(v) => {
                device.record(Self::apply_cost_csr(self.d, self.k, v.ncols(), v.nnz()));
            }
        }
        Ok(())
    }

    /// Apply to a single vector (the right-hand side sketch of Algorithm 1).
    fn apply_vector(&self, device: &Device, x: &[f64]) -> Result<Vec<f64>, Error> {
        self.check_input_dim(x.len())?;
        let mut y = vec![0.0; self.k];
        {
            use rayon::prelude::*;
            let (counts, members) = invert_row_map(self.k, &self.rows);
            let signs = &self.signs;
            y.par_iter_mut().enumerate().for_each(|(r, slot)| {
                for &j in &members[counts[r]..counts[r + 1]] {
                    *slot += if signs[j] { x[j] } else { -x[j] };
                }
            });
        }
        let d = self.d as u64;
        device.record(KernelCost::new(
            KernelCost::f64_bytes(2 * d) + d * 5,
            KernelCost::f64_bytes(d + self.k as u64),
            d,
            2,
        ));
        Ok(y)
    }

    fn generation_cost(&self) -> KernelCost {
        self.generation_cost
    }

    fn algorithmic_cost(&self, ncols: usize) -> KernelCost {
        let d = self.d as u64;
        let n = ncols as u64;
        // Table 1: dn arithmetic, dn reads and dn writes.
        KernelCost::new(
            KernelCost::f64_bytes(d * n),
            KernelCost::f64_bytes(d * n),
            d * n,
            1,
        )
    }
}

/// The streaming, hash-based CountSketch of Section 8: nothing is stored, `r_j` and
/// `s_j` are recomputed from a hash whenever row `j` is touched.
#[derive(Debug, Clone, Copy)]
pub struct HashCountSketch {
    d: usize,
    k: usize,
    seed: u64,
}

impl HashCountSketch {
    /// Create the operator; no generation work is needed.
    pub fn new(d: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "output dimension must be positive");
        Self { d, k, seed }
    }

    /// Hash of row `j`: returns `(target_row, sign)`.
    #[inline]
    pub fn hash(&self, j: usize) -> (usize, f64) {
        let mut x = (j as u64).wrapping_add(self.seed.rotate_left(17));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let row = (x % self.k as u64) as usize;
        let sign = if (x >> 63) & 1 == 1 { 1.0 } else { -1.0 };
        (row, sign)
    }

    /// Materialise the equivalent explicit [`CountSketch`] (for testing equivalence and
    /// for reusing the explicit kernels).
    pub fn to_explicit(&self) -> CountSketch {
        let mut rows = Vec::with_capacity(self.d);
        let mut signs = Vec::with_capacity(self.d);
        for j in 0..self.d {
            let (r, s) = self.hash(j);
            rows.push(r);
            signs.push(s > 0.0);
        }
        CountSketch::from_parts(self.d, self.k, rows, signs)
    }
}

impl SketchOperator for HashCountSketch {
    fn input_dim(&self) -> usize {
        self.d
    }

    fn output_dim(&self) -> usize {
        self.k
    }

    fn name(&self) -> &'static str {
        "CountSketch (hash/streaming)"
    }

    fn apply_into(
        &self,
        device: &Device,
        a: Operand<'_>,
        out: &mut MatrixViewMut<'_>,
    ) -> Result<(), Error> {
        self.check_operand(&a)?;
        self.check_output(out, a.ncols())?;
        scatter_rows_into(self.d, out, a, |j| self.hash(j));
        let d = self.d as u64;
        let k = self.k as u64;
        match a {
            Operand::Dense(m) => {
                let n64 = m.ncols() as u64;
                device.record(KernelCost::new(
                    KernelCost::f64_bytes(2 * d * n64),
                    KernelCost::f64_bytes(d * n64) + KernelCost::f64_bytes(k * n64),
                    d * n64 + 6 * d,
                    2,
                ));
            }
            Operand::Csr(s) => {
                let nnz = s.nnz() as u64;
                let n64 = s.ncols() as u64;
                let idx_bytes = (std::mem::size_of::<usize>() as u64) * (nnz + d + 1);
                device.record(KernelCost::new(
                    KernelCost::f64_bytes(nnz) + idx_bytes,
                    KernelCost::f64_bytes(nnz) + KernelCost::f64_bytes(k * n64),
                    nnz + 6 * d,
                    2,
                ));
            }
            Operand::CsrRows(v) => {
                let nnz = v.nnz() as u64;
                let n64 = v.ncols() as u64;
                let idx_bytes = (std::mem::size_of::<usize>() as u64) * (nnz + d + 1);
                device.record(KernelCost::new(
                    KernelCost::f64_bytes(nnz) + idx_bytes,
                    KernelCost::f64_bytes(nnz) + KernelCost::f64_bytes(k * n64),
                    nnz + 6 * d,
                    2,
                ));
            }
        }
        Ok(())
    }

    fn apply_vector(&self, device: &Device, x: &[f64]) -> Result<Vec<f64>, Error> {
        self.check_input_dim(x.len())?;
        let mut y = vec![0.0; self.k];
        {
            use rayon::prelude::*;
            let targets: Vec<usize> = (0..self.d).map(|j| self.hash(j).0).collect();
            let (counts, members) = invert_row_map(self.k, &targets);
            y.par_iter_mut().enumerate().for_each(|(r, slot)| {
                for &j in &members[counts[r]..counts[r + 1]] {
                    let (_, sign) = self.hash(j);
                    *slot += sign * x[j];
                }
            });
        }
        let d = self.d as u64;
        device.record(KernelCost::new(
            KernelCost::f64_bytes(2 * d),
            KernelCost::f64_bytes(d + self.k as u64),
            d + 6 * d,
            2,
        ));
        Ok(y)
    }

    fn generation_cost(&self) -> KernelCost {
        KernelCost::zero()
    }

    fn algorithmic_cost(&self, ncols: usize) -> KernelCost {
        let d = self.d as u64;
        let n = ncols as u64;
        KernelCost::new(
            KernelCost::f64_bytes(d * n),
            KernelCost::f64_bytes(d * n),
            d * n,
            1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::unlimited()
    }

    /// Dense reference implementation of `S A` from the stored row map and signs.
    fn reference_apply(cs: &CountSketch, a: &Matrix) -> Matrix {
        let n = a.ncols();
        let mut y = Matrix::zeros_with_layout(cs.output_dim(), n, Layout::RowMajor);
        for j in 0..cs.input_dim() {
            let sign = if cs.signs()[j] { 1.0 } else { -1.0 };
            for c in 0..n {
                y.add_to(cs.rows()[j], c, sign * a.get(j, c));
            }
        }
        y
    }

    /// CSR copy of a dense matrix (every entry stored explicitly).
    fn csr_of(a: &Matrix) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nrows() * a.ncols());
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                let v = a.get(i, j);
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn algorithm2_matches_dense_reference() {
        let d = device();
        let a = Matrix::random_gaussian(300, 5, Layout::RowMajor, 1, 0);
        let cs = CountSketch::generate(&d, 300, 32, 9);
        let y = cs.apply_matrix(&d, &a).unwrap();
        let expect = reference_apply(&cs, &a);
        assert!(y.max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    fn row_major_and_col_major_inputs_agree() {
        let d = device();
        let a_rm = Matrix::random_gaussian(200, 4, Layout::RowMajor, 2, 0);
        let a_cm = a_rm.to_layout(&d, Layout::ColMajor);
        let cs = CountSketch::generate(&d, 200, 16, 3);
        let y1 = cs.apply_matrix(&d, &a_rm).unwrap();
        let y2 = cs.apply_matrix(&d, &a_cm).unwrap();
        assert!(y1.max_abs_diff(&y2).unwrap() < 1e-12);
    }

    #[test]
    fn apply_into_reused_buffer_is_bit_identical_to_apply_matrix() {
        let d = device();
        let a = Matrix::random_gaussian(250, 6, Layout::RowMajor, 4, 0);
        let cs = CountSketch::generate(&d, 250, 40, 5);
        let y = cs.apply_matrix(&d, &a).unwrap();
        // Dirty buffer: apply_into must overwrite every element.
        let mut out = Matrix::from_fn(40, 6, Layout::RowMajor, |_, _| f64::NAN);
        cs.apply_into(&d, Operand::Dense(&a), &mut out.view_mut())
            .unwrap();
        assert_eq!(out.as_slice(), y.as_slice());
    }

    #[test]
    fn csr_operand_matches_dense_operand() {
        let d = device();
        let a = Matrix::random_gaussian(120, 4, Layout::RowMajor, 6, 0);
        let sparse = csr_of(&a);
        let cs = CountSketch::generate(&d, 120, 24, 7);
        let y_dense = cs.apply_matrix(&d, &a).unwrap();
        let y_sparse = cs.apply_operand(&d, Operand::Csr(&sparse)).unwrap();
        assert!(y_dense.max_abs_diff(&y_sparse).unwrap() < 1e-12);
    }

    #[test]
    fn apply_into_performs_zero_device_allocations() {
        let d = device();
        let a = Matrix::random_gaussian(200, 4, Layout::RowMajor, 3, 0);
        let cs = CountSketch::generate(&d, 200, 16, 1);
        let mut out = Matrix::zeros_with_layout(16, 4, Layout::RowMajor);
        let before = d.memory().allocations();
        cs.apply_into(&d, Operand::Dense(&a), &mut out.view_mut())
            .unwrap();
        assert_eq!(
            d.memory().allocations(),
            before,
            "apply_into must not reserve device memory"
        );
        // The allocating wrapper reserves the output buffer.
        let _ = cs.apply_matrix(&d, &a).unwrap();
        assert!(d.memory().allocations() > before);

        // A disabled recorder must keep the hot path allocation-free too: the
        // launch site reads one relaxed flag and does nothing else.
        d.set_recorder(Some(std::sync::Arc::new(sketch_gpu_sim::obs::NoopRecorder)));
        let with_noop = d.memory().allocations();
        cs.apply_into(&d, Operand::Dense(&a), &mut out.view_mut())
            .unwrap();
        assert_eq!(
            d.memory().allocations(),
            with_noop,
            "a NoopRecorder must not change the zero-allocation certification"
        );
    }

    #[test]
    fn gather_and_spmm_variants_match_algorithm2() {
        let d = device();
        let a = Matrix::random_gaussian(250, 6, Layout::RowMajor, 4, 0);
        let cs = CountSketch::generate(&d, 250, 40, 5);
        let y_atomic = cs.apply_matrix(&d, &a).unwrap();
        let y_gather = cs.apply_matrix_gather(&d, &a).unwrap();
        let y_spmm = cs.apply_matrix_spmm(&d, &a).unwrap();
        assert!(y_atomic.max_abs_diff(&y_gather).unwrap() < 1e-12);
        assert!(y_atomic.max_abs_diff(&y_spmm).unwrap() < 1e-12);
    }

    #[test]
    fn vector_apply_matches_matrix_apply_on_single_column() {
        let d = device();
        let x: Vec<f64> = (0..150).map(|i| (i as f64 * 0.1).sin()).collect();
        let a = Matrix::from_fn(150, 1, Layout::RowMajor, |i, _| x[i]);
        let cs = CountSketch::generate(&d, 150, 20, 6);
        let yv = cs.apply_vector(&d, &x).unwrap();
        let ym = cs.apply_matrix(&d, &a).unwrap();
        for i in 0..20 {
            assert!((yv[i] - ym.get(i, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_materialisation_has_one_entry_per_column() {
        let d = device();
        let cs = CountSketch::generate(&d, 100, 16, 7);
        let s = cs.to_sparse();
        assert_eq!(s.nrows(), 16);
        assert_eq!(s.ncols(), 100);
        assert_eq!(s.nnz(), 100);
        let dense = s.to_dense();
        for j in 0..100 {
            let nonzeros: Vec<f64> = (0..16).map(|i| dense[i][j]).filter(|&v| v != 0.0).collect();
            assert_eq!(
                nonzeros.len(),
                1,
                "column {j} must have exactly one nonzero"
            );
            assert!(nonzeros[0] == 1.0 || nonzeros[0] == -1.0);
        }
    }

    #[test]
    fn sketch_is_linear() {
        let d = device();
        let a = Matrix::random_gaussian(120, 3, Layout::RowMajor, 8, 0);
        let b = Matrix::random_gaussian(120, 3, Layout::RowMajor, 8, 1);
        let cs = CountSketch::generate(&d, 120, 24, 9);
        // S(A + 2B) == SA + 2 SB
        let apb = Matrix::from_fn(120, 3, Layout::RowMajor, |i, j| {
            a.get(i, j) + 2.0 * b.get(i, j)
        });
        let left = cs.apply_matrix(&d, &apb).unwrap();
        let sa = cs.apply_matrix(&d, &a).unwrap();
        let sb = cs.apply_matrix(&d, &b).unwrap();
        let right = Matrix::from_fn(24, 3, Layout::RowMajor, |i, j| {
            sa.get(i, j) + 2.0 * sb.get(i, j)
        });
        assert!(left.max_abs_diff(&right).unwrap() < 1e-10);
    }

    #[test]
    fn preserves_norms_in_expectation_band() {
        // With k = 8 n^2 the distortion should comfortably be below 0.5 for one vector.
        let d = device();
        let dim = 4096;
        let x: Vec<f64> = fill::gaussian_vec(3, 3, dim);
        let cs = CountSketch::generate(&d, dim, 512, 11);
        let y = cs.apply_vector(&d, &x).unwrap();
        let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let ny: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((ny / nx - 1.0).abs() < 0.5, "distortion {}", ny / nx - 1.0);
    }

    #[test]
    fn dimension_mismatch_is_rejected_with_context() {
        let d = device();
        let cs = CountSketch::generate(&d, 50, 8, 1);
        let a = Matrix::zeros_with_layout(40, 2, Layout::RowMajor);
        let err = cs.apply_matrix(&d, &a).unwrap_err();
        match &err {
            Error::DimensionMismatch {
                op,
                expected,
                found,
                operand,
            } => {
                assert_eq!(op, "CountSketch (Alg 2)");
                assert_eq!((*expected, *found), (50, 40));
                assert!(operand.contains("dense 40x2"), "operand was {operand}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The rendered message names the operator and the operand shape.
        let msg = err.to_string();
        assert!(msg.contains("CountSketch (Alg 2)") && msg.contains("dense 40x2"));
        assert!(cs.apply_vector(&d, &[0.0; 49]).is_err());
    }

    #[test]
    fn oom_is_reported_when_output_does_not_fit() {
        use sketch_gpu_sim::DeviceSpec;
        let mut spec = DeviceSpec::h100();
        spec.memory_bytes = 1024; // tiny device
        let d = Device::new(spec);
        let cs = CountSketch::generate(&d, 64, 1024, 1);
        let a = Matrix::zeros_with_layout(64, 8, Layout::RowMajor);
        assert!(matches!(
            cs.apply_matrix(&d, &a),
            Err(Error::WouldExceedMemory(_))
        ));
    }

    #[test]
    fn generation_cost_is_tiny_compared_to_gaussian() {
        let d = device();
        let cs = CountSketch::generate(&d, 10_000, 128, 1);
        let gen = cs.generation_cost();
        // 5 bytes per input row, no reads.
        assert_eq!(gen.bytes_written, 50_000);
        assert_eq!(gen.bytes_read, 0);
    }

    #[test]
    fn algorithmic_cost_matches_table1() {
        let d = device();
        let cs = CountSketch::generate(&d, 1000, 32, 1);
        let c = cs.algorithmic_cost(16);
        assert_eq!(c.flops, 16_000);
        assert_eq!(c.bytes_read, 8 * 16_000);
        assert_eq!(c.bytes_written, 8 * 16_000);
    }

    #[test]
    fn from_parts_validates_inputs() {
        let cs = CountSketch::from_parts(3, 4, vec![0, 3, 1], vec![true, false, true]);
        assert_eq!(cs.input_dim(), 3);
        assert_eq!(cs.output_dim(), 4);
    }

    #[test]
    #[should_panic(expected = "row map entry out of range")]
    fn from_parts_rejects_out_of_range_rows() {
        CountSketch::from_parts(2, 2, vec![0, 5], vec![true, true]);
    }

    #[test]
    fn hash_variant_matches_its_explicit_materialisation() {
        let d = device();
        let h = HashCountSketch::new(200, 32, 77);
        let explicit = h.to_explicit();
        let a = Matrix::random_gaussian(200, 4, Layout::RowMajor, 13, 0);
        let y_hash = h.apply_matrix(&d, &a).unwrap();
        let y_explicit = explicit.apply_matrix(&d, &a).unwrap();
        assert!(y_hash.max_abs_diff(&y_explicit).unwrap() < 1e-12);

        let sparse = csr_of(&a);
        let y_hash_csr = h.apply_operand(&d, Operand::Csr(&sparse)).unwrap();
        assert!(y_hash_csr.max_abs_diff(&y_explicit).unwrap() < 1e-12);

        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let v_hash = h.apply_vector(&d, &x).unwrap();
        let v_explicit = explicit.apply_vector(&d, &x).unwrap();
        for (a, b) in v_hash.iter().zip(&v_explicit) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn hash_variant_has_zero_generation_cost_and_signs_both_occur() {
        let h = HashCountSketch::new(1000, 64, 5);
        assert_eq!(h.generation_cost(), KernelCost::zero());
        assert_eq!(h.name(), "CountSketch (hash/streaming)");
        let mut plus = 0;
        let mut minus = 0;
        for j in 0..1000 {
            let (r, s) = h.hash(j);
            assert!(r < 64);
            if s > 0.0 {
                plus += 1;
            } else {
                minus += 1;
            }
        }
        assert!(
            plus > 300 && minus > 300,
            "signs unbalanced: {plus}/{minus}"
        );
    }

    #[test]
    fn hash_variant_rejects_bad_dimensions() {
        let d = device();
        let h = HashCountSketch::new(10, 4, 1);
        assert!(h.apply_vector(&d, &[0.0; 9]).is_err());
        let a = Matrix::zeros_with_layout(11, 2, Layout::RowMajor);
        assert!(h.apply_matrix(&d, &a).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_all_variants_agree(d_dim in 10usize..200, n in 1usize..6, k in 2usize..32, seed in 0u64..500) {
            let dev = device();
            let a = Matrix::random_gaussian(d_dim, n, Layout::RowMajor, seed, 0);
            let cs = CountSketch::generate(&dev, d_dim, k, seed + 1);
            let y1 = cs.apply_matrix(&dev, &a).unwrap();
            let y2 = cs.apply_matrix_gather(&dev, &a).unwrap();
            let y3 = cs.apply_matrix_spmm(&dev, &a).unwrap();
            prop_assert!(y1.max_abs_diff(&y2).unwrap() < 1e-10);
            prop_assert!(y1.max_abs_diff(&y3).unwrap() < 1e-10);
        }

        #[test]
        fn prop_column_sums_are_preserved_up_to_sign(d_dim in 10usize..100, seed in 0u64..500) {
            // Summing all rows of Y equals the signed sum of all rows of A.
            let dev = device();
            let a = Matrix::random_gaussian(d_dim, 3, Layout::RowMajor, seed, 0);
            let cs = CountSketch::generate(&dev, d_dim, 16, seed);
            let y = cs.apply_matrix(&dev, &a).unwrap();
            for c in 0..3 {
                let sum_y: f64 = (0..16).map(|i| y.get(i, c)).sum();
                let signed_sum_a: f64 = (0..d_dim)
                    .map(|j| if cs.signs()[j] { a.get(j, c) } else { -a.get(j, c) })
                    .sum();
                prop_assert!((sum_y - signed_sum_a).abs() < 1e-9);
            }
        }
    }
}
