//! Empirical subspace-embedding checks (Definitions 1.1 and 1.2).
//!
//! The guarantees the paper relies on — `√(1-ε)‖b - Ax‖ ≤ ‖S(b - Ax)‖ ≤ √(1+ε)‖b - Ax‖`
//! and the `O(1)` distortion of the sketch-and-solve residual — all flow from the sketch
//! being an ε-subspace embedding.  This module measures those distortions empirically so
//! the integration tests and the accuracy experiments (Figures 6–8) can verify that each
//! operator actually embeds the subspaces it is given.

use crate::error::SketchError;
use crate::traits::SketchOperator;
use sketch_gpu_sim::Device;
use sketch_la::blas1::dot_unrecorded;
use sketch_la::norms::vec_norm2;
use sketch_la::{blas3, Matrix, Op};

/// Maximum relative norm distortion `max_i |‖S x_i‖² / ‖x_i‖² − 1|` over a set of
/// vectors given as the columns of `vectors`.
pub fn max_norm_distortion<S: SketchOperator + ?Sized>(
    device: &Device,
    sketch: &S,
    vectors: &Matrix,
) -> Result<f64, SketchError> {
    let sketched = sketch.apply_matrix(device, vectors)?;
    let mut worst = 0.0f64;
    for j in 0..vectors.ncols() {
        let x = vectors.col_to_vec(j);
        let sx = sketched.col_to_vec(j);
        let nx = vec_norm2(&x);
        if nx == 0.0 {
            continue;
        }
        let ratio = (vec_norm2(&sx) / nx).powi(2);
        worst = worst.max((ratio - 1.0).abs());
    }
    Ok(worst)
}

/// Maximum inner-product distortion `|⟨Sx, Sy⟩ − ⟨x, y⟩| / (‖x‖‖y‖)` over all column
/// pairs of `vectors` — the quantity bounded by Definition 1.1.
pub fn max_inner_product_distortion<S: SketchOperator + ?Sized>(
    device: &Device,
    sketch: &S,
    vectors: &Matrix,
) -> Result<f64, SketchError> {
    let sketched = sketch.apply_matrix(device, vectors)?;
    let n = vectors.ncols();
    let mut worst = 0.0f64;
    for i in 0..n {
        let xi = vectors.col_to_vec(i);
        let si = sketched.col_to_vec(i);
        let ni = vec_norm2(&xi);
        if ni == 0.0 {
            continue;
        }
        for j in i..n {
            let xj = vectors.col_to_vec(j);
            let sj = sketched.col_to_vec(j);
            let nj = vec_norm2(&xj);
            if nj == 0.0 {
                continue;
            }
            let exact = dot_unrecorded(&xi, &xj);
            let approx = dot_unrecorded(&si, &sj);
            worst = worst.max((approx - exact).abs() / (ni * nj));
        }
    }
    Ok(worst)
}

/// Subspace embedding distortion of a basis: `‖(SV)ᵀ(SV) − VᵀV‖_F / ‖VᵀV‖_F`.
///
/// When the columns of `basis` are orthonormal this is exactly the Frobenius-norm
/// deviation of the sketched Gram matrix from the identity, a standard proxy for the
/// embedding constant ε of Definition 1.2.
pub fn subspace_embedding_distortion<S: SketchOperator + ?Sized>(
    device: &Device,
    sketch: &S,
    basis: &Matrix,
) -> Result<f64, SketchError> {
    let sv = sketch.apply_matrix(device, basis)?;
    let gram_sketched = blas3::gemm_op(device, 1.0, Op::Trans, &sv, Op::NoTrans, &sv, 0.0, None)?;
    let gram_exact = blas3::gemm_op(device, 1.0, Op::Trans, basis, Op::NoTrans, basis, 0.0, None)?;

    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for i in 0..gram_exact.nrows() {
        for j in 0..gram_exact.ncols() {
            num += (gram_sketched.get(i, j) - gram_exact.get(i, j)).powi(2);
            den += gram_exact.get(i, j).powi(2);
        }
    }
    if den == 0.0 {
        return Ok(num.sqrt());
    }
    Ok((num / den).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countsketch::CountSketch;
    use crate::gaussian::GaussianSketch;
    use crate::multisketch::MultiSketch;
    use crate::srht::Srht;
    use sketch_la::cond::orthonormal_columns;
    use sketch_la::Layout;

    fn device() -> Device {
        Device::unlimited()
    }

    #[test]
    fn gaussian_sketch_embeds_a_small_subspace() {
        let d = device();
        let dim = 2048;
        let n = 4;
        let basis = orthonormal_columns(&d, dim, n, 1).unwrap();
        let g = GaussianSketch::generate(&d, dim, 32 * n, 2).unwrap();
        let eps = subspace_embedding_distortion(&d, &g, &basis).unwrap();
        assert!(eps < 0.6, "distortion {eps}");
    }

    #[test]
    fn countsketch_embeds_with_k_proportional_to_n_squared() {
        let d = device();
        let dim = 4096;
        let n = 4;
        let basis = orthonormal_columns(&d, dim, n, 3).unwrap();
        let cs = CountSketch::generate(&d, dim, 8 * n * n, 4);
        let eps = subspace_embedding_distortion(&d, &cs, &basis).unwrap();
        assert!(eps < 0.7, "distortion {eps}");
    }

    #[test]
    fn srht_embeds_a_small_subspace() {
        let d = device();
        let dim = 2048;
        let n = 4;
        let basis = orthonormal_columns(&d, dim, n, 5).unwrap();
        let s = Srht::generate(&d, dim, 64 * n, 6).unwrap();
        let eps = subspace_embedding_distortion(&d, &s, &basis).unwrap();
        assert!(eps < 0.6, "distortion {eps}");
    }

    #[test]
    fn multisketch_embeds_a_small_subspace() {
        let d = device();
        let dim = 4096;
        let n = 4;
        let basis = orthonormal_columns(&d, dim, n, 7).unwrap();
        let ms = MultiSketch::generate(&d, dim, 16 * n * n, 16 * n, 8).unwrap();
        let eps = subspace_embedding_distortion(&d, &ms, &basis).unwrap();
        assert!(eps < 0.8, "distortion {eps}");
    }

    #[test]
    fn norm_and_inner_product_distortions_are_bounded_for_gaussian() {
        let d = device();
        let dim = 1024;
        let vectors = Matrix::random_gaussian(dim, 5, Layout::ColMajor, 9, 0);
        let g = GaussianSketch::generate(&d, dim, 256, 10).unwrap();
        let nd = max_norm_distortion(&d, &g, &vectors).unwrap();
        let ipd = max_inner_product_distortion(&d, &g, &vectors).unwrap();
        assert!(nd < 0.8, "norm distortion {nd}");
        assert!(ipd < 0.8, "inner product distortion {ipd}");
    }

    #[test]
    fn zero_vectors_are_ignored_gracefully() {
        let d = device();
        let dim = 256;
        let vectors = Matrix::zeros(dim, 3);
        let cs = CountSketch::generate(&d, dim, 64, 1);
        assert_eq!(max_norm_distortion(&d, &cs, &vectors).unwrap(), 0.0);
        assert_eq!(
            max_inner_product_distortion(&d, &cs, &vectors).unwrap(),
            0.0
        );
        let eps = subspace_embedding_distortion(&d, &cs, &vectors).unwrap();
        assert_eq!(eps, 0.0);
    }

    #[test]
    fn distortion_shrinks_as_k_grows() {
        let d = device();
        let dim = 4096;
        let n = 3;
        let basis = orthonormal_columns(&d, dim, n, 11).unwrap();
        let small = CountSketch::generate(&d, dim, 4 * n * n, 12);
        let large = CountSketch::generate(&d, dim, 64 * n * n, 12);
        let eps_small = subspace_embedding_distortion(&d, &small, &basis).unwrap();
        let eps_large = subspace_embedding_distortion(&d, &large, &basis).unwrap();
        assert!(
            eps_large < eps_small + 0.05,
            "eps_small {eps_small}, eps_large {eps_large}"
        );
    }
}
