//! Declarative sketch construction: [`SketchSpec`] and [`Pipeline`].
//!
//! The paper's evaluation drives every sketch through one loop — generate once, apply
//! to `A` and `b`, charge the phases — with the *configuration* (which sketch, which
//! embedding dimension rule, which seed) varying per figure.  `SketchSpec` is that
//! configuration as data: a serde-able description that any harness, example or JSON
//! file can carry around, and that [`SketchSpec::build`] turns into a live
//! [`SketchOperator`] on a device.
//!
//! Embedding dimensions follow the paper's conventions as *rules*, not numbers:
//! [`EmbeddingDim::Ratio`] (`k = c·n`, the Gaussian/SRHT convention) and
//! [`EmbeddingDim::Square`] (`k = c·n²`, the CountSketch convention) resolve against
//! the operand width at build time, so one spec names an experiment across a whole
//! `(d, n)` sweep.
//!
//! [`Pipeline`] expresses sketch *composition* the same way: the Count-Gauss
//! multisketch is simply the two-stage pipeline
//! `[CountSketch → 2n², Gaussian → 2n]`, and [`Pipeline::build_for`] recognises that
//! shape and instantiates the fused [`MultiSketch`] operator (transpose trick and
//! all); any other chain builds a generic composed operator.
//!
//! Specs serialize to JSON through the built-in [`json`] module (the offline serde
//! shim carries no data format), and rebuilding from the serialized form is
//! bit-identical because all randomness flows through the stored Philox seeds.
//!
//! ```
//! use sketch_core::{EmbeddingDim, SketchSpec};
//! use sketch_gpu_sim::Device;
//!
//! let device = Device::h100();
//! let spec = SketchSpec::countsketch(1 << 12, EmbeddingDim::Square(2), 7);
//! let sketch = spec.build_for(&device, 8).unwrap();
//! assert_eq!(sketch.output_dim(), 2 * 8 * 8);
//! let round_tripped = SketchSpec::from_json(&spec.to_json()).unwrap();
//! assert_eq!(spec, round_tripped);
//! ```

use crate::countsketch::{CountSketch, HashCountSketch};
use crate::error::Error;
use crate::gaussian::GaussianSketch;
use crate::multisketch::{MultiSketch, GAUSS_STAGE_SEED_SALT};
use crate::operand::Operand;
use crate::srht::Srht;
use crate::traits::SketchOperator;
use serde::{Deserialize, Serialize};
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{Layout, MatrixViewMut};

pub mod json;

use json::JsonValue;

/// Which sketch family a [`SketchSpec`] describes.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SketchKind {
    /// The explicit Algorithm-2 CountSketch ([`CountSketch`]).
    CountSketch,
    /// The dense Gaussian sketch ([`GaussianSketch`]).
    Gaussian,
    /// The subsampled randomized Hadamard transform ([`Srht`]).
    Srht,
    /// The hash-based streaming CountSketch ([`HashCountSketch`]).
    HashCountSketch,
}

impl SketchKind {
    /// Stable identifier used in serialized specs.
    pub fn as_str(&self) -> &'static str {
        match self {
            SketchKind::CountSketch => "count-sketch",
            SketchKind::Gaussian => "gaussian",
            SketchKind::Srht => "srht",
            SketchKind::HashCountSketch => "hash-count-sketch",
        }
    }

    /// Parse a serialized kind identifier.
    pub fn parse(s: &str) -> Result<Self, Error> {
        match s {
            "count-sketch" => Ok(SketchKind::CountSketch),
            "gaussian" => Ok(SketchKind::Gaussian),
            "srht" => Ok(SketchKind::Srht),
            "hash-count-sketch" => Ok(SketchKind::HashCountSketch),
            other => Err(Error::invalid_param(format!(
                "unknown sketch kind {other:?}"
            ))),
        }
    }

    /// The [`ShardAxis`] along which this kind's kernel shards bitwise-losslessly
    /// (see the enum docs for the kernel property behind each choice).
    pub fn shard_axis(&self) -> ShardAxis {
        match self {
            // Ordered row-scatter kernels: block-row fold is the exact chain.
            SketchKind::CountSketch | SketchKind::HashCountSketch => ShardAxis::Rows,
            // Per-column dot/transform kernels: column panels are exact.
            SketchKind::Gaussian | SketchKind::Srht => ShardAxis::Cols,
        }
    }
}

/// Along which operand axis a sketch kind can be sharded across devices while keeping
/// the multi-device result **bit-for-bit identical** to the single-device kernel.
///
/// This is a *contract on the kernels*, consumed by the multi-device executor in
/// `sketch-dist`:
///
/// * [`ShardAxis::Rows`] — the kernel folds each input row into the output with one
///   sequential, per-element accumulation chain in increasing global row order (the
///   Algorithm-2 CountSketch scatter).  Block-row shards folded into one shared
///   accumulator in shard order reproduce the exact chain, so an *ordered* ring
///   reduction is bitwise lossless.
/// * [`ShardAxis::Cols`] — the kernel computes every output column independently of
///   all other columns (a GEMM dot per element, or a per-column FWHT).  Column-panel
///   shards are embarrassingly exact and reassemble with an allgather; a block-row
///   split of these kinds would change the floating-point summation grouping (the
///   GEMM dot is unrolled four-wide) and only be equal up to rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardAxis {
    /// Shard the operand into block rows; reduce with an ordered ring fold.
    Rows,
    /// Shard the operand into column panels; reassemble with an allgather.
    Cols,
}

/// How a spec's output dimension is determined.
///
/// The paper's embedding-dimension conventions (Section 6) are rules in terms of the
/// operand width `n`, so specs carry the rule and resolve it per problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmbeddingDim {
    /// A fixed output dimension `k`.
    Exact(usize),
    /// `k = c · n` — the Gaussian/SRHT/multisketch-output convention (`c = 2` in the
    /// paper).
    Ratio(usize),
    /// `k = c · n²` — the CountSketch convention (`c = 2` in the paper).
    Square(usize),
}

impl EmbeddingDim {
    /// Resolve the rule against an operand with `ncols` columns.
    pub fn resolve(&self, ncols: usize) -> usize {
        match self {
            EmbeddingDim::Exact(k) => *k,
            EmbeddingDim::Ratio(c) => c * ncols,
            EmbeddingDim::Square(c) => c * ncols * ncols,
        }
    }

    /// Whether the rule needs an operand width to resolve.
    pub fn needs_ncols(&self) -> bool {
        !matches!(self, EmbeddingDim::Exact(_))
    }
}

/// A declarative, serde-able description of one sketch operator.
///
/// Construct with the per-kind constructors, tweak with the builder methods, then
/// [`build`](Self::build) (or [`build_for`](Self::build_for) when the output
/// dimension is a rule) to obtain the live operator.
#[must_use = "a SketchSpec describes a sketch; call build/build_for to construct it"]
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SketchSpec {
    /// Sketch family.
    pub kind: SketchKind,
    /// Input dimension `d` (rows of the operand).  `0` in a non-leading
    /// [`Pipeline`] stage means "inferred from the previous stage's output".
    pub input_dim: usize,
    /// Output dimension `k`, exact or as an embedding rule.
    pub output_dim: EmbeddingDim,
    /// Philox seed driving the sketch's random ingredients.
    pub seed: u64,
    /// SRHT-specific knob: the modelled shared-memory tile (in doubles) of the FWHT.
    pub tile: Option<usize>,
}

impl SketchSpec {
    /// A CountSketch spec.
    pub fn countsketch(input_dim: usize, output_dim: EmbeddingDim, seed: u64) -> Self {
        Self {
            kind: SketchKind::CountSketch,
            input_dim,
            output_dim,
            seed,
            tile: None,
        }
    }

    /// A dense Gaussian sketch spec.
    pub fn gaussian(input_dim: usize, output_dim: EmbeddingDim, seed: u64) -> Self {
        Self {
            kind: SketchKind::Gaussian,
            input_dim,
            output_dim,
            seed,
            tile: None,
        }
    }

    /// An SRHT spec.
    pub fn srht(input_dim: usize, output_dim: EmbeddingDim, seed: u64) -> Self {
        Self {
            kind: SketchKind::Srht,
            input_dim,
            output_dim,
            seed,
            tile: None,
        }
    }

    /// A hash-based streaming CountSketch spec.
    pub fn hash_countsketch(input_dim: usize, output_dim: EmbeddingDim, seed: u64) -> Self {
        Self {
            kind: SketchKind::HashCountSketch,
            input_dim,
            output_dim,
            seed,
            tile: None,
        }
    }

    /// Set the SRHT shared-memory tile knob.
    pub fn with_tile(mut self, tile: usize) -> Self {
        self.tile = Some(tile);
        self
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The [`ShardAxis`] along which this spec's kernel shards bitwise-losslessly
    /// (delegates to [`SketchKind::shard_axis`]).
    pub fn shard_axis(&self) -> ShardAxis {
        self.kind.shard_axis()
    }

    /// Resolve an embedding rule against an operand width, yielding a spec with an
    /// [`EmbeddingDim::Exact`] output dimension.
    pub fn resolve(&self, ncols: usize) -> SketchSpec {
        let mut out = self.clone();
        out.output_dim = EmbeddingDim::Exact(self.output_dim.resolve(ncols));
        out
    }

    fn exact_dims(&self) -> Result<(usize, usize), Error> {
        let EmbeddingDim::Exact(k) = self.output_dim else {
            return Err(Error::invalid_param(format!(
                "spec for {} has embedding rule {:?}; call build_for(device, ncols) or resolve(ncols) first",
                self.kind.as_str(),
                self.output_dim
            )));
        };
        if self.input_dim == 0 {
            return Err(Error::invalid_param(format!(
                "spec for {} has no input dimension (0 is only valid for inferred pipeline stages)",
                self.kind.as_str()
            )));
        }
        if k == 0 {
            return Err(Error::invalid_param(format!(
                "spec for {} resolves to output dimension 0",
                self.kind.as_str()
            )));
        }
        Ok((self.input_dim, k))
    }

    /// Build the described operator as a trait object.
    ///
    /// Requires an [`EmbeddingDim::Exact`] output dimension; use
    /// [`build_for`](Self::build_for) when the spec carries a rule.
    pub fn build(&self, device: &Device) -> Result<Box<dyn SketchOperator>, Error> {
        Ok(match self.kind {
            SketchKind::CountSketch => Box::new(self.build_countsketch(device)?),
            SketchKind::Gaussian => Box::new(self.build_gaussian(device)?),
            SketchKind::Srht => Box::new(self.build_srht(device)?),
            SketchKind::HashCountSketch => Box::new(self.build_hash_countsketch(device)?),
        })
    }

    /// Resolve the embedding rule against `ncols` and build.
    pub fn build_for(
        &self,
        device: &Device,
        ncols: usize,
    ) -> Result<Box<dyn SketchOperator>, Error> {
        self.resolve(ncols).build(device)
    }

    fn check_kind(&self, expected: SketchKind) -> Result<(), Error> {
        if self.kind == expected {
            Ok(())
        } else {
            Err(Error::invalid_param(format!(
                "spec describes a {} sketch, not {}",
                self.kind.as_str(),
                expected.as_str()
            )))
        }
    }

    /// Build the concrete [`CountSketch`] (the typed sibling of [`build`](Self::build),
    /// for callers that need the row map / signs).
    pub fn build_countsketch(&self, device: &Device) -> Result<CountSketch, Error> {
        self.check_kind(SketchKind::CountSketch)?;
        let (d, k) = self.exact_dims()?;
        Ok(CountSketch::generate(device, d, k, self.seed))
    }

    /// Build the concrete [`GaussianSketch`].
    pub fn build_gaussian(&self, device: &Device) -> Result<GaussianSketch, Error> {
        self.check_kind(SketchKind::Gaussian)?;
        let (d, k) = self.exact_dims()?;
        GaussianSketch::generate(device, d, k, self.seed)
    }

    /// Build the concrete [`Srht`].
    pub fn build_srht(&self, device: &Device) -> Result<Srht, Error> {
        self.check_kind(SketchKind::Srht)?;
        let (d, k) = self.exact_dims()?;
        match self.tile {
            Some(tile) => Srht::generate_with_tile(device, d, k, self.seed, tile),
            None => Srht::generate(device, d, k, self.seed),
        }
    }

    /// Build the concrete [`HashCountSketch`].
    pub fn build_hash_countsketch(&self, _device: &Device) -> Result<HashCountSketch, Error> {
        self.check_kind(SketchKind::HashCountSketch)?;
        let (d, k) = self.exact_dims()?;
        Ok(HashCountSketch::new(d, k, self.seed))
    }

    /// Serialize to a [`JsonValue`].
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            (
                "kind".to_string(),
                JsonValue::Str(self.kind.as_str().into()),
            ),
            (
                "input_dim".to_string(),
                JsonValue::UInt(self.input_dim as u64),
            ),
            ("output_dim".to_string(), self.output_dim.to_json_value()),
            ("seed".to_string(), JsonValue::UInt(self.seed)),
        ];
        if let Some(tile) = self.tile {
            fields.push(("tile".to_string(), JsonValue::UInt(tile as u64)));
        }
        JsonValue::Object(fields)
    }

    /// Parse from a [`JsonValue`].
    pub fn from_json_value(value: &JsonValue) -> Result<Self, Error> {
        let kind = SketchKind::parse(
            value
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| Error::invalid_param("sketch spec is missing \"kind\""))?,
        )?;
        let input_dim = value
            .get("input_dim")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| Error::invalid_param("sketch spec is missing \"input_dim\""))?;
        let output_dim = EmbeddingDim::from_json_value(
            value
                .get("output_dim")
                .ok_or_else(|| Error::invalid_param("sketch spec is missing \"output_dim\""))?,
        )?;
        let seed = value
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| Error::invalid_param("sketch spec is missing \"seed\""))?;
        let tile = match value.get("tile") {
            Some(t) => Some(
                t.as_usize()
                    .ok_or_else(|| Error::invalid_param("\"tile\" must be an integer"))?,
            ),
            None => None,
        };
        Ok(Self {
            kind,
            input_dim,
            output_dim,
            seed,
            tile,
        })
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parse from a JSON string.
    pub fn from_json(text: &str) -> Result<Self, Error> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }
}

impl EmbeddingDim {
    /// Serialize to a [`JsonValue`] (`{"exact": k}`, `{"ratio": c}` or
    /// `{"square": c}`).
    pub fn to_json_value(&self) -> JsonValue {
        let (key, value) = match self {
            EmbeddingDim::Exact(k) => ("exact", *k),
            EmbeddingDim::Ratio(c) => ("ratio", *c),
            EmbeddingDim::Square(c) => ("square", *c),
        };
        JsonValue::Object(vec![(key.to_string(), JsonValue::UInt(value as u64))])
    }

    /// Parse from a [`JsonValue`].
    pub fn from_json_value(value: &JsonValue) -> Result<Self, Error> {
        for (key, make) in [
            ("exact", EmbeddingDim::Exact as fn(usize) -> EmbeddingDim),
            ("ratio", EmbeddingDim::Ratio as fn(usize) -> EmbeddingDim),
            ("square", EmbeddingDim::Square as fn(usize) -> EmbeddingDim),
        ] {
            if let Some(v) = value.get(key) {
                return v
                    .as_usize()
                    .map(make)
                    .ok_or_else(|| Error::invalid_param(format!("\"{key}\" must be an integer")));
            }
        }
        Err(Error::invalid_param(
            "output_dim must be {\"exact\"|\"ratio\"|\"square\": <int>}",
        ))
    }
}

/// A chain of [`SketchSpec`] stages applied left to right: `S = S_p ⋯ S_2 S_1`.
///
/// A one-stage pipeline is just that sketch; the two-stage
/// `[CountSketch, Gaussian]` chain builds the fused [`MultiSketch`] operator
/// (Section 6.1 transpose trick included); any other chain builds a generic
/// composed operator that applies the stages sequentially.
#[must_use = "a Pipeline describes a sketch chain; call build/build_for to construct it"]
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pipeline {
    /// The stages, outermost input first.  Stages after the first may leave
    /// `input_dim = 0` to inherit the previous stage's (resolved) output dimension.
    pub stages: Vec<SketchSpec>,
}

impl Pipeline {
    /// A single-sketch pipeline.
    pub fn single(spec: SketchSpec) -> Self {
        Self { stages: vec![spec] }
    }

    /// A pipeline from explicit stages.
    pub fn new(stages: Vec<SketchSpec>) -> Self {
        Self { stages }
    }

    /// Append a stage.
    pub fn then(mut self, spec: SketchSpec) -> Self {
        self.stages.push(spec);
        self
    }

    /// The paper's Count-Gauss multisketch as a pipeline: CountSketch `d → k₁`
    /// followed by a Gaussian `k₁ → k₂`, with the Gaussian stage's seed salted from
    /// `seed` exactly like [`MultiSketch::generate`] — so building this pipeline is
    /// bit-identical to the fused constructor.
    pub fn count_gauss(input_dim: usize, k1: EmbeddingDim, k2: EmbeddingDim, seed: u64) -> Self {
        Self {
            stages: vec![
                SketchSpec::countsketch(input_dim, k1, seed),
                SketchSpec::gaussian(0, k2, seed ^ GAUSS_STAGE_SEED_SALT),
            ],
        }
    }

    /// Resolve every stage against an operand width: embedding rules become exact
    /// dimensions and inferred (`0`) input dimensions are chained from the previous
    /// stage's output.
    pub fn resolve(&self, ncols: usize) -> Result<Vec<SketchSpec>, Error> {
        if self.stages.is_empty() {
            return Err(Error::invalid_param("pipeline has no stages"));
        }
        let mut resolved = Vec::with_capacity(self.stages.len());
        let mut prev_out: Option<usize> = None;
        for stage in &self.stages {
            let mut stage = stage.resolve(ncols);
            match (stage.input_dim, prev_out) {
                (0, Some(k)) => stage.input_dim = k,
                (0, None) => {
                    return Err(Error::invalid_param(
                        "first pipeline stage must declare its input dimension",
                    ))
                }
                (d, Some(k)) if d != k => {
                    return Err(Error::invalid_param(format!(
                        "pipeline stage {} expects input dimension {d} but the previous stage produces {k}",
                        stage.kind.as_str()
                    )))
                }
                _ => {}
            }
            prev_out = Some(stage.output_dim.resolve(ncols));
            resolved.push(stage);
        }
        Ok(resolved)
    }

    /// The [`ShardAxis`] of each stage, in application order — the per-stage sharding
    /// contract the multi-device executor follows (e.g. the Count-Gauss multisketch is
    /// `[Rows, Cols]`: block-row fold for the CountSketch stage, column panels for the
    /// small Gaussian stage on the reduced intermediate).
    pub fn shard_axes(&self) -> Vec<ShardAxis> {
        self.stages.iter().map(SketchSpec::shard_axis).collect()
    }

    /// Whether this pipeline is the Count-Gauss multisketch shape.
    pub fn is_count_gauss(&self) -> bool {
        self.stages.len() == 2
            && self.stages[0].kind == SketchKind::CountSketch
            && self.stages[1].kind == SketchKind::Gaussian
    }

    /// The first stage's input dimension.
    pub fn input_dim(&self) -> usize {
        self.stages.first().map_or(0, |s| s.input_dim)
    }

    /// Build for an operand with `ncols` columns.
    pub fn build_for(
        &self,
        device: &Device,
        ncols: usize,
    ) -> Result<Box<dyn SketchOperator>, Error> {
        let resolved = self.resolve(ncols)?;
        if resolved.len() == 1 {
            return resolved[0].build(device);
        }
        if self.is_count_gauss() {
            return Ok(Box::new(self.build_multisketch(device, ncols)?));
        }
        let mut stages = Vec::with_capacity(resolved.len());
        for spec in &resolved {
            stages.push(spec.build(device)?);
        }
        Ok(Box::new(ComposedSketch::new(stages)?))
    }

    /// Build, requiring every stage to carry an exact output dimension already
    /// (`ncols` is irrelevant in that case).
    pub fn build(&self, device: &Device) -> Result<Box<dyn SketchOperator>, Error> {
        for stage in &self.stages {
            if stage.output_dim.needs_ncols() {
                return Err(Error::invalid_param(format!(
                    "pipeline stage {} has embedding rule {:?}; use build_for(device, ncols)",
                    stage.kind.as_str(),
                    stage.output_dim
                )));
            }
        }
        // Any ncols resolves Exact rules to themselves.
        self.build_for(device, 0)
    }

    /// Build the fused [`MultiSketch`] from a `[CountSketch, Gaussian]` pipeline.
    pub fn build_multisketch(&self, device: &Device, ncols: usize) -> Result<MultiSketch, Error> {
        if !self.is_count_gauss() {
            return Err(Error::invalid_param(
                "only a [count-sketch, gaussian] pipeline builds a MultiSketch",
            ));
        }
        let resolved = self.resolve(ncols)?;
        let count = resolved[0].build_countsketch(device)?;
        let gauss = resolved[1].build_gaussian(device)?;
        MultiSketch::new(count, gauss)
    }

    /// Serialize to a [`JsonValue`].
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![(
            "stages".to_string(),
            JsonValue::Array(self.stages.iter().map(SketchSpec::to_json_value).collect()),
        )])
    }

    /// Parse from a [`JsonValue`].
    pub fn from_json_value(value: &JsonValue) -> Result<Self, Error> {
        let stages = value
            .get("stages")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| Error::invalid_param("pipeline is missing \"stages\""))?;
        Ok(Self {
            stages: stages
                .iter()
                .map(SketchSpec::from_json_value)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parse from a JSON string.
    pub fn from_json(text: &str) -> Result<Self, Error> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }
}

/// A generic sequential composition of sketch operators (the fallback for pipelines
/// that are not the fused Count-Gauss shape).
pub struct ComposedSketch {
    stages: Vec<Box<dyn SketchOperator>>,
}

impl ComposedSketch {
    /// Compose stages applied left to right; adjacent dimensions must chain.
    pub fn new(stages: Vec<Box<dyn SketchOperator>>) -> Result<Self, Error> {
        if stages.is_empty() {
            return Err(Error::invalid_param("cannot compose zero sketches"));
        }
        for pair in stages.windows(2) {
            if pair[1].input_dim() != pair[0].output_dim() {
                return Err(Error::invalid_param(format!(
                    "cannot chain {} (output {}) into {} (input {})",
                    pair[0].name(),
                    pair[0].output_dim(),
                    pair[1].name(),
                    pair[1].input_dim()
                )));
            }
        }
        Ok(Self { stages })
    }

    /// The composed stages.
    pub fn stages(&self) -> &[Box<dyn SketchOperator>] {
        &self.stages
    }
}

impl std::fmt::Debug for ComposedSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComposedSketch")
            .field(
                "stages",
                &self.stages.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl SketchOperator for ComposedSketch {
    fn input_dim(&self) -> usize {
        self.stages.first().expect("non-empty").input_dim()
    }

    fn output_dim(&self) -> usize {
        self.stages.last().expect("non-empty").output_dim()
    }

    fn name(&self) -> &'static str {
        "Pipeline"
    }

    fn output_layout(&self) -> Layout {
        self.stages.last().expect("non-empty").output_layout()
    }

    fn apply_into(
        &self,
        device: &Device,
        a: Operand<'_>,
        out: &mut MatrixViewMut<'_>,
    ) -> Result<(), Error> {
        self.check_operand(&a)?;
        self.check_output(out, a.ncols())?;
        let (last, front) = self.stages.split_last().expect("non-empty");
        if front.is_empty() {
            return last.apply_into(device, a, out);
        }
        let mut current = front[0].apply_operand(device, a)?;
        for stage in &front[1..] {
            current = stage.apply_matrix(device, &current)?;
        }
        last.apply_into(device, Operand::Dense(&current), out)
    }

    fn apply_vector(&self, device: &Device, x: &[f64]) -> Result<Vec<f64>, Error> {
        self.check_input_dim(x.len())?;
        let mut current = x.to_vec();
        for stage in &self.stages {
            current = stage.apply_vector(device, &current)?;
        }
        Ok(current)
    }

    fn generation_cost(&self) -> KernelCost {
        self.stages
            .iter()
            .fold(KernelCost::zero(), |acc, s| acc + s.generation_cost())
    }

    fn algorithmic_cost(&self, ncols: usize) -> KernelCost {
        self.stages
            .iter()
            .fold(KernelCost::zero(), |acc, s| acc + s.algorithmic_cost(ncols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sketch_la::Matrix;

    fn device() -> Device {
        Device::unlimited()
    }

    #[test]
    fn embedding_rules_resolve_the_paper_conventions() {
        assert_eq!(EmbeddingDim::Exact(96).resolve(32), 96);
        assert_eq!(EmbeddingDim::Ratio(2).resolve(32), 64);
        assert_eq!(EmbeddingDim::Square(2).resolve(32), 2048);
        assert!(!EmbeddingDim::Exact(1).needs_ncols());
        assert!(EmbeddingDim::Ratio(2).needs_ncols());
    }

    #[test]
    fn shard_axes_follow_the_kernel_contract() {
        assert_eq!(SketchKind::CountSketch.shard_axis(), ShardAxis::Rows);
        assert_eq!(SketchKind::HashCountSketch.shard_axis(), ShardAxis::Rows);
        assert_eq!(SketchKind::Gaussian.shard_axis(), ShardAxis::Cols);
        assert_eq!(SketchKind::Srht.shard_axis(), ShardAxis::Cols);
        let spec = SketchSpec::countsketch(64, EmbeddingDim::Exact(8), 1);
        assert_eq!(spec.shard_axis(), ShardAxis::Rows);
        let plan = Pipeline::count_gauss(64, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 1);
        assert_eq!(plan.shard_axes(), vec![ShardAxis::Rows, ShardAxis::Cols]);
    }

    #[test]
    fn specs_build_every_kind() {
        let d = device();
        for (spec, expect_name) in [
            (
                SketchSpec::countsketch(128, EmbeddingDim::Exact(32), 1),
                "CountSketch (Alg 2)",
            ),
            (
                SketchSpec::gaussian(128, EmbeddingDim::Exact(16), 2),
                "Gaussian",
            ),
            (SketchSpec::srht(128, EmbeddingDim::Exact(16), 3), "SRHT"),
            (
                SketchSpec::hash_countsketch(128, EmbeddingDim::Exact(32), 4),
                "CountSketch (hash/streaming)",
            ),
        ] {
            let op = spec.build(&d).unwrap();
            assert_eq!(op.name(), expect_name);
            assert_eq!(op.input_dim(), 128);
        }
    }

    #[test]
    fn build_matches_the_direct_constructors_bit_for_bit() {
        let d = device();
        let spec = SketchSpec::countsketch(200, EmbeddingDim::Exact(24), 9);
        let via_spec = spec.build_countsketch(&d).unwrap();
        let direct = CountSketch::generate(&d, 200, 24, 9);
        assert_eq!(via_spec.rows(), direct.rows());
        assert_eq!(via_spec.signs(), direct.signs());

        let gspec = SketchSpec::gaussian(64, EmbeddingDim::Exact(8), 5);
        let g1 = gspec.build_gaussian(&d).unwrap();
        let g2 = GaussianSketch::generate(&d, 64, 8, 5).unwrap();
        assert_eq!(g1.matrix(), g2.matrix());
    }

    #[test]
    fn count_gauss_pipeline_is_bit_identical_to_multisketch_generate() {
        let d = device();
        let plan = Pipeline::count_gauss(512, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 7);
        assert!(plan.is_count_gauss());
        let ms_plan = plan.build_multisketch(&d, 6).unwrap();
        let ms_direct = MultiSketch::generate(&d, 512, 72, 12, 7).unwrap();
        assert_eq!(ms_plan.count_stage().rows(), ms_direct.count_stage().rows());
        assert_eq!(
            ms_plan.gauss_stage().matrix(),
            ms_direct.gauss_stage().matrix()
        );

        // build_for dispatches the same fused operator.
        let op = plan.build_for(&d, 6).unwrap();
        assert_eq!(op.name(), "MultiSketch (Count-Gauss)");
        assert_eq!(op.output_dim(), 12);
    }

    #[test]
    fn generic_pipelines_compose_sequentially() {
        let d = device();
        // SRHT down to 64, then a CountSketch down to 16: not the fused shape.
        let plan = Pipeline::single(SketchSpec::srht(256, EmbeddingDim::Exact(64), 1))
            .then(SketchSpec::countsketch(0, EmbeddingDim::Exact(16), 2));
        let op = plan.build_for(&d, 3).unwrap();
        assert_eq!(op.name(), "Pipeline");
        assert_eq!((op.input_dim(), op.output_dim()), (256, 16));

        let a = Matrix::random_gaussian(256, 3, Layout::RowMajor, 4, 0);
        let y = op.apply_matrix(&d, &a).unwrap();
        assert_eq!((y.nrows(), y.ncols()), (16, 3));

        // Matches applying the stages by hand.
        let srht = SketchSpec::srht(256, EmbeddingDim::Exact(64), 1)
            .build_srht(&d)
            .unwrap();
        let cs = SketchSpec::countsketch(64, EmbeddingDim::Exact(16), 2)
            .build_countsketch(&d)
            .unwrap();
        let manual = cs
            .apply_matrix(&d, &srht.apply_matrix(&d, &a).unwrap())
            .unwrap();
        assert!(y.max_abs_diff(&manual).unwrap() < 1e-12);

        // And the vector path chains too.
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.01).sin()).collect();
        let yv = op.apply_vector(&d, &x).unwrap();
        assert_eq!(yv.len(), 16);
        assert!(op.generation_cost().total_bytes() > 0);
        assert!(op.algorithmic_cost(3).flops > 0);
    }

    #[test]
    fn invalid_specs_and_pipelines_are_rejected() {
        let d = device();
        // Rule without ncols.
        let spec = SketchSpec::countsketch(100, EmbeddingDim::Square(2), 1);
        assert!(spec.build(&d).is_err());
        assert!(spec.build_for(&d, 4).is_ok());
        // Zero dims.
        assert!(SketchSpec::countsketch(0, EmbeddingDim::Exact(4), 1)
            .build(&d)
            .is_err());
        assert!(SketchSpec::countsketch(10, EmbeddingDim::Exact(0), 1)
            .build(&d)
            .is_err());
        // Kind mismatch on typed builders.
        assert!(SketchSpec::gaussian(10, EmbeddingDim::Exact(4), 1)
            .build_countsketch(&d)
            .is_err());
        // Empty pipeline, inferred first stage, mismatched chain.
        assert!(Pipeline::new(vec![]).build_for(&d, 4).is_err());
        assert!(
            Pipeline::single(SketchSpec::countsketch(0, EmbeddingDim::Exact(4), 1))
                .build_for(&d, 4)
                .is_err()
        );
        let bad_chain = Pipeline::new(vec![
            SketchSpec::countsketch(64, EmbeddingDim::Exact(32), 1),
            SketchSpec::gaussian(31, EmbeddingDim::Exact(8), 2),
        ]);
        assert!(bad_chain.build_for(&d, 4).is_err());
    }

    #[test]
    fn spec_json_round_trips_and_rebuilds_bit_identically() {
        let d = device();
        // Large seed exercises full u64 fidelity through the JSON layer.
        let seed = 0xDEAD_BEEF_1234_5678u64;
        let spec = SketchSpec::srht(300, EmbeddingDim::Exact(40), seed).with_tile(256);
        let text = spec.to_json();
        let back = SketchSpec::from_json(&text).unwrap();
        assert_eq!(spec, back);

        let a = Matrix::random_gaussian(300, 3, Layout::ColMajor, 1, 0);
        let y1 = spec.build(&d).unwrap().apply_matrix(&d, &a).unwrap();
        let y2 = back.build(&d).unwrap().apply_matrix(&d, &a).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());
    }

    #[test]
    fn pipeline_json_round_trips() {
        let plan = Pipeline::count_gauss(
            1 << 14,
            EmbeddingDim::Square(2),
            EmbeddingDim::Ratio(2),
            0xFFFF_FFFF_FFFF_FFFF,
        );
        let back = Pipeline::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
        // The salted Gaussian-stage seed survives the text round trip exactly.
        assert_eq!(back.stages[1].seed, plan.stages[1].seed);
    }

    #[test]
    fn malformed_json_specs_error_cleanly() {
        assert!(SketchSpec::from_json("{").is_err());
        assert!(SketchSpec::from_json("{\"kind\": \"martian\"}").is_err());
        assert!(SketchSpec::from_json(
            "{\"kind\": \"srht\", \"input_dim\": 4, \"output_dim\": {\"weird\": 1}, \"seed\": 0}"
        )
        .is_err());
        assert!(Pipeline::from_json("{\"stages\": 3}").is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Serde round trip rebuilds bit-identical sketches for every kind and seed
        /// under the Philox seed-salting convention.
        #[test]
        fn prop_spec_round_trip_rebuilds_identical_sketches(
            d_dim in 8usize..64,
            k in 2usize..16,
            seed in 0u64..u64::MAX,
        ) {
            let dev = device();
            for spec in [
                SketchSpec::countsketch(d_dim, EmbeddingDim::Exact(k), seed),
                SketchSpec::gaussian(d_dim, EmbeddingDim::Exact(k), seed),
                SketchSpec::hash_countsketch(d_dim, EmbeddingDim::Exact(k), seed),
            ] {
                let back = SketchSpec::from_json(&spec.to_json()).unwrap();
                prop_assert_eq!(&spec, &back);
                let a = Matrix::random_gaussian(d_dim, 2, Layout::RowMajor, 11, 0);
                let y1 = spec.build(&dev).unwrap().apply_matrix(&dev, &a).unwrap();
                let y2 = back.build(&dev).unwrap().apply_matrix(&dev, &a).unwrap();
                prop_assert_eq!(y1.as_slice(), y2.as_slice());
            }
        }
    }
}
