//! Stream management: carving one seed into many independent generators.
//!
//! On the GPU, cuRAND gives every thread its own `(seed, subsequence, offset)` triple so
//! that all threads can generate simultaneously yet the whole run stays reproducible.
//! [`StreamFactory`] reproduces that contract: a factory built from one seed hands out
//! [`PhiloxRng`] instances for arbitrary stream ids, and the mapping is pure — asking
//! for stream 17 twice yields identical generators.

use crate::philox::PhiloxRng;

/// Factory of independent, reproducible random streams sharing one master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFactory {
    seed: u64,
}

impl StreamFactory {
    /// Create a factory from a master seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The master seed this factory was built from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generator for the given stream id.
    ///
    /// Streams are independent for distinct ids because Philox places the id in the
    /// high half of the 128-bit counter (disjoint counter ranges).
    #[inline]
    pub fn stream(&self, id: u64) -> PhiloxRng {
        PhiloxRng::with_stream(self.seed, id)
    }

    /// Generator for a `(stream, block)` position — used by the parallel fills where
    /// every chunk of a large array starts at its own block offset.
    #[inline]
    pub fn stream_at(&self, id: u64, block: u64) -> PhiloxRng {
        let mut rng = self.stream(id);
        rng.seek_block(block);
        rng
    }

    /// Derive a child factory, e.g. one per simulated process in `sketch-dist`.
    ///
    /// The derivation is a splitmix64 step of the `(seed, label)` pair so that child
    /// factories are well separated even for adjacent labels.
    #[inline]
    pub fn child(&self, label: u64) -> StreamFactory {
        StreamFactory {
            seed: splitmix64(self.seed ^ splitmix64(label)),
        }
    }
}

/// One round of the splitmix64 finalizer, used only for seed derivation.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_id_is_identical() {
        let f = StreamFactory::new(100);
        let mut a = f.stream(3);
        let mut b = f.stream(3);
        for _ in 0..64 {
            assert_eq!(a.next_word(), b.next_word());
        }
    }

    #[test]
    fn different_stream_ids_differ() {
        let f = StreamFactory::new(100);
        let mut a = f.stream(3);
        let mut b = f.stream(4);
        let wa: Vec<u32> = (0..32).map(|_| a.next_word()).collect();
        let wb: Vec<u32> = (0..32).map(|_| b.next_word()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn stream_at_matches_seek() {
        let f = StreamFactory::new(55);
        let mut direct = f.stream_at(2, 10);
        let mut manual = f.stream(2);
        manual.seek_block(10);
        for _ in 0..16 {
            assert_eq!(direct.next_word(), manual.next_word());
        }
    }

    #[test]
    fn child_factories_are_reproducible_and_distinct() {
        let f = StreamFactory::new(1);
        assert_eq!(f.child(0).seed(), f.child(0).seed());
        assert_ne!(f.child(0).seed(), f.child(1).seed());
        assert_ne!(f.child(0).seed(), f.seed());
    }

    #[test]
    fn adjacent_children_produce_unrelated_streams() {
        let f = StreamFactory::new(42);
        let mut a = f.child(7).stream(0);
        let mut b = f.child(8).stream(0);
        let wa: Vec<u32> = (0..32).map(|_| a.next_word()).collect();
        let wb: Vec<u32> = (0..32).map(|_| b.next_word()).collect();
        assert_ne!(wa, wb);
    }
}
