//! Philox4x32-10 counter-based pseudo-random number generator.
//!
//! Philox is the default generator of NVIDIA's cuRAND device API and the generator the
//! paper implicitly relies on when it reports "Sketch gen time".  It maps a 128-bit
//! *counter* and a 64-bit *key* to 128 bits of output through ten rounds of a simple
//! multiply/xor network (Salmon et al., "Parallel random numbers: as easy as 1, 2, 3",
//! SC'11).  Because each block is a pure function of `(key, counter)`, any thread can
//! generate any block without coordination — which is exactly the property a GPU (or a
//! rayon parallel fill) needs.

/// Number of rounds used by the standard Philox4x32-10 variant.
pub const PHILOX_ROUNDS: usize = 10;

/// First Weyl key increment (from the reference implementation).
const PHILOX_W32_0: u32 = 0x9E37_79B9;
/// Second Weyl key increment.
const PHILOX_W32_1: u32 = 0xBB67_AE85;
/// First round multiplier.
const PHILOX_M4X32_0: u32 = 0xD251_1F53;
/// Second round multiplier.
const PHILOX_M4X32_1: u32 = 0xCD9E_8D57;

/// The raw Philox4x32-10 block function with an incrementing 128-bit counter.
///
/// The generator is deliberately tiny and `Copy`: a GPU thread (or a rayon task) holds
/// one by value, positions it with [`Philox4x32::set_counter`], and squeezes 32-bit
/// words out of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Philox4x32 {
    /// 64-bit key, split into two 32-bit halves as in the reference implementation.
    key: [u32; 2],
    /// 128-bit counter, little-endian limbs.
    counter: [u32; 4],
}

impl Philox4x32 {
    /// Create a generator with the given 64-bit key (seed) and a zero counter.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self {
            key: [seed as u32, (seed >> 32) as u32],
            counter: [0; 4],
        }
    }

    /// Create a generator for a specific `(seed, stream)` pair.
    ///
    /// The stream id is folded into the high counter limbs so that distinct streams
    /// generate disjoint counter ranges (each stream still has 2^64 blocks available).
    #[inline]
    pub fn new_stream(seed: u64, stream: u64) -> Self {
        Self {
            key: [seed as u32, (seed >> 32) as u32],
            counter: [0, 0, stream as u32, (stream >> 32) as u32],
        }
    }

    /// Position the low 64 bits of the counter.
    ///
    /// Together with [`Philox4x32::new_stream`] this gives O(1) jump-ahead: block `i`
    /// of stream `s` is always the same four words, no matter who computes it.
    #[inline]
    pub fn set_counter(&mut self, block: u64) {
        self.counter[0] = block as u32;
        self.counter[1] = (block >> 32) as u32;
    }

    /// Return the low 64 bits of the counter (the block index within the stream).
    #[inline]
    pub fn block_index(&self) -> u64 {
        (self.counter[0] as u64) | ((self.counter[1] as u64) << 32)
    }

    /// One Philox round: two 32x32->64 multiplies plus xors with the key.
    #[inline(always)]
    fn round(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
        let prod0 = (PHILOX_M4X32_0 as u64).wrapping_mul(ctr[0] as u64);
        let prod1 = (PHILOX_M4X32_1 as u64).wrapping_mul(ctr[2] as u64);
        let hi0 = (prod0 >> 32) as u32;
        let lo0 = prod0 as u32;
        let hi1 = (prod1 >> 32) as u32;
        let lo1 = prod1 as u32;
        [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0]
    }

    /// Run the full 10-round block function on an arbitrary counter value.
    #[inline]
    pub fn block(&self, counter: [u32; 4]) -> [u32; 4] {
        let mut ctr = counter;
        let mut key = self.key;
        for round in 0..PHILOX_ROUNDS {
            ctr = Self::round(ctr, key);
            if round + 1 < PHILOX_ROUNDS {
                key[0] = key[0].wrapping_add(PHILOX_W32_0);
                key[1] = key[1].wrapping_add(PHILOX_W32_1);
            }
        }
        ctr
    }

    /// Generate the next block of four 32-bit words and advance the counter.
    #[inline]
    pub fn next_block(&mut self) -> [u32; 4] {
        let out = self.block(self.counter);
        self.advance(1);
        out
    }

    /// Advance the 128-bit counter by `blocks`.
    #[inline]
    pub fn advance(&mut self, blocks: u64) {
        let lo = self.counter[0] as u64 | ((self.counter[1] as u64) << 32);
        let (new_lo, carry) = lo.overflowing_add(blocks);
        self.counter[0] = new_lo as u32;
        self.counter[1] = (new_lo >> 32) as u32;
        if carry {
            let hi = self.counter[2] as u64 | ((self.counter[3] as u64) << 32);
            let new_hi = hi.wrapping_add(1);
            self.counter[2] = new_hi as u32;
            self.counter[3] = (new_hi >> 32) as u32;
        }
    }
}

/// A buffered [`rand::RngCore`] adaptor over [`Philox4x32`].
///
/// Each call to the block function yields four 32-bit words; this wrapper buffers them
/// so scalar consumers (e.g. `rand` distributions) see an ordinary stream.
#[derive(Debug, Clone)]
pub struct PhiloxRng {
    core: Philox4x32,
    buffer: [u32; 4],
    /// Index of the next unconsumed word in `buffer`; 4 means "empty".
    cursor: usize,
}

impl PhiloxRng {
    /// Construct from a seed with stream id 0.
    #[inline]
    pub fn seed_from(seed: u64) -> Self {
        Self::with_stream(seed, 0)
    }

    /// Construct a generator on an explicit `(seed, stream)` pair.
    #[inline]
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        Self {
            core: Philox4x32::new_stream(seed, stream),
            buffer: [0; 4],
            cursor: 4,
        }
    }

    /// Skip ahead to the given block index (each block is four 32-bit words).
    #[inline]
    pub fn seek_block(&mut self, block: u64) {
        self.core.set_counter(block);
        self.cursor = 4;
    }

    /// Next uniformly distributed `u32`.
    #[inline]
    pub fn next_word(&mut self) -> u32 {
        if self.cursor == 4 {
            self.buffer = self.core.next_block();
            self.cursor = 0;
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    /// Uniform double in `[0, 1)` built from 53 random mantissa bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        let hi = self.next_word() as u64;
        let lo = self.next_word() as u64;
        let bits = (hi << 32) | lo;
        // Keep the top 53 bits: the standard (0,1) double construction.
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in the open interval `(0, 1]`, suitable for `ln()` in Box–Muller.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        let u = self.next_f64();
        if u == 0.0 {
            f64::EPSILON
        } else {
            u
        }
    }
}

impl rand::RngCore for PhiloxRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_word() as u64;
        let lo = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_word().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_word().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl rand::SeedableRng for PhiloxRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::seed_from(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn philox_is_deterministic() {
        let mut a = Philox4x32::new(0xDEAD_BEEF);
        let mut b = Philox4x32::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_block(), b.next_block());
        }
    }

    #[test]
    fn philox_streams_differ() {
        let mut a = Philox4x32::new_stream(1, 0);
        let mut b = Philox4x32::new_stream(1, 1);
        let blocks_a: Vec<_> = (0..16).map(|_| a.next_block()).collect();
        let blocks_b: Vec<_> = (0..16).map(|_| b.next_block()).collect();
        assert_ne!(blocks_a, blocks_b);
    }

    #[test]
    fn philox_counter_jump_matches_sequential() {
        let mut seq = Philox4x32::new(7);
        // Burn 5 blocks sequentially.
        for _ in 0..5 {
            seq.next_block();
        }
        let sixth_sequential = seq.next_block();

        let mut jumped = Philox4x32::new(7);
        jumped.set_counter(5);
        let sixth_jumped = jumped.next_block();
        assert_eq!(sixth_sequential, sixth_jumped);
    }

    #[test]
    fn philox_counter_carry_propagates() {
        let mut g = Philox4x32::new(3);
        g.set_counter(u64::MAX);
        g.advance(1);
        // Low 64 bits wrapped to zero, high limbs incremented.
        assert_eq!(g.block_index(), 0);
        assert_eq!(g.counter[2], 1);
    }

    #[test]
    fn philox_known_answer_nonzero_and_stable() {
        // Regression anchor: the first block for (seed=0, counter=0) must never change,
        // otherwise every "random" experiment in the workspace silently changes.
        let g = Philox4x32::new(0);
        let block = g.block([0, 0, 0, 0]);
        assert_eq!(block, g.block([0, 0, 0, 0]));
        assert_ne!(block, [0, 0, 0, 0]);
    }

    #[test]
    fn rng_uniform_in_unit_interval() {
        let mut rng = PhiloxRng::seed_from(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rng_mean_is_roughly_half() {
        let mut rng = PhiloxRng::seed_from(1234);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean = {mean}");
    }

    #[test]
    fn rng_fill_bytes_handles_remainders() {
        let mut rng = PhiloxRng::seed_from(9);
        for len in [0usize, 1, 3, 4, 5, 7, 8, 17] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 4 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced all zeros");
            }
        }
    }

    #[test]
    fn rng_seek_block_is_reproducible() {
        let mut a = PhiloxRng::seed_from(5);
        a.seek_block(123);
        let wa: Vec<u32> = (0..8).map(|_| a.next_word()).collect();

        let mut b = PhiloxRng::seed_from(5);
        // Consume some unrelated words first.
        for _ in 0..37 {
            b.next_word();
        }
        b.seek_block(123);
        let wb: Vec<u32> = (0..8).map(|_| b.next_word()).collect();
        assert_eq!(wa, wb);
    }

    #[test]
    fn rng_core_next_u64_uses_two_words() {
        let mut a = PhiloxRng::seed_from(2);
        let mut b = PhiloxRng::seed_from(2);
        let w0 = b.next_word() as u64;
        let w1 = b.next_word() as u64;
        assert_eq!(a.next_u64(), (w0 << 32) | w1);
    }
}
