//! Distributions layered on top of the Philox generator.
//!
//! The sketches in the paper need exactly three random ingredients (Section 4 and 6.1):
//!
//! * i.i.d. standard **Gaussians** scaled by `1/sqrt(k)` for the Gaussian sketch,
//! * i.i.d. **Rademacher** signs (±1) for the CountSketch signs and the SRHT's `D`,
//! * i.i.d. **uniform integers** in `{0, …, k-1}` for the CountSketch row map and the
//!   SRHT's row sampling `P`.

use crate::philox::PhiloxRng;

/// Box–Muller transform producing standard normal variates two at a time.
///
/// cuRAND's normal generators use the same transform; it consumes two uniforms per pair
/// which is what the generation-cost model in `sketch-gpu-sim` assumes.
#[derive(Debug, Clone, Default)]
pub struct BoxMuller {
    /// Cached second variate of the most recent pair.
    spare: Option<f64>,
}

impl BoxMuller {
    /// Create a transform with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw one standard normal variate.
    #[inline]
    pub fn sample(&mut self, rng: &mut PhiloxRng) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let (z0, z1) = Self::sample_pair(rng);
        self.spare = Some(z1);
        z0
    }

    /// Draw a pair of independent standard normal variates.
    #[inline]
    pub fn sample_pair(rng: &mut PhiloxRng) -> (f64, f64) {
        let u1 = rng.next_f64_open();
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

/// Rademacher distribution: ±1 with equal probability.
///
/// The CountSketch kernel (Algorithm 2) never multiplies by the sign — it branches on a
/// boolean — so the sampler exposes both a `f64` and a `bool` view.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rademacher;

impl Rademacher {
    /// Sample a sign as `+1.0` / `-1.0`.
    #[inline]
    pub fn sample_f64(rng: &mut PhiloxRng) -> f64 {
        if Self::sample_bool(rng) {
            1.0
        } else {
            -1.0
        }
    }

    /// Sample a sign as a boolean (`true` = `+1`).
    #[inline]
    pub fn sample_bool(rng: &mut PhiloxRng) -> bool {
        rng.next_word() & 1 == 1
    }
}

/// Uniform integer in `{0, …, bound-1}` using Lemire-style rejection to avoid modulo bias.
///
/// Used for the CountSketch row map `r_j` and the SRHT row sampling matrix `P`.
#[derive(Debug, Clone, Copy)]
pub struct UniformIndex {
    bound: u32,
    /// Rejection threshold: values below it would introduce bias and are re-drawn.
    threshold: u32,
}

impl UniformIndex {
    /// Create a sampler over `{0, …, bound-1}`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn new(bound: usize) -> Self {
        assert!(bound > 0, "UniformIndex bound must be positive");
        assert!(bound <= u32::MAX as usize, "UniformIndex bound too large");
        let bound = bound as u32;
        let threshold = bound.wrapping_neg() % bound;
        Self { bound, threshold }
    }

    /// Upper bound (exclusive) of the sampled range.
    #[inline]
    pub fn bound(&self) -> usize {
        self.bound as usize
    }

    /// Sample one index.
    #[inline]
    pub fn sample(&self, rng: &mut PhiloxRng) -> usize {
        loop {
            let x = rng.next_word();
            let m = (x as u64).wrapping_mul(self.bound as u64);
            let lo = m as u32;
            if lo >= self.threshold {
                return (m >> 32) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_muller_moments() {
        let mut rng = PhiloxRng::seed_from(99);
        let mut bm = BoxMuller::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| bm.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 1e-2, "mean = {mean}");
        assert!((var - 1.0).abs() < 2e-2, "var = {var}");
    }

    #[test]
    fn box_muller_pair_components_are_uncorrelated() {
        let mut rng = PhiloxRng::seed_from(4);
        let n = 100_000;
        let mut cov = 0.0;
        for _ in 0..n {
            let (a, b) = BoxMuller::sample_pair(&mut rng);
            cov += a * b;
        }
        cov /= n as f64;
        assert!(cov.abs() < 1e-2, "cov = {cov}");
    }

    #[test]
    fn rademacher_is_balanced() {
        let mut rng = PhiloxRng::seed_from(7);
        let n = 100_000;
        let plus = (0..n).filter(|_| Rademacher::sample_bool(&mut rng)).count();
        let frac = plus as f64 / n as f64;
        assert!((frac - 0.5).abs() < 1e-2, "frac = {frac}");
    }

    #[test]
    fn rademacher_f64_is_plus_or_minus_one() {
        let mut rng = PhiloxRng::seed_from(8);
        for _ in 0..1000 {
            let s = Rademacher::sample_f64(&mut rng);
            assert!(s == 1.0 || s == -1.0);
        }
    }

    #[test]
    fn uniform_index_stays_in_range() {
        let mut rng = PhiloxRng::seed_from(21);
        for bound in [1usize, 2, 3, 7, 64, 1000, 1 << 20] {
            let sampler = UniformIndex::new(bound);
            for _ in 0..1000 {
                assert!(sampler.sample(&mut rng) < bound);
            }
        }
    }

    #[test]
    fn uniform_index_bound_one_is_always_zero() {
        let mut rng = PhiloxRng::seed_from(22);
        let sampler = UniformIndex::new(1);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 0);
        }
    }

    #[test]
    fn uniform_index_is_roughly_uniform() {
        let mut rng = PhiloxRng::seed_from(23);
        let bound = 16;
        let sampler = UniformIndex::new(bound);
        let n = 160_000;
        let mut counts = vec![0usize; bound];
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let expected = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "bucket {i} off by {rel}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn uniform_index_rejects_zero_bound() {
        UniformIndex::new(0);
    }
}
