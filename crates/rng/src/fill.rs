//! Deterministic parallel fills of large arrays.
//!
//! A Gaussian sketch of a `d x n` matrix with `d = 2^23` needs `2n·d` Gaussian variates;
//! the paper counts that generation cost as part of the sketch time (the "Sketch gen
//! time" stacks of Figures 2 and 5).  On the GPU every thread generates its own values
//! from `(seed, counter)`; here every rayon chunk does the same, so the result is
//! bit-identical regardless of thread count or chunk scheduling.

use crate::distributions::{BoxMuller, Rademacher, UniformIndex};
use crate::stream::StreamFactory;
use rayon::prelude::*;

/// Number of elements generated per independent chunk.
///
/// Each chunk starts at its own Philox block so chunks never share counter ranges;
/// 8192 elements keeps scheduling overhead negligible while staying cache friendly.
const CHUNK: usize = 8192;

/// Worst-case Philox blocks consumed per generated element, used to space the chunk
/// starting blocks far enough apart that chunks can never overlap.
/// (A Gaussian pair consumes 4 words = 1 block; a rejection-sampled index may retry.)
const BLOCKS_PER_ELEMENT: u64 = 4;

/// Fill a new vector with standard normal variates, in parallel, deterministically.
pub fn gaussian_vec(seed: u64, stream: u64, len: usize) -> Vec<f64> {
    let mut out = vec![0.0; len];
    gaussian_fill(seed, stream, &mut out);
    out
}

/// Fill an existing slice with standard normal variates (parallel, deterministic).
pub fn gaussian_fill(seed: u64, stream: u64, out: &mut [f64]) {
    let factory = StreamFactory::new(seed);
    out.par_chunks_mut(CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let block = (ci as u64) * (CHUNK as u64) * BLOCKS_PER_ELEMENT;
            let mut rng = factory.stream_at(stream, block);
            let mut bm = BoxMuller::new();
            for x in chunk.iter_mut() {
                *x = bm.sample(&mut rng);
            }
        });
}

/// Fill a new vector with scaled normal variates `N(0, scale^2)`.
pub fn scaled_gaussian_vec(seed: u64, stream: u64, len: usize, scale: f64) -> Vec<f64> {
    let mut out = gaussian_vec(seed, stream, len);
    out.par_iter_mut().for_each(|x| *x *= scale);
    out
}

/// Fill a new vector with Rademacher signs stored as `+1.0` / `-1.0`.
pub fn rademacher_vec(seed: u64, stream: u64, len: usize) -> Vec<f64> {
    rademacher_bool_vec(seed, stream, len)
        .into_iter()
        .map(|b| if b { 1.0 } else { -1.0 })
        .collect()
}

/// Fill a new vector with Rademacher signs stored as booleans (`true` = `+1`),
/// which is the representation Algorithm 2 consumes.
pub fn rademacher_bool_vec(seed: u64, stream: u64, len: usize) -> Vec<bool> {
    let factory = StreamFactory::new(seed);
    let mut out = vec![false; len];
    out.par_chunks_mut(CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let block = (ci as u64) * (CHUNK as u64) * BLOCKS_PER_ELEMENT;
            let mut rng = factory.stream_at(stream, block);
            for b in chunk.iter_mut() {
                *b = Rademacher::sample_bool(&mut rng);
            }
        });
    out
}

/// Fill a new vector with uniform indices in `{0, …, bound-1}` — the CountSketch row
/// map and the SRHT row sample both use this.
pub fn uniform_index_vec(seed: u64, stream: u64, len: usize, bound: usize) -> Vec<usize> {
    let factory = StreamFactory::new(seed);
    let sampler = UniformIndex::new(bound);
    let mut out = vec![0usize; len];
    out.par_chunks_mut(CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let block = (ci as u64) * (CHUNK as u64) * BLOCKS_PER_ELEMENT;
            let mut rng = factory.stream_at(stream, block);
            for r in chunk.iter_mut() {
                *r = sampler.sample(&mut rng);
            }
        });
    out
}

/// Fill a new vector with uniform doubles in `[0, 1)`.
pub fn uniform_vec(seed: u64, stream: u64, len: usize) -> Vec<f64> {
    let factory = StreamFactory::new(seed);
    let mut out = vec![0.0; len];
    out.par_chunks_mut(CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let block = (ci as u64) * (CHUNK as u64) * BLOCKS_PER_ELEMENT;
            let mut rng = factory.stream_at(stream, block);
            for x in chunk.iter_mut() {
                *x = rng.next_f64();
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_fill_is_deterministic_across_calls() {
        let a = gaussian_vec(1, 0, 3 * CHUNK + 17);
        let b = gaussian_vec(1, 0, 3 * CHUNK + 17);
        assert_eq!(a, b);
    }

    #[test]
    fn gaussian_fill_prefix_is_chunk_stable() {
        // The first CHUNK elements must not depend on total length (chunking is local).
        let long = gaussian_vec(5, 1, 2 * CHUNK);
        let short = gaussian_vec(5, 1, CHUNK);
        assert_eq!(&long[..CHUNK], &short[..]);
    }

    #[test]
    fn gaussian_fill_has_unit_variance() {
        let v = gaussian_vec(2, 0, 100_000);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 2e-2);
        assert!((var - 1.0).abs() < 3e-2);
    }

    #[test]
    fn scaled_gaussian_scales_variance() {
        let v = scaled_gaussian_vec(2, 0, 100_000, 0.5);
        let var = v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        assert!((var - 0.25).abs() < 2e-2, "var = {var}");
    }

    #[test]
    fn different_streams_give_different_data() {
        let a = gaussian_vec(1, 0, 1000);
        let b = gaussian_vec(1, 1, 1000);
        assert_ne!(a, b);
    }

    #[test]
    fn rademacher_vec_is_signs_only_and_balanced() {
        let v = rademacher_vec(3, 0, 50_000);
        assert!(v.iter().all(|&x| x == 1.0 || x == -1.0));
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 2e-2);
    }

    #[test]
    fn rademacher_bool_matches_f64_version() {
        let b = rademacher_bool_vec(3, 0, 4096);
        let f = rademacher_vec(3, 0, 4096);
        for (bi, fi) in b.iter().zip(f.iter()) {
            assert_eq!(*bi, *fi > 0.0);
        }
    }

    #[test]
    fn uniform_index_vec_respects_bound() {
        let v = uniform_index_vec(4, 0, 100_000, 37);
        assert!(v.iter().all(|&r| r < 37));
        // All buckets should be hit for this many samples.
        let mut seen = [false; 37];
        for &r in &v {
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_vec_in_unit_interval() {
        let v = uniform_vec(6, 2, 10_000);
        assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn empty_fills_are_fine() {
        assert!(gaussian_vec(1, 0, 0).is_empty());
        assert!(uniform_index_vec(1, 0, 0, 5).is_empty());
        assert!(rademacher_bool_vec(1, 0, 0).is_empty());
    }
}
