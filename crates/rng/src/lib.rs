//! # sketch-rng
//!
//! Counter-based random number generation for the GPU CountSketch reproduction.
//!
//! The paper uses NVIDIA's cuRAND library to generate the random ingredients of each
//! sketch operator (Gaussian entries, Rademacher signs, uniform row indices).  cuRAND's
//! default device generator is the Philox4x32-10 counter-based generator, so this crate
//! implements **Philox4x32-10 from scratch** and layers the distributions the paper
//! needs on top of it:
//!
//! * [`Philox4x32`] — the raw counter-based block generator,
//! * [`PhiloxRng`] — a buffered [`rand::RngCore`] adaptor with O(1) `jump-ahead`,
//! * [`distributions`] — uniform doubles, Box–Muller Gaussians, Rademacher signs and
//!   bounded uniform integers,
//! * [`fill`] — deterministic *parallel* fills of large slices, mirroring how a GPU
//!   generates one value per thread from `(seed, counter)` without any sequential
//!   dependency.
//!
//! Counter-based generation is what makes the "sketch generation time" lines of the
//! paper's Figure 2 and Figure 5 meaningful: generating the `2n·d` Gaussians of a
//! Gaussian sketch is embarrassingly parallel but still costs far more than the `d`
//! integers + `d` signs of a CountSketch, and both costs are reproduced faithfully here.
//!
//! ## Example
//!
//! ```
//! use sketch_rng::{PhiloxRng, fill};
//!
//! let mut rng = PhiloxRng::seed_from(42);
//! let x = rng.next_f64();
//! assert!((0.0..1.0).contains(&x));
//!
//! // Deterministic parallel fill: same seed -> same vector, regardless of thread count.
//! let gauss = fill::gaussian_vec(42, 7, 1024);
//! let again = fill::gaussian_vec(42, 7, 1024);
//! assert_eq!(gauss, again);
//! ```

pub mod distributions;
pub mod fill;
pub mod philox;
pub mod stream;

pub use distributions::{BoxMuller, Rademacher, UniformIndex};
pub use philox::{Philox4x32, PhiloxRng, PHILOX_ROUNDS};
pub use stream::StreamFactory;

/// Convenience re-export of the `rand` traits used throughout the workspace.
pub use rand::{Rng, RngCore, SeedableRng};
