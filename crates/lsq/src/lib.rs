//! # sketch-lsq
//!
//! Least squares solvers built on the sketch operators — the application half of the
//! paper (Sections 2 and 6.3).
//!
//! Four solver families are provided, matching the paper's comparison:
//!
//! * [`normal_equations`] — Gram matrix + Cholesky + two triangular solves; the fastest
//!   deterministic direct solver, but only stable while `κ(A) < u^{-1/2}`,
//! * [`sketch_and_solve`] — **Algorithm 1**: sketch `A` and `b`, QR-solve the reduced
//!   problem; stable, fast, but introduces an `O(1)` distortion in the residual,
//! * [`rand_cholqr_least_squares`] — **Algorithm 5** (randomized Cholesky QR): a true
//!   least squares solution with no distortion, stable up to `κ(A) < u^{-1}`,
//! * [`qr_direct`] — Householder QR on the full matrix; the accuracy gold standard and
//!   the slowest method (the paper omits it from the performance plots for that reason).
//!
//! Every sketched solver runs on the **unified execution engine**: it takes a
//! [`DevicePool`](sketch_gpu_sim::DevicePool) and routes the matrix sketch
//! through [`sketch_dist::pipelined_sketch`].  Serial execution is simply a pool
//! of one ([`DevicePool::single`](sketch_gpu_sim::DevicePool::single)); larger
//! pools shard the sketch with comm/compute overlap, and the solution is
//! **bit-identical** at every pool size.
//!
//! [`solve`] dispatches on [`Method`] and returns both the solution and the per-phase
//! [`RunBreakdown`](sketch_gpu_sim::RunBreakdown) that the Figure 5 harness prints.
//! Each sketched method's configuration is declarative: [`Method::sketch_pipeline`]
//! yields the [`sketch_core::Pipeline`] of [`sketch_core::SketchSpec`]s encoding the
//! paper's embedding-dimension conventions, and [`solve`] builds it for the problem
//! at hand.  Errors are the workspace-wide [`sketch_core::Error`] (re-exported as
//! [`LsqError`]).
//!
//! ```
//! use sketch_gpu_sim::DevicePool;
//! use sketch_lsq::{problem::LsqProblem, solve, Method};
//!
//! let pool = DevicePool::h100(1); // serial = pool of one; try h100(4) to scale out
//! let device = pool.device(0);
//! let problem = LsqProblem::easy(device, 2048, 8, 42).unwrap();
//! let normal = solve(&pool, &problem, Method::NormalEquations, 1).unwrap();
//! let multi = solve(&pool, &problem, Method::MultiSketch, 1).unwrap();
//! // The sketched residual stays within the O(1) distortion envelope of the true one.
//! assert!(multi.relative_residual(device, &problem).unwrap()
//!     < 3.0 * normal.relative_residual(device, &problem).unwrap() + 1e-6);
//! ```

pub mod error;
pub mod method;
pub mod problem;
pub mod rand_cholqr;
pub mod solvers;

pub use error::LsqError;
pub use method::{solve, solve_with_opts, Method};
pub use problem::LsqProblem;
pub use rand_cholqr::{rand_cholqr, rand_cholqr_least_squares, RandCholQrFactors};
pub use solvers::{normal_equations, qr_direct, sketch_and_solve, LsqSolution};
