//! The normal equations, sketch-and-solve (Algorithm 1) and direct QR solvers.
//!
//! Algorithm 1 runs through the **unified execution engine**: the expensive
//! `W = S A` step goes to [`sketch_dist::pipelined_sketch`] across a
//! [`DevicePool`], and the reduced `k x n` problem (vector sketch, QR,
//! triangular solve) finishes on pool device 0.  Serial execution is simply a
//! pool of one ([`DevicePool::single`]), which the executor runs as bare device
//! launches — the solution is bit-for-bit identical to the retired
//! single-device code path, and scaling out changes the modelled timeline,
//! never the answer.

use crate::error::LsqError;
use crate::problem::LsqProblem;
use sketch_core::Pipeline;
use sketch_dist::{pipelined_sketch, ExecutorOptions, PipelinedRun};
use sketch_gpu_sim::obs::Stopwatch;
use sketch_gpu_sim::{Device, DevicePool, Phase, PhaseRecord, Profiler, RunBreakdown};
use sketch_la::blas2::{gemv, trsv, Triangle};
use sketch_la::blas3::gram_gemm;
use sketch_la::chol::potrf_upper;
use sketch_la::norms::relative_residual;
use sketch_la::qr::geqrf;
use sketch_la::{Layout, Op};

/// The result of a least squares solve: the solution vector plus the phase breakdown
/// used by the Figure 5 harness.
#[must_use = "an LsqSolution carries the solution vector and the phase breakdown"]
#[derive(Debug, Clone)]
pub struct LsqSolution {
    /// Solution vector of length `n`.
    pub x: Vec<f64>,
    /// Name of the method that produced it.
    pub method: &'static str,
    /// Per-phase cost/time breakdown.
    pub breakdown: RunBreakdown,
}

impl LsqSolution {
    /// Relative residual `||b - A x|| / ||b||` of this solution on `problem`.
    pub fn relative_residual(
        &self,
        device: &Device,
        problem: &LsqProblem,
    ) -> Result<f64, LsqError> {
        Ok(relative_residual(device, &problem.a, &self.x, &problem.b)?)
    }

    /// Total modelled device time in milliseconds.
    pub fn model_ms(&self) -> f64 {
        self.breakdown.total_model_ms()
    }
}

/// Solve via the normal equations: `G = AᵀA`, `y = Aᵀb`, `G = RᵀR`, `x = R⁻¹ R⁻ᵀ y`.
///
/// The paper times exactly this sequence with GeMM + GeMV + POTRF + 2×TRSV and calls it
/// "typically the fastest direct least squares solver in practice"; its weakness is that
/// it squares the condition number.
pub fn normal_equations(device: &Device, problem: &LsqProblem) -> Result<LsqSolution, LsqError> {
    let mut prof = Profiler::new(device);
    let gram = prof.phase(Phase::GramMatrix, || gram_gemm(device, &problem.a))?;
    let atb = prof.phase(Phase::ATransposeB, || {
        gemv(device, 1.0, Op::Trans, &problem.a, &problem.b, 0.0, None)
    })?;
    let r = prof.phase(Phase::Potrf, || potrf_upper(device, &gram))?;
    let y = prof.phase(Phase::Trsv, || {
        trsv(device, Triangle::Upper, Op::Trans, &r, &atb)
    })?;
    let x = prof.phase(Phase::Trsv, || {
        trsv(device, Triangle::Upper, Op::NoTrans, &r, &y)
    })?;
    Ok(LsqSolution {
        x,
        method: "Normal Eq",
        breakdown: prof.finish(),
    })
}

/// Run the matrix sketch on the pool and produce the [`PhaseRecord`] both
/// engine-routed solvers splice into their breakdown right after `SketchGen`:
/// pool-wide cost delta, wall-clock window, and the **pipelined** (not serial)
/// modelled makespan, so multi-device speedups show up directly in
/// Figure-5-style stacks.
pub(crate) fn pooled_matrix_sketch(
    pool: &DevicePool,
    a: &sketch_la::Matrix,
    plan: &Pipeline,
    opts: &ExecutorOptions,
) -> Result<(PipelinedRun, PhaseRecord), LsqError> {
    let total_before = pool.total_cost();
    let wall_start = Stopwatch::start();
    let run = pipelined_sketch(pool, a, plan, opts)?;
    let record = PhaseRecord {
        phase: Phase::MatrixSketch,
        cost: pool.total_cost() - total_before,
        model_seconds: run.pipelined_seconds,
        wall_seconds: wall_start.elapsed_seconds(),
    };
    Ok((run, record))
}

/// Algorithm 1 — sketch-and-solve — on the unified execution engine: sketch `A`
/// across the pool with [`pipelined_sketch`], sketch `b` and QR-solve the reduced
/// problem with GEQRF + ORMQR + TRSV (the cuSOLVER sequence of Section 6.1) on
/// pool device 0.
///
/// Serial execution is a pool of one (e.g. [`DevicePool::single`]); the solution
/// is **bit-identical** for every pool size and shard count because the
/// executor's sketch is bit-identical to the single-device kernel.  The returned
/// [`PipelinedRun`] exposes the multi-device timeline; the solution's breakdown
/// charges the matrix-sketch phase at the *pipelined* makespan, so multi-device
/// speedups show up directly in Figure-5-style stacks.
pub fn sketch_and_solve(
    pool: &DevicePool,
    problem: &LsqProblem,
    plan: &Pipeline,
    opts: &ExecutorOptions,
) -> Result<(LsqSolution, PipelinedRun), LsqError> {
    let device = pool.device(0);
    let mut prof = Profiler::new(device);

    // Build the vector-sketch operator first, inside its own SketchGen phase.
    // The executor regenerates its stage operators internally (deterministic:
    // same specs, same seeds, same bits), so this build exists only to sketch
    // `b`; charging it up front keeps every generation the tracker sees inside
    // a named phase, mirroring the paper's explicit "Sketch gen" stack segment.
    let sketch = prof.phase(Phase::SketchGen, || plan.build_for(device, problem.ncols()))?;

    // Matrix sketch on the pool, wall-clock timed like a Profiler phase.
    let (run, sketch_phase) = pooled_matrix_sketch(pool, &problem.a, plan, opts)?;

    // The remaining Algorithm-1 steps run on device 0: the reduced problem is
    // k x n with k = O(n²) at most — not worth sharding.
    let z = prof.phase(Phase::VectorSketch, || {
        sketch.apply_vector(device, &problem.b)
    })?;
    // The sketched matrix arrives row-major from the CountSketch-style kernels;
    // the QR wants column-major, mirroring the conversion the paper performs.
    let w_cm = run.result.to_layout(device, Layout::ColMajor);
    let factors = prof.phase(Phase::Geqrf, || geqrf(device, &w_cm))?;
    let qtz = prof.phase(Phase::Ormqr, || factors.apply_qt_vec(device, &z))?;
    let r = factors.r();
    let x = prof.phase(Phase::Trsv, || {
        trsv(
            device,
            Triangle::Upper,
            Op::NoTrans,
            &r,
            &qtz[..problem.ncols()],
        )
    })?;

    // Splice the pooled matrix-sketch phase in after SketchGen.
    let mut breakdown = prof.finish();
    breakdown.phases.insert(1, sketch_phase);

    Ok((
        LsqSolution {
            x,
            method: "Sketch-and-solve",
            breakdown,
        },
        run,
    ))
}

/// Direct Householder QR on the full matrix — the accuracy reference ("QR" in Figures
/// 6–8); much slower than everything else, which is why the paper leaves it out of the
/// runtime plots.
pub fn qr_direct(device: &Device, problem: &LsqProblem) -> Result<LsqSolution, LsqError> {
    let mut prof = Profiler::new(device);
    let a_cm = problem.a.to_layout(device, sketch_la::Layout::ColMajor);
    let factors = prof.phase(Phase::Geqrf, || geqrf(device, &a_cm))?;
    let qtb = prof.phase(Phase::Ormqr, || factors.apply_qt_vec(device, &problem.b))?;
    let r = factors.r();
    let x = prof.phase(Phase::Trsv, || {
        trsv(
            device,
            Triangle::Upper,
            Op::NoTrans,
            &r,
            &qtb[..problem.ncols()],
        )
    })?;
    Ok(LsqSolution {
        x,
        method: "QR",
        breakdown: prof.finish(),
    })
}

/// Build the residual-norm comparison the paper's accuracy sections rely on: the
/// theoretical guarantee is `||b - A x_s|| <= sqrt((1+eps)/(1-eps)) * ||b - A x_t||`.
pub fn distortion_bound(eps: f64) -> f64 {
    ((1.0 + eps) / (1.0 - eps)).sqrt()
}

/// Helper shared by tests and benches: the residual of the exact solution (via QR).
pub fn best_residual(device: &Device, problem: &LsqProblem) -> Result<f64, LsqError> {
    let x = qr_direct(device, problem)?;
    x.relative_residual(device, problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};
    use sketch_gpu_sim::Device;

    fn device() -> Device {
        Device::unlimited()
    }

    fn problem(d: usize, n: usize, seed: u64) -> LsqProblem {
        LsqProblem::easy(&device(), d, n, seed).unwrap()
    }

    #[test]
    fn normal_equations_match_qr_on_well_conditioned_problems() {
        let dev = device();
        let p = problem(1024, 6, 1);
        let ne = normal_equations(&dev, &p).unwrap();
        let qr = qr_direct(&dev, &p).unwrap();
        for (a, b) in ne.x.iter().zip(&qr.x) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        assert_eq!(ne.method, "Normal Eq");
        assert!(ne.model_ms() > 0.0);
    }

    #[test]
    fn normal_equations_breakdown_has_expected_phases() {
        let dev = device();
        let p = problem(512, 4, 2);
        let ne = normal_equations(&dev, &p).unwrap();
        assert!(ne.breakdown.model_seconds_of(Phase::GramMatrix) > 0.0);
        assert!(ne.breakdown.model_seconds_of(Phase::Potrf) > 0.0);
        assert!(ne.breakdown.model_seconds_of(Phase::Trsv) > 0.0);
        assert_eq!(ne.breakdown.model_seconds_of(Phase::Geqrf), 0.0);
    }

    #[test]
    fn qr_solution_is_near_the_planted_solution_for_low_noise() {
        let dev = device();
        let p = LsqProblem::with_noise(&dev, 2048, 5, 10.0, 0.0, 1e-3, 3).unwrap();
        let qr = qr_direct(&dev, &p).unwrap();
        for xi in &qr.x {
            assert!((xi - 1.0).abs() < 0.05, "{xi}");
        }
    }

    fn pool1() -> DevicePool {
        DevicePool::unlimited(1)
    }

    #[test]
    fn countsketch_sketch_and_solve_residual_is_close_to_optimal() {
        let dev = device();
        let p = problem(4096, 6, 4);
        let best = best_residual(&dev, &p).unwrap();
        let plan = Pipeline::single(SketchSpec::countsketch(
            p.nrows(),
            EmbeddingDim::Square(2),
            11,
        ));
        let (sol, _run) =
            sketch_and_solve(&pool1(), &p, &plan, &ExecutorOptions::default()).unwrap();
        let res = sol.relative_residual(&dev, &p).unwrap();
        assert!(res >= best * (1.0 - 1e-12));
        assert!(res < 1.5 * best, "sketched {res} vs best {best}");
    }

    #[test]
    fn gaussian_and_srht_sketch_and_solve_are_accurate() {
        let dev = device();
        let p = problem(2048, 4, 5);
        let best = best_residual(&dev, &p).unwrap();

        for spec in [
            SketchSpec::gaussian(p.nrows(), EmbeddingDim::Ratio(8), 7),
            SketchSpec::srht(p.nrows(), EmbeddingDim::Ratio(8), 8),
        ] {
            let plan = Pipeline::single(spec);
            let (sol, _run) =
                sketch_and_solve(&pool1(), &p, &plan, &ExecutorOptions::default()).unwrap();
            assert!(sol.relative_residual(&dev, &p).unwrap() < 1.6 * best);
        }
    }

    #[test]
    fn multisketch_sketch_and_solve_is_accurate_and_has_all_phases() {
        let dev = device();
        let p = problem(4096, 6, 6);
        let best = best_residual(&dev, &p).unwrap();
        let plan = Pipeline::count_gauss(
            p.nrows(),
            EmbeddingDim::Square(8),
            EmbeddingDim::Ratio(8),
            9,
        );
        let (sol, _run) =
            sketch_and_solve(&pool1(), &p, &plan, &ExecutorOptions::default()).unwrap();
        let res = sol.relative_residual(&dev, &p).unwrap();
        assert!(res < 1.6 * best, "multisketch {res} vs best {best}");
        for phase in [
            Phase::SketchGen,
            Phase::MatrixSketch,
            Phase::VectorSketch,
            Phase::Geqrf,
            Phase::Ormqr,
            Phase::Trsv,
        ] {
            assert!(
                sol.breakdown.phases.iter().any(|p| p.phase == phase),
                "missing phase {phase:?}"
            );
        }
        // The engine splices the matrix sketch in right after generation.
        assert_eq!(sol.breakdown.phases[0].phase, Phase::SketchGen);
        assert_eq!(sol.breakdown.phases[1].phase, Phase::MatrixSketch);
    }

    #[test]
    fn sketch_and_solve_residual_never_beats_the_true_minimum() {
        let dev = device();
        let p = LsqProblem::hard(&dev, 2048, 4, 7).unwrap();
        let best = best_residual(&dev, &p).unwrap();
        let plan = Pipeline::single(SketchSpec::countsketch(
            p.nrows(),
            EmbeddingDim::Square(4),
            3,
        ));
        let (sol, _run) =
            sketch_and_solve(&pool1(), &p, &plan, &ExecutorOptions::default()).unwrap();
        let res = sol.relative_residual(&dev, &p).unwrap();
        assert!(res + 1e-12 >= best);
        // And it obeys the theoretical distortion bound for a generous eps.
        assert!(res <= distortion_bound(0.9) * best * 1.1);
    }

    #[test]
    fn distortion_bound_is_monotone() {
        assert!(distortion_bound(0.1) < distortion_bound(0.5));
        assert!((distortion_bound(0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sketch_dimension_mismatch_propagates_as_error() {
        let p = problem(256, 4, 8);
        let plan = Pipeline::single(SketchSpec::countsketch(128, EmbeddingDim::Exact(32), 1));
        let err = sketch_and_solve(&pool1(), &p, &plan, &ExecutorOptions::default()).unwrap_err();
        assert!(err.is_dimension_mismatch(), "{err}");
        // The unified error carries the rejecting stage and the operand shape.
        assert!(err.to_string().contains("dense 256x4"), "{err}");
    }

    /// The acceptance pin of the engine unification: a 1-device pool reproduces
    /// the retired serial Algorithm-1 implementation **bit for bit** — here the
    /// serial path is written out by hand (build, apply, QR, solve) exactly as
    /// `sketch_and_solve(&device, …)` used to execute it.
    #[test]
    fn pool_of_one_is_bit_identical_to_the_retired_serial_algorithm1() {
        let p = problem(1 << 10, 8, 42);
        for plan in [
            Pipeline::single(SketchSpec::countsketch(
                p.nrows(),
                EmbeddingDim::Square(2),
                7,
            )),
            Pipeline::count_gauss(
                p.nrows(),
                EmbeddingDim::Square(2),
                EmbeddingDim::Ratio(2),
                7,
            ),
        ] {
            // The pre-refactor serial sequence, inlined.
            let dev = device();
            let sketch = plan.build_for(&dev, p.ncols()).unwrap();
            let w = sketch.apply_matrix(&dev, &p.a).unwrap();
            let z = sketch.apply_vector(&dev, &p.b).unwrap();
            let w_cm = w.to_layout(&dev, Layout::ColMajor);
            let factors = geqrf(&dev, &w_cm).unwrap();
            let qtz = factors.apply_qt_vec(&dev, &z).unwrap();
            let r = factors.r();
            let reference =
                trsv(&dev, Triangle::Upper, Op::NoTrans, &r, &qtz[..p.ncols()]).unwrap();

            // The engine, on pools of 1 and 3 devices.
            for devices in [1usize, 3] {
                let pool = DevicePool::unlimited(devices);
                let (sol, run) =
                    sketch_and_solve(&pool, &p, &plan, &ExecutorOptions::default()).unwrap();
                assert_eq!(sol.x.len(), reference.len());
                for (a, b) in sol.x.iter().zip(reference.iter()) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "solution drifted on {devices} devices"
                    );
                }
                assert!(run.pipelined_seconds <= run.serial_seconds);
            }
        }
    }
}
