//! The normal equations, sketch-and-solve (Algorithm 1) and direct QR solvers.

use crate::error::LsqError;
use crate::problem::LsqProblem;
use sketch_core::SketchOperator;
use sketch_gpu_sim::{Device, Phase, Profiler, RunBreakdown};
use sketch_la::blas2::{gemv, trsv, Triangle};
use sketch_la::blas3::gram_gemm;
use sketch_la::chol::potrf_upper;
use sketch_la::norms::relative_residual;
use sketch_la::qr::geqrf;
use sketch_la::Op;

/// The result of a least squares solve: the solution vector plus the phase breakdown
/// used by the Figure 5 harness.
#[must_use = "an LsqSolution carries the solution vector and the phase breakdown"]
#[derive(Debug, Clone)]
pub struct LsqSolution {
    /// Solution vector of length `n`.
    pub x: Vec<f64>,
    /// Name of the method that produced it.
    pub method: &'static str,
    /// Per-phase cost/time breakdown.
    pub breakdown: RunBreakdown,
}

impl LsqSolution {
    /// Relative residual `||b - A x|| / ||b||` of this solution on `problem`.
    pub fn relative_residual(
        &self,
        device: &Device,
        problem: &LsqProblem,
    ) -> Result<f64, LsqError> {
        Ok(relative_residual(device, &problem.a, &self.x, &problem.b)?)
    }

    /// Total modelled device time in milliseconds.
    pub fn model_ms(&self) -> f64 {
        self.breakdown.total_model_ms()
    }
}

/// Solve via the normal equations: `G = AᵀA`, `y = Aᵀb`, `G = RᵀR`, `x = R⁻¹ R⁻ᵀ y`.
///
/// The paper times exactly this sequence with GeMM + GeMV + POTRF + 2×TRSV and calls it
/// "typically the fastest direct least squares solver in practice"; its weakness is that
/// it squares the condition number.
pub fn normal_equations(device: &Device, problem: &LsqProblem) -> Result<LsqSolution, LsqError> {
    let mut prof = Profiler::new(device);
    let gram = prof.phase(Phase::GramMatrix, || gram_gemm(device, &problem.a))?;
    let atb = prof.phase(Phase::ATransposeB, || {
        gemv(device, 1.0, Op::Trans, &problem.a, &problem.b, 0.0, None)
    })?;
    let r = prof.phase(Phase::Potrf, || potrf_upper(device, &gram))?;
    let y = prof.phase(Phase::Trsv, || {
        trsv(device, Triangle::Upper, Op::Trans, &r, &atb)
    })?;
    let x = prof.phase(Phase::Trsv, || {
        trsv(device, Triangle::Upper, Op::NoTrans, &r, &y)
    })?;
    Ok(LsqSolution {
        x,
        method: "Normal Eq",
        breakdown: prof.finish(),
    })
}

/// Algorithm 1 — sketch-and-solve: sketch `A` and `b`, then QR-solve the reduced
/// problem with GEQRF + ORMQR + TRSV (the cuSOLVER sequence of Section 6.1).
///
/// The sketch must already be generated; its generation cost is charged to the
/// `Sketch gen` phase so the breakdown matches Figure 5.
pub fn sketch_and_solve<S: SketchOperator + ?Sized>(
    device: &Device,
    problem: &LsqProblem,
    sketch: &S,
) -> Result<LsqSolution, LsqError> {
    let mut prof = Profiler::new(device);
    // Charge the (already incurred) generation cost as its own phase.
    prof.phase(Phase::SketchGen, || device.record(sketch.generation_cost()));

    let w = prof.phase(Phase::MatrixSketch, || {
        sketch.apply_matrix(device, &problem.a)
    })?;
    let z = prof.phase(Phase::VectorSketch, || {
        sketch.apply_vector(device, &problem.b)
    })?;

    // The sketched matrix arrives row-major from the CountSketch-style kernels; the QR
    // wants column-major, mirroring the conversion the paper performs.
    let w_cm = w.to_layout(device, sketch_la::Layout::ColMajor);
    let factors = prof.phase(Phase::Geqrf, || geqrf(device, &w_cm))?;
    let qtz = prof.phase(Phase::Ormqr, || factors.apply_qt_vec(device, &z))?;
    let r = factors.r();
    let x = prof.phase(Phase::Trsv, || {
        trsv(
            device,
            Triangle::Upper,
            Op::NoTrans,
            &r,
            &qtz[..problem.ncols()],
        )
    })?;

    Ok(LsqSolution {
        x,
        method: "Sketch-and-solve",
        breakdown: prof.finish(),
    })
}

/// Direct Householder QR on the full matrix — the accuracy reference ("QR" in Figures
/// 6–8); much slower than everything else, which is why the paper leaves it out of the
/// runtime plots.
pub fn qr_direct(device: &Device, problem: &LsqProblem) -> Result<LsqSolution, LsqError> {
    let mut prof = Profiler::new(device);
    let a_cm = problem.a.to_layout(device, sketch_la::Layout::ColMajor);
    let factors = prof.phase(Phase::Geqrf, || geqrf(device, &a_cm))?;
    let qtb = prof.phase(Phase::Ormqr, || factors.apply_qt_vec(device, &problem.b))?;
    let r = factors.r();
    let x = prof.phase(Phase::Trsv, || {
        trsv(
            device,
            Triangle::Upper,
            Op::NoTrans,
            &r,
            &qtb[..problem.ncols()],
        )
    })?;
    Ok(LsqSolution {
        x,
        method: "QR",
        breakdown: prof.finish(),
    })
}

/// Build the residual-norm comparison the paper's accuracy sections rely on: the
/// theoretical guarantee is `||b - A x_s|| <= sqrt((1+eps)/(1-eps)) * ||b - A x_t||`.
pub fn distortion_bound(eps: f64) -> f64 {
    ((1.0 + eps) / (1.0 - eps)).sqrt()
}

/// Helper shared by tests and benches: the residual of the exact solution (via QR).
pub fn best_residual(device: &Device, problem: &LsqProblem) -> Result<f64, LsqError> {
    let x = qr_direct(device, problem)?;
    x.relative_residual(device, problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};
    use sketch_gpu_sim::Device;

    fn device() -> Device {
        Device::unlimited()
    }

    fn problem(d: usize, n: usize, seed: u64) -> LsqProblem {
        LsqProblem::easy(&device(), d, n, seed).unwrap()
    }

    #[test]
    fn normal_equations_match_qr_on_well_conditioned_problems() {
        let dev = device();
        let p = problem(1024, 6, 1);
        let ne = normal_equations(&dev, &p).unwrap();
        let qr = qr_direct(&dev, &p).unwrap();
        for (a, b) in ne.x.iter().zip(&qr.x) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        assert_eq!(ne.method, "Normal Eq");
        assert!(ne.model_ms() > 0.0);
    }

    #[test]
    fn normal_equations_breakdown_has_expected_phases() {
        let dev = device();
        let p = problem(512, 4, 2);
        let ne = normal_equations(&dev, &p).unwrap();
        assert!(ne.breakdown.model_seconds_of(Phase::GramMatrix) > 0.0);
        assert!(ne.breakdown.model_seconds_of(Phase::Potrf) > 0.0);
        assert!(ne.breakdown.model_seconds_of(Phase::Trsv) > 0.0);
        assert_eq!(ne.breakdown.model_seconds_of(Phase::Geqrf), 0.0);
    }

    #[test]
    fn qr_solution_is_near_the_planted_solution_for_low_noise() {
        let dev = device();
        let p = LsqProblem::with_noise(&dev, 2048, 5, 10.0, 0.0, 1e-3, 3).unwrap();
        let qr = qr_direct(&dev, &p).unwrap();
        for xi in &qr.x {
            assert!((xi - 1.0).abs() < 0.05, "{xi}");
        }
    }

    #[test]
    fn countsketch_sketch_and_solve_residual_is_close_to_optimal() {
        let dev = device();
        let p = problem(4096, 6, 4);
        let best = best_residual(&dev, &p).unwrap();
        let cs = SketchSpec::countsketch(p.nrows(), EmbeddingDim::Square(2), 11)
            .build_for(&dev, p.ncols())
            .unwrap();
        let sol = sketch_and_solve(&dev, &p, cs.as_ref()).unwrap();
        let res = sol.relative_residual(&dev, &p).unwrap();
        assert!(res >= best * (1.0 - 1e-12));
        assert!(res < 1.5 * best, "sketched {res} vs best {best}");
    }

    #[test]
    fn gaussian_and_srht_sketch_and_solve_are_accurate() {
        let dev = device();
        let p = problem(2048, 4, 5);
        let best = best_residual(&dev, &p).unwrap();

        let g = SketchSpec::gaussian(p.nrows(), EmbeddingDim::Ratio(8), 7)
            .build_for(&dev, p.ncols())
            .unwrap();
        let sol_g = sketch_and_solve(&dev, &p, g.as_ref()).unwrap();
        assert!(sol_g.relative_residual(&dev, &p).unwrap() < 1.6 * best);

        let s = SketchSpec::srht(p.nrows(), EmbeddingDim::Ratio(8), 8)
            .build_for(&dev, p.ncols())
            .unwrap();
        let sol_s = sketch_and_solve(&dev, &p, s.as_ref()).unwrap();
        assert!(sol_s.relative_residual(&dev, &p).unwrap() < 1.6 * best);
    }

    #[test]
    fn multisketch_sketch_and_solve_is_accurate_and_has_all_phases() {
        let dev = device();
        let p = problem(4096, 6, 6);
        let best = best_residual(&dev, &p).unwrap();
        let ms = Pipeline::count_gauss(
            p.nrows(),
            EmbeddingDim::Square(8),
            EmbeddingDim::Ratio(8),
            9,
        )
        .build_multisketch(&dev, p.ncols())
        .unwrap();
        let sol = sketch_and_solve(&dev, &p, &ms).unwrap();
        let res = sol.relative_residual(&dev, &p).unwrap();
        assert!(res < 1.6 * best, "multisketch {res} vs best {best}");
        for phase in [
            Phase::SketchGen,
            Phase::MatrixSketch,
            Phase::VectorSketch,
            Phase::Geqrf,
            Phase::Ormqr,
            Phase::Trsv,
        ] {
            assert!(
                sol.breakdown.phases.iter().any(|p| p.phase == phase),
                "missing phase {phase:?}"
            );
        }
    }

    #[test]
    fn sketch_and_solve_residual_never_beats_the_true_minimum() {
        let dev = device();
        let p = LsqProblem::hard(&dev, 2048, 4, 7).unwrap();
        let best = best_residual(&dev, &p).unwrap();
        let cs = SketchSpec::countsketch(p.nrows(), EmbeddingDim::Square(4), 3)
            .build_for(&dev, p.ncols())
            .unwrap();
        let sol = sketch_and_solve(&dev, &p, cs.as_ref()).unwrap();
        let res = sol.relative_residual(&dev, &p).unwrap();
        assert!(res + 1e-12 >= best);
        // And it obeys the theoretical distortion bound for a generous eps.
        assert!(res <= distortion_bound(0.9) * best * 1.1);
    }

    #[test]
    fn distortion_bound_is_monotone() {
        assert!(distortion_bound(0.1) < distortion_bound(0.5));
        assert!((distortion_bound(0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sketch_dimension_mismatch_propagates_as_error() {
        let dev = device();
        let p = problem(256, 4, 8);
        let wrong = SketchSpec::countsketch(128, EmbeddingDim::Exact(32), 1)
            .build(&dev)
            .unwrap();
        let err = sketch_and_solve(&dev, &p, wrong.as_ref()).unwrap_err();
        assert!(err.is_dimension_mismatch(), "{err}");
        // The unified error names the rejecting operator and the operand shape.
        assert!(err.to_string().contains("CountSketch"));
    }
}
