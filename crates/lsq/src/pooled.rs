//! Multi-device sketch-and-solve: Algorithm 1 with the matrix sketch executed by
//! the pipelined executor of `sketch-dist`.
//!
//! The expensive step of sketch-and-solve is `W = S A` — exactly the operation the
//! multi-device executor shards, overlaps and prices across a
//! [`DevicePool`].  [`sketch_and_solve_pooled`] runs that step on the pool and then
//! finishes Algorithm 1 (vector sketch, QR of the reduced problem, triangular
//! solve) on pool device 0, where the reduced `k x n` problem is tiny.
//!
//! Because the executor's result is bit-for-bit identical to the single-device
//! sketch kernel, the returned solution vector is **bit-identical** to
//! [`sketch_and_solve`](crate::solvers::sketch_and_solve) with the same spec and
//! seed — scaling out changes the modelled timeline, never the answer.

use crate::error::LsqError;
use crate::problem::LsqProblem;
use crate::solvers::LsqSolution;
use sketch_core::Pipeline;
use sketch_dist::{pipelined_sketch, ExecutorOptions, PipelinedRun};
use sketch_gpu_sim::{DevicePool, Phase, PhaseRecord, Profiler};
use sketch_la::blas2::{trsv, Triangle};
use sketch_la::qr::geqrf;
use sketch_la::{Layout, Op};
use std::time::Instant;

/// Algorithm 1 with the matrix sketch executed across a device pool.
///
/// Returns the solution (bit-identical to the single-device
/// [`sketch_and_solve`](crate::solvers::sketch_and_solve) for the same pipeline)
/// together with the executor's [`PipelinedRun`] so callers can inspect the
/// multi-device timeline.  The solution's breakdown charges the matrix-sketch
/// phase at the *pipelined* makespan — the multi-device speedup shows up directly
/// in Figure-5-style stacks.
pub fn sketch_and_solve_pooled(
    pool: &DevicePool,
    problem: &LsqProblem,
    plan: &Pipeline,
    opts: &ExecutorOptions,
) -> Result<(LsqSolution, PipelinedRun), LsqError> {
    let device = pool.device(0);
    let mut prof = Profiler::new(device);

    // Build the vector-sketch operator first, inside its own SketchGen phase.
    // The executor regenerates its stage operators internally (deterministic:
    // same specs, same seeds, same bits), so this build exists only to sketch
    // `b`; charging it up front keeps every generation the tracker sees inside
    // a named phase, mirroring the single-device driver's explicit SketchGen.
    let sketch = prof.phase(Phase::SketchGen, || plan.build_for(device, problem.ncols()))?;

    // Matrix sketch on the pool, wall-clock timed like a Profiler phase.
    let total_before = pool.total_cost();
    let wall_start = Instant::now();
    let run = pipelined_sketch(pool, &problem.a, plan, opts)?;
    let sketch_wall = wall_start.elapsed().as_secs_f64();
    let sketch_cost = pool.total_cost() - total_before;

    // The remaining Algorithm-1 steps run on device 0: the reduced problem is
    // k x n with k = O(n²) at most — not worth sharding.
    let z = prof.phase(Phase::VectorSketch, || {
        sketch.apply_vector(device, &problem.b)
    })?;
    let w_cm = run.result.to_layout(device, Layout::ColMajor);
    let factors = prof.phase(Phase::Geqrf, || geqrf(device, &w_cm))?;
    let qtz = prof.phase(Phase::Ormqr, || factors.apply_qt_vec(device, &z))?;
    let r = factors.r();
    let x = prof.phase(Phase::Trsv, || {
        trsv(
            device,
            Triangle::Upper,
            Op::NoTrans,
            &r,
            &qtz[..problem.ncols()],
        )
    })?;

    // Splice the pooled matrix-sketch phase in after SketchGen, at the pipelined
    // (not serial) modelled makespan — the multi-device speedup shows up directly
    // in Figure-5-style stacks.
    let mut breakdown = prof.finish();
    breakdown.phases.insert(
        1,
        PhaseRecord {
            phase: Phase::MatrixSketch,
            cost: sketch_cost,
            model_seconds: run.pipelined_seconds,
            wall_seconds: sketch_wall,
        },
    );

    Ok((
        LsqSolution {
            x,
            method: "Sketch-and-solve (pooled)",
            breakdown,
        },
        run,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::solvers::sketch_and_solve;
    use sketch_gpu_sim::Device;

    #[test]
    fn pooled_solution_is_bit_identical_to_single_device() {
        let setup = Device::unlimited();
        let problem = LsqProblem::easy(&setup, 1 << 10, 8, 42).unwrap();
        let plan = Method::CountSketch
            .sketch_pipeline(problem.nrows(), 7)
            .expect("sketched method");

        // Single-device Algorithm 1 with the same spec-built sketch.
        let single_dev = Device::unlimited();
        let sketch = plan.build_for(&single_dev, problem.ncols()).unwrap();
        let single = sketch_and_solve(&single_dev, &problem, sketch.as_ref()).unwrap();

        for devices in [1usize, 3] {
            let pool = DevicePool::unlimited(devices);
            let (pooled, run) =
                sketch_and_solve_pooled(&pool, &problem, &plan, &ExecutorOptions::default())
                    .unwrap();
            assert_eq!(pooled.x.len(), single.x.len());
            for (a, b) in pooled.x.iter().zip(single.x.iter()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "solution drifted on {devices} devices"
                );
            }
            assert!(run.pipelined_seconds <= run.serial_seconds);
            // The breakdown opens with generation followed by the pooled
            // matrix-sketch phase, charged at the pipelined makespan.
            assert_eq!(pooled.breakdown.phases[0].phase, Phase::SketchGen);
            assert_eq!(pooled.breakdown.phases[1].phase, Phase::MatrixSketch);
            assert!(pooled.breakdown.phases[1].model_seconds > 0.0);
        }
    }

    #[test]
    fn pooled_multisketch_solves_the_easy_problem_accurately() {
        let setup = Device::unlimited();
        let problem = LsqProblem::easy(&setup, 2048, 8, 3).unwrap();
        let plan = Method::MultiSketch
            .sketch_pipeline(problem.nrows(), 5)
            .unwrap();
        let pool = DevicePool::unlimited(4);
        let (solution, _run) =
            sketch_and_solve_pooled(&pool, &problem, &plan, &ExecutorOptions::default()).unwrap();
        let device = Device::unlimited();
        let res = solution.relative_residual(&device, &problem).unwrap();
        assert!(res < 0.5, "residual {res} out of the distortion envelope");
    }
}
