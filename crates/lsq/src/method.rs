//! A single dispatch point over every solver the paper compares.
//!
//! The Figure 5/6/7/8 harnesses all iterate over the same method list (Normal Eq,
//! Gauss, Count, Multi, SRHT, rand_cholQR, QR).  Each sketched method's embedding
//! dimension convention (Section 6: `k = 2n` for Gaussian/SRHT/multisketch, `k = 2n²`
//! for the CountSketch) lives in the declarative
//! [`sketch_pipeline`](Method::sketch_pipeline) — a [`Pipeline`] of
//! [`SketchSpec`]s — and [`solve`] simply builds that pipeline for the problem at
//! hand, so every harness, example, and JSON config constructs exactly the
//! configuration the paper evaluated.

use crate::error::LsqError;
use crate::problem::LsqProblem;
use crate::rand_cholqr::rand_cholqr_least_squares;
use crate::solvers::{normal_equations, qr_direct, sketch_and_solve, LsqSolution};
use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};
use sketch_dist::ExecutorOptions;
use sketch_gpu_sim::DevicePool;

/// The least squares methods compared in the paper's evaluation.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Gram matrix + Cholesky (the baseline of Figures 5–8).
    NormalEquations,
    /// Sketch-and-solve with a dense Gaussian sketch, `k = 2n`.
    Gaussian,
    /// Sketch-and-solve with the Algorithm 2 CountSketch, `k = 2n²`.
    CountSketch,
    /// Sketch-and-solve with the Count-Gauss multisketch, `k₁ = 2n²`, `k₂ = 2n`.
    MultiSketch,
    /// Sketch-and-solve with the SRHT, `k = 2n`.
    Srht,
    /// rand_cholQR least squares (Algorithm 5) driven by the multisketch.
    RandCholQr,
    /// Direct Householder QR (accuracy reference).
    Qr,
}

impl Method {
    /// All methods in the order the paper's figures list them.
    pub const ALL: [Method; 7] = [
        Method::NormalEquations,
        Method::Gaussian,
        Method::CountSketch,
        Method::MultiSketch,
        Method::Srht,
        Method::RandCholQr,
        Method::Qr,
    ];

    /// The methods shown in the performance breakdown of Figure 5 (QR is excluded there
    /// because it "destroys the scaling of the figures").
    pub const FIGURE5: [Method; 6] = [
        Method::NormalEquations,
        Method::Gaussian,
        Method::CountSketch,
        Method::MultiSketch,
        Method::Srht,
        Method::RandCholQr,
    ];

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Method::NormalEquations => "Normal Eq",
            Method::Gaussian => "Gauss",
            Method::CountSketch => "Count",
            Method::MultiSketch => "Multi",
            Method::Srht => "SRHT",
            Method::RandCholQr => "rand_cholQR",
            Method::Qr => "QR",
        }
    }

    /// Whether the solution carries the sketch-and-solve `O(1)` residual distortion.
    pub fn has_distortion(&self) -> bool {
        matches!(
            self,
            Method::Gaussian | Method::CountSketch | Method::MultiSketch | Method::Srht
        )
    }

    /// The sketch this method uses, as a declarative [`Pipeline`] carrying the
    /// paper's Section 6 embedding-dimension conventions; `None` for the direct
    /// (sketch-free) solvers.
    ///
    /// `input_dim` is the operand's row count `d`; the `2n`/`2n²` rules resolve
    /// against the operand width when the pipeline is built.
    pub fn sketch_pipeline(&self, input_dim: usize, seed: u64) -> Option<Pipeline> {
        match self {
            Method::NormalEquations | Method::Qr => None,
            Method::Gaussian => Some(Pipeline::single(SketchSpec::gaussian(
                input_dim,
                EmbeddingDim::Ratio(2),
                seed,
            ))),
            Method::CountSketch => Some(Pipeline::single(SketchSpec::countsketch(
                input_dim,
                EmbeddingDim::Square(2),
                seed,
            ))),
            Method::Srht => Some(Pipeline::single(SketchSpec::srht(
                input_dim,
                EmbeddingDim::Ratio(2),
                seed,
            ))),
            Method::MultiSketch | Method::RandCholQr => Some(Pipeline::count_gauss(
                input_dim,
                EmbeddingDim::Square(2),
                EmbeddingDim::Ratio(2),
                seed,
            )),
        }
    }
}

/// Solve `problem` with `method` on a [`DevicePool`], constructing the method's
/// sketch through its declarative [`Pipeline`] (the paper's embedding-dimension
/// conventions) and executing it on the unified engine.
///
/// Serial execution is a pool of one (e.g.
/// [`DevicePool::single`](sketch_gpu_sim::DevicePool::single)); larger pools
/// shard the matrix sketch with the pipelined executor.  The solution vector is
/// bit-identical for every pool size.  The direct (sketch-free) methods run on
/// pool device 0.
///
/// `seed` drives the sketch generation so repeated runs are reproducible.
pub fn solve(
    pool: &DevicePool,
    problem: &LsqProblem,
    method: Method,
    seed: u64,
) -> Result<LsqSolution, LsqError> {
    solve_with_opts(pool, problem, method, seed, &ExecutorOptions::default())
}

/// [`solve`] with explicit executor tuning knobs.
pub fn solve_with_opts(
    pool: &DevicePool,
    problem: &LsqProblem,
    method: Method,
    seed: u64,
    opts: &ExecutorOptions,
) -> Result<LsqSolution, LsqError> {
    let device = pool.device(0);
    let d = problem.nrows();
    match method {
        Method::NormalEquations => normal_equations(device, problem),
        Method::Qr => qr_direct(device, problem),
        Method::RandCholQr => {
            let plan = method
                .sketch_pipeline(d, seed)
                .expect("rand_cholQR is sketched");
            let (sol, _run) = rand_cholqr_least_squares(pool, problem, &plan, opts)?;
            Ok(sol)
        }
        Method::Gaussian | Method::CountSketch | Method::MultiSketch | Method::Srht => {
            let plan = method
                .sketch_pipeline(d, seed)
                .expect("sketch-and-solve methods are sketched");
            let (mut sol, _run) = sketch_and_solve(pool, problem, &plan, opts)?;
            sol.method = method.label();
            Ok(sol)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::best_residual;
    use sketch_core::SketchKind;
    use sketch_gpu_sim::Device;

    fn device() -> Device {
        Device::unlimited()
    }

    fn pool() -> DevicePool {
        DevicePool::unlimited(1)
    }

    #[test]
    fn labels_match_the_paper_legend() {
        let labels: Vec<&str> = Method::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Normal Eq",
                "Gauss",
                "Count",
                "Multi",
                "SRHT",
                "rand_cholQR",
                "QR"
            ]
        );
        assert_eq!(Method::FIGURE5.len(), 6);
        assert!(!Method::FIGURE5.contains(&Method::Qr));
    }

    #[test]
    fn distortion_classification() {
        assert!(Method::MultiSketch.has_distortion());
        assert!(Method::CountSketch.has_distortion());
        assert!(!Method::NormalEquations.has_distortion());
        assert!(!Method::RandCholQr.has_distortion());
        assert!(!Method::Qr.has_distortion());
    }

    #[test]
    fn pipelines_encode_the_section6_conventions() {
        // Direct solvers carry no sketch.
        assert!(Method::NormalEquations.sketch_pipeline(100, 1).is_none());
        assert!(Method::Qr.sketch_pipeline(100, 1).is_none());
        // k = 2n for Gaussian/SRHT, k = 2n² for CountSketch.
        let g = Method::Gaussian.sketch_pipeline(100, 1).unwrap();
        assert_eq!(g.stages[0].output_dim, EmbeddingDim::Ratio(2));
        let c = Method::CountSketch.sketch_pipeline(100, 1).unwrap();
        assert_eq!(c.stages[0].output_dim, EmbeddingDim::Square(2));
        let s = Method::Srht.sketch_pipeline(100, 1).unwrap();
        assert_eq!(s.stages[0].kind, SketchKind::Srht);
        // Multisketch and rand_cholQR share the Count→Gauss pipeline.
        for m in [Method::MultiSketch, Method::RandCholQr] {
            let p = m.sketch_pipeline(100, 1).unwrap();
            assert!(p.is_count_gauss());
            assert_eq!(p.input_dim(), 100);
        }
        // Built for n = 8, the dimensions match the paper.
        let dev = device();
        let op = Method::MultiSketch
            .sketch_pipeline(1024, 1)
            .unwrap()
            .build_for(&dev, 8)
            .unwrap();
        assert_eq!(op.output_dim(), 16);
    }

    #[test]
    fn every_method_solves_a_small_easy_problem() {
        let dev = device();
        let p = LsqProblem::easy(&dev, 1024, 4, 1).unwrap();
        let best = best_residual(&dev, &p).unwrap();
        for method in Method::ALL {
            let sol = solve(&pool(), &p, method, 7).unwrap();
            let res = sol.relative_residual(&dev, &p).unwrap();
            // With the paper's k = 2n convention and this deliberately tiny n, the
            // subspace-embedding ε is large, so allow the full sketch-and-solve
            // distortion envelope for the distorted methods.
            let slack = if method.has_distortion() {
                2.8
            } else {
                1.0 + 1e-6
            };
            assert!(
                res <= slack * best + 1e-12,
                "{}: residual {res} vs best {best}",
                method.label()
            );
        }
    }

    #[test]
    fn undistorted_methods_agree_with_each_other() {
        let dev = device();
        let p = LsqProblem::hard(&dev, 2048, 5, 2).unwrap();
        let qr = solve(&pool(), &p, Method::Qr, 1).unwrap();
        let ne = solve(&pool(), &p, Method::NormalEquations, 1).unwrap();
        let rc = solve(&pool(), &p, Method::RandCholQr, 1).unwrap();
        for (a, b) in ne.x.iter().zip(&qr.x) {
            assert!((a - b).abs() < 1e-7);
        }
        for (a, b) in rc.x.iter().zip(&qr.x) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn every_sketched_method_is_bit_identical_across_pool_sizes() {
        let dev = device();
        let p = LsqProblem::easy(&dev, 1024, 4, 9).unwrap();
        for method in [
            Method::Gaussian,
            Method::CountSketch,
            Method::MultiSketch,
            Method::Srht,
            Method::RandCholQr,
        ] {
            let reference = solve(&pool(), &p, method, 3).unwrap();
            for devices in [2usize, 3] {
                let big = DevicePool::unlimited(devices);
                let sol = solve(&big, &p, method, 3).unwrap();
                for (a, b) in sol.x.iter().zip(&reference.x) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} drifted on {devices} devices",
                        method.label()
                    );
                }
            }
        }
    }

    #[test]
    fn solves_are_reproducible_for_a_fixed_seed() {
        let dev = device();
        let p = LsqProblem::easy(&dev, 1024, 4, 3).unwrap();
        let a = solve(&pool(), &p, Method::MultiSketch, 42).unwrap();
        let b = solve(&pool(), &p, Method::MultiSketch, 42).unwrap();
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn normal_equations_break_down_on_ill_conditioned_problems_but_sketches_do_not() {
        // This is the Figure 8 story in miniature: kappa = 1e12 > u^{-1/2} ~ 1e8.
        let dev = device();
        let p = LsqProblem::conditioned(&dev, 1024, 8, 1e12, 4).unwrap();
        let ne = solve(&pool(), &p, Method::NormalEquations, 1);
        let ne_failed_or_inaccurate = match ne {
            Err(e) => e.is_gram_breakdown(),
            Ok(sol) => sol.relative_residual(&dev, &p).unwrap() > 1e-4,
        };
        assert!(
            ne_failed_or_inaccurate,
            "normal equations should struggle at kappa=1e12"
        );

        let multi = solve(&pool(), &p, Method::MultiSketch, 1).unwrap();
        let res = multi.relative_residual(&dev, &p).unwrap();
        assert!(res < 1e-4, "multisketch stays accurate: {res}");
    }
}
