//! Randomized Cholesky QR (Algorithms 4 and 5).
//!
//! rand_cholQR forms a true QR factorisation of `A` using one sketch, one small QR, one
//! Gram matrix and one Cholesky factorisation; it is stable whenever `κ(A) < u⁻¹`
//! (Balabanov; Higgins, Szyld, Boman & Yamazaki), unlike the normal equations which
//! need `κ(A) < u⁻¹ᐟ²`.  The least squares variant (Algorithm 5) skips forming `Q`
//! explicitly and is mathematically equivalent to the preconditioned normal equations
//! of Ipsen (2025).

use crate::error::LsqError;
use crate::problem::LsqProblem;
use crate::solvers::LsqSolution;
use sketch_core::SketchOperator;
use sketch_gpu_sim::{Device, Phase, Profiler};
use sketch_la::blas2::{gemv, trsv, Triangle};
use sketch_la::blas3::{gemm, gram_gemm, trsm_right};
use sketch_la::chol::potrf_upper;
use sketch_la::qr::geqrf;
use sketch_la::{Layout, Matrix, Op};

/// The factors produced by [`rand_cholqr`]: `A = Q R` with orthonormal `Q`.
#[derive(Debug, Clone)]
pub struct RandCholQrFactors {
    /// The thin orthogonal factor (`d x n`).
    pub q: Matrix,
    /// The upper triangular factor (`n x n`), `R = R₁ R₀`.
    pub r: Matrix,
}

/// Algorithm 4 — randomized Cholesky QR.
///
/// 1. `Y = S A`          (sketch)
/// 2. `[~, R₀] = qr(Y)`   (small QR)
/// 3. `A₀ = A R₀⁻¹`       (precondition)
/// 4. `G = A₀ᵀ A₀`        (Gram)
/// 5. `R₁ = chol(G)`      (Cholesky)
/// 6. `Q = A₀ R₁⁻¹`, `R = R₁ R₀`
pub fn rand_cholqr<S: SketchOperator + ?Sized>(
    device: &Device,
    a: &Matrix,
    sketch: &S,
) -> Result<RandCholQrFactors, LsqError> {
    let y = sketch.apply_matrix(device, a)?;
    let y_cm = y.to_layout(device, Layout::ColMajor);
    let r0 = geqrf(device, &y_cm)?.r();
    let a0 = trsm_right(device, Triangle::Upper, Op::NoTrans, &r0, a)?;
    let gram = gram_gemm(device, &a0)?;
    let r1 = potrf_upper(device, &gram)?;
    let q = trsm_right(device, Triangle::Upper, Op::NoTrans, &r1, &a0)?;
    let r = gemm(device, 1.0, &r1, &r0, 0.0, None)?;
    Ok(RandCholQrFactors { q, r })
}

/// Algorithm 5 — rand_cholQR least squares (one TRSM, no explicit `Q`).
///
/// Produces the breakdown phases the Figure 5 harness expects: sketch gen, matrix
/// sketch, GEQRF (on the sketched matrix), TRSM (preconditioning), Gram matrix, `A₀ᵀb`,
/// POTRF and the final triangular solves.
pub fn rand_cholqr_least_squares<S: SketchOperator + ?Sized>(
    device: &Device,
    problem: &LsqProblem,
    sketch: &S,
) -> Result<LsqSolution, LsqError> {
    let mut prof = Profiler::new(device);
    prof.phase(Phase::SketchGen, || device.record(sketch.generation_cost()));

    // Step 1: sketch the coefficient matrix.
    let y = prof.phase(Phase::MatrixSketch, || {
        sketch.apply_matrix(device, &problem.a)
    })?;
    let y_cm = y.to_layout(device, Layout::ColMajor);

    // Step 2: economy QR of the sketched matrix (only R₀ is needed).
    let r0 = prof.phase(Phase::Geqrf, || geqrf(device, &y_cm))?.r();

    // Step 3: precondition A₀ = A R₀⁻¹.
    let a0 = prof.phase(Phase::Trsm, || {
        trsm_right(device, Triangle::Upper, Op::NoTrans, &r0, &problem.a)
    })?;

    // Step 4: Gram matrix and right-hand side in the preconditioned basis.
    let gram = prof.phase(Phase::GramMatrix, || gram_gemm(device, &a0))?;
    let z = prof.phase(Phase::ATransposeB, || {
        gemv(device, 1.0, Op::Trans, &a0, &problem.b, 0.0, None)
    })?;

    // Step 5: Cholesky of the (nearly orthonormal) Gram matrix.
    let r1 = prof.phase(Phase::Potrf, || potrf_upper(device, &gram))?;

    // Steps 6–8: R = R₁R₀ (only needed implicitly), y = R₁⁻ᵀ z, x = R⁻¹ y = R₀⁻¹ R₁⁻¹ y.
    let y1 = prof.phase(Phase::Trsv, || {
        trsv(device, Triangle::Upper, Op::Trans, &r1, &z)
    })?;
    let y2 = prof.phase(Phase::Trsv, || {
        trsv(device, Triangle::Upper, Op::NoTrans, &r1, &y1)
    })?;
    let x = prof.phase(Phase::Trsv, || {
        trsv(device, Triangle::Upper, Op::NoTrans, &r0, &y2)
    })?;

    Ok(LsqSolution {
        x,
        method: "rand_cholQR",
        breakdown: prof.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::qr_direct;
    use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};
    use sketch_la::blas3::gemm_op;

    fn device() -> Device {
        Device::unlimited()
    }

    /// The Count→Gauss pipeline with the `8n²`/`8n` oversized test dimensions.
    fn multisketch_of(dev: &Device, d: usize, n: usize, seed: u64) -> sketch_core::MultiSketch {
        Pipeline::count_gauss(d, EmbeddingDim::Square(8), EmbeddingDim::Ratio(8), seed)
            .build_multisketch(dev, n)
            .unwrap()
    }

    #[test]
    fn rand_cholqr_produces_orthonormal_q_and_reconstructs_a() {
        let dev = device();
        let a = Matrix::random_gaussian(1024, 6, Layout::RowMajor, 1, 0);
        let ms = multisketch_of(&dev, 1024, 6, 2);
        let f = rand_cholqr(&dev, &a, &ms).unwrap();

        let qtq = gemm_op(&dev, 1.0, Op::Trans, &f.q, Op::NoTrans, &f.q, 0.0, None).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-8);

        let qr = gemm(&dev, 1.0, &f.q, &f.r, 0.0, None).unwrap();
        let a_cm = a.to_layout(&dev, Layout::ColMajor);
        assert!(qr.max_abs_diff(&a_cm).unwrap() < 1e-8);
    }

    #[test]
    fn r_factor_is_upper_triangular() {
        let dev = device();
        let a = Matrix::random_gaussian(512, 4, Layout::RowMajor, 3, 0);
        let cs = SketchSpec::countsketch(512, EmbeddingDim::Square(8), 4)
            .build_for(&dev, 4)
            .unwrap();
        let f = rand_cholqr(&dev, &a, cs.as_ref()).unwrap();
        for i in 0..4 {
            for j in 0..i {
                assert!(f.r.get(i, j).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn least_squares_solution_matches_direct_qr() {
        let dev = device();
        let p = LsqProblem::easy(&dev, 2048, 5, 5).unwrap();
        let qr = qr_direct(&dev, &p).unwrap();
        let ms = multisketch_of(&dev, p.nrows(), 5, 6);
        let rc = rand_cholqr_least_squares(&dev, &p, &ms).unwrap();
        for (a, b) in rc.x.iter().zip(&qr.x) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
        assert_eq!(rc.method, "rand_cholQR");
    }

    #[test]
    fn least_squares_has_no_distortion_unlike_sketch_and_solve() {
        let dev = device();
        let p = LsqProblem::hard(&dev, 4096, 4, 7).unwrap();
        let best = qr_direct(&dev, &p)
            .unwrap()
            .relative_residual(&dev, &p)
            .unwrap();
        let cs = SketchSpec::countsketch(p.nrows(), EmbeddingDim::Square(8), 8)
            .build_for(&dev, p.ncols())
            .unwrap();
        let rc = rand_cholqr_least_squares(&dev, &p, cs.as_ref()).unwrap();
        let res = rc.relative_residual(&dev, &p).unwrap();
        assert!(
            (res - best).abs() / best < 1e-6,
            "rand_cholQR {res} vs QR {best}"
        );
    }

    #[test]
    fn breakdown_contains_trsm_and_gram_phases() {
        let dev = device();
        let p = LsqProblem::performance(&dev, 1024, 4, 9).unwrap();
        let cs = SketchSpec::countsketch(p.nrows(), EmbeddingDim::Square(4), 10)
            .build_for(&dev, p.ncols())
            .unwrap();
        let rc = rand_cholqr_least_squares(&dev, &p, cs.as_ref()).unwrap();
        assert!(rc.breakdown.model_seconds_of(Phase::Trsm) > 0.0);
        assert!(rc.breakdown.model_seconds_of(Phase::GramMatrix) > 0.0);
        assert!(rc.breakdown.model_seconds_of(Phase::Potrf) > 0.0);
    }

    #[test]
    fn works_on_moderately_ill_conditioned_problems() {
        // kappa = 1e8 breaks the normal equations but not rand_cholQR.
        let dev = device();
        let p = LsqProblem::conditioned(&dev, 2048, 4, 1e8, 11).unwrap();
        let ms = Pipeline::count_gauss(
            p.nrows(),
            EmbeddingDim::Square(16),
            EmbeddingDim::Ratio(16),
            12,
        )
        .build_multisketch(&dev, p.ncols())
        .unwrap();
        let rc = rand_cholqr_least_squares(&dev, &p, &ms).unwrap();
        let res = rc.relative_residual(&dev, &p).unwrap();
        assert!(res < 1e-6, "residual {res}");
    }

    #[test]
    fn sketch_dimension_mismatch_is_an_error() {
        let dev = device();
        let p = LsqProblem::performance(&dev, 256, 4, 1).unwrap();
        let wrong = SketchSpec::countsketch(128, EmbeddingDim::Exact(64), 1)
            .build(&dev)
            .unwrap();
        assert!(rand_cholqr_least_squares(&dev, &p, wrong.as_ref()).is_err());
        assert!(rand_cholqr(&dev, &p.a, wrong.as_ref()).is_err());
    }
}
