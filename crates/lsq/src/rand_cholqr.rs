//! Randomized Cholesky QR (Algorithms 4 and 5).
//!
//! rand_cholQR forms a true QR factorisation of `A` using one sketch, one small QR, one
//! Gram matrix and one Cholesky factorisation; it is stable whenever `κ(A) < u⁻¹`
//! (Balabanov; Higgins, Szyld, Boman & Yamazaki), unlike the normal equations which
//! need `κ(A) < u⁻¹ᐟ²`.  The least squares variant (Algorithm 5) skips forming `Q`
//! explicitly and is mathematically equivalent to the preconditioned normal equations
//! of Ipsen (2025).

use crate::error::LsqError;
use crate::problem::LsqProblem;
use crate::solvers::{pooled_matrix_sketch, LsqSolution};
use sketch_core::{Pipeline, SketchOperator};
use sketch_dist::{ExecutorOptions, PipelinedRun};
use sketch_gpu_sim::{Device, DevicePool, Phase, Profiler};
use sketch_la::blas2::{gemv, trsv, Triangle};
use sketch_la::blas3::{gemm, gram_gemm, trsm_right};
use sketch_la::chol::potrf_upper;
use sketch_la::qr::geqrf;
use sketch_la::{Layout, Matrix, Op};

/// The factors produced by [`rand_cholqr`]: `A = Q R` with orthonormal `Q`.
#[derive(Debug, Clone)]
pub struct RandCholQrFactors {
    /// The thin orthogonal factor (`d x n`).
    pub q: Matrix,
    /// The upper triangular factor (`n x n`), `R = R₁ R₀`.
    pub r: Matrix,
}

/// Algorithm 4 — randomized Cholesky QR.
///
/// 1. `Y = S A`          (sketch)
/// 2. `[~, R₀] = qr(Y)`   (small QR)
/// 3. `A₀ = A R₀⁻¹`       (precondition)
/// 4. `G = A₀ᵀ A₀`        (Gram)
/// 5. `R₁ = chol(G)`      (Cholesky)
/// 6. `Q = A₀ R₁⁻¹`, `R = R₁ R₀`
pub fn rand_cholqr<S: SketchOperator + ?Sized>(
    device: &Device,
    a: &Matrix,
    sketch: &S,
) -> Result<RandCholQrFactors, LsqError> {
    let y = sketch.apply_matrix(device, a)?;
    let y_cm = y.to_layout(device, Layout::ColMajor);
    let r0 = geqrf(device, &y_cm)?.r();
    let a0 = trsm_right(device, Triangle::Upper, Op::NoTrans, &r0, a)?;
    let gram = gram_gemm(device, &a0)?;
    let r1 = potrf_upper(device, &gram)?;
    let q = trsm_right(device, Triangle::Upper, Op::NoTrans, &r1, &a0)?;
    let r = gemm(device, 1.0, &r1, &r0, 0.0, None)?;
    Ok(RandCholQrFactors { q, r })
}

/// Algorithm 5 — rand_cholQR least squares (one TRSM, no explicit `Q`) — on the
/// unified execution engine.
///
/// The sketch `Y = S A` (the only step that touches the tall matrix with a random
/// operator) runs across the pool through [`sketch_dist::pipelined_sketch`]; everything else —
/// QR of the small sketched matrix, TRSM preconditioning, Gram, Cholesky,
/// triangular solves — runs on pool device 0, where the preconditioned problem is
/// small.  Serial execution is a pool of one; the solution is bit-identical for
/// every pool size because the executor's sketch is bit-identical to the
/// single-device kernel.
///
/// Produces the breakdown phases the Figure 5 harness expects: sketch gen, matrix
/// sketch (charged at the pipelined makespan), GEQRF (on the sketched matrix),
/// TRSM (preconditioning), Gram matrix, `A₀ᵀb`, POTRF and the final triangular
/// solves.  The executor's [`PipelinedRun`] rides along for timeline inspection.
pub fn rand_cholqr_least_squares(
    pool: &DevicePool,
    problem: &LsqProblem,
    plan: &Pipeline,
    opts: &ExecutorOptions,
) -> Result<(LsqSolution, PipelinedRun), LsqError> {
    let device = pool.device(0);
    let mut prof = Profiler::new(device);
    // Generation is accounted in its own phase; the executor regenerates the
    // stage operators internally from the same specs and seeds (same bits), so
    // this build is purely the Figure-5 "Sketch gen" accounting.
    prof.phase(Phase::SketchGen, || {
        plan.build_for(device, problem.ncols()).map(|_| ())
    })?;

    // Step 1: sketch the coefficient matrix on the pool.
    let (run, sketch_phase) = pooled_matrix_sketch(pool, &problem.a, plan, opts)?;
    let y_cm = run.result.to_layout(device, Layout::ColMajor);

    // Step 2: economy QR of the sketched matrix (only R₀ is needed).
    let r0 = prof.phase(Phase::Geqrf, || geqrf(device, &y_cm))?.r();

    // Step 3: precondition A₀ = A R₀⁻¹.
    let a0 = prof.phase(Phase::Trsm, || {
        trsm_right(device, Triangle::Upper, Op::NoTrans, &r0, &problem.a)
    })?;

    // Step 4: Gram matrix and right-hand side in the preconditioned basis.
    let gram = prof.phase(Phase::GramMatrix, || gram_gemm(device, &a0))?;
    let z = prof.phase(Phase::ATransposeB, || {
        gemv(device, 1.0, Op::Trans, &a0, &problem.b, 0.0, None)
    })?;

    // Step 5: Cholesky of the (nearly orthonormal) Gram matrix.
    let r1 = prof.phase(Phase::Potrf, || potrf_upper(device, &gram))?;

    // Steps 6–8: R = R₁R₀ (only needed implicitly), y = R₁⁻ᵀ z, x = R⁻¹ y = R₀⁻¹ R₁⁻¹ y.
    let y1 = prof.phase(Phase::Trsv, || {
        trsv(device, Triangle::Upper, Op::Trans, &r1, &z)
    })?;
    let y2 = prof.phase(Phase::Trsv, || {
        trsv(device, Triangle::Upper, Op::NoTrans, &r1, &y1)
    })?;
    let x = prof.phase(Phase::Trsv, || {
        trsv(device, Triangle::Upper, Op::NoTrans, &r0, &y2)
    })?;

    // Splice the pooled matrix-sketch phase in after SketchGen.
    let mut breakdown = prof.finish();
    breakdown.phases.insert(1, sketch_phase);

    Ok((
        LsqSolution {
            x,
            method: "rand_cholQR",
            breakdown,
        },
        run,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::qr_direct;
    use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};
    use sketch_la::blas3::gemm_op;

    fn device() -> Device {
        Device::unlimited()
    }

    /// The Count→Gauss pipeline with the `8n²`/`8n` oversized test dimensions.
    fn multisketch_of(dev: &Device, d: usize, n: usize, seed: u64) -> sketch_core::MultiSketch {
        Pipeline::count_gauss(d, EmbeddingDim::Square(8), EmbeddingDim::Ratio(8), seed)
            .build_multisketch(dev, n)
            .unwrap()
    }

    #[test]
    fn rand_cholqr_produces_orthonormal_q_and_reconstructs_a() {
        let dev = device();
        let a = Matrix::random_gaussian(1024, 6, Layout::RowMajor, 1, 0);
        let ms = multisketch_of(&dev, 1024, 6, 2);
        let f = rand_cholqr(&dev, &a, &ms).unwrap();

        let qtq = gemm_op(&dev, 1.0, Op::Trans, &f.q, Op::NoTrans, &f.q, 0.0, None).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-8);

        let qr = gemm(&dev, 1.0, &f.q, &f.r, 0.0, None).unwrap();
        let a_cm = a.to_layout(&dev, Layout::ColMajor);
        assert!(qr.max_abs_diff(&a_cm).unwrap() < 1e-8);
    }

    #[test]
    fn r_factor_is_upper_triangular() {
        let dev = device();
        let a = Matrix::random_gaussian(512, 4, Layout::RowMajor, 3, 0);
        let cs = SketchSpec::countsketch(512, EmbeddingDim::Square(8), 4)
            .build_for(&dev, 4)
            .unwrap();
        let f = rand_cholqr(&dev, &a, cs.as_ref()).unwrap();
        for i in 0..4 {
            for j in 0..i {
                assert!(f.r.get(i, j).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn least_squares_solution_matches_direct_qr() {
        let dev = device();
        let p = LsqProblem::easy(&dev, 2048, 5, 5).unwrap();
        let qr = qr_direct(&dev, &p).unwrap();
        let plan = Pipeline::count_gauss(
            p.nrows(),
            EmbeddingDim::Square(8),
            EmbeddingDim::Ratio(8),
            6,
        );
        let pool = DevicePool::unlimited(1);
        let (rc, _run) =
            rand_cholqr_least_squares(&pool, &p, &plan, &ExecutorOptions::default()).unwrap();
        for (a, b) in rc.x.iter().zip(&qr.x) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
        assert_eq!(rc.method, "rand_cholQR");
    }

    #[test]
    fn least_squares_is_bit_identical_across_pool_sizes() {
        let dev = device();
        let p = LsqProblem::easy(&dev, 1024, 4, 5).unwrap();
        let plan = Pipeline::single(SketchSpec::countsketch(
            p.nrows(),
            EmbeddingDim::Square(8),
            9,
        ));
        let pool1 = DevicePool::unlimited(1);
        let (reference, _) =
            rand_cholqr_least_squares(&pool1, &p, &plan, &ExecutorOptions::default()).unwrap();
        for devices in [2usize, 4] {
            let pool = DevicePool::unlimited(devices);
            let (rc, run) =
                rand_cholqr_least_squares(&pool, &p, &plan, &ExecutorOptions::default()).unwrap();
            for (a, b) in rc.x.iter().zip(&reference.x) {
                assert_eq!(a.to_bits(), b.to_bits(), "drifted on {devices} devices");
            }
            assert!(run.pipelined_seconds <= run.serial_seconds);
        }
    }

    #[test]
    fn least_squares_has_no_distortion_unlike_sketch_and_solve() {
        let dev = device();
        let p = LsqProblem::hard(&dev, 4096, 4, 7).unwrap();
        let best = qr_direct(&dev, &p)
            .unwrap()
            .relative_residual(&dev, &p)
            .unwrap();
        let plan = Pipeline::single(SketchSpec::countsketch(
            p.nrows(),
            EmbeddingDim::Square(8),
            8,
        ));
        let pool = DevicePool::unlimited(1);
        let (rc, _run) =
            rand_cholqr_least_squares(&pool, &p, &plan, &ExecutorOptions::default()).unwrap();
        let res = rc.relative_residual(&dev, &p).unwrap();
        assert!(
            (res - best).abs() / best < 1e-6,
            "rand_cholQR {res} vs QR {best}"
        );
    }

    #[test]
    fn breakdown_contains_trsm_and_gram_phases() {
        let dev = device();
        let p = LsqProblem::performance(&dev, 1024, 4, 9).unwrap();
        let plan = Pipeline::single(SketchSpec::countsketch(
            p.nrows(),
            EmbeddingDim::Square(4),
            10,
        ));
        let pool = DevicePool::unlimited(2);
        let (rc, _run) =
            rand_cholqr_least_squares(&pool, &p, &plan, &ExecutorOptions::default()).unwrap();
        assert!(rc.breakdown.model_seconds_of(Phase::Trsm) > 0.0);
        assert!(rc.breakdown.model_seconds_of(Phase::GramMatrix) > 0.0);
        assert!(rc.breakdown.model_seconds_of(Phase::Potrf) > 0.0);
        // The engine splices the pooled matrix sketch in after generation.
        assert_eq!(rc.breakdown.phases[0].phase, Phase::SketchGen);
        assert_eq!(rc.breakdown.phases[1].phase, Phase::MatrixSketch);
        assert!(rc.breakdown.phases[1].model_seconds > 0.0);
    }

    #[test]
    fn works_on_moderately_ill_conditioned_problems() {
        // kappa = 1e8 breaks the normal equations but not rand_cholQR.
        let dev = device();
        let p = LsqProblem::conditioned(&dev, 2048, 4, 1e8, 11).unwrap();
        let plan = Pipeline::count_gauss(
            p.nrows(),
            EmbeddingDim::Square(16),
            EmbeddingDim::Ratio(16),
            12,
        );
        let pool = DevicePool::unlimited(1);
        let (rc, _run) =
            rand_cholqr_least_squares(&pool, &p, &plan, &ExecutorOptions::default()).unwrap();
        let res = rc.relative_residual(&dev, &p).unwrap();
        assert!(res < 1e-6, "residual {res}");
    }

    #[test]
    fn sketch_dimension_mismatch_is_an_error() {
        let dev = device();
        let p = LsqProblem::performance(&dev, 256, 4, 1).unwrap();
        let plan = Pipeline::single(SketchSpec::countsketch(128, EmbeddingDim::Exact(64), 1));
        let pool = DevicePool::unlimited(1);
        assert!(rand_cholqr_least_squares(&pool, &p, &plan, &ExecutorOptions::default()).is_err());
        let wrong = SketchSpec::countsketch(128, EmbeddingDim::Exact(64), 1)
            .build(&dev)
            .unwrap();
        assert!(rand_cholqr(&dev, &p.a, wrong.as_ref()).is_err());
    }
}
