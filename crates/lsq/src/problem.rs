//! Least squares problem generators matching the paper's experiments (Section 6.3).
//!
//! * the *performance* experiments (Figure 5) fix `κ(A) = 10²` so the normal equations
//!   stay stable and only speed is compared,
//! * the *accuracy* experiments use `b = A·1 + η` with `η ~ N(0, 0.01)` ("easy",
//!   Figure 6) or `η ~ N(3, 2)` ("hard", Figure 7),
//! * the *stability* experiment (Figure 8) uses `b = A·e` with `e` the all-ones vector
//!   and sweeps `κ(A)` from `1` to `10²⁰`.

use crate::error::LsqError;
use sketch_gpu_sim::Device;
use sketch_la::{blas2, cond, Layout, Matrix, Op};
use sketch_rng::fill;

/// An overdetermined least squares problem `min_x ||b - A x||₂`.
#[derive(Debug, Clone)]
pub struct LsqProblem {
    /// Coefficient matrix, stored row-major so the CountSketch reads coalesce
    /// (Section 6.1).
    pub a: Matrix,
    /// Right-hand side.
    pub b: Vec<f64>,
    /// The planted solution, when the generator knows it (used by accuracy checks).
    pub x_true: Option<Vec<f64>>,
    /// Condition number the generator aimed for, when controlled.
    pub target_cond: Option<f64>,
}

impl LsqProblem {
    /// Wrap an explicit `(A, b)` pair.
    pub fn new(a: Matrix, b: Vec<f64>) -> Result<Self, LsqError> {
        if a.nrows() < a.ncols() {
            return Err(LsqError::BadProblem {
                detail: format!("matrix is {}x{}, need rows >= cols", a.nrows(), a.ncols()),
            });
        }
        if b.len() != a.nrows() {
            return Err(LsqError::BadProblem {
                detail: format!("b has length {} but A has {} rows", b.len(), a.nrows()),
            });
        }
        Ok(Self {
            a,
            b,
            x_true: None,
            target_cond: None,
        })
    }

    /// Rows of the coefficient matrix.
    pub fn nrows(&self) -> usize {
        self.a.nrows()
    }

    /// Columns of the coefficient matrix.
    pub fn ncols(&self) -> usize {
        self.a.ncols()
    }

    /// The performance-experiment problem: a well conditioned (`κ(A) = 10²`) random
    /// matrix and a right-hand side with a noisy planted solution.
    pub fn performance(device: &Device, d: usize, n: usize, seed: u64) -> Result<Self, LsqError> {
        Self::with_noise(device, d, n, 1e2, 0.0, 0.1, seed)
    }

    /// The "easy" accuracy problem of Figure 6: `b = A·1 + η`, `η ~ N(0, 0.01)`.
    pub fn easy(device: &Device, d: usize, n: usize, seed: u64) -> Result<Self, LsqError> {
        Self::with_noise(device, d, n, 1e2, 0.0, 0.01f64.sqrt(), seed)
    }

    /// The "hard" accuracy problem of Figure 7: `b = A·1 + η`, `η ~ N(3, 2)`.
    pub fn hard(device: &Device, d: usize, n: usize, seed: u64) -> Result<Self, LsqError> {
        Self::with_noise(device, d, n, 1e2, 3.0, 2.0f64.sqrt(), seed)
    }

    /// The Figure 8 stability problem: `b = A·e` exactly (zero residual in exact
    /// arithmetic) with a prescribed condition number.
    pub fn conditioned(
        device: &Device,
        d: usize,
        n: usize,
        kappa: f64,
        seed: u64,
    ) -> Result<Self, LsqError> {
        let a_cm = cond::matrix_with_cond(device, d, n, kappa, seed)?;
        let a = a_cm.to_layout(device, Layout::RowMajor);
        let ones = vec![1.0; n];
        let b = blas2::gemv(device, 1.0, Op::NoTrans, &a, &ones, 0.0, None)?;
        Ok(Self {
            a,
            b,
            x_true: Some(ones),
            target_cond: Some(kappa),
        })
    }

    /// Shared generator: `A` with condition number `kappa`, `b = A·1 + η` with
    /// `η ~ N(mu, sigma²)`.
    ///
    /// The matrix mimics the paper's random test matrices: singular values of order
    /// `√d` (like an i.i.d. Gaussian matrix) with one singular value lowered to
    /// `√d / κ` to pin the condition number.
    pub fn with_noise(
        device: &Device,
        d: usize,
        n: usize,
        kappa: f64,
        mu: f64,
        sigma: f64,
        seed: u64,
    ) -> Result<Self, LsqError> {
        if d < n {
            return Err(LsqError::BadProblem {
                detail: format!("requested {d}x{n}, need rows >= cols"),
            });
        }
        let scale = (d as f64).sqrt();
        let mut singular_values = vec![scale; n];
        if n > 1 {
            singular_values[n - 1] = scale / kappa;
        }
        let a_cm = cond::matrix_with_singular_values(device, d, n, &singular_values, seed)?;
        let a = a_cm.to_layout(device, Layout::RowMajor);
        let ones = vec![1.0; n];
        let mut b = blas2::gemv(device, 1.0, Op::NoTrans, &a, &ones, 0.0, None)?;
        if sigma != 0.0 || mu != 0.0 {
            let noise = fill::gaussian_vec(seed ^ 0x00C0_FFEE, 5, d);
            for (bi, eta) in b.iter_mut().zip(noise.iter()) {
                *bi += mu + sigma * eta;
            }
        }
        Ok(Self {
            a,
            b,
            x_true: Some(ones),
            target_cond: Some(kappa),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_la::norms::{relative_residual, vec_norm2};

    fn device() -> Device {
        Device::unlimited()
    }

    #[test]
    fn constructor_validates_shapes() {
        let a = Matrix::zeros_with_layout(10, 3, Layout::RowMajor);
        assert!(LsqProblem::new(a.clone(), vec![0.0; 10]).is_ok());
        assert!(LsqProblem::new(a.clone(), vec![0.0; 9]).is_err());
        let wide = Matrix::zeros_with_layout(3, 10, Layout::RowMajor);
        assert!(LsqProblem::new(wide, vec![0.0; 3]).is_err());
    }

    #[test]
    fn easy_problem_has_small_relative_residual_at_x_true() {
        let d = device();
        let p = LsqProblem::easy(&d, 2000, 8, 1).unwrap();
        let x = p.x_true.clone().unwrap();
        let r = relative_residual(&d, &p.a, &x, &p.b).unwrap();
        assert!(r < 0.1, "easy residual {r}");
    }

    #[test]
    fn hard_problem_has_larger_residual_than_easy() {
        let d = device();
        let easy = LsqProblem::easy(&d, 2000, 8, 2).unwrap();
        let hard = LsqProblem::hard(&d, 2000, 8, 2).unwrap();
        let xe = easy.x_true.clone().unwrap();
        let xh = hard.x_true.clone().unwrap();
        let re = relative_residual(&d, &easy.a, &xe, &easy.b).unwrap();
        let rh = relative_residual(&d, &hard.a, &xh, &hard.b).unwrap();
        assert!(rh > 2.0 * re, "easy {re}, hard {rh}");
    }

    #[test]
    fn conditioned_problem_is_exactly_consistent() {
        let d = device();
        let p = LsqProblem::conditioned(&d, 512, 8, 1e6, 3).unwrap();
        let x = p.x_true.clone().unwrap();
        let r = relative_residual(&d, &p.a, &x, &p.b).unwrap();
        assert!(r < 1e-10, "consistent residual {r}");
        assert_eq!(p.target_cond, Some(1e6));
        assert_eq!(p.nrows(), 512);
        assert_eq!(p.ncols(), 8);
    }

    #[test]
    fn matrices_are_row_major_for_the_countsketch() {
        let d = device();
        let p = LsqProblem::performance(&d, 256, 4, 7).unwrap();
        assert_eq!(p.a.layout(), Layout::RowMajor);
        assert!(vec_norm2(&p.b) > 0.0);
    }

    #[test]
    fn underdetermined_requests_are_rejected() {
        let d = device();
        assert!(LsqProblem::easy(&d, 4, 8, 1).is_err());
    }

    #[test]
    fn generators_are_reproducible() {
        let d = device();
        let p1 = LsqProblem::hard(&d, 200, 4, 9).unwrap();
        let p2 = LsqProblem::hard(&d, 200, 4, 9).unwrap();
        assert_eq!(p1.a, p2.a);
        assert_eq!(p1.b, p2.b);
    }
}
