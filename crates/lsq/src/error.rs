//! Error type for the least squares solvers.

use sketch_core::SketchError;
use sketch_la::LaError;
use std::fmt;

/// Errors returned by the least squares solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LsqError {
    /// A dense linear algebra routine failed.
    ///
    /// The most important instance: the Cholesky factorisation of the Gram matrix
    /// failing for ill-conditioned problems, which is how the normal equations break
    /// down in Figure 8.
    La(LaError),
    /// Sketch generation or application failed (including modelled device OOM).
    Sketch(SketchError),
    /// The problem dimensions are unusable (e.g. fewer rows than columns).
    BadProblem {
        /// Description of what is wrong.
        detail: String,
    },
}

impl fmt::Display for LsqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsqError::La(e) => write!(f, "linear algebra failure: {e}"),
            LsqError::Sketch(e) => write!(f, "sketching failure: {e}"),
            LsqError::BadProblem { detail } => {
                write!(f, "unusable least squares problem: {detail}")
            }
        }
    }
}

impl std::error::Error for LsqError {}

impl From<LaError> for LsqError {
    fn from(e: LaError) -> Self {
        LsqError::La(e)
    }
}

impl From<SketchError> for LsqError {
    fn from(e: SketchError) -> Self {
        LsqError::Sketch(e)
    }
}

impl LsqError {
    /// Whether this error is the normal-equations instability signature: the Gram matrix
    /// lost positive definiteness.
    pub fn is_gram_breakdown(&self) -> bool {
        matches!(self, LsqError::La(LaError::NotPositiveDefinite { .. }))
    }

    /// Whether this error is a modelled device out-of-memory failure.
    pub fn is_out_of_memory(&self) -> bool {
        matches!(self, LsqError::Sketch(SketchError::WouldExceedMemory(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_gpu_sim::MemoryError;

    #[test]
    fn conversions_and_predicates() {
        let e: LsqError = LaError::NotPositiveDefinite {
            column: 2,
            pivot: -1e-3,
        }
        .into();
        assert!(e.is_gram_breakdown());
        assert!(!e.is_out_of_memory());
        assert!(e.to_string().contains("positive definite"));

        let e: LsqError = SketchError::WouldExceedMemory(MemoryError {
            requested: 10,
            in_use: 0,
            capacity: 5,
        })
        .into();
        assert!(e.is_out_of_memory());
        assert!(!e.is_gram_breakdown());

        let e = LsqError::BadProblem {
            detail: "d < n".into(),
        };
        assert!(e.to_string().contains("d < n"));
    }
}
