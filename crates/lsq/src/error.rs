//! Error handling for the least squares solvers.
//!
//! The solvers share the workspace-wide [`sketch_core::Error`]: sketching failures,
//! dense linear algebra failures (most importantly the Cholesky factorisation of the
//! Gram matrix losing positive definiteness — the Figure 8 normal-equations
//! breakdown, see [`sketch_core::Error::is_gram_breakdown`]) and unusable problem
//! shapes all flow through one type, so a single `?` crosses every layer.

/// The least squares error type: an alias for the workspace-wide error.
pub use sketch_core::Error as LsqError;

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_gpu_sim::MemoryError;
    use sketch_la::LaError;

    #[test]
    fn conversions_and_predicates() {
        let e: LsqError = LaError::NotPositiveDefinite {
            column: 2,
            pivot: -1e-3,
        }
        .into();
        assert!(e.is_gram_breakdown());
        assert!(!e.is_out_of_memory());
        assert!(e.to_string().contains("positive definite"));

        let e: LsqError = MemoryError {
            requested: 10,
            in_use: 0,
            capacity: 5,
        }
        .into();
        assert!(e.is_out_of_memory());
        assert!(!e.is_gram_breakdown());

        let e = LsqError::bad_problem("d < n");
        assert!(e.to_string().contains("d < n"));
    }
}
