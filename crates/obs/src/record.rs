//! The span/event recorder API.
//!
//! A [`Recorder`] is the sink that instrumented layers (the simulated device,
//! the stream scheduler, the profiler, the wall-clock sampler) emit
//! [`TraceEvent`]s into.  Two implementations ship here:
//!
//! * [`NoopRecorder`] — the zero-cost default.  Its [`Recorder::enabled`] is
//!   `false`, so instrumented hot paths skip event construction entirely
//!   (no allocation, no lock; one relaxed atomic load at the call site).
//! * [`TraceCollector`] — a thread-safe in-memory buffer whose contents feed
//!   the exporters in [`crate::export`].

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Which track of the trace an event belongs to.
///
/// The first two mirror the simulated stream kinds in gpu-sim (one compute and
/// one communication stream per device); the remaining tracks carry
/// serially-clocked kernel launches, driver phases, and measured wall-clock
/// samples.  Each `(device, track)` pair renders as its own row in Perfetto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// The device's simulated compute stream (overlapped schedule).
    Compute,
    /// The device's simulated communication stream (overlapped schedule).
    Comm,
    /// Kernel launches under the device's serial modelled clock.
    Kernel,
    /// Driver phases (the Figure-5 breakdown) under a profiler-local modelled clock.
    Phase,
    /// Measured wall-clock samples (host time, not modelled time).
    Wall,
    /// Fault and recovery markers: device deaths and the recovery spans the
    /// executor spends recomputing lost shards on the survivors.
    Fault,
}

impl Track {
    /// Stable short name used in exports and tests.
    pub fn name(self) -> &'static str {
        match self {
            Track::Compute => "compute",
            Track::Comm => "comm",
            Track::Kernel => "kernel",
            Track::Phase => "phase",
            Track::Wall => "wall",
            Track::Fault => "fault",
        }
    }
}

/// The cost of the region an event covers, flattened to plain integers so the
/// bottom crate needs no dependency on gpu-sim's `KernelCost` or sketch-dist's
/// `CommCost` (both convert into this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Bytes read from device memory.
    pub bytes_read: u64,
    /// Bytes written to device memory.
    pub bytes_written: u64,
    /// Floating point operations.
    pub flops: u64,
    /// Kernel launches in the region.
    pub launches: u64,
    /// Bytes moved over the interconnect by collectives.
    pub comm_bytes: u64,
}

impl CostBreakdown {
    /// Accumulate another region's cost into this one.
    pub fn accumulate(&mut self, other: &CostBreakdown) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.flops += other.flops;
        self.launches += other.launches;
        self.comm_bytes += other.comm_bytes;
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Phase or kernel name (e.g. `"s0 countsketch shard 2"`).
    pub name: String,
    /// Device ordinal within its pool (wall events use the host pseudo-device).
    pub device: usize,
    /// Which track the span belongs to.
    pub track: Track,
    /// Modelled sim-time interval `(start, end)` in seconds; `None` for
    /// wall-only events.  This half of the trace is deterministic.
    pub sim: Option<(f64, f64)>,
    /// Measured wall-clock nanoseconds of the region (0 when not measured).
    pub wall_ns: u64,
    /// Cost counters of the region.
    pub cost: CostBreakdown,
}

/// The sink instrumented layers emit events into.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Whether event construction is worthwhile.  Hot paths check this before
    /// building a [`TraceEvent`]; when `false` they pay nothing else.
    fn enabled(&self) -> bool;
    /// Record one event.  Called only when [`Recorder::enabled`] is `true`.
    fn record(&self, event: TraceEvent);
}

/// A shared handle to a recorder.
pub type RecorderHandle = Arc<dyn Recorder>;

/// The zero-cost default recorder: disabled, drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

/// A thread-safe in-memory event buffer.
///
/// Events are appended under a mutex in emission order; the simulated-clock
/// half of that order is deterministic (see the determinism contract in
/// ARCHITECTURE.md § Observability), so two runs of the same workload produce
/// bit-identical sim tracks.
#[derive(Debug, Default)]
pub struct TraceCollector {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceCollector {
    /// Create an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty collector behind a shareable handle.
    pub fn shared() -> Arc<TraceCollector> {
        Arc::new(Self::new())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clone out the events recorded so far, in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Drain the buffer, returning all events recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl Recorder for TraceCollector {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            device: 0,
            track: Track::Compute,
            sim: Some((0.0, 1.0)),
            wall_ns: 5,
            cost: CostBreakdown::default(),
        }
    }

    #[test]
    fn noop_recorder_is_disabled() {
        assert!(!NoopRecorder.enabled());
        NoopRecorder.record(ev("dropped"));
    }

    #[test]
    fn collector_preserves_emission_order() {
        let c = TraceCollector::new();
        assert!(c.is_empty());
        c.record(ev("a"));
        c.record(ev("b"));
        assert_eq!(c.len(), 2);
        let events = c.snapshot();
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
        assert_eq!(c.take().len(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let c = TraceCollector::shared();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || c.record(ev(&format!("t{i}"))))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn cost_accumulates() {
        let mut a = CostBreakdown {
            bytes_read: 1,
            bytes_written: 2,
            flops: 3,
            launches: 4,
            comm_bytes: 5,
        };
        a.accumulate(&a.clone());
        assert_eq!(a.bytes_read, 2);
        assert_eq!(a.comm_bytes, 10);
    }

    #[test]
    fn track_names_are_stable() {
        let names: Vec<_> = [
            Track::Compute,
            Track::Comm,
            Track::Kernel,
            Track::Phase,
            Track::Wall,
            Track::Fault,
        ]
        .iter()
        .map(|t| t.name())
        .collect();
        assert_eq!(
            names,
            ["compute", "comm", "kernel", "phase", "wall", "fault"]
        );
    }
}
