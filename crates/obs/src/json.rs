//! A minimal JSON reader/writer shared by the whole workspace.
//!
//! The offline container's serde shim carries no data format, so the workspace
//! ships its own small JSON implementation: enough of RFC 8259 to serialize and
//! parse sketch-spec documents, benchmark result files, and Chrome trace-event
//! exports (objects, arrays, strings with escapes, booleans, null, and numbers).
//! Unsigned integers are kept exact — Philox seeds are full-range `u64`s, which a
//! lossy `f64` number representation would corrupt.
//!
//! This module lives in `sketch-obs`, the bottom crate of the workspace, so both
//! the spec layer in `sketch-core` (which re-exports it as `spec::json`) and the
//! trace exporters in [`crate::export`] can use one implementation.

use std::fmt;

/// Error produced when a JSON document fails to parse.
///
/// `sketch-core` converts this into its workspace-wide `Error::InvalidParameter`
/// variant, preserving the message verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// The byte offset and detail, formatted as
    /// `JSON parse error at byte {pos}: {detail}`.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent, kept exact.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `usize`, when it is an exact unsigned integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Render as a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::UInt(v) => out.push_str(&v.to_string()),
            JsonValue::Float(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:?}"));
                } else {
                    // JSON has no Inf/NaN literals; degrade to null like serde_json.
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: &str) -> JsonError {
        JsonError {
            message: format!("JSON parse error at byte {}: {detail}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let unit = self.hex4(self.pos + 1)?;
                            if (0xD800..=0xDBFF).contains(&unit) {
                                // RFC 8259: non-BMP characters arrive as a UTF-16
                                // surrogate pair of two \uXXXX escapes.
                                if self.bytes.get(self.pos + 5).copied() == Some(b'\\')
                                    && self.bytes.get(self.pos + 6).copied() == Some(b'u')
                                {
                                    let low = self.hex4(self.pos + 7)?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(
                                            self.err("expected low surrogate after high surrogate")
                                        );
                                    }
                                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(code)
                                            .ok_or_else(|| self.err("invalid \\u code point"))?,
                                    );
                                    self.pos += 10;
                                } else {
                                    return Err(self.err("unpaired surrogate in \\u escape"));
                                }
                            } else if (0xDC00..=0xDFFF).contains(&unit) {
                                return Err(self.err("unpaired low surrogate in \\u escape"));
                            } else {
                                out.push(
                                    char::from_u32(unit)
                                        .ok_or_else(|| self.err("invalid \\u code point"))?,
                                );
                                self.pos += 4;
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte sequences included).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read four hex digits starting at `start` as a UTF-16 code unit.
    fn hex4(&self, start: usize) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        if !hex.iter().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.err("invalid \\u escape"));
        }
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::UInt(42));
        assert_eq!(JsonValue::parse("-1.5").unwrap(), JsonValue::Float(-1.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(
            JsonValue::parse("\"hi\\n\\\"there\\\"\"").unwrap(),
            JsonValue::Str("hi\n\"there\"".into())
        );
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.render(), "18446744073709551615");
    }

    #[test]
    fn objects_and_arrays_round_trip() {
        let text = r#"{"a": [1, 2.5, "x"], "b": {"c": null, "d": true}}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.as_array()).unwrap().len(), 3);
        assert_eq!(
            v.get("b").and_then(|b| b.get("d")).unwrap().as_bool(),
            Some(true)
        );
        let rendered = v.render();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_and_utf8_pass_through() {
        let v = JsonValue::parse("\"\\u0041π\"").unwrap();
        assert_eq!(v.as_str(), Some("Aπ"));
        let round = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_are_rejected() {
        // U+1F600 as the standard UTF-16 escape pair.
        let v = JsonValue::parse("\"\\ud83d\\ude00!\"").unwrap();
        assert_eq!(v.as_str(), Some("😀!"));
        // Lone high, lone low, and a high followed by a non-low are all invalid.
        assert!(JsonValue::parse("\"\\ud83d\"").is_err());
        assert!(JsonValue::parse("\"\\ude00\"").is_err());
        assert!(JsonValue::parse("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "\"unterminated",
            "tru",
            "01a",
            "{\"a\":}",
            "1 2",
            "\"\\q\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = JsonValue::parse("{\"n\": 3}").unwrap();
        assert!(v.as_str().is_none());
        assert!(v.as_array().is_none());
        assert!(v.as_bool().is_none());
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert!(v.get("missing").is_none());
        assert!(JsonValue::Null.get("x").is_none());
    }

    #[test]
    fn floats_render_reparseably() {
        let v = JsonValue::Float(0.25);
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_errors_carry_the_byte_offset() {
        let err = JsonValue::parse("[1, }").unwrap_err();
        assert!(err.message().starts_with("JSON parse error at byte "));
        assert_eq!(err.to_string(), err.message());
    }
}
