//! A small metrics registry: monotonic counters and fixed-bucket histograms.
//!
//! Metrics are keyed by name in a `BTreeMap`, so exports are deterministically
//! ordered.  The registry is thread-safe; instrumented layers call
//! [`MetricsRegistry::add`] / [`MetricsRegistry::observe`] and exporters call
//! [`MetricsRegistry::to_json`] for the flat summary document.

use crate::json::JsonValue;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// A fixed-bucket histogram: `counts[i]` counts observations `<= bounds[i]`,
/// with one overflow bucket at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts.
    ///
    /// The estimate interpolates linearly inside the bucket that crosses the
    /// target rank, Prometheus-style, and is fully determined by the stored
    /// counts — no raw observations are kept.  Observations that landed in the
    /// overflow bucket are reported as the largest finite bound (the histogram
    /// cannot see past its bounds).  Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upto = seen + c;
            if (upto as f64) >= rank {
                let Some(&hi) = self.bounds.get(i) else {
                    // Overflow bucket: clamp to the largest finite bound.
                    return self.bounds.last().copied().unwrap_or(0.0);
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let within = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * within;
            }
            seen = upto;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(u64),
    Histogram(Histogram),
}

/// A thread-safe, deterministically-ordered metrics registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the monotonic counter `name`, creating it at zero first.
    ///
    /// Panics if `name` is already registered as a histogram.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        match inner.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            Metric::Histogram(_) => panic!("metric {name:?} is a histogram, not a counter"),
        }
    }

    /// Record one observation into the histogram `name`, creating it with the
    /// given bucket `bounds` on first use (later calls reuse the stored bounds).
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn observe(&self, name: &str, value: f64, bounds: &[f64]) {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.observe(value),
            Metric::Counter(_) => panic!("metric {name:?} is a counter, not a histogram"),
        }
    }

    /// Current value of the counter `name` (0 if absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.inner.lock().get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Clone of the histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self.inner.lock().get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Flat JSON summary: `{"counters": {...}, "histograms": {...}}` with keys
    /// in lexicographic order.
    pub fn to_json(&self) -> JsonValue {
        let inner = self.inner.lock();
        let mut counters = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(v) => counters.push((name.clone(), JsonValue::UInt(*v))),
                Metric::Histogram(h) => {
                    let fields = vec![
                        (
                            "bounds".to_string(),
                            JsonValue::Array(
                                h.bounds.iter().map(|&b| JsonValue::Float(b)).collect(),
                            ),
                        ),
                        (
                            "counts".to_string(),
                            JsonValue::Array(
                                h.counts.iter().map(|&c| JsonValue::UInt(c)).collect(),
                            ),
                        ),
                        ("sum".to_string(), JsonValue::Float(h.sum)),
                        ("count".to_string(), JsonValue::UInt(h.count)),
                        ("mean".to_string(), JsonValue::Float(h.mean())),
                    ];
                    histograms.push((name.clone(), JsonValue::Object(fields)));
                }
            }
        }
        JsonValue::Object(vec![
            ("counters".to_string(), JsonValue::Object(counters)),
            ("histograms".to_string(), JsonValue::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        let m = MetricsRegistry::new();
        m.add("kernel_launches", 2);
        m.add("kernel_launches", 3);
        assert_eq!(m.counter("kernel_launches"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let m = MetricsRegistry::new();
        let bounds = [0.5, 1.0];
        m.observe("overlap", 0.25, &bounds);
        m.observe("overlap", 0.75, &bounds);
        m.observe("overlap", 2.0, &bounds);
        let h = m.histogram("overlap").unwrap();
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.count, 3);
        assert!((h.mean() - 1.0).abs() < 1e-12);
        assert!(m.histogram("missing").is_none());
    }

    #[test]
    fn quantiles_interpolate_inside_buckets() {
        let m = MetricsRegistry::new();
        let bounds = [1.0, 2.0, 4.0];
        // 2 obs in (0,1], 2 in (1,2], none beyond.
        for v in [0.5, 0.9, 1.5, 1.9] {
            m.observe("wait", v, &bounds);
        }
        let h = m.histogram("wait").unwrap();
        // p50: rank 2.0 lands exactly at the end of bucket 0 -> 1.0.
        assert!((h.quantile(0.5) - 1.0).abs() < 1e-12);
        // p75: rank 3.0 is one of bucket 1's two observations -> 1.5.
        assert!((h.quantile(0.75) - 1.5).abs() < 1e-12);
        // p100 reaches bucket 1's upper bound.
        assert!((h.quantile(1.0) - 2.0).abs() < 1e-12);
        // q is clamped.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_handles_empty_and_overflow() {
        let empty = Histogram {
            bounds: vec![1.0, 2.0],
            counts: vec![0, 0, 0],
            sum: 0.0,
            count: 0,
        };
        assert_eq!(empty.quantile(0.5), 0.0);
        // Everything in the overflow bucket clamps to the largest bound.
        let m = MetricsRegistry::new();
        m.observe("over", 10.0, &[1.0, 2.0]);
        m.observe("over", 20.0, &[1.0, 2.0]);
        let h = m.histogram("over").unwrap();
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.95), 2.0);
    }

    #[test]
    fn json_summary_is_sorted_and_round_trips() {
        let m = MetricsRegistry::new();
        m.add("z_counter", 1);
        m.add("a_counter", 2);
        m.observe("latency", 0.1, &[1.0]);
        let doc = m.to_json();
        let counters = doc.get("counters").unwrap();
        match counters {
            JsonValue::Object(fields) => {
                assert_eq!(fields[0].0, "a_counter");
                assert_eq!(fields[1].0, "z_counter");
            }
            _ => panic!("counters must be an object"),
        }
        assert_eq!(
            doc.get("histograms")
                .and_then(|h| h.get("latency"))
                .and_then(|l| l.get("count"))
                .and_then(|c| c.as_u64()),
            Some(1)
        );
        let rendered = doc.render();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), doc);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn kind_mismatch_panics() {
        let m = MetricsRegistry::new();
        m.add("x", 1);
        m.observe("x", 1.0, &[1.0]);
    }
}
