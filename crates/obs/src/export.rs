//! Exporters: Chrome trace-event JSON (Perfetto-loadable) and the flat metrics
//! summary.
//!
//! The trace format is the Chrome trace-event "JSON object format": a top-level
//! object whose `traceEvents` array holds complete (`"ph":"X"`) slices plus
//! metadata (`"ph":"M"`) records naming each process/thread.  Perfetto and
//! `chrome://tracing` both load it directly; unknown top-level keys (we add
//! `sketchMetrics`) are ignored by both.
//!
//! Track layout: each simulated device renders as one *process* (`pid` =
//! device ordinal) with one *thread* per [`Track`] (`tid` 0 = compute stream,
//! 1 = comm stream, 2 = serial kernel clock, 3 = driver phases).  Wall-clock
//! samples render under a synthetic `host` process.  Sim-track timestamps are
//! modelled seconds scaled to microseconds and are bit-deterministic; wall
//! events are laid out end-to-end in emission order (their `dur` is the
//! measured time, their `ts` is synthetic).

use crate::json::JsonValue;
use crate::metrics::MetricsRegistry;
use crate::record::{TraceEvent, Track};
use std::collections::BTreeMap;

/// The synthetic `pid` wall-clock events render under.  Device ordinals are
/// pool indices (single digits in practice), so this never collides.
pub const HOST_PID: u64 = 1000;

const SECONDS_TO_US: f64 = 1e6;
const NS_TO_US: f64 = 1e-3;

fn pid_of(event: &TraceEvent) -> u64 {
    match event.track {
        Track::Wall => HOST_PID,
        _ => event.device as u64,
    }
}

fn tid_of(track: Track) -> u64 {
    match track {
        Track::Compute => 0,
        Track::Comm => 1,
        Track::Kernel => 2,
        Track::Phase => 3,
        Track::Wall => 0,
        Track::Fault => 4,
    }
}

fn thread_label(track: Track) -> &'static str {
    match track {
        Track::Compute => "compute (sim)",
        Track::Comm => "comm (sim)",
        Track::Kernel => "kernels (serial sim)",
        Track::Phase => "phases (serial sim)",
        Track::Wall => "wall clock",
        Track::Fault => "faults (recovery)",
    }
}

fn meta(pid: u64, tid: u64, kind: &str, label: &str) -> JsonValue {
    JsonValue::Object(vec![
        ("ph".into(), JsonValue::Str("M".into())),
        ("pid".into(), JsonValue::UInt(pid)),
        ("tid".into(), JsonValue::UInt(tid)),
        ("name".into(), JsonValue::Str(kind.into())),
        (
            "args".into(),
            JsonValue::Object(vec![("name".into(), JsonValue::Str(label.into()))]),
        ),
    ])
}

/// Export events as a Chrome trace-event JSON document.
pub fn chrome_trace(events: &[TraceEvent]) -> JsonValue {
    chrome_trace_with_metrics(events, None)
}

/// Export events as a Chrome trace-event JSON document, optionally embedding a
/// metrics summary under the extra `sketchMetrics` key (ignored by viewers).
pub fn chrome_trace_with_metrics(
    events: &[TraceEvent],
    metrics: Option<&MetricsRegistry>,
) -> JsonValue {
    // Discover the tracks present, in deterministic (pid, tid) order.
    let mut tracks: BTreeMap<(u64, u64), Track> = BTreeMap::new();
    for event in events {
        tracks
            .entry((pid_of(event), tid_of(event.track)))
            .or_insert(event.track);
    }

    let mut out = Vec::with_capacity(events.len() + 2 * tracks.len());
    let mut named_pids = std::collections::BTreeSet::new();
    for (&(pid, tid), &track) in &tracks {
        if named_pids.insert(pid) {
            let label = if pid == HOST_PID {
                "host".to_string()
            } else {
                format!("dev{pid}")
            };
            out.push(meta(pid, tid, "process_name", &label));
        }
        out.push(meta(pid, tid, "thread_name", thread_label(track)));
    }

    // Wall events have no modelled interval; lay them end-to-end per track.
    let mut wall_cursor: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for event in events {
        let pid = pid_of(event);
        let tid = tid_of(event.track);
        let (ts, dur) = match event.sim {
            Some((start, end)) => (start * SECONDS_TO_US, (end - start) * SECONDS_TO_US),
            None => {
                let cursor = wall_cursor.entry((pid, tid)).or_insert(0.0);
                let ts = *cursor;
                let dur = event.wall_ns as f64 * NS_TO_US;
                *cursor += dur;
                (ts, dur)
            }
        };
        let cat = if event.sim.is_some() { "sim" } else { "wall" };
        let args = JsonValue::Object(vec![
            ("track".into(), JsonValue::Str(event.track.name().into())),
            ("bytes_read".into(), JsonValue::UInt(event.cost.bytes_read)),
            (
                "bytes_written".into(),
                JsonValue::UInt(event.cost.bytes_written),
            ),
            ("flops".into(), JsonValue::UInt(event.cost.flops)),
            ("launches".into(), JsonValue::UInt(event.cost.launches)),
            ("comm_bytes".into(), JsonValue::UInt(event.cost.comm_bytes)),
            ("wall_ns".into(), JsonValue::UInt(event.wall_ns)),
        ]);
        out.push(JsonValue::Object(vec![
            ("name".into(), JsonValue::Str(event.name.clone())),
            ("ph".into(), JsonValue::Str("X".into())),
            ("cat".into(), JsonValue::Str(cat.into())),
            ("pid".into(), JsonValue::UInt(pid)),
            ("tid".into(), JsonValue::UInt(tid)),
            ("ts".into(), JsonValue::Float(ts)),
            ("dur".into(), JsonValue::Float(dur)),
            ("args".into(), args),
        ]));
    }

    let mut doc = vec![("traceEvents".to_string(), JsonValue::Array(out))];
    if let Some(metrics) = metrics {
        doc.push(("sketchMetrics".to_string(), metrics.to_json()));
    }
    JsonValue::Object(doc)
}

/// Render a JSON document to a file (compact, one line, trailing newline).
pub fn write_json(path: &std::path::Path, doc: &JsonValue) -> std::io::Result<()> {
    let mut text = doc.render();
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CostBreakdown;

    fn sim_ev(name: &str, device: usize, track: Track, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            device,
            track,
            sim: Some((start, end)),
            wall_ns: 0,
            cost: CostBreakdown {
                bytes_read: 8,
                bytes_written: 8,
                flops: 2,
                launches: 1,
                comm_bytes: 0,
            },
        }
    }

    fn wall_ev(name: &str, wall_ns: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            device: 0,
            track: Track::Wall,
            sim: None,
            wall_ns,
            cost: CostBreakdown::default(),
        }
    }

    fn x_events(doc: &JsonValue) -> Vec<&JsonValue> {
        doc.get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect()
    }

    #[test]
    fn sim_events_scale_to_microseconds() {
        let doc = chrome_trace(&[sim_ev("k", 1, Track::Compute, 0.5, 1.25)]);
        let events = x_events(&doc);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(0.5e6));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(0.75e6));
        assert_eq!(events[0].get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(events[0].get("tid").unwrap().as_u64(), Some(0));
        assert_eq!(events[0].get("cat").and_then(|c| c.as_str()), Some("sim"));
    }

    #[test]
    fn wall_events_lay_out_end_to_end() {
        let doc = chrome_trace(&[wall_ev("a", 2000), wall_ev("b", 3000)]);
        let events = x_events(&doc);
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(0.0));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(2.0));
        assert_eq!(events[1].get("ts").unwrap().as_f64(), Some(2.0));
        assert_eq!(events[1].get("pid").unwrap().as_u64(), Some(HOST_PID));
    }

    #[test]
    fn metadata_names_every_track_once() {
        let doc = chrome_trace(&[
            sim_ev("c0", 0, Track::Compute, 0.0, 1.0),
            sim_ev("m0", 0, Track::Comm, 0.0, 1.0),
            sim_ev("c1", 1, Track::Compute, 0.0, 1.0),
            wall_ev("w", 10),
        ]);
        let all = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let metas: Vec<_> = all
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .collect();
        let process_names = metas
            .iter()
            .filter(|m| m.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .count();
        let thread_names = metas
            .iter()
            .filter(|m| m.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .count();
        assert_eq!(process_names, 3, "dev0, dev1, host");
        assert_eq!(
            thread_names, 4,
            "dev0 compute+comm, dev1 compute, host wall"
        );
    }

    #[test]
    fn metrics_ride_along_under_an_ignored_key() {
        let metrics = MetricsRegistry::new();
        metrics.add("kernel_launches", 7);
        let doc = chrome_trace_with_metrics(&[], Some(&metrics));
        assert_eq!(
            doc.get("sketchMetrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("kernel_launches"))
                .and_then(|v| v.as_u64()),
            Some(7)
        );
        // Still a valid trace document.
        assert!(doc.get("traceEvents").is_some());
        assert_eq!(JsonValue::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn export_is_deterministic() {
        let events = vec![
            sim_ev("a", 0, Track::Compute, 0.0, 1.0),
            sim_ev("b", 0, Track::Comm, 1.0, 2.0),
            wall_ev("w", 123),
        ];
        assert_eq!(
            chrome_trace(&events).render(),
            chrome_trace(&events).render()
        );
    }
}
