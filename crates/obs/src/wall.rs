//! Wall-clock capture: the one sanctioned `Instant` wrapper.
//!
//! CI forbids new direct `std::time::Instant::now()` call sites outside this
//! crate and the sampling engine in `sketch-bench::walltime` (mirroring the
//! `*_pooled` grep gate), so every measured duration in the workspace flows
//! through an instrumented path: either a [`Stopwatch`] here or the
//! warmup/median sampler there.

use std::time::Instant;

/// A monotonic stopwatch.
///
/// Durations are reported as saturating non-negative nanoseconds; repeated
/// reads are monotone non-decreasing, so accumulating phase times from a
/// `Stopwatch` can never go backwards even if the same phase is entered twice.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            // timing-allowlist: the Stopwatch is the sanctioned Instant wrapper.
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`] (saturates at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// The `rustc --version` string of the toolchain on `PATH`, or `"unknown"`.
///
/// Recorded in benchmark headers so checked-in trajectory rows say which
/// compiler produced them.
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed_seconds() >= 0.0);
    }

    #[test]
    fn rustc_version_is_nonempty() {
        let v = rustc_version();
        assert!(!v.is_empty());
    }
}
