//! # sketch-obs
//!
//! The observability substrate of the workspace: one place to record *what a
//! run actually did* — which kernels launched on which simulated device, how
//! the pipelined schedule laid work out on each stream, where the driver
//! phases spent modelled and measured time — and to export it for humans and
//! tools.
//!
//! This is the **bottom crate** of the workspace (std + vendored shims only),
//! so every layer above it can emit into the same sink:
//!
//! * [`record`] — the [`Recorder`] trait, the zero-cost [`NoopRecorder`]
//!   default, and the thread-safe [`TraceCollector`] buffer.  Events
//!   ([`TraceEvent`]) carry a name, device ordinal, [`Track`] (stream kind),
//!   modelled sim-time interval, measured wall-clock nanoseconds, and a
//!   [`CostBreakdown`] of the region.
//! * [`metrics`] — [`MetricsRegistry`]: monotonic counters and fixed-bucket
//!   histograms with a deterministic flat-JSON summary.
//! * [`export`] — Chrome trace-event JSON ([`export::chrome_trace`]) loadable
//!   in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`, one track
//!   per device×stream plus a wall-clock track.
//! * [`json`] — the workspace's minimal RFC 8259 implementation
//!   ([`JsonValue`]), re-exported by `sketch-core` as `spec::json`.
//! * [`wall`] — the sanctioned wall-clock capture path ([`Stopwatch`]); CI
//!   grep-gates any other direct `Instant::now()` call site.
//!
//! The **determinism contract**: every event on a sim-time track
//! ([`Track::Compute`], [`Track::Comm`], [`Track::Kernel`], [`Track::Phase`])
//! has timestamps computed purely from the modelled cost roofline, so the sim
//! half of a trace is bit-identical across runs, thread counts, and host
//! machines; only `wall_ns` fields and [`Track::Wall`] events vary.  See
//! ARCHITECTURE.md § Observability for the dataflow diagram and how to open a
//! trace in Perfetto.

#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod metrics;
pub mod record;
pub mod wall;

pub use export::{chrome_trace, chrome_trace_with_metrics, write_json, HOST_PID};
pub use json::{JsonError, JsonValue};
pub use metrics::{Histogram, MetricsRegistry};
pub use record::{
    CostBreakdown, NoopRecorder, Recorder, RecorderHandle, TraceCollector, TraceEvent, Track,
};
pub use wall::{rustc_version, Stopwatch};
