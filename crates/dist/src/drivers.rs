//! The distributed sketching drivers.
//!
//! All three drivers follow the same shape: every rank applies its slice of
//! the *global* operator to its local block, then the `P` partial results are
//! allreduce-summed.  Linearity of the sketches makes the sum equal the
//! single-device result; for the CountSketch the fold order is chosen so the
//! equality is exact to the last bit, not just up to rounding.

use crate::block::BlockRowMatrix;
use crate::comm::CommCost;
use crate::error::DistError;
use sketch_core::{CountSketch, GaussianSketch, MultiSketch, Pipeline, SketchKind, SketchOperator};
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{blas3, Layout, Matrix};

/// Result of one distributed sketch application.
#[derive(Debug, Clone)]
pub struct DistributedRun {
    /// The reduced sketch `S A`, identical on every rank after the allreduce.
    pub result: Matrix,
    /// Modelled kernel cost of each rank's local sketch application, indexed
    /// by rank.
    pub per_process_cost: Vec<KernelCost>,
    /// Modelled communication volume of the allreduce.
    pub comm: CommCost,
}

fn check_dims(sketch: &dyn SketchOperator, dist: &BlockRowMatrix) -> Result<(), DistError> {
    if sketch.input_dim() == dist.nrows() {
        Ok(())
    } else {
        Err(DistError::dimension_mismatch(
            sketch.name(),
            sketch.input_dim(),
            dist.nrows(),
            format!(
                "block-row {}x{} over {} processes",
                dist.nrows(),
                dist.ncols(),
                dist.num_processes()
            ),
        ))
    }
}

/// Spec-driven entry point: build the sketch described by `plan` for the
/// distributed operand and dispatch to the matching typed driver.
///
/// Supported plans: a single CountSketch stage, a single Gaussian stage, or the
/// Count→Gauss multisketch pipeline — the three operators Section 7 compares.
pub fn distributed_sketch(
    device: &Device,
    dist: &BlockRowMatrix,
    plan: &Pipeline,
) -> Result<DistributedRun, DistError> {
    let ncols = dist.ncols();
    if plan.is_count_gauss() {
        let sketch = plan.build_multisketch(device, ncols)?;
        return distributed_multisketch(device, dist, &sketch);
    }
    match plan.stages.as_slice() {
        [spec] if spec.kind == SketchKind::CountSketch => {
            let sketch = spec.resolve(ncols).build_countsketch(device)?;
            distributed_countsketch(device, dist, &sketch)
        }
        [spec] if spec.kind == SketchKind::Gaussian => {
            let sketch = spec.resolve(ncols).build_gaussian(device)?;
            distributed_gaussian(device, dist, &sketch)
        }
        _ => Err(DistError::invalid_param(
            "distributed_sketch supports a single count-sketch/gaussian stage or the \
             count-gauss pipeline",
        )),
    }
}

/// Apply a global [`CountSketch`] to a block-row distributed matrix.
///
/// Rank `r` owns global rows `[r0, r1)` and therefore the columns `[r0, r1)`
/// of `S`: it streams its local rows into the shared `k x n` accumulator in
/// increasing global row order.  The single-device kernel folds each output
/// cell's contributions in that same ascending order — by construction of its
/// ordered gather, for **any** thread count of the workspace's threaded rayon
/// shim — so the reduced result is **bit-for-bit identical** to
/// `sketch.apply_matrix(device, a)`, the property the
/// `distributed_equivalence` integration test pins down.
pub fn distributed_countsketch(
    device: &Device,
    dist: &BlockRowMatrix,
    sketch: &CountSketch,
) -> Result<DistributedRun, DistError> {
    check_dims(sketch, dist)?;
    let n = dist.ncols();
    let k = sketch.output_dim();
    let p = dist.num_processes();
    let rows = sketch.rows();
    let signs = sketch.signs();

    let mut result = Matrix::zeros_with_layout(k, n, Layout::RowMajor);
    let mut per_process_cost = Vec::with_capacity(p);
    for (range, block) in dist.iter() {
        for (local, global) in range.clone().enumerate() {
            let target = rows[global];
            let sign = if signs[global] { 1.0 } else { -1.0 };
            for c in 0..n {
                result.add_to(target, c, sign * block.get(local, c));
            }
        }
        let cost = CountSketch::apply_cost(range.len(), k, n, block.layout() == Layout::ColMajor);
        device.record(cost);
        per_process_cost.push(cost);
    }

    Ok(DistributedRun {
        result,
        per_process_cost,
        comm: CommCost::allreduce(p, k, n),
    })
}

/// Apply a global [`GaussianSketch`] to a block-row distributed matrix.
///
/// Rank `r` multiplies the column slice `S[:, r0..r1]` with its local block
/// (a GEMM over the local rows only) and the `k x n` partials are
/// allreduce-summed.  The result matches the single-device GEMM up to
/// floating-point reassociation of the row sums.
pub fn distributed_gaussian(
    device: &Device,
    dist: &BlockRowMatrix,
    sketch: &GaussianSketch,
) -> Result<DistributedRun, DistError> {
    check_dims(sketch, dist)?;
    let n = dist.ncols();
    let k = sketch.output_dim();
    let p = dist.num_processes();
    let s = sketch.matrix();

    let mut partials = Vec::with_capacity(p);
    let mut per_process_cost = Vec::with_capacity(p);
    for (range, block) in dist.iter() {
        let start = range.start;
        // Column slice of S owned by this rank (a view in a real
        // implementation; the copy is not charged to the device).
        let s_local = Matrix::from_fn(k, range.len(), s.layout(), |i, j| s.get(i, start + j));
        let (partial, cost) = {
            let tracker = device.tracker();
            let before = tracker.snapshot();
            let partial = blas3::gemm(device, 1.0, &s_local, block, 0.0, None)?;
            (partial, tracker.snapshot() - before)
        };
        partials.push(partial);
        per_process_cost.push(cost);
    }

    Ok(DistributedRun {
        result: allreduce_sum(&partials),
        per_process_cost,
        comm: CommCost::allreduce(p, k, n),
    })
}

/// Apply a global [`MultiSketch`] to a block-row distributed matrix.
///
/// Rank `r` runs the *whole* pipeline locally — its slice of the CountSketch
/// followed by the (replicated) Gaussian stage — so only the final `2n x n`
/// matrix is reduced: the multisketch communicates as little as the Gaussian
/// sketch while its per-rank compute stays CountSketch-shaped (Section 7).
pub fn distributed_multisketch(
    device: &Device,
    dist: &BlockRowMatrix,
    sketch: &MultiSketch,
) -> Result<DistributedRun, DistError> {
    check_dims(sketch, dist)?;
    let n = dist.ncols();
    let k = sketch.output_dim();
    let p = dist.num_processes();
    let rows = sketch.count_stage().rows();
    let signs = sketch.count_stage().signs();
    let k1 = sketch.intermediate_dim();

    let mut partials = Vec::with_capacity(p);
    let mut per_process_cost = Vec::with_capacity(p);
    for (range, block) in dist.iter() {
        // Rank-local slice of the CountSketch stage: the same target rows and
        // signs, re-indexed to the local block.
        let local_count = CountSketch::from_parts(
            range.len(),
            k1,
            rows[range.clone()].to_vec(),
            signs[range.clone()].to_vec(),
        );
        let local_multi = MultiSketch::new(local_count, sketch.gauss_stage().clone())?;
        let (partial, cost) = {
            let tracker = device.tracker();
            let before = tracker.snapshot();
            let partial = local_multi.apply_matrix(device, block)?;
            (partial, tracker.snapshot() - before)
        };
        partials.push(partial);
        per_process_cost.push(cost);
    }

    Ok(DistributedRun {
        result: allreduce_sum(&partials),
        per_process_cost,
        comm: CommCost::allreduce(p, k, n),
    })
}

/// Element-wise sum of the per-rank partials in rank order (the numerical
/// effect of a deterministic, rank-ordered reduction).
fn allreduce_sum(partials: &[Matrix]) -> Matrix {
    let first = &partials[0];
    let mut out = Matrix::zeros_with_layout(first.nrows(), first.ncols(), first.layout());
    for partial in partials {
        for i in 0..out.nrows() {
            for j in 0..out.ncols() {
                out.add_to(i, j, partial.get(i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_core::{EmbeddingDim, SketchSpec};

    fn device() -> Device {
        Device::unlimited()
    }

    /// The paper's `k = 2n²` CountSketch for a `d x n` operand, via its spec.
    fn countsketch_of(dev: &Device, d: usize, n: usize, seed: u64) -> CountSketch {
        SketchSpec::countsketch(d, EmbeddingDim::Square(2), seed)
            .resolve(n)
            .build_countsketch(dev)
            .unwrap()
    }

    /// The paper's `k = 2n` Gaussian for a `d x n` operand, via its spec.
    fn gaussian_of(dev: &Device, d: usize, n: usize, seed: u64) -> GaussianSketch {
        SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), seed)
            .resolve(n)
            .build_gaussian(dev)
            .unwrap()
    }

    /// The paper's Count→Gauss multisketch for a `d x n` operand, via its pipeline.
    fn multisketch_of(dev: &Device, d: usize, n: usize, seed: u64) -> MultiSketch {
        Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), seed)
            .build_multisketch(dev, n)
            .unwrap()
    }

    #[test]
    fn distributed_countsketch_is_bit_for_bit_single_device() {
        let dev = device();
        let d = 1 << 10;
        let n = 8;
        let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 3, 0);
        let sketch = countsketch_of(&dev, d, n, 7);
        let single = sketch.apply_matrix(&dev, &a).unwrap();
        for p in [1usize, 2, 3, 8] {
            let dist = BlockRowMatrix::split(&a, p);
            let run = distributed_countsketch(&dev, &dist, &sketch).unwrap();
            assert_eq!(
                run.result.max_abs_diff(&single).unwrap(),
                0.0,
                "p = {p} drifted from the single-device result"
            );
            assert_eq!(run.per_process_cost.len(), p);
        }
    }

    #[test]
    fn distributed_gaussian_matches_single_device_numerically() {
        let dev = device();
        let d = 512;
        let n = 6;
        let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 4, 0);
        let sketch = gaussian_of(&dev, d, n, 5);
        let single = sketch.apply_matrix(&dev, &a).unwrap();
        let dist = BlockRowMatrix::split(&a, 4);
        let run = distributed_gaussian(&dev, &dist, &sketch).unwrap();
        assert!(run.result.max_abs_diff(&single).unwrap() < 1e-10);
    }

    #[test]
    fn distributed_multisketch_matches_single_device_numerically() {
        let dev = device();
        let d = 512;
        let n = 6;
        let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 8, 0);
        let sketch = multisketch_of(&dev, d, n, 9);
        let single = sketch.apply_matrix(&dev, &a).unwrap();
        let dist = BlockRowMatrix::split(&a, 4);
        let run = distributed_multisketch(&dev, &dist, &sketch).unwrap();
        assert!(run.result.max_abs_diff(&single).unwrap() < 1e-9);
        assert_eq!(run.result.nrows(), 2 * n);
    }

    #[test]
    fn spec_driven_dispatch_matches_the_typed_drivers() {
        let dev = device();
        let d = 512;
        let n = 6;
        let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 2, 0);
        let dist = BlockRowMatrix::split(&a, 3);

        let count_plan = Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(2), 7));
        let run = distributed_sketch(&dev, &dist, &count_plan).unwrap();
        let typed = distributed_countsketch(&dev, &dist, &countsketch_of(&dev, d, n, 7)).unwrap();
        assert_eq!(run.result.max_abs_diff(&typed.result).unwrap(), 0.0);

        let gauss_plan = Pipeline::single(SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), 5));
        let run = distributed_sketch(&dev, &dist, &gauss_plan).unwrap();
        assert_eq!(run.result.nrows(), 2 * n);

        let multi_plan =
            Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 9);
        let run = distributed_sketch(&dev, &dist, &multi_plan).unwrap();
        let typed = distributed_multisketch(&dev, &dist, &multisketch_of(&dev, d, n, 9)).unwrap();
        assert_eq!(run.result.max_abs_diff(&typed.result).unwrap(), 0.0);

        // Unsupported plans are rejected, not panicked on.
        let srht_plan = Pipeline::single(SketchSpec::srht(d, EmbeddingDim::Ratio(2), 1));
        assert!(distributed_sketch(&dev, &dist, &srht_plan).is_err());
    }

    #[test]
    fn multisketch_communicates_like_gaussian_but_computes_like_countsketch() {
        let dev = device();
        let d = 1 << 12;
        let n = 8;
        let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 1, 0);
        let dist = BlockRowMatrix::split(&a, 4);
        let count = countsketch_of(&dev, d, n, 1);
        let gauss = gaussian_of(&dev, d, n, 2);
        let multi = multisketch_of(&dev, d, n, 3);

        let run_c = distributed_countsketch(&dev, &dist, &count).unwrap();
        let run_g = distributed_gaussian(&dev, &dist, &gauss).unwrap();
        let run_m = distributed_multisketch(&dev, &dist, &multi).unwrap();

        // Section 7: the multisketch reduces the same 2n x n matrix as the
        // Gaussian — much less than the CountSketch's 2n² x n.
        assert_eq!(run_m.comm.total_words(), run_g.comm.total_words());
        assert!(run_c.comm.total_words() > run_m.comm.total_words());

        // …while each rank's arithmetic stays far below the Gaussian GEMM
        // (d_loc ≫ 2n² at these sizes).
        let max_flops =
            |run: &DistributedRun| run.per_process_cost.iter().map(|c| c.flops).max().unwrap();
        assert!(max_flops(&run_m) < max_flops(&run_g));
        assert!(max_flops(&run_c) < max_flops(&run_m));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let dev = device();
        let a = Matrix::random_gaussian(100, 4, Layout::RowMajor, 1, 0);
        let dist = BlockRowMatrix::split(&a, 2);
        let sketch = SketchSpec::countsketch(99, EmbeddingDim::Exact(32), 1)
            .build_countsketch(&dev)
            .unwrap();
        let err = distributed_countsketch(&dev, &dist, &sketch).unwrap_err();
        match err {
            DistError::DimensionMismatch {
                expected, found, ..
            } => assert_eq!((expected, found), (99, 100)),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn per_process_cost_shrinks_as_processes_grow() {
        let dev = device();
        let d = 1 << 10;
        let n = 4;
        let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 2, 0);
        let sketch = SketchSpec::countsketch(d, EmbeddingDim::Exact(64), 3)
            .build_countsketch(&dev)
            .unwrap();
        let flops_at = |p: usize| {
            let dist = BlockRowMatrix::split(&a, p);
            let run = distributed_countsketch(&dev, &dist, &sketch).unwrap();
            run.per_process_cost.iter().map(|c| c.flops).max().unwrap()
        };
        assert!(flops_at(8) < flops_at(2));
    }
}
