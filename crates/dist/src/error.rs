//! Error handling for the distributed sketching drivers.
//!
//! The drivers share the workspace-wide [`sketch_core::Error`]: a rank's local
//! sketch application, a dense kernel failure, and a sketch/operand dimension
//! mismatch all surface through the one type (with the operator name and operand
//! shape attached to dimension mismatches).

/// The distributed-driver error type: an alias for the workspace-wide error.
pub use sketch_core::Error as DistError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DistError::dimension_mismatch("CountSketch (Alg 2)", 10, 9, "block-row 9x4");
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('9'));
        assert!(msg.contains("block-row"));
    }
}
