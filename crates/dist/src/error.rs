//! Error type for the distributed sketching drivers.

use sketch_core::SketchError;
use sketch_la::LaError;
use std::fmt;

/// Errors produced by the distributed drivers.
#[derive(Debug)]
pub enum DistError {
    /// The sketch's input dimension does not match the distributed matrix.
    DimensionMismatch {
        /// Rows the sketch expects.
        expected: usize,
        /// Global rows the distributed matrix actually has.
        found: usize,
    },
    /// A rank's local sketch application failed.
    Sketch(SketchError),
    /// A dense kernel invoked by a rank failed.
    La(LaError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::DimensionMismatch { expected, found } => write!(
                f,
                "sketch expects {expected} global rows but the distributed matrix has {found}"
            ),
            DistError::Sketch(e) => write!(f, "local sketch application failed: {e}"),
            DistError::La(e) => write!(f, "local dense kernel failed: {e}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Sketch(e) => Some(e),
            DistError::La(e) => Some(e),
            DistError::DimensionMismatch { .. } => None,
        }
    }
}

impl From<SketchError> for DistError {
    fn from(e: SketchError) -> Self {
        DistError::Sketch(e)
    }
}

impl From<LaError> for DistError {
    fn from(e: LaError) -> Self {
        DistError::La(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DistError::DimensionMismatch {
            expected: 10,
            found: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('9'));
    }
}
