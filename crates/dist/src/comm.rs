//! Communication volume model for the allreduce of sketched partials.

/// Modelled cost of allreduce-summing one `k x n` partial result across `P`
/// processes with a bandwidth-optimal ring (reduce-scatter + allgather).
///
/// Each process sends and receives `2 (P-1)/P · k·n` words; summed over the
/// ring's links the total traffic is `2 (P-1) · k·n` words.  With `P = 1` the
/// allreduce degenerates to a no-op and every volume is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommCost {
    /// Number of participating processes.
    pub processes: usize,
    /// Elements of the reduced matrix (`k · n`).
    pub reduced_words: u64,
}

impl CommCost {
    /// Model an allreduce of a `k x n` matrix across `processes` ranks.
    ///
    /// # Panics
    /// Panics if `processes` is zero — a reduction needs at least one rank.
    pub fn allreduce(processes: usize, k: usize, n: usize) -> Self {
        assert!(processes > 0, "allreduce needs at least one process");
        Self {
            processes,
            reduced_words: (k * n) as u64,
        }
    }

    /// Total words crossing the network, summed over all links.
    pub fn total_words(&self) -> u64 {
        2 * (self.processes as u64).saturating_sub(1) * self.reduced_words
    }

    /// Words each process sends (= receives) in the ring allreduce.
    pub fn words_per_process(&self) -> u64 {
        if self.processes == 0 {
            return 0;
        }
        self.total_words() / self.processes as u64
    }

    /// Total bytes crossing the network (`f64` payload).
    pub fn total_bytes(&self) -> u64 {
        8 * self.total_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_needs_no_communication() {
        let c = CommCost::allreduce(1, 64, 32);
        assert_eq!(c.total_words(), 0);
        assert_eq!(c.words_per_process(), 0);
    }

    #[test]
    fn volume_grows_linearly_in_processes_minus_one() {
        let k = 64;
        let n = 32;
        let base = CommCost::allreduce(2, k, n).total_words();
        assert_eq!(base, 2 * (k * n) as u64);
        for p in [4usize, 8, 16] {
            let c = CommCost::allreduce(p, k, n);
            assert_eq!(c.total_words(), (p as u64 - 1) * base);
        }
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_is_rejected() {
        CommCost::allreduce(0, 16, 8);
    }

    #[test]
    fn bytes_are_eight_times_words() {
        let c = CommCost::allreduce(4, 16, 8);
        assert_eq!(c.total_bytes(), 8 * c.total_words());
    }
}
