//! Communication volume model for the collectives that stitch sketched shards
//! back together: ring allreduce (summing partials) and ring allgather
//! (replicating column panels).

/// Which ring collective a [`CommCost`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommPattern {
    /// Reduce-scatter + allgather: every rank ends with the *sum* of all partials.
    #[default]
    AllReduce,
    /// Pure allgather: every rank ends with a *copy* of every panel (no reduction).
    AllGather,
}

impl CommPattern {
    /// Short name used in reports and JSON rows ("ring-allreduce" /
    /// "ring-allgather").
    pub fn as_str(&self) -> &'static str {
        match self {
            CommPattern::AllReduce => "ring-allreduce",
            CommPattern::AllGather => "ring-allgather",
        }
    }
}

/// Modelled cost of a ring collective over one `k x n` matrix across `P` processes.
///
/// For the bandwidth-optimal ring **allreduce** (reduce-scatter + allgather) each
/// process sends and receives `2 (P-1)/P · k·n` words; summed over the ring's links
/// the total traffic is `2 (P-1) · k·n` words.  The ring **allgather** moves each
/// panel around the ring once for `(P-1) · k·n` words in total — half the allreduce,
/// which is why the column-panel execution of the dot-product sketches communicates
/// less than the block-row reduction.  With `P = 1` either collective degenerates to
/// a no-op and every volume is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommCost {
    /// Number of participating processes.
    pub processes: usize,
    /// Elements of the reduced/gathered matrix (`k · n`).
    pub reduced_words: u64,
    /// Which ring collective is being modelled.
    pub pattern: CommPattern,
}

impl CommCost {
    /// Model an allreduce of a `k x n` matrix across `processes` ranks.
    ///
    /// # Panics
    /// Panics if `processes` is zero — a reduction needs at least one rank.
    pub fn allreduce(processes: usize, k: usize, n: usize) -> Self {
        assert!(processes > 0, "allreduce needs at least one process");
        Self {
            processes,
            reduced_words: (k * n) as u64,
            pattern: CommPattern::AllReduce,
        }
    }

    /// Model an allgather of a `k x n` matrix (held as per-rank panels) across
    /// `processes` ranks.
    ///
    /// # Panics
    /// Panics if `processes` is zero — a gather needs at least one rank.
    pub fn allgather(processes: usize, k: usize, n: usize) -> Self {
        assert!(processes > 0, "allgather needs at least one process");
        Self {
            processes,
            reduced_words: (k * n) as u64,
            pattern: CommPattern::AllGather,
        }
    }

    /// Total words crossing the network, summed over all links.
    pub fn total_words(&self) -> u64 {
        let hops = match self.pattern {
            CommPattern::AllReduce => 2,
            CommPattern::AllGather => 1,
        };
        hops * (self.processes as u64).saturating_sub(1) * self.reduced_words
    }

    /// Words each process sends (= receives) in the modelled ring collective
    /// (allreduce or allgather, per [`CommCost::pattern`]).
    pub fn words_per_process(&self) -> u64 {
        if self.processes == 0 {
            return 0;
        }
        self.total_words() / self.processes as u64
    }

    /// Total bytes crossing the network (`f64` payload).
    pub fn total_bytes(&self) -> u64 {
        8 * self.total_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_needs_no_communication() {
        let c = CommCost::allreduce(1, 64, 32);
        assert_eq!(c.total_words(), 0);
        assert_eq!(c.words_per_process(), 0);
    }

    #[test]
    fn volume_grows_linearly_in_processes_minus_one() {
        let k = 64;
        let n = 32;
        let base = CommCost::allreduce(2, k, n).total_words();
        assert_eq!(base, 2 * (k * n) as u64);
        for p in [4usize, 8, 16] {
            let c = CommCost::allreduce(p, k, n);
            assert_eq!(c.total_words(), (p as u64 - 1) * base);
        }
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_is_rejected() {
        CommCost::allreduce(0, 16, 8);
    }

    #[test]
    fn bytes_are_eight_times_words() {
        let c = CommCost::allreduce(4, 16, 8);
        assert_eq!(c.total_bytes(), 8 * c.total_words());
    }

    #[test]
    fn allgather_moves_half_the_allreduce_volume() {
        let reduce = CommCost::allreduce(4, 16, 8);
        let gather = CommCost::allgather(4, 16, 8);
        assert_eq!(gather.total_words() * 2, reduce.total_words());
        assert_eq!(CommCost::allgather(1, 16, 8).total_words(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_process_allgather_is_rejected() {
        CommCost::allgather(0, 16, 8);
    }
}
