//! # sketch-dist
//!
//! Block-row distributed sketching simulation (Section 7 of the paper).
//!
//! The paper closes by arguing that the Count-Gauss multisketch "will almost
//! certainly outperform the Gaussian in a distributed setting": both reduce the
//! same tiny `2n x n` matrix across processes, but the multisketch's local work
//! is CountSketch-shaped rather than a fat GEMM.  This crate reproduces that
//! argument quantitatively:
//!
//! * [`BlockRowMatrix`] — a tall matrix partitioned into `P` contiguous row
//!   blocks, one per simulated rank;
//! * [`distributed_sketch`] — the spec-driven entry point: build the sketch
//!   described by a [`sketch_core::Pipeline`] and dispatch to the matching
//!   typed driver;
//! * [`distributed_countsketch`] / [`distributed_gaussian`] /
//!   [`distributed_multisketch`] — apply one *global* sketch to the distributed
//!   matrix: every rank sketches its local block with its slice of the
//!   operator, then the partial results are allreduce-summed;
//! * [`DistributedRun`] — the reduced result plus per-process
//!   [`KernelCost`](sketch_gpu_sim::KernelCost)s and the modelled [`CommCost`]
//!   of the allreduce.
//!
//! The distributed CountSketch folds contributions in global row order, and the
//! single-device kernel folds each output cell in that same ascending order by
//! construction (an ordered gather, independent of thread count under the
//! workspace's threaded rayon shim) — so the two results are **bit-for-bit
//! identical**.
//!
//! On top of the volume model sits the **multi-device pipelined executor**
//! ([`executor`]): a [`Pipeline`](sketch_core::Pipeline) of sketch stages runs
//! across a [`DevicePool`](sketch_gpu_sim::DevicePool), each stage sharded along
//! its bitwise-lossless [`ShardAxis`](sketch_core::ShardAxis), with each shard's
//! ring collective overlapped against the next shard's compute on simulated
//! streams.  The executed result stays bit-for-bit identical to single-device
//! execution for every sketch kind, independent of shard and device count.
//!
//! ## Example: the Section 7 volume model
//!
//! ```
//! use sketch_core::{EmbeddingDim, Pipeline, SketchOperator, SketchSpec};
//! use sketch_dist::{distributed_sketch, BlockRowMatrix};
//! use sketch_gpu_sim::Device;
//! use sketch_la::{Layout, Matrix};
//!
//! let device = Device::unlimited();
//! let a = Matrix::random_gaussian(1 << 10, 8, Layout::RowMajor, 1, 0);
//! let spec = SketchSpec::countsketch(1 << 10, EmbeddingDim::Exact(128), 2);
//! let dist = BlockRowMatrix::split(&a, 4);
//! let run = distributed_sketch(&device, &dist, &Pipeline::single(spec.clone())).unwrap();
//! let single = spec.build(&device).unwrap().apply_matrix(&device, &a).unwrap();
//! assert_eq!(run.result.max_abs_diff(&single).unwrap(), 0.0);
//! assert_eq!(run.per_process_cost.len(), 4);
//! assert!(run.comm.total_words() > 0);
//! ```
//!
//! ## Example: pipelined execution on four simulated H100s
//!
//! ```
//! use sketch_core::{EmbeddingDim, Pipeline, SketchOperator, SketchSpec};
//! use sketch_dist::{pipelined_sketch, ExecutorOptions};
//! use sketch_gpu_sim::{Device, DevicePool};
//! use sketch_la::{Layout, Matrix};
//!
//! let a = Matrix::random_gaussian(1 << 12, 8, Layout::RowMajor, 1, 0);
//! let plan = Pipeline::single(SketchSpec::countsketch(1 << 12, EmbeddingDim::Square(2), 7));
//!
//! let pool = DevicePool::h100(4);
//! let run = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default()).unwrap();
//!
//! // Bit-for-bit identical to the single-device kernel…
//! let device = Device::h100();
//! let single = plan.build_for(&device, 8).unwrap().apply_matrix(&device, &a).unwrap();
//! assert_eq!(run.result.max_abs_diff(&single).unwrap(), 0.0);
//! // …and faster than running the same shards with no overlap.
//! assert!(run.pipelined_seconds < run.serial_seconds);
//! assert!(run.overlap_efficiency() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod comm;
pub mod drivers;
pub mod error;
pub mod executor;

pub use block::BlockRowMatrix;
pub use comm::{CommCost, CommPattern};
pub use drivers::{
    distributed_countsketch, distributed_gaussian, distributed_multisketch, distributed_sketch,
    DistributedRun,
};
pub use error::DistError;
pub use executor::{
    pipelined_sketch, DeviceFailure, ExecutorOptions, FaultReport, PipelinedRun, Schedule,
    ShardAssignment,
};
