//! # sketch-dist
//!
//! Block-row distributed sketching simulation (Section 7 of the paper).
//!
//! The paper closes by arguing that the Count-Gauss multisketch "will almost
//! certainly outperform the Gaussian in a distributed setting": both reduce the
//! same tiny `2n x n` matrix across processes, but the multisketch's local work
//! is CountSketch-shaped rather than a fat GEMM.  This crate reproduces that
//! argument quantitatively:
//!
//! * [`BlockRowMatrix`] — a tall matrix partitioned into `P` contiguous row
//!   blocks, one per simulated rank;
//! * [`distributed_sketch`] — the spec-driven entry point: build the sketch
//!   described by a [`sketch_core::Pipeline`] and dispatch to the matching
//!   typed driver;
//! * [`distributed_countsketch`] / [`distributed_gaussian`] /
//!   [`distributed_multisketch`] — apply one *global* sketch to the distributed
//!   matrix: every rank sketches its local block with its slice of the
//!   operator, then the partial results are allreduce-summed;
//! * [`DistributedRun`] — the reduced result plus per-process
//!   [`KernelCost`](sketch_gpu_sim::KernelCost)s and the modelled [`CommCost`]
//!   of the allreduce.
//!
//! The distributed CountSketch folds contributions in global row order, so as
//! long as the single-device kernel is deterministic and uses that same order
//! (true under the workspace's sequential rayon shim) the two results are
//! **bit-for-bit identical**; with a genuinely parallel rayon the guarantee
//! weakens to equality up to floating-point reassociation.
//!
//! ```
//! use sketch_core::{EmbeddingDim, Pipeline, SketchOperator, SketchSpec};
//! use sketch_dist::{distributed_sketch, BlockRowMatrix};
//! use sketch_gpu_sim::Device;
//! use sketch_la::{Layout, Matrix};
//!
//! let device = Device::unlimited();
//! let a = Matrix::random_gaussian(1 << 10, 8, Layout::RowMajor, 1, 0);
//! let spec = SketchSpec::countsketch(1 << 10, EmbeddingDim::Exact(128), 2);
//! let dist = BlockRowMatrix::split(&a, 4);
//! let run = distributed_sketch(&device, &dist, &Pipeline::single(spec.clone())).unwrap();
//! let single = spec.build(&device).unwrap().apply_matrix(&device, &a).unwrap();
//! assert_eq!(run.result.max_abs_diff(&single).unwrap(), 0.0);
//! assert_eq!(run.per_process_cost.len(), 4);
//! assert!(run.comm.total_words() > 0);
//! ```

pub mod block;
pub mod comm;
pub mod drivers;
pub mod error;

pub use block::BlockRowMatrix;
pub use comm::CommCost;
pub use drivers::{
    distributed_countsketch, distributed_gaussian, distributed_multisketch, distributed_sketch,
    DistributedRun,
};
pub use error::DistError;
