//! Block-row partitioning of a tall matrix across simulated ranks.

use sketch_la::Matrix;
use std::ops::Range;

/// A `d x n` matrix partitioned into `P` contiguous row blocks, block `r`
/// living on simulated rank `r`.
///
/// The split is as balanced as possible: the first `d mod P` ranks hold
/// `ceil(d / P)` rows, the rest `floor(d / P)`.  Every block keeps the source
/// matrix's storage layout, so a row-major operand stays row-major on every
/// rank (the layout the CountSketch kernel wants, Section 6.1).
#[derive(Debug, Clone)]
pub struct BlockRowMatrix {
    blocks: Vec<Matrix>,
    offsets: Vec<usize>,
    ncols: usize,
}

impl BlockRowMatrix {
    /// Partition `a` into `processes` block rows.
    ///
    /// # Panics
    /// Panics if `processes` is zero or exceeds the number of rows of `a`
    /// (ranks with no rows would make the communication model meaningless).
    pub fn split(a: &Matrix, processes: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        assert!(
            processes <= a.nrows(),
            "cannot split {} rows across {} processes",
            a.nrows(),
            processes
        );
        let d = a.nrows();
        let base = d / processes;
        let extra = d % processes;
        let mut offsets = Vec::with_capacity(processes + 1);
        let mut blocks = Vec::with_capacity(processes);
        let mut start = 0usize;
        for r in 0..processes {
            let len = base + usize::from(r < extra);
            offsets.push(start);
            blocks.push(Matrix::from_fn(len, a.ncols(), a.layout(), |i, j| {
                a.get(start + i, j)
            }));
            start += len;
        }
        offsets.push(d);
        Self {
            blocks,
            offsets,
            ncols: a.ncols(),
        }
    }

    /// Partition `a` into the given contiguous row ranges (one block per range), in
    /// order.  The ranges must tile `0..a.nrows()` exactly; the executor uses this
    /// to split along a [`Schedule`](crate::executor::Schedule)'s shard boundaries.
    ///
    /// # Panics
    /// Panics if the ranges do not tile the row space contiguously from zero.
    pub fn split_ranges(a: &Matrix, ranges: impl IntoIterator<Item = Range<usize>>) -> Self {
        let mut offsets = vec![0usize];
        let mut blocks = Vec::new();
        let mut cursor = 0usize;
        for range in ranges {
            assert_eq!(
                range.start, cursor,
                "ranges must tile the rows contiguously"
            );
            assert!(range.end >= range.start, "ranges must be forward");
            blocks.push(Matrix::from_fn(
                range.len(),
                a.ncols(),
                a.layout(),
                |i, j| a.get(range.start + i, j),
            ));
            cursor = range.end;
            offsets.push(cursor);
        }
        assert_eq!(cursor, a.nrows(), "ranges must cover every row");
        assert!(!blocks.is_empty(), "need at least one range");
        Self {
            blocks,
            offsets,
            ncols: a.ncols(),
        }
    }

    /// Number of simulated ranks.
    pub fn num_processes(&self) -> usize {
        self.blocks.len()
    }

    /// Global number of rows.
    pub fn nrows(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Number of columns (identical on every rank).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Rank `r`'s local block.
    pub fn block(&self, r: usize) -> &Matrix {
        &self.blocks[r]
    }

    /// The global row range held by rank `r`.
    pub fn block_range(&self, r: usize) -> Range<usize> {
        self.offsets[r]..self.offsets[r + 1]
    }

    /// Iterate over `(global_row_range, local_block)` pairs in rank order.
    pub fn iter(&self) -> impl Iterator<Item = (Range<usize>, &Matrix)> {
        (0..self.num_processes()).map(move |r| (self.block_range(r), self.block(r)))
    }

    /// Reassemble the global matrix (a gather; used by tests).
    pub fn gather(&self) -> Matrix {
        let layout = self.blocks[0].layout();
        Matrix::from_fn(self.nrows(), self.ncols, layout, |i, j| {
            let r = match self.offsets.binary_search(&i) {
                Ok(exact) => exact,
                Err(insert) => insert - 1,
            };
            self.blocks[r].get(i - self.offsets[r], j)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_la::Layout;

    #[test]
    fn split_is_balanced_and_ordered() {
        let a = Matrix::from_fn(10, 2, Layout::RowMajor, |i, j| (i * 2 + j) as f64);
        let dist = BlockRowMatrix::split(&a, 3);
        assert_eq!(dist.num_processes(), 3);
        // 10 = 4 + 3 + 3.
        assert_eq!(dist.block(0).nrows(), 4);
        assert_eq!(dist.block(1).nrows(), 3);
        assert_eq!(dist.block(2).nrows(), 3);
        assert_eq!(dist.block_range(0), 0..4);
        assert_eq!(dist.block_range(1), 4..7);
        assert_eq!(dist.block_range(2), 7..10);
        assert_eq!(dist.nrows(), 10);
        assert_eq!(dist.ncols(), 2);
    }

    #[test]
    fn blocks_preserve_layout_and_values() {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let a = Matrix::from_fn(7, 3, layout, |i, j| (i * 10 + j) as f64);
            let dist = BlockRowMatrix::split(&a, 2);
            for (range, block) in dist.iter() {
                assert_eq!(block.layout(), layout);
                for (local, global) in range.clone().enumerate() {
                    for j in 0..3 {
                        assert_eq!(block.get(local, j), a.get(global, j));
                    }
                }
            }
        }
    }

    #[test]
    fn gather_round_trips() {
        let a = Matrix::from_fn(13, 4, Layout::RowMajor, |i, j| (i as f64) - 0.5 * j as f64);
        for p in [1, 2, 5, 13] {
            let dist = BlockRowMatrix::split(&a, p);
            assert_eq!(dist.gather().max_abs_diff(&a).unwrap(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_is_rejected() {
        let a = Matrix::zeros(4, 1);
        BlockRowMatrix::split(&a, 0);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn more_processes_than_rows_is_rejected() {
        let a = Matrix::zeros(4, 1);
        BlockRowMatrix::split(&a, 5);
    }
}
