//! The multi-device pipelined executor.
//!
//! [`pipelined_sketch`] runs a declarative [`Pipeline`] of sketch stages across a
//! [`DevicePool`]: each stage's operand is sharded along the stage's
//! [`ShardAxis`] (the bitwise-lossless axis declared by `sketch-core`), the shard
//! kernels are dispatched round-robin onto the pool's devices, and the modelled
//! timeline overlaps each shard's collective with the next shard's compute using
//! the simulated streams/events of `sketch-gpu-sim`.
//!
//! Two properties hold by construction:
//!
//! 1. **Bitwise determinism.**  The numerical result is *identical to the last
//!    bit* to the single-device `apply_matrix`, for every sketch kind and every
//!    shard/device count.  Row-sharded kinds (CountSketch families) fold their
//!    block rows into one shared accumulator in global row order — the exact
//!    floating-point chain of the single-device Algorithm-2 scatter — which is
//!    also why their ring reduction must run in shard order.  Column-sharded
//!    kinds (Gaussian, SRHT) compute independent column panels whose per-element
//!    dot products / per-column transforms never see the other panels.
//! 2. **Comm/compute overlap.**  Each device owns a compute stream and a comm
//!    stream; shard `i`'s collective waits on shard `i`'s kernel (and, for the
//!    ordered ring fold, on shard `i-1`'s collective) while shard `i+1`'s kernel
//!    runs — the classic pipelined-allreduce schedule.  The returned
//!    [`PipelinedRun`] reports serial vs. pipelined makespan, the compute-only
//!    critical path, overlap efficiency and per-device utilization.
//!
//! The executor also absorbs injected device deaths
//! ([`FaultSpec::Dies`](sketch_gpu_sim::FaultSpec::Dies)): a mirror of the
//! stream-simulator clocks runs alongside the numerics, so the exact simulated
//! instant a death fires is known mid-stage; the stage is then rescheduled over
//! the survivors and re-run from its Philox-seeded operators — bit-for-bit
//! identical output, because every stage is schedule-independent by
//! construction.  The aborted attempt's truncated operations stay on the
//! timeline, and the price paid is itemised in [`FaultReport`].

use crate::comm::CommCost;
use crate::error::DistError;
use sketch_core::{CountSketch, Error, Operand, Pipeline, ShardAxis, SketchKind, SketchOperator};
use sketch_gpu_sim::{DevicePool, KernelCost, StreamKind, StreamSet, Timeline};
use sketch_la::{Layout, Matrix};
use std::ops::Range;

/// Tuning knobs for the executor.
///
/// `#[non_exhaustive]`: construct through [`ExecutorOptions::new`] /
/// [`Default::default`] and the `with_*` builders, so future knobs (stream
/// counts, shard-size floors, …) are non-breaking.
#[must_use = "ExecutorOptions configures an executor run; pass it to pipelined_sketch"]
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorOptions {
    /// How many shards to cut per device (clamped so no shard is empty).  More
    /// shards per device means finer pipelining — more collective/compute overlap —
    /// at the price of more kernel launches.
    pub shards_per_device: usize,
}

impl ExecutorOptions {
    /// Two shards per device: the minimum that lets a device's comm stream overlap
    /// its own next compute.
    pub fn new() -> Self {
        Self {
            shards_per_device: 2,
        }
    }

    /// Set the shards-per-device knob.
    pub fn with_shards_per_device(mut self, shards_per_device: usize) -> Self {
        self.shards_per_device = shards_per_device.max(1);
        self
    }
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// One shard of a stage: which slice of the operand, on which device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Shard index within the stage (also the ordered-fold position).
    pub index: usize,
    /// Pool position of the device that executes this shard.
    pub device: usize,
    /// The row range ([`ShardAxis::Rows`]) or column range ([`ShardAxis::Cols`])
    /// of the stage operand this shard covers.
    pub range: Range<usize>,
}

/// The shard layout of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Axis the stage operand is sharded along.
    pub axis: ShardAxis,
    /// Shards in fold order, devices assigned round-robin.
    pub assignments: Vec<ShardAssignment>,
}

impl Schedule {
    /// Cut `extent` (rows or columns) into `num_shards` balanced contiguous ranges
    /// — the first `extent % num_shards` shards get one extra element, matching
    /// [`BlockRowMatrix::split`](crate::BlockRowMatrix::split) — and assign them to `num_devices` devices
    /// round-robin.
    ///
    /// # Panics
    /// Panics if any argument is zero or if `num_shards > extent` (empty shards
    /// would make the pipeline model meaningless).
    pub fn block_cyclic(
        axis: ShardAxis,
        extent: usize,
        num_shards: usize,
        num_devices: usize,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        assert!(num_devices > 0, "need at least one device");
        assert!(
            num_shards <= extent,
            "cannot cut {extent} elements into {num_shards} shards"
        );
        let base = extent / num_shards;
        let extra = extent % num_shards;
        let mut assignments = Vec::with_capacity(num_shards);
        let mut start = 0usize;
        for index in 0..num_shards {
            let len = base + usize::from(index < extra);
            assignments.push(ShardAssignment {
                index,
                device: index % num_devices,
                range: start..start + len,
            });
            start += len;
        }
        Self { axis, assignments }
    }

    /// Number of shards in the stage.
    pub fn num_shards(&self) -> usize {
        self.assignments.len()
    }

    /// How many shards land on `device`.
    pub fn shards_on(&self, device: usize) -> usize {
        self.assignments
            .iter()
            .filter(|a| a.device == device)
            .count()
    }
}

/// Modelled work of one shard, fed to the stream simulator.
#[derive(Debug, Clone)]
struct ShardOp {
    device: usize,
    label: String,
    compute_s: f64,
    comm_s: f64,
    /// Whether the shard's collective must follow the previous shard's collective
    /// (the ordered ring fold of [`ShardAxis::Rows`] stages).
    chained: bool,
    /// Device cost of the shard kernel (carried into the trace event).
    cost: KernelCost,
    /// Bytes the shard's collective moves over one interconnect hop.
    comm_bytes: u64,
}

/// One observed device death and the recovery that absorbed it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceFailure {
    /// Physical ordinal of the device that died (parent-pool position, the
    /// one subpool views preserve).
    pub device: usize,
    /// Pipeline stage the failure surfaced in.
    pub stage: usize,
    /// The injected death instant (the fault's `after_sim_seconds`).
    pub at_sim_seconds: f64,
    /// Simulated instant the executor detected the death (the truncated end
    /// of the first operation that would have outlived the device).
    pub detected_at_seconds: f64,
    /// Simulated instant the stage's successful survivor attempt finished —
    /// the end of the recovery span on the fault trace track.
    pub recovered_at_seconds: f64,
}

/// What the executor's fault handling observed and paid during one run.
///
/// A clean run reports an empty report with every overhead field exactly
/// `0.0` — the fault path multiplies healthy clocks by `1.0` and adds no
/// timeline episodes, so no-fault runs are bit-identical to the pre-fault
/// executor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Every device death observed, in detection order.
    pub failures: Vec<DeviceFailure>,
    /// Shards executed in retry attempts (work done again because an earlier
    /// attempt of the stage was aborted).
    pub shards_recomputed: usize,
    /// Modelled seconds of aborted-attempt work discarded on failure.
    pub lost_seconds: f64,
    /// How much the recovered makespan exceeds the makespan of the successful
    /// episodes alone — the price of the aborted attempts, in seconds.
    pub recovery_overhead_seconds: f64,
    /// Devices still alive when the run finished.
    pub survivors: usize,
}

impl FaultReport {
    /// Whether the run observed no fault at all.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The result of one pipelined multi-device sketch execution.
#[must_use = "a PipelinedRun carries the sketched matrix and the modelled timeline"]
#[derive(Debug, Clone)]
pub struct PipelinedRun {
    /// The sketched matrix — bit-for-bit identical to single-device
    /// `apply_matrix`, independent of shard and device count, *and* of any
    /// device deaths the run recovered from.
    pub result: Matrix,
    /// The full overlapped schedule (per-operation start/end times),
    /// including the truncated operations of any aborted attempts.
    pub timeline: Timeline,
    /// Makespan with every operation serialized on one stream (no overlap), s.
    /// Includes the lost work of aborted attempts.
    pub serial_seconds: f64,
    /// Makespan of the overlapped schedule (the pipelined makespan), s.
    pub pipelined_seconds: f64,
    /// Makespan with all collectives free (compute critical path), s.
    pub compute_only_seconds: f64,
    /// Total time the collectives occupy on the comm streams, s.
    pub comm_seconds: f64,
    /// Per-stage collective volume model.
    pub comm: Vec<CommCost>,
    /// Per-stage shard layout of the *successful* attempts, with devices
    /// reported as pool positions.
    pub schedules: Vec<Schedule>,
    /// Device deaths observed and the recovery cost paid absorbing them.
    pub fault: FaultReport,
}

impl PipelinedRun {
    /// `serial / pipelined` — how much the overlapped multi-device schedule beats
    /// fully serialized execution of the same shards.
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.pipelined_seconds <= 0.0 {
            return 1.0;
        }
        self.serial_seconds / self.pipelined_seconds
    }

    /// Fraction of collective time hidden behind compute: `1` means the makespan
    /// equals the compute critical path (communication fully hidden), `0` means
    /// every collective second extended the makespan.  Reported as `1` when the
    /// run had no communication at all.
    pub fn overlap_efficiency(&self) -> f64 {
        if self.comm_seconds <= 0.0 {
            return 1.0;
        }
        let exposed = (self.pipelined_seconds - self.compute_only_seconds).max(0.0);
        (1.0 - exposed / self.comm_seconds).clamp(0.0, 1.0)
    }

    /// Total bytes crossing the interconnect, summed over stages.
    pub fn comm_total_bytes(&self) -> u64 {
        self.comm.iter().map(CommCost::total_bytes).sum()
    }

    /// Per-device utilization of the pipelined schedule.
    pub fn utilizations(&self) -> Vec<f64> {
        self.timeline.utilizations()
    }

    /// Fold this run into a [`sketch_obs::MetricsRegistry`]: kernel launches,
    /// bytes moved, flops, collective volume (counters), plus overlap
    /// efficiency and per-device utilization (histograms).
    pub fn record_metrics(&self, metrics: &sketch_obs::MetricsRegistry, pool: &DevicePool) {
        let total = pool.total_cost();
        metrics.add("executor.kernel_launches", total.launches);
        metrics.add("executor.bytes_read", total.bytes_read);
        metrics.add("executor.bytes_written", total.bytes_written);
        metrics.add("executor.flops", total.flops);
        metrics.add("executor.comm_bytes", self.comm_total_bytes());
        metrics.add(
            "executor.timeline_ops",
            self.timeline.entries().len() as u64,
        );
        let ratio_bounds = [0.25, 0.5, 0.75, 0.9, 1.0];
        metrics.observe(
            "executor.overlap_efficiency",
            self.overlap_efficiency(),
            &ratio_bounds,
        );
        for u in self.utilizations() {
            metrics.observe("executor.device_utilization", u, &ratio_bounds);
        }
        metrics.add("fault.device_failures", self.fault.failures.len() as u64);
        metrics.add(
            "fault.shards_recomputed",
            self.fault.shards_recomputed as u64,
        );
        metrics.add(
            "fault.lost_us",
            (self.fault.lost_seconds * 1e6).round() as u64,
        );
        metrics.add(
            "fault.recovery_overhead_us",
            (self.fault.recovery_overhead_seconds * 1e6).round() as u64,
        );
    }
}

/// Execute `plan` on `a` across the pool, sharding each stage along its
/// [`ShardAxis`] and overlapping collectives with compute.
///
/// `a` is any [`Operand`]-viewable input — `&Matrix`, `&CsrMatrix`, a
/// [`CsrRowsView`](sketch_sparse::CsrRowsView) or an explicit [`Operand`] —
/// so the same engine serves dense and sparse workloads.  Row-sharded stages
/// slice CSR operands with the zero-copy [`Operand::slice_rows`] view;
/// column-sharded stages materialise CSC-style panels via
/// [`Operand::slice_cols`], charging the copy to the shard's device.
///
/// The numerical result is **bit-for-bit identical** to
/// `plan.build_for(device, a.ncols())?.apply_operand(device, a)` on a single
/// device, for every supported kind (CountSketch, Gaussian, SRHT, hash
/// CountSketch, and any pipeline of them including Count-Gauss), independent of
/// `opts.shards_per_device` and the pool size — the determinism suite pins this
/// down across 1/2/4/7 devices, uneven splits, and dense + CSR operands.
///
/// On a pool of one ([`DevicePool::single`]) each stage runs as a single
/// unsharded kernel with zero communication, so the timeline reduces to bare
/// [`Device`](sketch_gpu_sim::Device) launches — "serial" is just the
/// degenerate pool.
pub fn pipelined_sketch<'a>(
    pool: &DevicePool,
    a: impl Into<Operand<'a>>,
    plan: &Pipeline,
    opts: &ExecutorOptions,
) -> Result<PipelinedRun, DistError> {
    let a: Operand<'a> = a.into();
    let resolved = plan.resolve(a.ncols())?;
    let p = pool.num_devices();
    if let Some(first) = resolved.first() {
        if first.input_dim != a.nrows() {
            return Err(Error::dimension_mismatch(
                "pipelined_sketch",
                first.input_dim,
                a.nrows(),
                a.describe(),
            ));
        }
    }

    // Devices already observed dead (a sticky flag from a previous run on the
    // same shared pool) never re-join: death is permanent until the fault
    // plan is re-applied.
    let alive: Vec<usize> = (0..p).filter(|&d| !pool.device(d).is_failed()).collect();
    if alive.is_empty() {
        let d0 = pool.device(0);
        return Err(Error::device_failed(
            d0.ordinal(),
            d0.death_time().unwrap_or(0.0),
        ));
    }

    let mut state = ExecState::new(p, alive);
    let mut schedules = Vec::with_capacity(resolved.len());
    let mut comms = Vec::with_capacity(resolved.len());
    let mut current: Option<Matrix> = None; // None = first stage reads `a`

    for (stage_idx, spec) in resolved.iter().enumerate() {
        let input = match &current {
            Some(m) => Operand::Dense(m),
            None => a,
        };
        let axis = spec.shard_axis();
        let extent = match axis {
            ShardAxis::Rows => input.nrows(),
            ShardAxis::Cols => input.ncols(),
        };
        let n = input.ncols();
        let k = spec.output_dim.resolve(n);
        let kind = spec.kind.as_str();
        let build_device = pool.device(state.alive[0]);

        // The stage operator is built once and its generation replicated to
        // every live device up front — which is exactly why recovery needs no
        // regeneration: survivors already hold their replicas, so a retry
        // re-runs shard kernels only.
        let (out, reported) = match axis {
            ShardAxis::Rows => {
                let sketch = match spec.kind {
                    SketchKind::CountSketch => spec.build_countsketch(build_device)?,
                    SketchKind::HashCountSketch => {
                        spec.build_hash_countsketch(build_device)?.to_explicit()
                    }
                    other => {
                        return Err(DistError::invalid_param(format!(
                            "{} is not a row-sharded sketch kind",
                            other.as_str()
                        )))
                    }
                };
                replicate_generation(pool, &state.alive, sketch.generation_cost());
                state.run_stage(opts, axis, extent, stage_idx, |schedule, alive, clock| {
                    Ok(row_attempt(
                        pool, input, &sketch, kind, k, n, schedule, alive, clock, stage_idx,
                    ))
                })?
            }
            ShardAxis::Cols => {
                let op = spec.build(build_device)?;
                replicate_generation(pool, &state.alive, op.generation_cost());
                state.run_stage(opts, axis, extent, stage_idx, |schedule, alive, clock| {
                    col_attempt(
                        pool,
                        input,
                        op.as_ref(),
                        kind,
                        k,
                        schedule,
                        alive,
                        clock,
                        stage_idx,
                    )
                })?
            }
        };
        schedules.push(reported);
        comms.push(match axis {
            ShardAxis::Rows => CommCost::allreduce(state.alive.len(), k, n),
            ShardAxis::Cols => CommCost::allgather(state.alive.len(), k, n),
        });
        current = Some(out);
    }

    let result = current.ok_or_else(|| DistError::invalid_param("pipeline has no stages"))?;

    // Only the real (with-comm) replay feeds the pool's attached recorder; the
    // compute-only replay is an internal what-if and must not pollute traces.
    let pipelined = simulate(p, &state.episodes, true, pool.recorder());
    let compute_only = simulate(p, &state.episodes, false, None);

    // The recovery price: how much the full makespan (aborted attempts
    // included) exceeds the successful episodes replayed alone.  Exactly 0.0
    // on a clean run — the replays are then identical.
    let recovery_overhead_seconds = if state.failures.is_empty() {
        0.0
    } else {
        let clean_episodes: Vec<Vec<ShardOp>> = state
            .episodes
            .iter()
            .zip(&state.clean)
            .filter(|(_, &clean)| clean)
            .map(|(ops, _)| ops.clone())
            .collect();
        (pipelined.makespan() - simulate(p, &clean_episodes, true, None).makespan()).max(0.0)
    };

    // Fault markers land on a dedicated trace track: a zero-width death point
    // plus the recovery span on the dead device's row.
    if !state.failures.is_empty() {
        if let Some(recorder) = pool.recorder() {
            for f in &state.failures {
                recorder.record(sketch_obs::TraceEvent {
                    name: format!("device {} died (stage s{})", f.device, f.stage),
                    device: f.device,
                    track: sketch_obs::Track::Fault,
                    sim: Some((f.detected_at_seconds, f.detected_at_seconds)),
                    wall_ns: 0,
                    cost: sketch_obs::CostBreakdown::default(),
                });
                recorder.record(sketch_obs::TraceEvent {
                    name: format!("recovery: stage s{} rescheduled on survivors", f.stage),
                    device: f.device,
                    track: sketch_obs::Track::Fault,
                    sim: Some((f.detected_at_seconds, f.recovered_at_seconds)),
                    wall_ns: 0,
                    cost: sketch_obs::CostBreakdown::default(),
                });
            }
        }
    }

    let fault = FaultReport {
        survivors: state.alive.len(),
        failures: state.failures,
        shards_recomputed: state.shards_recomputed,
        lost_seconds: state.lost_seconds,
        recovery_overhead_seconds,
    };

    Ok(PipelinedRun {
        result,
        // The sum of every operation's duration is schedule-independent, so the
        // fully-serialized makespan needs no replay of its own.
        serial_seconds: pipelined.serial_seconds(),
        pipelined_seconds: pipelined.makespan(),
        compute_only_seconds: compute_only.makespan(),
        comm_seconds: pipelined.seconds_of(StreamKind::Comm),
        timeline: pipelined,
        comm: comms,
        schedules,
        fault,
    })
}

/// Mirror of the stream-simulator clocks, advanced *during* numeric execution
/// so device deaths are detected at the exact instant the timeline replay
/// would reach.
///
/// Correctness of the mirror: `simulate` computes every start time as a fold
/// of `f64::max` over the stream cursor and the wait events, episode
/// boundaries wait on every last event of the previous episode, and `max`
/// over non-negative values is order-independent bit-for-bit — so tracking
/// per-device cursors plus the episode barrier reproduces the replay's
/// timestamps exactly.
struct SimClock {
    /// Max over every last event of all previous episodes (the stage/retry
    /// boundary every next compute waits on).
    barrier: f64,
    /// Per pool position: end of the device's last compute op.
    compute: Vec<f64>,
    /// Per pool position: end of the device's last collective.
    comm: Vec<f64>,
}

impl SimClock {
    fn new(p: usize) -> Self {
        Self {
            barrier: 0.0,
            compute: vec![0.0; p],
            comm: vec![0.0; p],
        }
    }
}

/// What one execution attempt of a stage produced.
enum Attempt {
    /// Every shard ran to completion on the attempt's schedule.
    Success {
        out: Matrix,
        ops: Vec<ShardOp>,
        episode_end: f64,
    },
    /// A device died mid-attempt.  `ops` holds the completed survivor shards
    /// plus the dying operation truncated at the death instant — the aborted
    /// episode stays on the timeline (in-flight work drains, then the stage
    /// restarts at the barrier).
    Died {
        ops: Vec<ShardOp>,
        failure: sketch_gpu_sim::DeviceFailed,
        /// Index into the attempt's `alive` slice of the dead device.
        local: usize,
        detected_at: f64,
        episode_end: f64,
    },
}

/// Executor-wide fault/recovery state threaded through the stage loop.
struct ExecState {
    /// Pool positions still alive, in pool order.
    alive: Vec<usize>,
    clock: SimClock,
    /// Every episode (successful or aborted attempt) in replay order; the
    /// stream simulator puts a barrier between consecutive episodes.
    episodes: Vec<Vec<ShardOp>>,
    /// Whether the episode at the same index was a successful attempt.
    clean: Vec<bool>,
    failures: Vec<DeviceFailure>,
    shards_recomputed: usize,
    lost_seconds: f64,
}

impl ExecState {
    fn new(p: usize, alive: Vec<usize>) -> Self {
        Self {
            alive,
            clock: SimClock::new(p),
            episodes: Vec::new(),
            clean: Vec::new(),
            failures: Vec::new(),
            shards_recomputed: 0,
            lost_seconds: 0.0,
        }
    }

    /// Run one stage to a successful attempt: schedule over the live devices,
    /// attempt, and on a death drop the dead ordinal, recompute the
    /// block-cyclic schedule over the survivors and retry — the aborted
    /// attempt's truncated operations stay on the timeline as a barrier-
    /// separated episode.  Fails with the death only when no device is left.
    ///
    /// Returns the stage output and the successful schedule with devices
    /// remapped to pool positions.
    fn run_stage<F>(
        &mut self,
        opts: &ExecutorOptions,
        axis: ShardAxis,
        extent: usize,
        stage_idx: usize,
        mut attempt: F,
    ) -> Result<(Matrix, Schedule), DistError>
    where
        F: FnMut(&Schedule, &[usize], &mut SimClock) -> Result<Attempt, DistError>,
    {
        let mut attempt_no = 0usize;
        let stage_first_failure = self.failures.len();
        loop {
            let survivors = self.alive.len();
            // A single live device is a first-class zero-overhead target: no
            // sharding, no collectives — the stage is one bare device launch.
            let num_shards = if survivors == 1 {
                1
            } else {
                (opts.shards_per_device.max(1) * survivors).clamp(1, extent)
            };
            let schedule = Schedule::block_cyclic(axis, extent, num_shards, survivors);
            match attempt(&schedule, &self.alive, &mut self.clock)? {
                Attempt::Success {
                    out,
                    ops,
                    episode_end,
                } => {
                    if attempt_no > 0 {
                        self.shards_recomputed += ops.len();
                    }
                    self.clock.barrier = episode_end;
                    self.episodes.push(ops);
                    self.clean.push(true);
                    // Recovery on the trace runs from each detection to the
                    // stage's eventual success.
                    for f in &mut self.failures[stage_first_failure..] {
                        f.recovered_at_seconds = episode_end;
                    }
                    let mut reported = schedule;
                    for a in &mut reported.assignments {
                        a.device = self.alive[a.device];
                    }
                    return Ok((out, reported));
                }
                Attempt::Died {
                    ops,
                    failure,
                    local,
                    detected_at,
                    episode_end,
                } => {
                    if attempt_no > 0 {
                        self.shards_recomputed += ops.len();
                    }
                    self.lost_seconds += ops.iter().map(|o| o.compute_s + o.comm_s).sum::<f64>();
                    self.clock.barrier = episode_end;
                    self.episodes.push(ops);
                    self.clean.push(false);
                    self.failures.push(DeviceFailure {
                        device: failure.ordinal,
                        stage: stage_idx,
                        at_sim_seconds: failure.after_sim_seconds,
                        detected_at_seconds: detected_at,
                        recovered_at_seconds: detected_at, // backfilled on success
                    });
                    self.alive.remove(local);
                    if self.alive.is_empty() {
                        return Err(Error::from(failure));
                    }
                    attempt_no += 1;
                }
            }
        }
    }
}

/// One attempt of a row-sharded stage (CountSketch families): fold block-row
/// slices into one shared accumulator in global row order — the exact chain of
/// the single-device Algorithm-2 scatter, and simultaneously the ordered ring
/// reduction whose per-shard fold the timeline overlaps with the next shard's
/// compute.  Because shards are contiguous ranges folded in schedule order,
/// *any* survivor schedule replays the identical floating-point chain — this
/// is what makes recompute-on-failure bit-exact.
///
/// Shards are cut with [`Operand::slice_rows`]: dense blocks keep the operand's
/// layout (and its read-penalty accounting), CSR shards are zero-copy
/// `row_ptr` windows folded non-zero by non-zero.
#[allow(clippy::too_many_arguments)]
fn row_attempt(
    pool: &DevicePool,
    input: Operand<'_>,
    sketch: &CountSketch,
    kind: &str,
    k: usize,
    n: usize,
    schedule: &Schedule,
    alive: &[usize],
    clock: &mut SimClock,
    stage_idx: usize,
) -> Attempt {
    let survivors = alive.len();
    let rows = sketch.rows();
    let signs = sketch.signs();

    let mut out = Matrix::zeros_with_layout(k, n, Layout::RowMajor);
    let mut ops: Vec<ShardOp> = Vec::with_capacity(schedule.num_shards());
    let mut prev_fold: Option<f64> = None;
    let mut episode_end = 0.0f64;
    for assignment in &schedule.assignments {
        let local = assignment.device;
        let phys = alive[local];
        let device = pool.device(phys);
        let range = assignment.range.clone();
        let slice = input.slice_rows(range.clone());
        let cost = match slice.as_operand() {
            Operand::Dense(block) => {
                for (local_row, global) in range.clone().enumerate() {
                    let target = rows[global];
                    let sign = if signs[global] { 1.0 } else { -1.0 };
                    for c in 0..n {
                        out.add_to(target, c, sign * block.get(local_row, c));
                    }
                }
                CountSketch::apply_cost(range.len(), k, n, block.layout() == Layout::ColMajor)
            }
            Operand::CsrRows(view) => {
                for (local_row, global) in range.clone().enumerate() {
                    let target = rows[global];
                    let sign = if signs[global] { 1.0 } else { -1.0 };
                    for (c, v) in view.row(local_row) {
                        out.add_to(target, c, sign * v);
                    }
                }
                CountSketch::apply_cost_csr(range.len(), k, n, view.nnz())
            }
            Operand::Csr(s) => {
                // Whole-range slice of a CSR operand (the single-shard case).
                for (local_row, global) in range.clone().enumerate() {
                    let target = rows[global];
                    let sign = if signs[global] { 1.0 } else { -1.0 };
                    for (c, v) in s.row(local_row) {
                        out.add_to(target, c, sign * v);
                    }
                }
                CountSketch::apply_cost_csr(range.len(), k, n, s.nnz())
            }
        };
        let label = format!("s{stage_idx} {kind} shard {}", assignment.index);
        device.launch(&label, cost);

        let compute_s = device.scaled_time(&cost);
        let cs = clock.compute[phys].max(clock.barrier);
        let ce = cs + compute_s;
        if let Err(failure) = device.check_alive(ce) {
            let truncated = cs.max(failure.after_sim_seconds);
            clock.compute[phys] = truncated;
            episode_end = episode_end.max(truncated);
            ops.push(ShardOp {
                device: phys,
                label,
                compute_s: truncated - cs,
                comm_s: 0.0,
                chained: true,
                cost,
                comm_bytes: 0,
            });
            return Attempt::Died {
                ops,
                failure,
                local,
                detected_at: truncated,
                episode_end,
            };
        }
        clock.compute[phys] = ce;

        let comm_s = if survivors > 1 {
            ring_fold_time(pool, k, n) * device.link_scale()
        } else {
            0.0
        };
        let comm_bytes = if survivors > 1 {
            KernelCost::f64_bytes((k * n) as u64)
        } else {
            0
        };
        if comm_s > 0.0 {
            let mut fold_start = clock.comm[phys].max(ce);
            if let Some(prev) = prev_fold {
                fold_start = fold_start.max(prev);
            }
            let fold_end = fold_start + comm_s;
            if let Err(failure) = device.check_alive(fold_end) {
                let truncated = fold_start.max(failure.after_sim_seconds);
                let truncated_comm = truncated - fold_start;
                if truncated_comm > 0.0 {
                    clock.comm[phys] = truncated;
                }
                let detected_at = truncated;
                episode_end = episode_end.max(detected_at);
                ops.push(ShardOp {
                    device: phys,
                    label,
                    compute_s,
                    comm_s: truncated_comm,
                    chained: true,
                    cost,
                    comm_bytes: if truncated_comm > 0.0 { comm_bytes } else { 0 },
                });
                return Attempt::Died {
                    ops,
                    failure,
                    local,
                    detected_at,
                    episode_end,
                };
            }
            clock.comm[phys] = fold_end;
            prev_fold = Some(fold_end);
            episode_end = episode_end.max(fold_end);
        } else {
            episode_end = episode_end.max(ce);
        }
        ops.push(ShardOp {
            device: phys,
            label,
            compute_s,
            comm_s,
            chained: true,
            cost,
            comm_bytes,
        });
    }
    Attempt::Success {
        out,
        ops,
        episode_end,
    }
}

/// One attempt of a column-sharded stage (Gaussian, SRHT): every device
/// sketches an independent column panel with the *full* operator — per-column
/// kernels never see the other panels, so the panels are bitwise slices of the
/// single-device result (under any survivor schedule) — and the panels are
/// allgathered.
///
/// Dense panels are cut with [`Operand::slice_cols`] (view-equivalent,
/// uncharged).  CSR operands are carved into *all* panels up front in one
/// CSC-style conversion pass, charged once per live device (every device
/// converts its replica, like sketch generation) — so the modelled compute of
/// a sparse column stage does **not** grow with the shard count the way
/// per-shard full-matrix scans would.
#[allow(clippy::too_many_arguments)]
fn col_attempt(
    pool: &DevicePool,
    input: Operand<'_>,
    op: &dyn SketchOperator,
    kind: &str,
    k: usize,
    schedule: &Schedule,
    alive: &[usize],
    clock: &mut SimClock,
    stage_idx: usize,
) -> Result<Attempt, DistError> {
    let survivors = alive.len();
    let n = input.ncols();

    // One conversion pass cuts every CSR panel of the attempt (None for dense).
    let csr_panels = cut_csr_panels(pool, alive, input, schedule);

    let mut out = Matrix::zeros_with_layout(k, n, op.output_layout());
    let mut ops: Vec<ShardOp> = Vec::with_capacity(schedule.num_shards());
    let mut episode_end = 0.0f64;
    for (shard, assignment) in schedule.assignments.iter().enumerate() {
        let local = assignment.device;
        let phys = alive[local];
        let device = pool.device(phys);
        let range = assignment.range.clone();
        let mut panel_out = Matrix::zeros_with_layout(k, range.len(), op.output_layout());
        let (applied, cost) = device.tracker().measure(|| match &csr_panels {
            Some(panels) => op.apply_into(
                device,
                Operand::Csr(&panels[shard]),
                &mut panel_out.view_mut(),
            ),
            None => {
                let panel_in = input.slice_cols(device, range.clone());
                op.apply_into(device, panel_in.as_operand(), &mut panel_out.view_mut())
            }
        });
        applied?;
        for (j, global) in range.clone().enumerate() {
            for i in 0..k {
                out.set(i, global, panel_out.get(i, j));
            }
        }
        let label = format!("s{stage_idx} {kind} panel {}", assignment.index);

        let compute_s = device.scaled_time(&cost);
        let cs = clock.compute[phys].max(clock.barrier);
        let ce = cs + compute_s;
        if let Err(failure) = device.check_alive(ce) {
            let truncated = cs.max(failure.after_sim_seconds);
            clock.compute[phys] = truncated;
            episode_end = episode_end.max(truncated);
            ops.push(ShardOp {
                device: phys,
                label,
                compute_s: truncated - cs,
                comm_s: 0.0,
                chained: false,
                cost,
                comm_bytes: 0,
            });
            return Ok(Attempt::Died {
                ops,
                failure,
                local,
                detected_at: truncated,
                episode_end,
            });
        }
        clock.compute[phys] = ce;

        let panel_bytes = if survivors > 1 {
            KernelCost::f64_bytes((k * range.len()) as u64)
        } else {
            0
        };
        let comm_s = if survivors > 1 {
            pool.interconnect().transfer_time(panel_bytes) * device.link_scale()
        } else {
            0.0
        };
        if comm_s > 0.0 {
            let gather_start = clock.comm[phys].max(ce);
            let gather_end = gather_start + comm_s;
            if let Err(failure) = device.check_alive(gather_end) {
                let truncated = gather_start.max(failure.after_sim_seconds);
                let truncated_comm = truncated - gather_start;
                if truncated_comm > 0.0 {
                    clock.comm[phys] = truncated;
                }
                let detected_at = truncated;
                episode_end = episode_end.max(detected_at);
                ops.push(ShardOp {
                    device: phys,
                    label,
                    compute_s,
                    comm_s: truncated_comm,
                    chained: false,
                    cost,
                    comm_bytes: if truncated_comm > 0.0 { panel_bytes } else { 0 },
                });
                return Ok(Attempt::Died {
                    ops,
                    failure,
                    local,
                    detected_at,
                    episode_end,
                });
            }
            clock.comm[phys] = gather_end;
            episode_end = episode_end.max(gather_end);
        } else {
            episode_end = episode_end.max(ce);
        }
        ops.push(ShardOp {
            device: phys,
            label,
            compute_s,
            comm_s,
            chained: false,
            cost,
            comm_bytes: panel_bytes,
        });
    }
    Ok(Attempt::Success {
        out,
        ops,
        episode_end,
    })
}

/// Carve every column panel of a CSR-like operand for one stage attempt, in
/// schedule order, and charge the CSC-style conversion **once per live device**
/// (each device converts its replica, mirroring [`replicate_generation`]):
/// stream the parent's nonzeros and row pointers once, write every panel's
/// entries plus its fresh row-pointer array.  Dense operands return `None`
/// (their panels are view-equivalent cuts).
fn cut_csr_panels(
    pool: &DevicePool,
    alive: &[usize],
    input: Operand<'_>,
    schedule: &Schedule,
) -> Option<Vec<sketch_sparse::CsrMatrix>> {
    let panels: Vec<sketch_sparse::CsrMatrix> = match input {
        Operand::Dense(_) => return None,
        Operand::Csr(s) => schedule
            .assignments
            .iter()
            .map(|a| s.slice_cols(a.range.clone()))
            .collect(),
        Operand::CsrRows(v) => schedule
            .assignments
            .iter()
            .map(|a| v.slice_cols(a.range.clone()))
            .collect(),
    };
    let nnz = match input {
        Operand::Csr(s) => s.nnz(),
        Operand::CsrRows(v) => v.nnz(),
        Operand::Dense(_) => unreachable!("dense returned above"),
    } as u64;
    let idx = std::mem::size_of::<usize>() as u64;
    let rows1 = input.nrows() as u64 + 1;
    let cost = KernelCost::new(
        KernelCost::f64_bytes(nnz) + idx * (nnz + rows1),
        KernelCost::f64_bytes(nnz) + idx * (nnz + rows1 * panels.len() as u64),
        nnz,
        1,
    );
    for &d in alive {
        pool.device(d).launch("csc panel cut", cost);
    }
    Some(panels)
}

/// Time one shard's ordered ring fold occupies its comm stream: moving the `k x n`
/// accumulator one hop.  (Callers skip the fold entirely when only one device
/// is live — the fold is then local.)
fn ring_fold_time(pool: &DevicePool, k: usize, n: usize) -> f64 {
    pool.interconnect()
        .transfer_time(KernelCost::f64_bytes((k * n) as u64))
}

/// Charge the (replicated) sketch generation to every live device except the
/// build device (`alive[0]`), which already recorded it while building the
/// operator.
fn replicate_generation(pool: &DevicePool, alive: &[usize], cost: KernelCost) {
    for &d in &alive[1..] {
        pool.device(d).launch("sketch gen (replica)", cost);
    }
}

/// Replay the shard ops on simulated streams: each device's compute stream runs
/// its shards in order; a shard's collective goes to the device's comm stream,
/// waiting on the shard's kernel and (for chained stages) the previous shard's
/// collective.  Stage boundaries are barriers: a stage's kernels wait on every
/// completion event of the previous stage.
///
/// With `with_comm = false` the collectives cost nothing, yielding the compute
/// critical path.
///
/// When a `recorder` is supplied, the replay emits one costed
/// [`sketch_obs::TraceEvent`] per operation on the matching device×stream sim
/// track — this is where a trace's compute/comm tracks come from.
fn simulate(
    devices: usize,
    stage_ops: &[Vec<ShardOp>],
    with_comm: bool,
    recorder: Option<std::sync::Arc<dyn sketch_obs::Recorder>>,
) -> Timeline {
    let mut set = StreamSet::new(devices).with_recorder(recorder);
    let mut stage_done = Vec::new();
    for ops in stage_ops {
        let mut done = Vec::with_capacity(ops.len());
        let mut prev_comm: Option<sketch_gpu_sim::Event> = None;
        for op in ops {
            let compute_ev = set.enqueue_costed(
                op.device,
                StreamKind::Compute,
                op.label.clone(),
                &stage_done,
                op.compute_s,
                op.cost.into(),
            );
            let last_ev = if with_comm && op.comm_s > 0.0 {
                // The kernel gates the collective; a chained (ordered-fold)
                // collective additionally waits for the previous shard's fold.
                let mut waits = vec![compute_ev];
                if op.chained {
                    if let Some(prev) = prev_comm {
                        waits.push(prev);
                    }
                }
                let comm_ev = set.enqueue_costed(
                    op.device,
                    StreamKind::Comm,
                    format!("{} fold", op.label),
                    &waits,
                    op.comm_s,
                    sketch_obs::CostBreakdown {
                        comm_bytes: op.comm_bytes,
                        ..Default::default()
                    },
                );
                if op.chained {
                    prev_comm = Some(comm_ev);
                }
                comm_ev
            } else {
                compute_ev
            };
            done.push(last_ev);
        }
        stage_done = done;
    }
    set.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_core::{EmbeddingDim, SketchSpec};
    use sketch_gpu_sim::{Device, FaultPlan, FaultSpec};

    fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
        if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
            return false;
        }
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                if a.get(i, j).to_bits() != b.get(i, j).to_bits() {
                    return false;
                }
            }
        }
        true
    }

    fn input(d: usize, n: usize) -> Matrix {
        Matrix::random_gaussian(d, n, Layout::RowMajor, 11, 0)
    }

    #[test]
    fn schedule_block_cyclic_is_balanced_and_round_robin() {
        let s = Schedule::block_cyclic(ShardAxis::Rows, 10, 4, 3);
        assert_eq!(s.num_shards(), 4);
        let lens: Vec<usize> = s.assignments.iter().map(|a| a.range.len()).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        let devs: Vec<usize> = s.assignments.iter().map(|a| a.device).collect();
        assert_eq!(devs, vec![0, 1, 2, 0]);
        assert_eq!(s.shards_on(0), 2);
        assert_eq!(s.assignments.last().unwrap().range.end, 10);
    }

    #[test]
    #[should_panic(expected = "cannot cut")]
    fn oversharding_is_rejected() {
        Schedule::block_cyclic(ShardAxis::Cols, 3, 4, 2);
    }

    #[test]
    fn countsketch_run_is_bit_identical_and_overlapped() {
        let d = 600;
        let n = 8;
        let a = input(d, n);
        let spec = SketchSpec::countsketch(d, EmbeddingDim::Square(2), 7);
        let single_dev = Device::unlimited();
        let single = spec
            .build_for(&single_dev, n)
            .unwrap()
            .apply_matrix(&single_dev, &a)
            .unwrap();

        let pool = DevicePool::unlimited(4);
        let run = pipelined_sketch(
            &pool,
            &a,
            &Pipeline::single(spec),
            &ExecutorOptions::default(),
        )
        .unwrap();
        assert!(bits_equal(&run.result, &single));
        assert!(run.pipelined_seconds < run.serial_seconds);
        assert!(run.compute_only_seconds <= run.pipelined_seconds);
        assert!(run.speedup_vs_serial() > 1.0);
        assert!(run.overlap_efficiency() >= 0.0 && run.overlap_efficiency() <= 1.0);
        assert_eq!(run.schedules.len(), 1);
        assert_eq!(run.schedules[0].axis, ShardAxis::Rows);
        assert!(run.comm_total_bytes() > 0);
        assert_eq!(run.utilizations().len(), 4);
        // Every device did real work.
        for dev in pool.devices() {
            assert!(dev.tracker().snapshot().flops > 0);
        }
    }

    #[test]
    fn gaussian_and_srht_shard_by_columns_bit_identically() {
        let d = 256;
        let n = 6;
        let a = input(d, n);
        for spec in [
            SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), 3),
            SketchSpec::srht(d, EmbeddingDim::Ratio(2), 4),
        ] {
            let single_dev = Device::unlimited();
            let single = spec
                .build_for(&single_dev, n)
                .unwrap()
                .apply_matrix(&single_dev, &a)
                .unwrap();
            let pool = DevicePool::unlimited(3);
            let run = pipelined_sketch(
                &pool,
                &a,
                &Pipeline::single(spec.clone()),
                &ExecutorOptions::default(),
            )
            .unwrap();
            assert!(
                bits_equal(&run.result, &single),
                "{} drifted",
                spec.kind.as_str()
            );
            assert_eq!(run.schedules[0].axis, ShardAxis::Cols);
        }
    }

    #[test]
    fn count_gauss_pipeline_matches_the_fused_multisketch() {
        let d = 512;
        let n = 6;
        let a = input(d, n);
        let plan = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 9);
        let single_dev = Device::unlimited();
        let single = plan
            .build_for(&single_dev, n)
            .unwrap()
            .apply_matrix(&single_dev, &a)
            .unwrap();
        let pool = DevicePool::unlimited(2);
        let run = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default()).unwrap();
        assert!(bits_equal(&run.result, &single));
        assert_eq!(run.schedules.len(), 2);
        assert_eq!(run.schedules[0].axis, ShardAxis::Rows);
        assert_eq!(run.schedules[1].axis, ShardAxis::Cols);
        // Stage comm: allreduce of k1 x n, then allgather of k2 x n.
        assert_eq!(run.comm.len(), 2);
        assert!(run.comm[0].total_words() > run.comm[1].total_words());
    }

    #[test]
    fn single_device_pool_has_no_communication() {
        let a = input(200, 5);
        let spec = SketchSpec::countsketch(200, EmbeddingDim::Exact(32), 1);
        let pool = DevicePool::unlimited(1);
        let run = pipelined_sketch(
            &pool,
            &a,
            &Pipeline::single(spec),
            &ExecutorOptions::default(),
        )
        .unwrap();
        assert_eq!(run.comm_seconds, 0.0);
        assert_eq!(run.comm_total_bytes(), 0);
        assert_eq!(run.overlap_efficiency(), 1.0);
        // A pool of one never shards: each stage is exactly one kernel.
        assert_eq!(run.schedules[0].num_shards(), 1);
    }

    #[test]
    fn pool_of_one_makespan_equals_bare_device_launches() {
        use sketch_gpu_sim::DeviceSpec;

        // A spec executed on a DevicePool::single must cost exactly what a bare
        // Device launch costs: same kernel, no sharding, no collectives, and the
        // timeline makespan equals the modelled time of the single apply.
        let d = 640;
        let n = 7;
        let a = input(d, n);
        for spec in [
            SketchSpec::countsketch(d, EmbeddingDim::Square(2), 4),
            SketchSpec::srht(d, EmbeddingDim::Ratio(2), 5),
        ] {
            // Reference: apply on a bare device and model the apply-only cost.
            let bare = Device::h100();
            let op = spec.build_for(&bare, n).unwrap();
            let before = bare.tracker().snapshot();
            let single = op.apply_matrix(&bare, &a).unwrap();
            let apply_cost = bare.tracker().snapshot() - before;

            let pool = DevicePool::single(DeviceSpec::h100());
            let run = pipelined_sketch(
                &pool,
                &a,
                &Pipeline::single(spec.clone()),
                &ExecutorOptions::default(),
            )
            .unwrap();
            assert!(bits_equal(&run.result, &single));
            assert_eq!(run.comm_seconds, 0.0);
            assert_eq!(run.pipelined_seconds, run.serial_seconds);
            assert_eq!(run.pipelined_seconds, run.compute_only_seconds);
            // Exactly one kernel on the timeline, priced like the bare launch.
            assert_eq!(run.timeline.entries().len(), 1);
            assert_eq!(
                run.pipelined_seconds,
                bare.model_time(&apply_cost),
                "{} pool-of-one is not a bare launch",
                spec.kind.as_str()
            );
            // And the device tracker accumulated the same generation + apply cost.
            let pool_cost = pool.total_cost();
            let bare_total = bare.tracker().snapshot();
            assert_eq!(pool_cost, bare_total, "{} cost drifted", spec.kind.as_str());
        }
    }

    #[test]
    fn csr_operand_is_bit_identical_to_single_device_apply() {
        use sketch_sparse::{CooMatrix, CsrMatrix};

        let d = 300;
        let n = 6;
        let dense = input(d, n);
        let mut coo = CooMatrix::new(d, n);
        for i in 0..d {
            // ~2 nonzeros per row, deterministic pattern.
            coo.push(i, i % n, dense.get(i, i % n));
            if i % 3 == 0 {
                coo.push(i, (i + 2) % n, dense.get(i, (i + 2) % n));
            }
        }
        let csr = CsrMatrix::from_coo(&coo);

        for spec in [
            SketchSpec::countsketch(d, EmbeddingDim::Square(2), 5),
            SketchSpec::hash_countsketch(d, EmbeddingDim::Exact(24), 6),
            SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), 7),
            SketchSpec::srht(d, EmbeddingDim::Ratio(2), 8),
        ] {
            let single_dev = Device::unlimited();
            let single = spec
                .build_for(&single_dev, n)
                .unwrap()
                .apply_operand(&single_dev, Operand::Csr(&csr))
                .unwrap();
            for devices in [1usize, 3] {
                let pool = DevicePool::unlimited(devices);
                let run = pipelined_sketch(
                    &pool,
                    &csr,
                    &Pipeline::single(spec.clone()),
                    &ExecutorOptions::default(),
                )
                .unwrap();
                assert!(
                    bits_equal(&run.result, &single),
                    "{} drifted on {devices} devices with a CSR operand",
                    spec.kind.as_str()
                );
            }
        }
    }

    #[test]
    fn sparse_col_sharding_does_not_scan_the_parent_per_shard() {
        use sketch_sparse::{CooMatrix, CsrMatrix};

        // The CSC-style panel conversion is charged once per device and stage;
        // finer sharding must not multiply full-matrix scans into the model.
        let d = 400;
        let n = 12;
        let mut coo = CooMatrix::new(d, n);
        for i in 0..d {
            for j in 0..4 {
                coo.push(i, (i * 3 + j * 5) % n, ((i * n + j) as f64 * 0.01).sin());
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let spec = SketchSpec::gaussian(d, EmbeddingDim::Exact(16), 3);

        let read_bytes_with = |spd: usize| {
            let pool = DevicePool::unlimited(2);
            let run = pipelined_sketch(
                &pool,
                &csr,
                &Pipeline::single(spec.clone()),
                &ExecutorOptions::default().with_shards_per_device(spd),
            )
            .unwrap();
            assert!(run.result.nrows() == 16);
            pool.total_cost().bytes_read
        };
        let coarse = read_bytes_with(1);
        let fine = read_bytes_with(6);
        assert!(
            fine < coarse + coarse / 2,
            "fine sharding re-scans the operand: {fine} vs {coarse} bytes read"
        );
    }

    #[test]
    fn operand_row_mismatch_is_a_dimension_error() {
        let a = input(100, 4);
        let plan = Pipeline::single(SketchSpec::countsketch(128, EmbeddingDim::Exact(16), 1));
        let pool = DevicePool::unlimited(2);
        let err = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default()).unwrap_err();
        assert!(err.is_dimension_mismatch(), "{err}");
        assert!(err.to_string().contains("dense 100x4"));
    }

    #[test]
    fn more_devices_shrink_the_pipelined_makespan() {
        // Large enough that streaming dominates the per-shard launch overhead —
        // the regime where sharding pays off.  (A pool of one runs a single
        // unsharded kernel, so it is the cheapest possible serial baseline.)
        let d = 1 << 20;
        let a = input(d, 8);
        let spec = SketchSpec::countsketch(d, EmbeddingDim::Square(2), 5);
        let mut prev = f64::INFINITY;
        for p in [1usize, 2, 4] {
            let pool = DevicePool::unlimited(p);
            let run = pipelined_sketch(
                &pool,
                &a,
                &Pipeline::single(spec.clone()),
                &ExecutorOptions::default(),
            )
            .unwrap();
            assert!(
                run.compute_only_seconds < prev,
                "compute path must shrink with more devices ({p}: {} vs {prev})",
                run.compute_only_seconds
            );
            prev = run.compute_only_seconds;
        }
    }

    #[test]
    fn hash_countsketch_rows_fold_exactly() {
        let d = 300;
        let n = 4;
        let a = input(d, n);
        let spec = SketchSpec::hash_countsketch(d, EmbeddingDim::Exact(24), 2);
        let single_dev = Device::unlimited();
        let single = spec
            .build_for(&single_dev, n)
            .unwrap()
            .apply_matrix(&single_dev, &a)
            .unwrap();
        let pool = DevicePool::unlimited(3);
        let run = pipelined_sketch(
            &pool,
            &a,
            &Pipeline::single(spec),
            &ExecutorOptions::default(),
        )
        .unwrap();
        assert!(bits_equal(&run.result, &single));
    }

    #[test]
    fn attached_recorder_traces_every_stage_and_collective() {
        let a = input(120, 6);
        let spec = SketchSpec::countsketch(120, EmbeddingDim::Exact(16), 5);
        let pool = DevicePool::unlimited(3);
        let collector = sketch_obs::TraceCollector::shared();
        pool.attach_recorder(collector.clone());
        let run = pipelined_sketch(
            &pool,
            &a,
            &Pipeline::single(spec),
            &ExecutorOptions::default(),
        )
        .unwrap();
        let events = collector.snapshot();
        // Every timeline entry (compute shard + comm fold) shows up as a
        // stream-track trace event; Device::launch adds kernel-track spans.
        let stream_events = events
            .iter()
            .filter(|e| {
                matches!(
                    e.track,
                    sketch_obs::Track::Compute | sketch_obs::Track::Comm
                )
            })
            .count();
        assert_eq!(stream_events, run.timeline.entries().len());
        assert!(events
            .iter()
            .any(|e| e.track == sketch_obs::Track::Comm && e.cost.comm_bytes > 0));
        assert!(events
            .iter()
            .any(|e| e.track == sketch_obs::Track::Kernel && e.cost.launches > 0));
        // Sim intervals on the stream tracks mirror the timeline exactly.
        for e in &events {
            let (start, end) = e.sim.expect("executor events carry sim intervals");
            assert!(start <= end);
        }
    }

    #[test]
    fn recording_does_not_change_the_bits_and_metrics_fold_in() {
        let a = input(200, 7);
        let spec = SketchSpec::countsketch(200, EmbeddingDim::Exact(32), 4);
        let quiet_pool = DevicePool::unlimited(2);
        let reference = pipelined_sketch(
            &quiet_pool,
            &a,
            &Pipeline::single(spec.clone()),
            &ExecutorOptions::default(),
        )
        .unwrap();

        let pool = DevicePool::unlimited(2);
        pool.attach_recorder(sketch_obs::TraceCollector::shared());
        let run = pipelined_sketch(
            &pool,
            &a,
            &Pipeline::single(spec),
            &ExecutorOptions::default(),
        )
        .unwrap();
        assert!(bits_equal(&run.result, &reference.result));

        let metrics = sketch_obs::MetricsRegistry::new();
        run.record_metrics(&metrics, &pool);
        assert!(metrics.counter("executor.kernel_launches") > 0);
        assert!(metrics.counter("executor.comm_bytes") > 0);
        let util = metrics.histogram("executor.device_utilization").unwrap();
        assert_eq!(util.count, 2);
    }

    #[test]
    fn shards_per_device_never_changes_the_bits() {
        let a = input(97, 5); // prime row count forces uneven splits
        let spec = SketchSpec::countsketch(97, EmbeddingDim::Exact(16), 3);
        let pool = DevicePool::unlimited(3);
        let reference = pipelined_sketch(
            &pool,
            &a,
            &Pipeline::single(spec.clone()),
            &ExecutorOptions::default().with_shards_per_device(1),
        )
        .unwrap();
        for spd in [2usize, 3, 7] {
            let run = pipelined_sketch(
                &pool,
                &a,
                &Pipeline::single(spec.clone()),
                &ExecutorOptions::default().with_shards_per_device(spd),
            )
            .unwrap();
            assert!(bits_equal(&run.result, &reference.result));
        }
    }

    #[test]
    fn clean_runs_report_a_clean_fault_state() {
        let a = input(300, 6);
        let spec = SketchSpec::countsketch(300, EmbeddingDim::Exact(32), 2);
        let pool = DevicePool::h100(3);
        let run = pipelined_sketch(
            &pool,
            &a,
            &Pipeline::single(spec),
            &ExecutorOptions::default(),
        )
        .unwrap();
        assert!(run.fault.is_clean());
        assert_eq!(run.fault.recovery_overhead_seconds, 0.0);
        assert_eq!(run.fault.lost_seconds, 0.0);
        assert_eq!(run.fault.shards_recomputed, 0);
        assert_eq!(run.fault.survivors, 3);
    }

    #[test]
    fn device_death_recovers_bit_identically_and_reports_the_failure() {
        let d = 600;
        let n = 8;
        let a = input(d, n);
        let plan = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 9);

        let healthy = DevicePool::h100(4);
        let reference = pipelined_sketch(&healthy, &a, &plan, &ExecutorOptions::default()).unwrap();
        assert!(reference.fault.is_clean());

        let pool = DevicePool::h100(4);
        pool.apply_fault_plan(&FaultPlan::healthy().with_fault(
            2,
            FaultSpec::Dies {
                after_sim_seconds: 0.3 * reference.pipelined_seconds,
            },
        ));
        let run = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default()).unwrap();

        assert!(
            bits_equal(&run.result, &reference.result),
            "recovered result drifted from the no-fault run"
        );
        assert_eq!(run.fault.failures.len(), 1);
        let f = run.fault.failures[0];
        assert_eq!(f.device, 2);
        assert!(f.detected_at_seconds >= f.at_sim_seconds);
        assert!(f.recovered_at_seconds >= f.detected_at_seconds);
        assert_eq!(run.fault.survivors, 3);
        assert!(run.fault.shards_recomputed > 0);
        assert!(run.fault.recovery_overhead_seconds >= 0.0);
        // The fault is sticky: a second run on the same pool never re-admits
        // the dead device.
        let rerun = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default()).unwrap();
        assert!(bits_equal(&rerun.result, &reference.result));
        assert!(rerun.fault.failures.is_empty(), "death already absorbed");
        assert_eq!(rerun.fault.survivors, 3);

        let metrics = sketch_obs::MetricsRegistry::new();
        run.record_metrics(&metrics, &pool);
        assert_eq!(metrics.counter("fault.device_failures"), 1);
        assert!(metrics.counter("fault.shards_recomputed") > 0);
    }

    #[test]
    fn death_leaves_an_aborted_episode_and_fault_track_on_the_trace() {
        let a = input(400, 6);
        let spec = SketchSpec::countsketch(400, EmbeddingDim::Exact(48), 5);
        let healthy = DevicePool::h100(2);
        let reference = pipelined_sketch(
            &healthy,
            &a,
            &Pipeline::single(spec.clone()),
            &ExecutorOptions::default(),
        )
        .unwrap();

        let pool = DevicePool::h100(2);
        let collector = sketch_obs::TraceCollector::shared();
        pool.attach_recorder(collector.clone());
        pool.apply_fault_plan(&FaultPlan::healthy().with_fault(
            1,
            FaultSpec::Dies {
                after_sim_seconds: 0.5 * reference.pipelined_seconds,
            },
        ));
        let run = pipelined_sketch(
            &pool,
            &a,
            &Pipeline::single(spec),
            &ExecutorOptions::default(),
        )
        .unwrap();
        assert!(bits_equal(&run.result, &reference.result));
        assert_eq!(run.fault.failures.len(), 1);
        // The aborted attempt's truncated work stays on the timeline: the run
        // extends past the detection instant (the retry runs after it), the
        // lost work is visible, and replaying the successful episodes alone is
        // strictly cheaper.  (The faulted makespan may still beat the healthy
        // pool's — a lone survivor runs no collectives at all, which wins when
        // the chained ring folds dominate, as they do at this tiny size.)
        let f = run.fault.failures[0];
        assert!(run.pipelined_seconds > f.detected_at_seconds);
        assert_eq!(f.recovered_at_seconds, run.pipelined_seconds);
        assert!(run.fault.lost_seconds > 0.0);
        assert!(run.fault.recovery_overhead_seconds > 0.0);

        let events = collector.snapshot();
        let fault_events: Vec<_> = events
            .iter()
            .filter(|e| e.track == sketch_obs::Track::Fault)
            .collect();
        assert_eq!(fault_events.len(), 2, "death point + recovery span");
        assert_eq!(fault_events[0].device, 1);
        let (ds, de) = fault_events[0].sim.unwrap();
        assert_eq!(ds, de, "death marker is zero-width");
        let (rs, re) = fault_events[1].sim.unwrap();
        assert_eq!(rs, ds);
        assert!(re >= rs, "recovery span runs forward");
    }

    #[test]
    fn every_device_dead_surfaces_the_typed_error() {
        let a = input(150, 4);
        let spec = SketchSpec::countsketch(150, EmbeddingDim::Exact(16), 3);
        let pool = DevicePool::h100(2);
        let all_dead = FaultPlan::healthy()
            .with_fault(
                0,
                FaultSpec::Dies {
                    after_sim_seconds: 0.0,
                },
            )
            .with_fault(
                1,
                FaultSpec::Dies {
                    after_sim_seconds: 0.0,
                },
            );
        pool.apply_fault_plan(&all_dead);
        let err = pipelined_sketch(
            &pool,
            &a,
            &Pipeline::single(spec.clone()),
            &ExecutorOptions::default(),
        )
        .unwrap_err();
        assert!(err.is_device_failure(), "{err}");
        // The sticky flags now refuse the pool outright.
        let err = pipelined_sketch(
            &pool,
            &a,
            &Pipeline::single(spec),
            &ExecutorOptions::default(),
        )
        .unwrap_err();
        assert!(err.is_device_failure());
    }

    #[test]
    fn straggler_slows_the_clock_but_never_touches_the_bits() {
        let a = input(500, 7);
        let plan = Pipeline::count_gauss(500, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 6);
        let healthy = DevicePool::h100(3);
        let reference = pipelined_sketch(&healthy, &a, &plan, &ExecutorOptions::default()).unwrap();

        let pool = DevicePool::h100(3);
        pool.apply_fault_plan(&FaultPlan::healthy().with_fault(
            1,
            FaultSpec::Straggler {
                slowdown_factor: 4.0,
            },
        ));
        let run = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default()).unwrap();
        assert!(bits_equal(&run.result, &reference.result));
        assert!(run.fault.is_clean(), "a straggler is not a failure");
        assert!(
            run.pipelined_seconds > reference.pipelined_seconds,
            "a 4x straggler must stretch the makespan"
        );
    }
}
