//! # sketch-sparse
//!
//! Sparse matrix substrate — the cuSPARSE substitute used by the paper's baseline
//! CountSketch implementation.
//!
//! The paper's Section 3 observes that "most CountSketches investigated in the
//! randomized linear algebra literature use a simple sparse matrix multiply (SpMM or
//! SpMV)", and then shows (Figures 2–3) that a vendor SpMM applied to a matrix with the
//! CountSketch's random sparsity structure only reaches ~20 % of peak memory bandwidth,
//! versus 50–60 % for the dedicated kernel.  To reproduce that comparison we need an
//! actual sparse engine:
//!
//! * [`CooMatrix`] — triplet assembly format,
//! * [`CsrMatrix`] — compressed sparse row storage with conversion from COO,
//! * [`CsrRowsView`] — a zero-copy block-row window over a CSR matrix (the sparse
//!   side of the executor's `ShardAxis::Rows` contract),
//! * [`spmv`] / [`spmm`] — row-parallel sparse kernels with device cost accounting,
//!   including the *gather penalty* that models the uncoalesced row accesses a generic
//!   SpMM performs when its sparsity pattern is random.

pub mod coo;
pub mod csr;
pub mod ops;

pub use coo::CooMatrix;
pub use csr::{CsrMatrix, CsrRowsView};
pub use ops::{spmm, spmm_into, spmv, SPMM_GATHER_PENALTY};
