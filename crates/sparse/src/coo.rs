//! Coordinate (triplet) sparse format, used for assembly.

/// A sparse matrix in coordinate format: a list of `(row, col, value)` triplets.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Create an empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Create with pre-allocated capacity for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::with_capacity(nnz),
        }
    }

    /// Add an entry.  Duplicate coordinates are allowed and are summed on conversion to
    /// CSR (the usual assembly convention).
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col, value));
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate summing).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored triplets.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Dense `row x col` representation (tests / small problems only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.ncols]; self.nrows];
        for &(i, j, v) in &self.entries {
            dense[i][j] += v;
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut m = CooMatrix::with_capacity(3, 4, 2);
        m.push(0, 1, 2.0);
        m.push(2, 3, -1.0);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.entries()[1], (2, 3, -1.0));
    }

    #[test]
    fn duplicates_sum_in_dense_view() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 1, 2.0);
        m.push(1, 1, 3.0);
        assert_eq!(m.to_dense()[1][1], 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_rejected() {
        let mut m = CooMatrix::new(2, 2);
        m.push(2, 0, 1.0);
    }
}
