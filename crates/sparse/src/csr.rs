//! Compressed sparse row storage.

use crate::coo::CooMatrix;

/// A sparse matrix in CSR format: `row_ptr` (length `nrows + 1`), `col_idx` and `values`
/// (length `nnz`).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are structurally inconsistent.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            row_ptr.len(),
            nrows + 1,
            "row_ptr must have nrows + 1 entries"
        );
        assert_eq!(
            col_idx.len(),
            values.len(),
            "col_idx / values length mismatch"
        );
        assert_eq!(
            *row_ptr.last().unwrap(),
            values.len(),
            "row_ptr must end at nnz"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be monotone"
        );
        assert!(
            col_idx.iter().all(|&j| j < ncols),
            "column index out of bounds"
        );
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Convert from COO, summing duplicate coordinates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        // Sort triplets by (row, col); duplicates become adjacent and are merged.
        let mut entries: Vec<(usize, usize, f64)> = coo.entries().to_vec();
        entries.sort_unstable_by_key(|&(i, j, _)| (i, j));

        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut prev: Option<(usize, usize)> = None;
        for &(i, j, v) in &entries {
            if prev == Some((i, j)) {
                *values.last_mut().expect("previous entry exists") += v;
            } else {
                col_idx.push(j);
                values.push(v);
                row_ptr[i + 1] += 1;
                prev = Some((i, j));
            }
        }
        // Prefix-sum the per-row counts into offsets.
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate over `(col, value)` pairs of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let start = self.row_ptr[i];
        let end = self.row_ptr[i + 1];
        self.col_idx[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Transpose the matrix, producing a new CSR matrix (CSR→CSR via counting sort).
    ///
    /// Row `i` of the result holds the entries of column `i` of `self`, ordered by
    /// their original row index — the standard two-pass histogram/scatter used by
    /// cuSPARSE's `csr2csc`.  Cost is `O(nnz + ncols)` and the output is a fully
    /// canonical CSR (sorted column indices within each row, no duplicates beyond
    /// those already present).
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.nnz();
        // Pass 1: histogram of entries per output row (= input column).
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &j in &self.col_idx {
            row_ptr[j + 1] += 1;
        }
        for j in 0..self.ncols {
            row_ptr[j + 1] += row_ptr[j];
        }
        // Pass 2: scatter, walking the input in row order so each output row ends up
        // sorted by the original row index.
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                let slot = next[j];
                col_idx[slot] = i;
                values[slot] = v;
                next[j] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// A zero-copy view of the contiguous row range `rows` of this matrix.
    ///
    /// The view borrows a window of `row_ptr` (plus the matching `col_idx`/`values`
    /// span) — no index or value is copied, which is what makes block-row sharding
    /// of CSR operands free.
    ///
    /// # Panics
    /// Panics if `rows.end > nrows` or the range is backwards.
    pub fn slice_rows(&self, rows: std::ops::Range<usize>) -> CsrRowsView<'_> {
        assert!(rows.start <= rows.end, "row range must be forward");
        assert!(
            rows.end <= self.nrows,
            "row range {}..{} out of bounds for {} rows",
            rows.start,
            rows.end,
            self.nrows
        );
        let lo = self.row_ptr[rows.start];
        let hi = self.row_ptr[rows.end];
        CsrRowsView {
            ncols: self.ncols,
            base: lo,
            row_ptr: &self.row_ptr[rows.start..=rows.end],
            col_idx: &self.col_idx[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Materialise the contiguous column range `cols` as a new CSR matrix whose
    /// column indices are rebased to start at zero.
    ///
    /// Unlike [`slice_rows`](Self::slice_rows) this cannot be a view — CSR stores
    /// rows contiguously, so carving a column panel builds per-panel CSC-style
    /// buffers (one `O(nnz)` filtering pass).  Callers that model device traffic
    /// must charge the copy; `sketch_core::Operand::slice_cols` does so.
    ///
    /// # Panics
    /// Panics if `cols.end > ncols` or the range is backwards.
    pub fn slice_cols(&self, cols: std::ops::Range<usize>) -> CsrMatrix {
        // The whole-range row view shares the filtering loop with the view type.
        self.slice_rows(0..self.nrows).slice_cols(cols)
    }

    /// Bytes occupied by the index + value arrays (used by traffic modelling).
    pub fn size_bytes(&self) -> u64 {
        (self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Dense representation for tests.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.ncols]; self.nrows];
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                dense[i][j] += v;
            }
        }
        dense
    }
}

/// A borrowed, zero-copy view over a contiguous row range of a [`CsrMatrix`]
/// (the sparse analogue of a block-row slice).
///
/// `row_ptr` is a window of the parent's row pointer array, so local offsets are
/// recovered by subtracting `base` (= the parent's `row_ptr` at the window start).
/// The view is `Copy` — three slices and two integers — which lets the executor
/// hand row shards to devices without touching the nonzeros.
#[derive(Debug, Clone, Copy)]
pub struct CsrRowsView<'a> {
    ncols: usize,
    base: usize,
    row_ptr: &'a [usize],
    col_idx: &'a [usize],
    values: &'a [f64],
}

impl<'a> CsrRowsView<'a> {
    /// Number of rows in the view.
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns (inherited from the parent matrix).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros inside the viewed rows.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate over `(col, value)` pairs of local row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + 'a {
        let start = self.row_ptr[i] - self.base;
        let end = self.row_ptr[i + 1] - self.base;
        self.col_idx[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Narrow the view to a sub-range of its rows — still zero-copy (the
    /// window over the parent's arrays just shrinks).
    ///
    /// # Panics
    /// Panics if `rows.end > self.nrows()` or the range is backwards.
    pub fn slice_rows(&self, rows: std::ops::Range<usize>) -> CsrRowsView<'a> {
        assert!(rows.start <= rows.end, "row range must be forward");
        assert!(
            rows.end <= self.nrows(),
            "row range {}..{} out of bounds for {} rows",
            rows.start,
            rows.end,
            self.nrows()
        );
        let lo = self.row_ptr[rows.start] - self.base;
        let hi = self.row_ptr[rows.end] - self.base;
        CsrRowsView {
            ncols: self.ncols,
            base: self.row_ptr[rows.start],
            row_ptr: &self.row_ptr[rows.start..=rows.end],
            col_idx: &self.col_idx[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Materialise the contiguous column range `cols` of the viewed rows as a new
    /// CSR matrix with rebased column indices — the one `O(nnz)` column-panel
    /// filtering pass of the workspace ([`CsrMatrix::slice_cols`] delegates here
    /// through its whole-range row view).
    ///
    /// # Panics
    /// Panics if `cols.end > self.ncols()` or the range is backwards.
    pub fn slice_cols(&self, cols: std::ops::Range<usize>) -> CsrMatrix {
        assert!(cols.start <= cols.end, "column range must be forward");
        assert!(
            cols.end <= self.ncols,
            "column range {}..{} out of bounds for {} columns",
            cols.start,
            cols.end,
            self.ncols
        );
        let nrows = self.nrows();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..nrows {
            for (j, v) in self.row(i) {
                if cols.contains(&j) {
                    col_idx.push(j - cols.start);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows,
            ncols: cols.len(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materialise the view as an owned [`CsrMatrix`] (used by the generic
    /// matrix-product fallbacks; the sketching hot paths iterate the view
    /// directly).
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix {
            nrows: self.nrows(),
            ncols: self.ncols,
            row_ptr: self.row_ptr.iter().map(|&p| p - self.base).collect(),
            col_idx: self.col_idx.to_vec(),
            values: self.values.to_vec(),
        }
    }

    /// Bytes occupied by the viewed index + value spans.
    pub fn size_bytes(&self) -> u64 {
        (std::mem::size_of_val(self.row_ptr)
            + std::mem::size_of_val(self.col_idx)
            + std::mem::size_of_val(self.values)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 3, 2.0);
        coo.push(2, 0, -1.0);
        coo.push(1, 2, 4.0);
        coo
    }

    #[test]
    fn coo_to_csr_preserves_dense_form() {
        let coo = sample_coo();
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.to_dense(), coo.to_dense());
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.row_ptr(), &[0, 2, 3, 4]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, 1.0);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.to_dense()[0][0], 3.5);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut coo = CooMatrix::new(4, 2);
        coo.push(3, 1, 7.0);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.row_ptr(), &[0, 0, 0, 0, 1]);
        assert_eq!(csr.row(0).count(), 0);
        assert_eq!(csr.row(3).collect::<Vec<_>>(), vec![(1, 7.0)]);
    }

    #[test]
    fn from_raw_validates_structure() {
        let csr = CsrMatrix::from_raw(2, 3, vec![0, 1, 2], vec![0, 2], vec![1.0, 2.0]);
        assert_eq!(
            csr.to_dense(),
            vec![vec![1.0, 0.0, 0.0], vec![0.0, 0.0, 2.0]]
        );
        assert!(csr.size_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at nnz")]
    fn from_raw_rejects_inconsistent_nnz() {
        CsrMatrix::from_raw(1, 1, vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "column index out of bounds")]
    fn from_raw_rejects_bad_column() {
        CsrMatrix::from_raw(1, 1, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let t = csr.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.nnz(), csr.nnz());
        let dense = csr.to_dense();
        let dense_t = t.to_dense();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(dense[i][j], dense_t[j][i]);
            }
        }
    }

    #[test]
    fn transpose_is_canonical_and_involutive() {
        let mut coo = CooMatrix::new(5, 3);
        coo.push(4, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(2, 2, -1.0);
        coo.push(1, 1, 0.5);
        let csr = CsrMatrix::from_coo(&coo);
        let t = csr.transpose();
        // Column indices inside every row of the transpose must be sorted.
        for i in 0..t.nrows() {
            let cols: Vec<usize> = t.row(i).map(|(j, _)| j).collect();
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
        }
        assert_eq!(t.transpose(), csr);
    }

    #[test]
    fn transpose_of_empty_and_empty_rows() {
        let empty = CsrMatrix::from_coo(&CooMatrix::new(3, 7));
        let t = empty.transpose();
        assert_eq!(t.nrows(), 7);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.nnz(), 0);

        let mut coo = CooMatrix::new(4, 2);
        coo.push(3, 1, 7.0);
        let t = CsrMatrix::from_coo(&coo).transpose();
        assert_eq!(t.row_ptr(), &[0, 0, 1]);
        assert_eq!(t.row(1).collect::<Vec<_>>(), vec![(3, 7.0)]);
    }

    #[test]
    fn row_slices_are_views_and_tile_the_matrix() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let dense = csr.to_dense();
        for split in [1usize, 2] {
            let mid = split;
            let top = csr.slice_rows(0..mid);
            let bottom = csr.slice_rows(mid..3);
            assert_eq!(top.nrows() + bottom.nrows(), 3);
            assert_eq!(top.nnz() + bottom.nnz(), csr.nnz());
            assert_eq!(top.ncols(), 4);
            for (view, offset) in [(&top, 0usize), (&bottom, mid)] {
                for i in 0..view.nrows() {
                    let got: Vec<(usize, f64)> = view.row(i).collect();
                    let want: Vec<(usize, f64)> = csr.row(offset + i).collect();
                    assert_eq!(got, want);
                }
                let owned = view.to_csr();
                for (i, row) in owned.to_dense().iter().enumerate() {
                    assert_eq!(row, &dense[offset + i]);
                }
                assert!(view.size_bytes() > 0);
            }
        }
        // Whole-range view round-trips exactly.
        assert_eq!(csr.slice_rows(0..3).to_csr(), csr);
        // Empty view is fine.
        assert_eq!(csr.slice_rows(1..1).nrows(), 0);
        // Re-slicing a view stays zero-copy and matches slicing the parent.
        let nested = csr.slice_rows(1..3).slice_rows(1..2);
        assert_eq!(nested.to_csr(), csr.slice_rows(2..3).to_csr());
    }

    #[test]
    fn col_slices_rebase_indices_and_tile_the_matrix() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let dense = csr.to_dense();
        let left = csr.slice_cols(0..2);
        let right = csr.slice_cols(2..4);
        assert_eq!(left.ncols(), 2);
        assert_eq!(right.ncols(), 2);
        assert_eq!(left.nnz() + right.nnz(), csr.nnz());
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(left.to_dense()[i][j], dense[i][j]);
                assert_eq!(right.to_dense()[i][j], dense[i][j + 2]);
            }
        }
        assert_eq!(csr.slice_cols(0..4), csr);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_slice_out_of_bounds_is_rejected() {
        CsrMatrix::from_coo(&sample_coo()).slice_rows(0..4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn col_slice_out_of_bounds_is_rejected() {
        CsrMatrix::from_coo(&sample_coo()).slice_cols(3..5);
    }

    #[test]
    fn empty_matrix_conversion() {
        let coo = CooMatrix::new(3, 3);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.row_ptr(), &[0, 0, 0, 0]);
    }
}
