//! Compressed sparse row storage.

use crate::coo::CooMatrix;

/// A sparse matrix in CSR format: `row_ptr` (length `nrows + 1`), `col_idx` and `values`
/// (length `nnz`).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are structurally inconsistent.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            row_ptr.len(),
            nrows + 1,
            "row_ptr must have nrows + 1 entries"
        );
        assert_eq!(
            col_idx.len(),
            values.len(),
            "col_idx / values length mismatch"
        );
        assert_eq!(
            *row_ptr.last().unwrap(),
            values.len(),
            "row_ptr must end at nnz"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be monotone"
        );
        assert!(
            col_idx.iter().all(|&j| j < ncols),
            "column index out of bounds"
        );
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Convert from COO, summing duplicate coordinates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        // Sort triplets by (row, col); duplicates become adjacent and are merged.
        let mut entries: Vec<(usize, usize, f64)> = coo.entries().to_vec();
        entries.sort_unstable_by_key(|&(i, j, _)| (i, j));

        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut prev: Option<(usize, usize)> = None;
        for &(i, j, v) in &entries {
            if prev == Some((i, j)) {
                *values.last_mut().expect("previous entry exists") += v;
            } else {
                col_idx.push(j);
                values.push(v);
                row_ptr[i + 1] += 1;
                prev = Some((i, j));
            }
        }
        // Prefix-sum the per-row counts into offsets.
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate over `(col, value)` pairs of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let start = self.row_ptr[i];
        let end = self.row_ptr[i + 1];
        self.col_idx[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Transpose the matrix, producing a new CSR matrix (CSR→CSR via counting sort).
    ///
    /// Row `i` of the result holds the entries of column `i` of `self`, ordered by
    /// their original row index — the standard two-pass histogram/scatter used by
    /// cuSPARSE's `csr2csc`.  Cost is `O(nnz + ncols)` and the output is a fully
    /// canonical CSR (sorted column indices within each row, no duplicates beyond
    /// those already present).
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.nnz();
        // Pass 1: histogram of entries per output row (= input column).
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &j in &self.col_idx {
            row_ptr[j + 1] += 1;
        }
        for j in 0..self.ncols {
            row_ptr[j + 1] += row_ptr[j];
        }
        // Pass 2: scatter, walking the input in row order so each output row ends up
        // sorted by the original row index.
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                let slot = next[j];
                col_idx[slot] = i;
                values[slot] = v;
                next[j] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Bytes occupied by the index + value arrays (used by traffic modelling).
    pub fn size_bytes(&self) -> u64 {
        (self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Dense representation for tests.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.ncols]; self.nrows];
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                dense[i][j] += v;
            }
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 3, 2.0);
        coo.push(2, 0, -1.0);
        coo.push(1, 2, 4.0);
        coo
    }

    #[test]
    fn coo_to_csr_preserves_dense_form() {
        let coo = sample_coo();
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.to_dense(), coo.to_dense());
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.row_ptr(), &[0, 2, 3, 4]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, 1.0);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.to_dense()[0][0], 3.5);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut coo = CooMatrix::new(4, 2);
        coo.push(3, 1, 7.0);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.row_ptr(), &[0, 0, 0, 0, 1]);
        assert_eq!(csr.row(0).count(), 0);
        assert_eq!(csr.row(3).collect::<Vec<_>>(), vec![(1, 7.0)]);
    }

    #[test]
    fn from_raw_validates_structure() {
        let csr = CsrMatrix::from_raw(2, 3, vec![0, 1, 2], vec![0, 2], vec![1.0, 2.0]);
        assert_eq!(
            csr.to_dense(),
            vec![vec![1.0, 0.0, 0.0], vec![0.0, 0.0, 2.0]]
        );
        assert!(csr.size_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at nnz")]
    fn from_raw_rejects_inconsistent_nnz() {
        CsrMatrix::from_raw(1, 1, vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "column index out of bounds")]
    fn from_raw_rejects_bad_column() {
        CsrMatrix::from_raw(1, 1, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let t = csr.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.nnz(), csr.nnz());
        let dense = csr.to_dense();
        let dense_t = t.to_dense();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(dense[i][j], dense_t[j][i]);
            }
        }
    }

    #[test]
    fn transpose_is_canonical_and_involutive() {
        let mut coo = CooMatrix::new(5, 3);
        coo.push(4, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(2, 2, -1.0);
        coo.push(1, 1, 0.5);
        let csr = CsrMatrix::from_coo(&coo);
        let t = csr.transpose();
        // Column indices inside every row of the transpose must be sorted.
        for i in 0..t.nrows() {
            let cols: Vec<usize> = t.row(i).map(|(j, _)| j).collect();
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
        }
        assert_eq!(t.transpose(), csr);
    }

    #[test]
    fn transpose_of_empty_and_empty_rows() {
        let empty = CsrMatrix::from_coo(&CooMatrix::new(3, 7));
        let t = empty.transpose();
        assert_eq!(t.nrows(), 7);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.nnz(), 0);

        let mut coo = CooMatrix::new(4, 2);
        coo.push(3, 1, 7.0);
        let t = CsrMatrix::from_coo(&coo).transpose();
        assert_eq!(t.row_ptr(), &[0, 0, 1]);
        assert_eq!(t.row(1).collect::<Vec<_>>(), vec![(3, 7.0)]);
    }

    #[test]
    fn empty_matrix_conversion() {
        let coo = CooMatrix::new(3, 3);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.row_ptr(), &[0, 0, 0, 0]);
    }
}
