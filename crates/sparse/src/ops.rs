//! Sparse kernels: SpMV and SpMM with device cost accounting.
//!
//! The SpMM here is the *baseline* the paper measures against its dedicated CountSketch
//! kernel.  Its cost model charges the "gather penalty" that a generic row-parallel
//! SpMM pays when it pulls rows of the dense operand through uncoalesced accesses: a
//! CountSketch's sparsity pattern is uniformly random, so consecutive non-zeros of an
//! output row touch unrelated rows of `A`, and the achieved bandwidth collapses to the
//! ~20 % of peak the paper reports in Figure 3.

use crate::csr::CsrMatrix;
use rayon::prelude::*;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::{Layout, Matrix, MatrixViewMut};

/// Multiplier applied to the dense-operand read traffic of [`spmm`] to model the
/// uncoalesced (gather) access pattern of a random sparsity structure.
///
/// Calibration: with this factor the generic SpMM lands at roughly 20 % of peak memory
/// throughput when measured against its useful (Table 1) traffic, which is where the
/// paper's Figure 3 places the cuSPARSE CountSketch baseline.
pub const SPMM_GATHER_PENALTY: u64 = 8;

/// Sparse matrix-vector product `y = S x`.
///
/// # Panics
/// Panics if `x.len() != s.ncols()`.
pub fn spmv(device: &Device, s: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), s.ncols(), "spmv: x length must equal ncols");
    let mut y = vec![0.0; s.nrows()];
    y.par_iter_mut().enumerate().for_each(|(i, yi)| {
        let mut acc = 0.0;
        for (j, v) in s.row(i) {
            acc += v * x[j];
        }
        *yi = acc;
    });

    let nnz = s.nnz() as u64;
    let idx_bytes = (std::mem::size_of::<usize>() as u64) * (nnz + s.nrows() as u64 + 1);
    device.record(KernelCost::new(
        KernelCost::f64_bytes(nnz) + idx_bytes + KernelCost::f64_bytes(nnz) * SPMM_GATHER_PENALTY,
        KernelCost::f64_bytes(s.nrows() as u64),
        2 * nnz,
        1,
    ));
    y
}

/// Sparse matrix times dense matrix: `Y = S A`, with `A` dense `ncols x n`.
///
/// The result is a dense row-major `s.nrows() x n` matrix.  This is the cuSPARSE
/// SpMM baseline of the paper's Figures 2–4, as a thin allocating wrapper over
/// [`spmm_into`].
///
/// # Panics
/// Panics if `a.nrows() != s.ncols()`.
pub fn spmm(device: &Device, s: &CsrMatrix, a: &Matrix) -> Matrix {
    let mut y = Matrix::zeros_with_layout(s.nrows(), a.ncols(), Layout::RowMajor);
    spmm_into(device, s, a, &mut y.view_mut());
    y
}

/// Buffer-reusing SpMM: `out <- S A`, written into a caller-owned buffer.
///
/// The row-major fast path is bit-for-bit identical to [`spmm`]; a column-major
/// output buffer is also accepted (same values, element-indexed writes).
///
/// # Panics
/// Panics if `a.nrows() != s.ncols()` or `out` is not `s.nrows() x a.ncols()`.
pub fn spmm_into(device: &Device, s: &CsrMatrix, a: &Matrix, out: &mut MatrixViewMut<'_>) {
    assert_eq!(a.nrows(), s.ncols(), "spmm: A must have {} rows", s.ncols());
    let n = a.ncols();
    let k = s.nrows();
    assert_eq!(
        (out.nrows(), out.ncols()),
        (k, n),
        "spmm: output buffer must be {k}x{n}"
    );

    // Pack the dense operand so its rows are contiguous (the same packing `blas3`
    // applies before its dot-product loops): every non-zero then pulls one contiguous
    // slice instead of `n` strided loads when `A` arrives column-major.
    let packed_storage;
    let packed: &[f64] = match a.layout() {
        Layout::RowMajor => a.as_slice(),
        Layout::ColMajor => {
            let mut buf = vec![0.0; a.nrows() * n];
            buf.par_chunks_mut(n.max(1))
                .enumerate()
                .for_each(|(i, row)| {
                    for (c, slot) in row.iter_mut().enumerate() {
                        *slot = a.get(i, c);
                    }
                });
            packed_storage = buf;
            &packed_storage
        }
    };

    // Row-parallel SpMM (each task owns one output row), mirroring the natural CUDA
    // mapping of one warp per output row.  The accumulation order per output row
    // (non-zeros outer, columns inner) is identical to the sequential reference, so
    // results are bit-for-bit reproducible.
    out.fill(0.0);
    match out.layout() {
        Layout::RowMajor => {
            out.as_mut_slice()
                .par_chunks_mut(n.max(1))
                .enumerate()
                .for_each(|(i, out_row)| {
                    for (j, v) in s.row(i) {
                        let arow = &packed[j * n..j * n + n];
                        for (slot, aj) in out_row.iter_mut().zip(arow.iter()) {
                            *slot += v * aj;
                        }
                    }
                });
        }
        Layout::ColMajor => {
            // Same per-element accumulation order, element-indexed writes.
            for i in 0..k {
                for (j, v) in s.row(i) {
                    let arow = &packed[j * n..j * n + n];
                    for (c, aj) in arow.iter().enumerate() {
                        out.add_to(i, c, v * aj);
                    }
                }
            }
        }
    }

    let nnz = s.nnz() as u64;
    let n64 = n as u64;
    let k64 = k as u64;
    let idx_bytes = (std::mem::size_of::<usize>() as u64) * (nnz + k64 + 1);
    // Every non-zero pulls a full dense row of A through a gather; the output is
    // written once (and re-read for accumulation when rows collide, which the penalty
    // term absorbs).
    device.record(KernelCost::new(
        KernelCost::f64_bytes(nnz)
            + idx_bytes
            + KernelCost::f64_bytes(nnz * n64) * SPMM_GATHER_PENALTY,
        KernelCost::f64_bytes(k64 * n64),
        2 * nnz * n64,
        1,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn device() -> Device {
        Device::unlimited()
    }

    fn sample_csr() -> CsrMatrix {
        // [ 2 0 1 ]
        // [ 0 0 0 ]
        // [ 0 3 0 ]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(0, 2, 1.0);
        coo.push(2, 1, 3.0);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn spmv_matches_dense_product() {
        let d = device();
        let s = sample_csr();
        let y = spmv(&d, &s, &[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![5.0, 0.0, 6.0]);
    }

    #[test]
    fn spmv_empty_matrix_gives_zero_vector() {
        let d = device();
        let s = CsrMatrix::from_coo(&CooMatrix::new(4, 2));
        assert_eq!(spmv(&d, &s, &[1.0, 1.0]), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn spmv_rejects_wrong_length() {
        let d = device();
        let s = sample_csr();
        spmv(&d, &s, &[1.0, 2.0]);
    }

    #[test]
    fn spmm_matches_column_by_column_spmv() {
        let d = device();
        let s = sample_csr();
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0], &[0.0, 1.0]]);
        let y = spmm(&d, &s, &a);
        for c in 0..2 {
            let col: Vec<f64> = a.col_to_vec(c);
            let expect = spmv(&d, &s, &col);
            for i in 0..3 {
                assert!((y.get(i, c) - expect[i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn spmm_output_is_row_major() {
        let d = device();
        let s = sample_csr();
        let a = Matrix::identity(3);
        let y = spmm(&d, &s, &a);
        assert_eq!(y.layout(), Layout::RowMajor);
        assert_eq!(y.to_dense_rows(), s.to_dense());
    }

    #[test]
    fn spmm_records_gather_penalty_traffic() {
        let d = device();
        let s = sample_csr();
        let a = Matrix::identity(3);
        let _ = spmm(&d, &s, &a);
        let cost = d.tracker().snapshot();
        // Dense reads must include the gather penalty factor.
        let nnz = s.nnz() as u64;
        assert!(cost.bytes_read >= 8 * nnz * 3 * SPMM_GATHER_PENALTY);
        assert_eq!(cost.flops, 2 * nnz * 3);
    }

    #[test]
    fn spmm_is_bit_identical_to_sequential_reference_in_both_layouts() {
        let d = device();
        let mut coo = CooMatrix::new(6, 5);
        // A denser pattern with repeated target rows exercises the accumulation order.
        for (i, j, v) in [
            (0, 0, 0.3),
            (0, 4, -1.2),
            (1, 2, 2.0),
            (2, 1, 0.7),
            (2, 3, 1e-3),
            (2, 4, -7.5),
            (4, 0, 1.1),
            (4, 1, 0.9),
            (5, 3, 4.0),
        ] {
            coo.push(i, j, v);
        }
        let s = CsrMatrix::from_coo(&coo);
        let a_rm = Matrix::from_fn(5, 3, Layout::RowMajor, |i, j| ((i * 7 + j) as f64).sin());
        let a_cm = a_rm.to_layout(&d, Layout::ColMajor);

        // Sequential reference with the documented accumulation order.
        let mut reference = Matrix::zeros_with_layout(6, 3, Layout::RowMajor);
        for i in 0..6 {
            for (j, v) in s.row(i) {
                for c in 0..3 {
                    let acc = reference.get(i, c) + v * a_rm.get(j, c);
                    reference.set(i, c, acc);
                }
            }
        }

        let y_rm = spmm(&d, &s, &a_rm);
        let y_cm = spmm(&d, &s, &a_cm);
        assert_eq!(y_rm.as_slice(), reference.as_slice());
        assert_eq!(y_cm.as_slice(), reference.as_slice());
    }

    #[test]
    fn spmm_into_reused_buffer_is_bit_identical_to_spmm() {
        let d = device();
        let s = sample_csr();
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0], &[0.0, 1.0]]);
        let reference = spmm(&d, &s, &a);
        let mut out = Matrix::from_fn(3, 2, Layout::RowMajor, |_, _| f64::NAN);
        spmm_into(&d, &s, &a, &mut out.view_mut());
        assert_eq!(out.as_slice(), reference.as_slice());

        // Column-major output buffers hold the same values.
        let mut out_cm = Matrix::from_fn(3, 2, Layout::ColMajor, |_, _| f64::NAN);
        spmm_into(&d, &s, &a, &mut out_cm.view_mut());
        assert_eq!(out_cm.max_abs_diff(&reference).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "output buffer must be")]
    fn spmm_into_rejects_wrong_output_shape() {
        let d = device();
        let s = sample_csr();
        let a = Matrix::identity(3);
        let mut out = Matrix::zeros(2, 2);
        spmm_into(&d, &s, &a, &mut out.view_mut());
    }

    #[test]
    #[should_panic(expected = "A must have")]
    fn spmm_rejects_mismatched_shapes() {
        let d = device();
        let s = sample_csr();
        spmm(&d, &s, &Matrix::identity(2));
    }

    /// Helper used by the layout test above.
    trait DenseRows {
        fn to_dense_rows(&self) -> Vec<Vec<f64>>;
    }

    impl DenseRows for Matrix {
        fn to_dense_rows(&self) -> Vec<Vec<f64>> {
            (0..self.nrows()).map(|i| self.row_to_vec(i)).collect()
        }
    }
}
