//! Criterion micro-benchmarks for Figure 2: applying each sketch to a dense matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sketch_core::{EmbeddingDim, Operand, Pipeline, SketchOperator, SketchSpec};
use sketch_gpu_sim::Device;
use sketch_la::blas3::gram_gemm;
use sketch_la::{Layout, Matrix};

fn bench_sketch_apply(c: &mut Criterion) {
    let device = Device::unlimited();
    let d = 1 << 14;
    let n = 32;
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 42, 0);

    let count = SketchSpec::countsketch(d, EmbeddingDim::Square(2), 1)
        .resolve(n)
        .build_countsketch(&device)
        .unwrap();
    let gauss = SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), 2)
        .resolve(n)
        .build_gaussian(&device)
        .unwrap();
    let multi = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 3)
        .build_multisketch(&device, n)
        .unwrap();
    let srht = SketchSpec::srht(d, EmbeddingDim::Ratio(2), 4)
        .resolve(n)
        .build_srht(&device)
        .unwrap();

    let mut group = c.benchmark_group("sketch_apply_d16k_n32");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("gram", "gemm"), |b| {
        b.iter(|| gram_gemm(&device, &a).unwrap())
    });
    group.bench_function(BenchmarkId::new("countsketch", "alg2"), |b| {
        b.iter(|| count.apply_matrix(&device, &a).unwrap())
    });
    let mut reused = Matrix::zeros_with_layout(count.output_dim(), n, Layout::RowMajor);
    group.bench_function(BenchmarkId::new("countsketch", "alg2_apply_into"), |b| {
        b.iter(|| {
            count
                .apply_into(&device, Operand::Dense(&a), &mut reused.view_mut())
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("countsketch", "spmm"), |b| {
        b.iter(|| count.apply_matrix_spmm(&device, &a).unwrap())
    });
    group.bench_function(BenchmarkId::new("gaussian", "gemm"), |b| {
        b.iter(|| gauss.apply_matrix(&device, &a).unwrap())
    });
    group.bench_function(BenchmarkId::new("multisketch", "count+gauss"), |b| {
        b.iter(|| multi.apply_matrix(&device, &a).unwrap())
    });
    group.bench_function(BenchmarkId::new("srht", "radix4"), |b| {
        b.iter(|| srht.apply_matrix(&device, &a).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sketch_apply);
criterion_main!(benches);
