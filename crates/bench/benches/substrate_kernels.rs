//! Criterion benches for the substrate kernels (GEMM, SYRK, QR, Cholesky, SpMM) — the
//! cuBLAS/cuSOLVER/cuSPARSE stand-ins every experiment is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use sketch_gpu_sim::Device;
use sketch_la::blas3::{gemm, gram_gemm, syrk_gram};
use sketch_la::chol::potrf_upper;
use sketch_la::qr::geqrf;
use sketch_la::{Layout, Matrix};
use sketch_sparse::{spmm, CooMatrix, CsrMatrix};

fn bench_substrates(c: &mut Criterion) {
    let device = Device::unlimited();
    let d = 1 << 12;
    let n = 64;
    let a = Matrix::random_gaussian(d, n, Layout::ColMajor, 1, 0);
    let b = Matrix::random_gaussian(n, n, Layout::ColMajor, 2, 0);
    let gram = gram_gemm(&device, &a).unwrap();

    // A random one-entry-per-column sparse matrix (CountSketch structure).
    let rows = sketch_rng::fill::uniform_index_vec(3, 0, d, 2 * n * n);
    let mut coo = CooMatrix::new(2 * n * n, d);
    for (j, &r) in rows.iter().enumerate() {
        coo.push(r, j, if j % 2 == 0 { 1.0 } else { -1.0 });
    }
    let csr = CsrMatrix::from_coo(&coo);

    let mut group = c.benchmark_group("substrate_kernels");
    group.sample_size(10);
    group.bench_function("gemm_4096x64_x_64x64", |bch| {
        bch.iter(|| gemm(&device, 1.0, &a, &b, 0.0, None).unwrap())
    });
    group.bench_function("gram_gemm_4096x64", |bch| {
        bch.iter(|| gram_gemm(&device, &a).unwrap())
    });
    group.bench_function("syrk_4096x64", |bch| bch.iter(|| syrk_gram(&device, &a)));
    group.bench_function("geqrf_4096x64", |bch| {
        bch.iter(|| geqrf(&device, &a).unwrap())
    });
    group.bench_function("potrf_64", |bch| {
        bch.iter(|| potrf_upper(&device, &gram).unwrap())
    });
    group.bench_function("spmm_countsketch_structure", |bch| {
        bch.iter(|| spmm(&device, &csr, &a))
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
