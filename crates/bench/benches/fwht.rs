//! Criterion benches for the fast Walsh–Hadamard transform (Algorithm 3): radix-4 vs
//! radix-2 and the per-column matrix transform behind the SRHT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sketch_core::fwht::{fwht_in_place, fwht_matrix_columns, fwht_radix2_in_place, DEFAULT_TILE};
use sketch_gpu_sim::Device;
use sketch_la::{Layout, Matrix};

fn bench_fwht(c: &mut Criterion) {
    let mut group = c.benchmark_group("fwht");
    group.sample_size(10);
    for pow in [16u32, 18, 20] {
        let len = 1usize << pow;
        let input = sketch_rng::fill::gaussian_vec(1, 0, len);
        group.bench_function(BenchmarkId::new("radix4", format!("2^{pow}")), |b| {
            b.iter(|| {
                let mut v = input.clone();
                fwht_in_place(&mut v);
                v
            })
        });
        group.bench_function(BenchmarkId::new("radix2", format!("2^{pow}")), |b| {
            b.iter(|| {
                let mut v = input.clone();
                fwht_radix2_in_place(&mut v);
                v
            })
        });
    }

    let device = Device::unlimited();
    let base = Matrix::random_gaussian(1 << 14, 8, Layout::ColMajor, 3, 0);
    group.bench_function("matrix_columns_2^14_x8", |b| {
        b.iter(|| {
            let mut m = base.clone();
            fwht_matrix_columns(&device, &mut m, DEFAULT_TILE);
            m
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fwht);
criterion_main!(benches);
