//! Criterion ablation benches: kernel and layout variants of the CountSketch and
//! multisketch (the design choices DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sketch_core::{EmbeddingDim, Pipeline, SketchOperator, SketchSpec};
use sketch_gpu_sim::Device;
use sketch_la::{Layout, Matrix};

fn bench_ablations(c: &mut Criterion) {
    let device = Device::unlimited();
    let d = 1 << 14;
    let n = 16;
    let a_rm = Matrix::random_gaussian(d, n, Layout::RowMajor, 42, 0);
    let a_cm = a_rm.to_layout(&device, Layout::ColMajor);
    let count = SketchSpec::countsketch(d, EmbeddingDim::Square(2), 1)
        .resolve(n)
        .build_countsketch(&device)
        .unwrap();
    let multi = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 2)
        .build_multisketch(&device, n)
        .unwrap();
    let multi_naive = multi.clone().with_naive_layout_handling();

    let mut group = c.benchmark_group("ablations_d16k_n16");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("countsketch", "atomic_rowmajor"), |b| {
        b.iter(|| count.apply_matrix(&device, &a_rm).unwrap())
    });
    group.bench_function(BenchmarkId::new("countsketch", "atomic_colmajor"), |b| {
        b.iter(|| count.apply_matrix(&device, &a_cm).unwrap())
    });
    group.bench_function(BenchmarkId::new("countsketch", "gather"), |b| {
        b.iter(|| count.apply_matrix_gather(&device, &a_rm).unwrap())
    });
    group.bench_function(BenchmarkId::new("multisketch", "transpose_trick"), |b| {
        b.iter(|| multi.apply_matrix(&device, &a_rm).unwrap())
    });
    group.bench_function(BenchmarkId::new("multisketch", "naive_layout"), |b| {
        b.iter(|| multi_naive.apply_matrix(&device, &a_rm).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
