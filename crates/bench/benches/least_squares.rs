//! Criterion micro-benchmarks for Figure 5: end-to-end least squares solves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sketch_gpu_sim::{Device, DevicePool};
use sketch_lsq::{solve, LsqProblem, Method};

fn bench_least_squares(c: &mut Criterion) {
    let device = Device::unlimited();
    let d = 1 << 13;
    let n = 16;
    let problem = LsqProblem::performance(&device, d, n, 42).unwrap();
    let pool = DevicePool::unlimited(1);

    let mut group = c.benchmark_group("least_squares_d8k_n16");
    group.sample_size(10);
    for method in Method::FIGURE5 {
        group.bench_function(BenchmarkId::new("solver", method.label()), |b| {
            b.iter(|| solve(&pool, &problem, method, 7).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_least_squares);
criterion_main!(benches);
