//! Kernel-speed regression harness: naive-reference vs cache-blocked kernels,
//! measured on this host and emitted as `BENCH_kernels.json`.
//!
//! `fig_walltime` tracks thread scaling of the production kernels; this binary
//! tracks the *single-threaded* speedup of the cache-blocked kernels over the
//! per-element reference implementations they replaced — the number that cache
//! blocking actually bought, with no parallelism in the frame.  Two sweeps:
//!
//! * **GEMM**: [`sketch_la::blas3::gemm_into`] (GEBP packing + register-tiled
//!   microkernel) vs [`sketch_la::blas3::gemm_naive_into`] (one packed dot
//!   product per output element) across square, rectangular and tall-skinny
//!   sketch shapes.
//! * **FWHT**: [`sketch_core::fwht::fwht_tiled_in_place`] (cache-resident final
//!   stages) vs [`sketch_core::fwht::fwht_in_place`] (one whole-vector pass per
//!   radix-4 stage) across SRHT power-of-two lengths.
//!
//! Gates (exit non-zero on failure, so CI pins the speedup):
//!
//! * blocked GEMM must be **>= 2x** the naive reference at 512x512x128 on one
//!   thread (the shape `BENCH_walltime.json` has always tracked);
//! * tiled FWHT must be **strictly faster** than the un-tiled kernel at the
//!   largest swept length (d = 2^20 full, 2^18 smoke);
//! * blocked and naive GEMM values must agree within `1e-12 * max|C|` on every
//!   swept shape (the kernels may round differently, but never drift).
//!
//! Run with: `cargo run --release -p sketch-bench --bin fig_kernels [-- --smoke] [--out PATH]`

use sketch_bench::report::{ms, Table};
use sketch_bench::walltime::{host_cores, time_fn, with_thread_pool, Sample};
use sketch_core::fwht::{fwht_in_place, fwht_tiled_in_place, DEFAULT_TILE};
use sketch_core::JsonValue;
use sketch_gpu_sim::Device;
use sketch_la::blas3::{gemm_into, gemm_naive_into};
use sketch_la::{Layout, Matrix, Op};
use sketch_rng::fill;

/// The GEMM gate shape (m, k, n): the row `BENCH_walltime.json` has always tracked.
const GATE_GEMM: (usize, usize, usize) = (512, 512, 128);

/// Required blocked-over-naive speedup at [`GATE_GEMM`] on one thread.
const GATE_GEMM_SPEEDUP: f64 = 2.0;

/// One naive-vs-blocked measurement.
struct KernelRow {
    kernel: &'static str,
    shape: String,
    /// Output elements (GEMM: m*n; FWHT: d) — the scale axis.
    elems: usize,
    naive: Sample,
    blocked: Sample,
    /// Blocked-over-naive ratio of minimum times (least noise-contaminated).
    speedup_min: f64,
    /// Blocked-over-naive ratio of median times.
    speedup_median: f64,
    /// `max|blocked - naive| / max(1, max|naive|)` over the output (0 when the
    /// two kernels are bitwise identical, as the FWHT pair is).
    max_rel_diff: f64,
}

impl KernelRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("kernel".into(), JsonValue::Str(self.kernel.into())),
            ("shape".into(), JsonValue::Str(self.shape.clone())),
            ("elems".into(), JsonValue::UInt(self.elems as u64)),
            (
                "naive_median_ms".into(),
                JsonValue::Float(self.naive.median_ms()),
            ),
            ("naive_min_ms".into(), JsonValue::Float(self.naive.min_ms())),
            (
                "blocked_median_ms".into(),
                JsonValue::Float(self.blocked.median_ms()),
            ),
            (
                "blocked_min_ms".into(),
                JsonValue::Float(self.blocked.min_ms()),
            ),
            ("speedup_min".into(), JsonValue::Float(self.speedup_min)),
            (
                "speedup_median".into(),
                JsonValue::Float(self.speedup_median),
            ),
            ("max_rel_diff".into(), JsonValue::Float(self.max_rel_diff)),
        ])
    }
}

/// Measure one GEMM shape: naive reference vs blocked kernel, both on one thread,
/// plus the value-agreement check.
fn bench_gemm_shape(m: usize, k: usize, n: usize, seed: u64) -> KernelRow {
    let device = Device::unlimited();
    let a = Matrix::random_gaussian(m, k, Layout::RowMajor, seed, 0);
    let b = Matrix::random_gaussian(k, n, Layout::ColMajor, seed, 1);
    let mut naive_out = Matrix::zeros(m, n);
    let mut blocked_out = Matrix::zeros(m, n);

    let (naive, blocked) = with_thread_pool(1, || {
        let naive = time_fn(|| {
            gemm_naive_into(
                &device,
                1.0,
                Op::NoTrans,
                &a,
                Op::NoTrans,
                &b,
                0.0,
                None,
                &mut naive_out.view_mut(),
            )
            .expect("naive gemm dims are valid");
        });
        let blocked = time_fn(|| {
            gemm_into(
                &device,
                1.0,
                Op::NoTrans,
                &a,
                Op::NoTrans,
                &b,
                0.0,
                None,
                &mut blocked_out.view_mut(),
            )
            .expect("blocked gemm dims are valid");
        });
        (naive, blocked)
    });

    let scale = naive_out
        .as_slice()
        .iter()
        .fold(1.0f64, |acc, v| acc.max(v.abs()));
    let max_rel_diff = blocked_out.max_abs_diff(&naive_out).expect("same shape") / scale;

    KernelRow {
        kernel: "gemm",
        shape: format!("{m}x{k}x{n}"),
        elems: m * n,
        naive,
        blocked,
        speedup_min: naive.min_ns / blocked.min_ns,
        speedup_median: naive.median_ns / blocked.median_ns,
        max_rel_diff,
    }
}

/// Measure one FWHT length: un-tiled whole-vector stages vs the cache-tiled
/// schedule, both on one thread, restored from a pristine copy each iteration.
fn bench_fwht_length(d: usize, seed: u64) -> KernelRow {
    let pristine = fill::gaussian_vec(seed, 0, d);
    let mut work = pristine.clone();

    let (naive, blocked) = with_thread_pool(1, || {
        let naive = time_fn(|| {
            work.copy_from_slice(&pristine);
            fwht_in_place(&mut work);
        });
        let untiled_result = work.clone();
        let blocked = time_fn(|| {
            work.copy_from_slice(&pristine);
            fwht_tiled_in_place(&mut work, DEFAULT_TILE);
        });
        // The two schedules are bitwise identical by construction; hold that
        // line here too, not just in unit tests.
        assert!(
            work.iter()
                .zip(&untiled_result)
                .all(|(t, u)| t.to_bits() == u.to_bits()),
            "tiled FWHT diverged from the un-tiled kernel at d={d}"
        );
        (naive, blocked)
    });

    KernelRow {
        kernel: "fwht",
        shape: format!("2^{}", d.trailing_zeros()),
        elems: d,
        naive,
        blocked,
        speedup_min: naive.min_ns / blocked.min_ns,
        speedup_median: naive.median_ns / blocked.median_ns,
        max_rel_diff: 0.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_kernels.json", String::as_str)
        .to_string();

    let cores = host_cores();
    println!("host cores: {cores}; smoke: {smoke} (all measurements single-threaded)");

    // GEMM sweep: the gate shape always runs; full mode adds a square shape and
    // the tall-skinny sketch shape (S · A with a short-wide product).
    let mut gemm_shapes: Vec<(usize, usize, usize)> = vec![GATE_GEMM];
    if smoke {
        gemm_shapes.push((4096, 128, 16));
    } else {
        gemm_shapes.push((256, 256, 256));
        gemm_shapes.push((32768, 256, 16));
        gemm_shapes.push((128, 4096, 64));
    }
    // FWHT sweep: SRHT power-of-two lengths; the gate rides the largest.
    let fwht_pows: &[u32] = if smoke { &[14, 16, 18] } else { &[16, 18, 20] };

    let mut rows: Vec<KernelRow> = Vec::new();
    for (i, &(m, k, n)) in gemm_shapes.iter().enumerate() {
        rows.push(bench_gemm_shape(m, k, n, 60 + i as u64));
    }
    for &pow in fwht_pows {
        rows.push(bench_fwht_length(1usize << pow, 70 + pow as u64));
    }

    // Text report.
    let mut table = Table::new(
        "Naive-reference vs cache-blocked kernels (1 thread)".to_string(),
        &[
            "kernel",
            "shape",
            "naive med ms",
            "blocked med ms",
            "naive min ms",
            "blocked min ms",
            "speedup(min)",
            "max rel diff",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.kernel.to_string(),
            r.shape.clone(),
            ms(r.naive.median_ms()),
            ms(r.blocked.median_ms()),
            ms(r.naive.min_ms()),
            ms(r.blocked.min_ms()),
            format!("{:.2}", r.speedup_min),
            format!("{:.2e}", r.max_rel_diff),
        ]);
    }
    table.print();

    // Gate 1: blocked GEMM >= 2x naive at the gate shape.
    let gate_shape = format!("{}x{}x{}", GATE_GEMM.0, GATE_GEMM.1, GATE_GEMM.2);
    let gate_row = rows
        .iter()
        .find(|r| r.kernel == "gemm" && r.shape == gate_shape)
        .expect("the gate shape always runs");
    let gemm_status = if gate_row.speedup_min >= GATE_GEMM_SPEEDUP {
        format!(
            "passed ({:.2}x >= {GATE_GEMM_SPEEDUP}x at {gate_shape})",
            gate_row.speedup_min
        )
    } else {
        format!(
            "FAILED ({:.2}x < {GATE_GEMM_SPEEDUP}x at {gate_shape})",
            gate_row.speedup_min
        )
    };

    // Gate 2: tiled FWHT strictly faster than un-tiled at the largest length.
    let fwht_row = rows
        .iter()
        .filter(|r| r.kernel == "fwht")
        .max_by_key(|r| r.elems)
        .expect("at least one FWHT length runs");
    let fwht_status = if fwht_row.speedup_min > 1.0 {
        format!(
            "passed ({:.2}x > 1x at d={})",
            fwht_row.speedup_min, fwht_row.shape
        )
    } else {
        format!(
            "FAILED ({:.2}x <= 1x at d={})",
            fwht_row.speedup_min, fwht_row.shape
        )
    };

    // Gate 3: blocked values never drift from the naive reference.
    let worst_diff = rows.iter().fold(0.0f64, |acc, r| acc.max(r.max_rel_diff));
    let values_status = if worst_diff <= 1e-12 {
        format!("passed (worst rel diff {worst_diff:.2e} <= 1e-12)")
    } else {
        format!("FAILED (worst rel diff {worst_diff:.2e} > 1e-12)")
    };

    let doc = JsonValue::Object(vec![
        ("experiment".into(), JsonValue::Str("fig_kernels".into())),
        (
            "host".into(),
            JsonValue::Object(vec![
                ("cores".into(), JsonValue::UInt(cores as u64)),
                ("rustc".into(), JsonValue::Str(sketch_obs::rustc_version())),
            ]),
        ),
        ("smoke".into(), JsonValue::Bool(smoke)),
        (
            "gemm_speedup_gate".into(),
            JsonValue::Str(gemm_status.clone()),
        ),
        (
            "fwht_speedup_gate".into(),
            JsonValue::Str(fwht_status.clone()),
        ),
        ("values_gate".into(), JsonValue::Str(values_status.clone())),
        (
            "rows".into(),
            JsonValue::Array(rows.iter().map(KernelRow::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write kernels JSON");
    println!("wrote {out_path}");

    let mut failed = false;
    for (name, status) in [
        ("gemm speedup gate", &gemm_status),
        ("fwht speedup gate", &fwht_status),
        ("values gate", &values_status),
    ] {
        if status.starts_with("FAILED") {
            eprintln!("{name} {status}");
            failed = true;
        } else {
            println!("{name} {status}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
