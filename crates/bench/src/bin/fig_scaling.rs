//! Multi-device scaling figure: strong/weak scaling, the overlap ablation and
//! the sparse-operand sweep of the unified execution engine, emitted as JSON to
//! seed the benchmark trajectory.
//!
//! Four experiments, all on modelled H100 pools joined by NVLink:
//!
//! * **strong scaling** — a fixed CountSketch problem across 1/2/4/8 devices;
//! * **weak scaling** — the per-device problem held constant while devices grow;
//! * **overlap ablation** — at a fixed pool size, serial vs. pipelined vs.
//!   compute-only makespan for every sketch kind plus the Count-Gauss pipeline,
//!   isolating how much of the collectives the stream schedule hides;
//! * **sparse scaling** — CountSketch over CSR operands at several densities
//!   across the device grid, exercising the executor's zero-copy
//!   `Operand::slice_rows` sharding (the same engine, sparse operand).
//!
//! Every JSON row records the per-stage ring `CommPattern` (allreduce for the
//! row-sharded CountSketch families, allgather for the column-sharded
//! Gaussian/SRHT panels).
//!
//! The binary also *enforces* the headline property — pipelined makespan strictly
//! below serial makespan on every pool of ≥ 2 devices — and exits non-zero if any
//! run violates it, so the CI smoke run doubles as a regression gate.
//!
//! Run with: `cargo run --release -p sketch-bench --bin fig_scaling [-- --smoke] [--out PATH]`

use sketch_bench::report::{ms, pct, Table};
use sketch_core::{EmbeddingDim, JsonValue, Operand, Pipeline, SketchSpec};
use sketch_dist::{pipelined_sketch, ExecutorOptions, PipelinedRun};
use sketch_gpu_sim::DevicePool;
use sketch_la::{Layout, Matrix};
use sketch_obs::{chrome_trace_with_metrics, write_json, MetricsRegistry, TraceCollector};
use sketch_rng::fill;
use sketch_sparse::{CooMatrix, CsrMatrix};

/// One measured configuration, ready for both the text table and the JSON report.
struct Run {
    label: String,
    devices: usize,
    shards: usize,
    d: usize,
    n: usize,
    /// Stored nonzeros of the operand (`None` for dense operands).
    nnz: Option<usize>,
    run: PipelinedRun,
}

impl Run {
    fn to_json(&self) -> JsonValue {
        let r = &self.run;
        JsonValue::Object(vec![
            ("label".into(), JsonValue::Str(self.label.clone())),
            ("devices".into(), JsonValue::UInt(self.devices as u64)),
            ("shards".into(), JsonValue::UInt(self.shards as u64)),
            ("d".into(), JsonValue::UInt(self.d as u64)),
            ("n".into(), JsonValue::UInt(self.n as u64)),
            ("serial_ms".into(), JsonValue::Float(r.serial_seconds * 1e3)),
            (
                "pipelined_ms".into(),
                JsonValue::Float(r.pipelined_seconds * 1e3),
            ),
            (
                "compute_only_ms".into(),
                JsonValue::Float(r.compute_only_seconds * 1e3),
            ),
            (
                "speedup_vs_serial".into(),
                JsonValue::Float(r.speedup_vs_serial()),
            ),
            (
                "overlap_efficiency".into(),
                JsonValue::Float(r.overlap_efficiency()),
            ),
            (
                "comm_total_bytes".into(),
                JsonValue::UInt(r.comm_total_bytes()),
            ),
            (
                "per_device_utilization".into(),
                JsonValue::Array(r.utilizations().into_iter().map(JsonValue::Float).collect()),
            ),
            (
                // The ring collective of each pipeline stage, in stage order.
                "comm_patterns".into(),
                JsonValue::Array(
                    r.comm
                        .iter()
                        .map(|c| JsonValue::Str(c.pattern.as_str().into()))
                        .collect(),
                ),
            ),
            (
                "nnz".into(),
                match self.nnz {
                    Some(nnz) => JsonValue::UInt(nnz as u64),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

/// Deterministic random CSR operand targeting `target_density` stored fill:
/// Philox-seeded global `(row, col)` scatter with Gaussian values (coincident
/// draws merge, so the realised density lands slightly below the target — the
/// caller labels runs with the *measured* `nnz / (d*n)`).
fn random_csr(d: usize, n: usize, target_density: f64, seed: u64) -> CsrMatrix {
    let draws = ((d * n) as f64 * target_density).round().max(1.0) as usize;
    let rows = fill::uniform_index_vec(seed, 10, draws, d);
    let cols = fill::uniform_index_vec(seed, 11, draws, n);
    let vals = fill::gaussian_vec(seed, 12, draws);
    let mut coo = CooMatrix::with_capacity(d, n, draws);
    for i in 0..draws {
        coo.push(rows[i], cols[i], vals[i]);
    }
    CsrMatrix::from_coo(&coo)
}

fn execute(label: &str, d: usize, n: usize, devices: usize, plan: &Pipeline) -> Run {
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 42, 0);
    let pool = DevicePool::h100(devices);
    let run = pipelined_sketch(&pool, &a, plan, &ExecutorOptions::default())
        .expect("scaling configurations fit the modelled device");
    Run {
        label: label.to_string(),
        devices,
        shards: run.schedules.iter().map(|s| s.num_shards()).sum(),
        d,
        n,
        nnz: None,
        run,
    }
}

fn execute_sparse(label: &str, a: &CsrMatrix, devices: usize, plan: &Pipeline) -> Run {
    let pool = DevicePool::h100(devices);
    let run = pipelined_sketch(&pool, Operand::Csr(a), plan, &ExecutorOptions::default())
        .expect("sparse scaling configurations fit the modelled device");
    Run {
        label: label.to_string(),
        devices,
        shards: run.schedules.iter().map(|s| s.num_shards()).sum(),
        d: a.nrows(),
        n: a.ncols(),
        nnz: Some(a.nnz()),
        run,
    }
}

fn push_rows(table: &mut Table, runs: &[Run]) {
    for r in runs {
        table.push_row(vec![
            r.label.clone(),
            r.devices.to_string(),
            r.shards.to_string(),
            ms(r.run.serial_seconds * 1e3),
            ms(r.run.pipelined_seconds * 1e3),
            ms(r.run.compute_only_seconds * 1e3),
            format!("{:.2}", r.run.speedup_vs_serial()),
            pct(100.0 * r.run.overlap_efficiency()),
        ]);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_scaling.json", String::as_str)
        .to_string();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (d_strong, n) = if smoke { (1 << 12, 8) } else { (1 << 16, 16) };
    let d_weak_base = if smoke { 1 << 11 } else { 1 << 14 };
    let device_counts: &[usize] = &[1, 2, 4, 8];
    let ablation_devices = 4usize;

    let count_plan =
        |d: usize| Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(2), 7));

    // Strong scaling: fixed problem, growing pool.
    let strong: Vec<Run> = device_counts
        .iter()
        .map(|&p| execute("CountSketch", d_strong, n, p, &count_plan(d_strong)))
        .collect();

    // Weak scaling: d grows with the pool, per-device rows constant.
    let weak: Vec<Run> = device_counts
        .iter()
        .map(|&p| {
            let d = d_weak_base * p;
            execute("CountSketch", d, n, p, &count_plan(d))
        })
        .collect();

    // Overlap ablation: every kind at a fixed pool size.
    let d_ab = d_weak_base;
    let ablation_plans: Vec<(&str, Pipeline)> = vec![
        ("CountSketch", count_plan(d_ab)),
        (
            "Gaussian",
            Pipeline::single(SketchSpec::gaussian(d_ab, EmbeddingDim::Ratio(2), 3)),
        ),
        (
            "SRHT",
            Pipeline::single(SketchSpec::srht(d_ab, EmbeddingDim::Ratio(2), 4)),
        ),
        (
            "HashCountSketch",
            Pipeline::single(SketchSpec::hash_countsketch(
                d_ab,
                EmbeddingDim::Square(2),
                5,
            )),
        ),
        (
            "Count-Gauss",
            Pipeline::count_gauss(d_ab, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 6),
        ),
    ];
    let ablation: Vec<Run> = ablation_plans
        .iter()
        .map(|(label, plan)| execute(label, d_ab, n, ablation_devices, plan))
        .collect();

    // Sparse scaling: CountSketch over CSR operands at several densities,
    // sharded with the executor's zero-copy block-row views.  Labels carry the
    // *measured* density (nnz / (d*n)) of each operand.
    let d_sparse = d_weak_base;
    let densities: &[f64] = &[0.001, 0.01, 0.1];
    let sparse: Vec<Run> = densities
        .iter()
        .flat_map(|&target| {
            let a = random_csr(d_sparse, n, target, 77);
            let measured = 100.0 * a.nnz() as f64 / (d_sparse * n) as f64;
            let plan = count_plan(d_sparse);
            device_counts
                .iter()
                .map(|&p| execute_sparse(&format!("CSR CountSketch {measured:.2}%"), &a, p, &plan))
                .collect::<Vec<Run>>()
        })
        .collect();

    // Text report.
    let headers = [
        "method",
        "devices",
        "shards",
        "serial ms",
        "pipelined ms",
        "compute ms",
        "speedup",
        "overlap %",
    ];
    let mut t_strong = Table::new(
        format!("Strong scaling (d = {d_strong}, n = {n})"),
        &headers,
    );
    push_rows(&mut t_strong, &strong);
    t_strong.print();
    let mut t_weak = Table::new(
        format!("Weak scaling ({d_weak_base} rows per device, n = {n})"),
        &headers,
    );
    push_rows(&mut t_weak, &weak);
    t_weak.print();
    let mut t_ab = Table::new(
        format!("Overlap ablation (d = {d_ab}, n = {n}, {ablation_devices} devices)"),
        &headers,
    );
    push_rows(&mut t_ab, &ablation);
    t_ab.print();
    let mut t_sparse = Table::new(
        format!("Sparse CSR scaling (d = {d_sparse}, n = {n}, CountSketch)"),
        &headers,
    );
    push_rows(&mut t_sparse, &sparse);
    t_sparse.print();

    // JSON report.
    let section = |runs: &[Run]| JsonValue::Array(runs.iter().map(Run::to_json).collect());
    let doc = JsonValue::Object(vec![
        ("experiment".into(), JsonValue::Str("fig_scaling".into())),
        ("smoke".into(), JsonValue::Bool(smoke)),
        ("device".into(), JsonValue::Str("H100 (modelled)".into())),
        (
            "interconnect".into(),
            JsonValue::Str("NVLink 4 (modelled)".into()),
        ),
        ("strong_scaling".into(), section(&strong)),
        ("weak_scaling".into(), section(&weak)),
        ("overlap_ablation".into(), section(&ablation)),
        ("sparse_scaling".into(), section(&sparse)),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write scaling JSON");
    println!("wrote {out_path}");

    // Perfetto-compatible trace of one representative execution: the strong
    // scaling problem on a 4-device pool, recorded end to end.  A single traced
    // run keeps every track's sim timestamps monotone (each pool starts its
    // modelled clocks at zero), and the modelled half of the trace is fully
    // deterministic — same bytes on every host and thread count.
    if let Some(path) = &trace_path {
        let trace_devices = 4usize;
        let collector = TraceCollector::shared();
        let a = Matrix::random_gaussian(d_strong, n, Layout::RowMajor, 42, 0);
        let pool = DevicePool::h100(trace_devices);
        pool.attach_recorder(collector.clone());
        let run = pipelined_sketch(
            &pool,
            &a,
            &count_plan(d_strong),
            &ExecutorOptions::default(),
        )
        .expect("traced run fits the modelled device");
        let metrics = MetricsRegistry::new();
        run.record_metrics(&metrics, &pool);
        let trace_doc = chrome_trace_with_metrics(&collector.snapshot(), Some(&metrics));
        write_json(std::path::Path::new(path), &trace_doc).expect("write trace JSON");
        println!(
            "wrote {path} ({} events, {trace_devices} devices)",
            collector.len()
        );
    }

    // Gate: on >= 2 devices the pipelined makespan must beat the serial one.
    let mut violations = 0usize;
    for r in strong
        .iter()
        .chain(weak.iter())
        .chain(ablation.iter())
        .chain(sparse.iter())
    {
        if r.devices >= 2 && r.run.pipelined_seconds >= r.run.serial_seconds {
            eprintln!(
                "VIOLATION: {} on {} devices: pipelined {:.6} ms >= serial {:.6} ms",
                r.label,
                r.devices,
                r.run.pipelined_seconds * 1e3,
                r.run.serial_seconds * 1e3
            );
            violations += 1;
        }
    }
    if violations > 0 {
        eprintln!("{violations} configuration(s) failed the overlap gate");
        std::process::exit(1);
    }
    println!("overlap gate passed: pipelined < serial on every pool of >= 2 devices");
}
