//! Regenerates Table 1: embedding dimensions, arithmetic, read/writes and distortion
//! for every sketch, plus a measured-counter check at a small size.

use sketch_bench::analytic::SketchMethod;
use sketch_bench::report::{sci, Table};
use sketch_core::complexity::SketchKind;

fn main() {
    let (d, n, eps) = (1usize << 21, 128usize, 0.5f64);
    let mut symbolic = Table::new(
        format!("Table 1 (symbolic, evaluated at d = 2^21, n = {n}, eps = {eps})"),
        &[
            "Sketch",
            "Embed dim",
            "Arithmetic",
            "Read/Writes",
            "Max distortion",
        ],
    );
    for kind in SketchKind::ALL {
        symbolic.push_row(vec![
            kind.label().to_string(),
            sci(kind.embedding_dim(n, eps)),
            sci(kind.arithmetic(d, n)),
            sci(kind.read_writes(d, n)),
            format!("{:.2}", kind.max_distortion(eps)),
        ]);
    }
    symbolic.print();

    let mut measured = Table::new(
        "Measured kernel counters (d = 2^16, n = 64, experimental embedding dims)",
        &["Method", "flops", "bytes read", "bytes written"],
    );
    let (dm, nm) = (1usize << 16, 64usize);
    for method in SketchMethod::ALL {
        let cost = method.apply_cost(dm, nm);
        measured.push_row(vec![
            method.label().to_string(),
            sci(cost.flops as f64),
            sci(cost.bytes_read as f64),
            sci(cost.bytes_written as f64),
        ]);
    }
    measured.print();
}
