//! Fault-injection figure: device death under the pipelined executor, swept
//! over fault time × pool size.
//!
//! For each cell a fixed Count-Gauss pipeline runs twice on modelled H100
//! pools: once fault-free, once with the highest-ordinal device dying at a
//! fraction of the fault-free makespan.  The executor reschedules the dying
//! device's stage over the survivors and regenerates the affected shards from
//! their Philox seeds, so the recovered result must be **bit-for-bit
//! identical** to the fault-free run — the binary exits non-zero if a single
//! bit drifts, and also gates that the recovered makespan stays bounded
//! (below 2x the fault-free serialized cost), so the CI smoke run doubles as
//! a chaos regression gate.
//!
//! Run with: `cargo run --release -p sketch-bench --bin fig_faults [-- --smoke] [--out PATH] [--trace PATH]`

use sketch_bench::report::{ms, Table};
use sketch_core::{EmbeddingDim, JsonValue, Operand, Pipeline};
use sketch_dist::{pipelined_sketch, ExecutorOptions, PipelinedRun};
use sketch_gpu_sim::{DevicePool, FaultPlan, FaultSpec};
use sketch_la::{Layout, Matrix};
use sketch_obs::{chrome_trace_with_metrics, write_json, MetricsRegistry, TraceCollector};

/// One swept configuration: the fault-free reference and the recovered run.
struct Cell {
    devices: usize,
    fault_frac: f64,
    fault_at_s: f64,
    clean: PipelinedRun,
    faulted: PipelinedRun,
    bits_identical: bool,
}

impl Cell {
    fn to_json(&self) -> JsonValue {
        let fault = &self.faulted.fault;
        JsonValue::Object(vec![
            ("devices".into(), JsonValue::UInt(self.devices as u64)),
            ("fault_frac".into(), JsonValue::Float(self.fault_frac)),
            (
                "fault_at_ms".into(),
                JsonValue::Float(self.fault_at_s * 1e3),
            ),
            (
                "clean_makespan_ms".into(),
                JsonValue::Float(self.clean.pipelined_seconds * 1e3),
            ),
            (
                "recovered_makespan_ms".into(),
                JsonValue::Float(self.faulted.pipelined_seconds * 1e3),
            ),
            (
                "clean_serial_ms".into(),
                JsonValue::Float(self.clean.serial_seconds * 1e3),
            ),
            (
                "recovery_overhead_ms".into(),
                JsonValue::Float(fault.recovery_overhead_seconds * 1e3),
            ),
            ("lost_ms".into(), JsonValue::Float(fault.lost_seconds * 1e3)),
            (
                "failures".into(),
                JsonValue::UInt(fault.failures.len() as u64),
            ),
            (
                "shards_recomputed".into(),
                JsonValue::UInt(fault.shards_recomputed as u64),
            ),
            ("survivors".into(), JsonValue::UInt(fault.survivors as u64)),
            (
                "bits_identical".into(),
                JsonValue::Bool(self.bits_identical),
            ),
        ])
    }
}

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return false;
    }
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            if a.get(i, j).to_bits() != b.get(i, j).to_bits() {
                return false;
            }
        }
    }
    true
}

fn run_cell(
    a: &Matrix,
    plan: &Pipeline,
    devices: usize,
    fault_frac: f64,
    trace: Option<&std::sync::Arc<TraceCollector>>,
) -> (Cell, Option<MetricsRegistry>) {
    let opts = ExecutorOptions::default();
    let clean_pool = DevicePool::h100(devices);
    let clean = pipelined_sketch(&clean_pool, Operand::Dense(a), plan, &opts)
        .expect("fault-free run fits the modelled pool");
    let fault_at_s = fault_frac * clean.pipelined_seconds;

    let pool = DevicePool::h100(devices);
    if let Some(collector) = trace {
        pool.attach_recorder(collector.clone());
    }
    pool.apply_fault_plan(&FaultPlan::healthy().with_fault(
        devices - 1,
        FaultSpec::Dies {
            after_sim_seconds: fault_at_s,
        },
    ));
    let faulted = pipelined_sketch(&pool, Operand::Dense(a), plan, &opts)
        .expect("recovery absorbs the death");
    let metrics = trace.map(|_| {
        let m = MetricsRegistry::new();
        faulted.record_metrics(&m, &pool);
        m
    });
    let bits_identical = bits_equal(&faulted.result, &clean.result);
    (
        Cell {
            devices,
            fault_frac,
            fault_at_s,
            clean,
            faulted,
            bits_identical,
        },
        metrics,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_faults.json", String::as_str)
        .to_string();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let d = if smoke { 1 << 12 } else { 1 << 15 };
    let n = 8usize;
    let device_counts: &[usize] = &[2, 4, 7];
    let fault_fracs: &[f64] = &[0.25, 0.5, 0.75];
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 20_260_808, 0);
    let plan = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 9);

    let mut cells: Vec<Cell> = Vec::new();
    for &devices in device_counts {
        for &frac in fault_fracs {
            let (cell, _) = run_cell(&a, &plan, devices, frac, None);
            cells.push(cell);
        }
    }

    // Text report.
    let mut table = Table::new(
        format!("Device death & bit-exact recovery (d = {d}, Count-Gauss)"),
        &[
            "devices",
            "fault at",
            "clean ms",
            "recovered ms",
            "overhead ms",
            "shards redone",
            "bits",
        ],
    );
    for c in &cells {
        table.push_row(vec![
            c.devices.to_string(),
            format!("{:.0}% M", c.fault_frac * 100.0),
            ms(c.clean.pipelined_seconds * 1e3),
            ms(c.faulted.pipelined_seconds * 1e3),
            ms(c.faulted.fault.recovery_overhead_seconds * 1e3),
            c.faulted.fault.shards_recomputed.to_string(),
            if c.bits_identical { "=" } else { "DRIFT" }.to_string(),
        ]);
    }
    table.print();

    // JSON report.
    let doc = JsonValue::Object(vec![
        ("experiment".into(), JsonValue::Str("fig_faults".into())),
        ("smoke".into(), JsonValue::Bool(smoke)),
        ("device".into(), JsonValue::Str("H100 (modelled)".into())),
        (
            "interconnect".into(),
            JsonValue::Str("NVLink 4 (modelled)".into()),
        ),
        ("d".into(), JsonValue::UInt(d as u64)),
        ("n".into(), JsonValue::UInt(n as u64)),
        (
            "cells".into(),
            JsonValue::Array(cells.iter().map(Cell::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write faults JSON");
    println!("wrote {out_path}");

    // Perfetto-compatible trace of one representative cell: the largest pool
    // with a mid-run death, re-run with the pool recorder attached so the
    // dedicated fault track (death point + recovery span) rides beside the
    // ordinary compute/comm streams, and the `fault.*` counters ride under
    // `sketchMetrics`.
    if let Some(path) = &trace_path {
        let collector = TraceCollector::shared();
        let (cell, metrics) = run_cell(
            &a,
            &plan,
            *device_counts.last().expect("sweep is non-empty"),
            0.5,
            Some(&collector),
        );
        let events = collector.snapshot();
        let trace_doc = chrome_trace_with_metrics(&events, metrics.as_ref());
        write_json(std::path::Path::new(path), &trace_doc).expect("write trace JSON");
        println!(
            "wrote {path} ({} events, {} failure(s))",
            events.len(),
            cell.faulted.fault.failures.len()
        );
    }

    // Gates: every injected death must be observed, recovered bit-exactly,
    // and stay within the overhead bound (recovered makespan below twice the
    // fault-free serialized cost).
    let mut violations = 0usize;
    for c in &cells {
        if !c.bits_identical {
            eprintln!(
                "VIOLATION: {} devices, death at {:.0}% M: recovered bits drifted",
                c.devices,
                c.fault_frac * 100.0
            );
            violations += 1;
        }
        if c.faulted.fault.failures.is_empty() {
            eprintln!(
                "VIOLATION: {} devices, death at {:.0}% M: fault never fired",
                c.devices,
                c.fault_frac * 100.0
            );
            violations += 1;
        }
        if c.faulted.pipelined_seconds >= 2.0 * c.clean.serial_seconds {
            eprintln!(
                "VIOLATION: {} devices, death at {:.0}% M: recovered {:.6} ms >= 2x serial {:.6} ms",
                c.devices,
                c.fault_frac * 100.0,
                c.faulted.pipelined_seconds * 1e3,
                c.clean.serial_seconds * 1e3
            );
            violations += 1;
        }
    }
    if violations > 0 {
        eprintln!("{violations} configuration(s) failed the fault-recovery gate");
        std::process::exit(1);
    }
    println!(
        "fault-recovery gate passed: every death recovered bit-exactly within the overhead bound"
    );
}
