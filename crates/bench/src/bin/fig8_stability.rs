//! Regenerates Figure 8: sensitivity of the least squares residual to the condition
//! number of `A` (`b = A·e`, exact solution exists).

use sketch_bench::lsq_experiments::stability_rows;
use sketch_bench::report::{sci, Table};

fn main() {
    let mut table = Table::new(
        "Figure 8 — residual vs cond(A), b = A*ones (normal equations fail past ~1e8)",
        &["cond(A)", "method", "||b - Ax|| / ||b||"],
    );
    for r in stability_rows(42) {
        table.push_row(vec![
            sci(r.kappa),
            r.method.to_string(),
            r.residual
                .map(sci)
                .unwrap_or_else(|| "failed (POTRF breakdown)".into()),
        ]);
    }
    table.print();
}
