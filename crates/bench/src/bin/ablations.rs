//! Design-choice ablations called out in DESIGN.md:
//! atomic vs gather CountSketch kernel, row- vs column-major operand, the multisketch
//! transpose trick, radix-2 vs radix-4 FWHT, and SyRK vs GeMM for the Gram matrix.

use sketch_bench::report::{ms, Table};
use sketch_core::fwht::{fwht_in_place, fwht_radix2_in_place};
use sketch_core::{EmbeddingDim, Pipeline, SketchOperator, SketchSpec};
use sketch_gpu_sim::Device;
use sketch_la::blas3::{gram_gemm, syrk_gram};
use sketch_la::{Layout, Matrix};
use sketch_obs::Stopwatch;

fn time_wall<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Stopwatch::start();
    let out = f();
    (out, start.elapsed_seconds() * 1e3)
}

fn main() {
    let d = 1 << 16;
    let n = 32;
    let device = Device::h100();
    let a_rm = Matrix::random_gaussian(d, n, Layout::RowMajor, 42, 0);
    let a_cm = a_rm.to_layout(&device, Layout::ColMajor);

    let mut table = Table::new(
        format!("Ablations at d = 2^16, n = {n} (modelled H100 ms | measured wall ms)"),
        &["experiment", "variant", "model ms", "wall ms"],
    );

    // 1. Atomic (Algorithm 2) vs gather vs SpMM CountSketch.
    let count_spec = SketchSpec::countsketch(d, EmbeddingDim::Square(2), 7).resolve(n);
    let cs = count_spec.build_countsketch(&device).expect("valid spec");
    for (label, run) in [
        ("atomic (Alg 2)", 0usize),
        ("gather (no atomics)", 1),
        ("SpMM baseline", 2),
    ] {
        let dev = Device::h100();
        let csl = count_spec.build_countsketch(&dev).expect("valid spec");
        dev.tracker().reset();
        let (_, wall) = time_wall(|| match run {
            0 => csl.apply_matrix(&dev, &a_rm).unwrap(),
            1 => csl.apply_matrix_gather(&dev, &a_rm).unwrap(),
            _ => csl.apply_matrix_spmm(&dev, &a_rm).unwrap(),
        });
        let model = dev.model_time(&dev.tracker().snapshot()) * 1e3;
        table.push_row(vec![
            "CountSketch kernel".into(),
            label.into(),
            ms(model),
            ms(wall),
        ]);
    }

    // 2. Row-major vs column-major operand for Algorithm 2.
    for (label, operand) in [("row-major A", &a_rm), ("column-major A", &a_cm)] {
        let dev = Device::h100();
        let (_, wall) = time_wall(|| cs.apply_matrix(&dev, operand).unwrap());
        let model = dev.model_time(&dev.tracker().snapshot()) * 1e3;
        table.push_row(vec![
            "operand layout".into(),
            label.into(),
            ms(model),
            ms(wall),
        ]);
    }

    // 3. Multisketch transpose trick vs naive conversion.
    let multi = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 9)
        .build_multisketch(&device, n)
        .expect("fits on the device");
    for (label, naive) in [("transpose trick", false), ("naive conversion", true)] {
        let dev = Device::h100();
        let op = if naive {
            multi.clone().with_naive_layout_handling()
        } else {
            multi.clone()
        };
        let (_, wall) = time_wall(|| op.apply_matrix(&dev, &a_rm).unwrap());
        let model = dev.model_time(&dev.tracker().snapshot()) * 1e3;
        table.push_row(vec![
            "multisketch layout".into(),
            label.into(),
            ms(model),
            ms(wall),
        ]);
    }

    // 4. Radix-4 vs radix-2 FWHT (wall clock only; same modelled traffic).
    let mut v4 = sketch_rng::fill::gaussian_vec(1, 0, 1 << 20);
    let mut v2 = v4.clone();
    let (_, wall4) = time_wall(|| fwht_in_place(&mut v4));
    let (_, wall2) = time_wall(|| fwht_radix2_in_place(&mut v2));
    table.push_row(vec![
        "FWHT radix".into(),
        "radix-4 (Alg 3)".into(),
        "-".into(),
        ms(wall4),
    ]);
    table.push_row(vec![
        "FWHT radix".into(),
        "radix-2".into(),
        "-".into(),
        ms(wall2),
    ]);

    // 5. SyRK vs GeMM for the Gram matrix.
    for (label, use_syrk) in [("GeMM (paper's choice)", false), ("SyRK", true)] {
        let dev = Device::h100();
        let (_, wall) = time_wall(|| {
            if use_syrk {
                syrk_gram(&dev, &a_cm)
            } else {
                gram_gemm(&dev, &a_cm).unwrap()
            }
        });
        let model = dev.model_time(&dev.tracker().snapshot()) * 1e3;
        table.push_row(vec![
            "Gram matrix".into(),
            label.into(),
            ms(model),
            ms(wall),
        ]);
    }

    table.print();
}
