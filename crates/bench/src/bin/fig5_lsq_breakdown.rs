//! Regenerates Figure 5: the per-phase runtime breakdown of each least squares solver.
//!
//! With `--trace PATH` the binary additionally records one representative
//! solve (the largest measured point, multisketch method) end to end and
//! writes a Perfetto-loadable Chrome trace: profiler phases, kernel spans and
//! the executor's stream schedule, with the metrics summary attached.
//!
//! Run with: `cargo run --release -p sketch-bench --bin fig5_lsq_breakdown [-- --trace PATH]`

use sketch_bench::config::ExperimentScale;
use sketch_bench::lsq_experiments::{lsq_breakdown_measured_rows, lsq_breakdown_paper_rows};
use sketch_bench::report::{ms, Table};
use sketch_gpu_sim::DevicePool;
use sketch_lsq::{solve, LsqProblem, Method};
use sketch_obs::{chrome_trace_with_metrics, write_json, MetricsRegistry, TraceCollector};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut paper = Table::new(
        "Figure 5 — paper scale (modelled H100 ms per phase)",
        &["d", "n", "method", "total ms", "phases"],
    );
    for r in lsq_breakdown_paper_rows() {
        let phases = r
            .phase_ms
            .iter()
            .map(|(p, t)| format!("{}={:.3}", p.label(), t))
            .collect::<Vec<_>>()
            .join(", ");
        paper.push_row(vec![
            format!("2^{}", r.point.d.trailing_zeros()),
            r.point.n.to_string(),
            r.method.to_string(),
            if r.out_of_memory {
                "OOM".into()
            } else {
                ms(r.total_model_ms)
            },
            if r.out_of_memory {
                "blank bar".into()
            } else {
                phases
            },
        ]);
    }
    paper.print();

    let mut measured = Table::new(
        "Figure 5 — measured at reduced sizes (modelled ms; wall clock alongside)",
        &["d", "n", "method", "total model ms", "wall ms"],
    );
    for r in lsq_breakdown_measured_rows(42) {
        measured.push_row(vec![
            format!("2^{}", r.point.d.trailing_zeros()),
            r.point.n.to_string(),
            r.method.to_string(),
            ms(r.total_model_ms),
            ms(r.wall_ms),
        ]);
    }
    measured.print();

    // One traced solve: a single pool and a single profiler keep every trace
    // track's modelled timestamps monotone, and the modelled half of the trace
    // is deterministic (same bytes on every host and thread count).
    if let Some(path) = &trace_path {
        let point = *ExperimentScale::Measured
            .sweep()
            .last()
            .expect("the measured sweep is never empty");
        let collector = TraceCollector::shared();
        let pool = DevicePool::h100(1);
        pool.attach_recorder(collector.clone());
        let problem = LsqProblem::performance(pool.device(0), point.d, point.n, 42)
            .expect("measured sweep sizes are always valid");
        let sol = solve(&pool, &problem, Method::MultiSketch, 42)
            .expect("the multisketch solve succeeds at measured sizes");

        let metrics = MetricsRegistry::new();
        let total = pool.total_cost();
        metrics.add("lsq.kernel_launches", total.launches);
        metrics.add("lsq.bytes_read", total.bytes_read);
        metrics.add("lsq.bytes_written", total.bytes_written);
        metrics.add("lsq.flops", total.flops);
        metrics.add("lsq.phases", sol.breakdown.phases.len() as u64);

        let trace_doc = chrome_trace_with_metrics(&collector.snapshot(), Some(&metrics));
        write_json(std::path::Path::new(path), &trace_doc).expect("write trace JSON");
        println!(
            "wrote {path} ({} events, method {})",
            collector.len(),
            sol.method
        );
    }
}
