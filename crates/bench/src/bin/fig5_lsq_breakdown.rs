//! Regenerates Figure 5: the per-phase runtime breakdown of each least squares solver.

use sketch_bench::lsq_experiments::{lsq_breakdown_measured_rows, lsq_breakdown_paper_rows};
use sketch_bench::report::{ms, Table};

fn main() {
    let mut paper = Table::new(
        "Figure 5 — paper scale (modelled H100 ms per phase)",
        &["d", "n", "method", "total ms", "phases"],
    );
    for r in lsq_breakdown_paper_rows() {
        let phases = r
            .phase_ms
            .iter()
            .map(|(p, t)| format!("{}={:.3}", p.label(), t))
            .collect::<Vec<_>>()
            .join(", ");
        paper.push_row(vec![
            format!("2^{}", r.point.d.trailing_zeros()),
            r.point.n.to_string(),
            r.method.to_string(),
            if r.out_of_memory {
                "OOM".into()
            } else {
                ms(r.total_model_ms)
            },
            if r.out_of_memory {
                "blank bar".into()
            } else {
                phases
            },
        ]);
    }
    paper.print();

    let mut measured = Table::new(
        "Figure 5 — measured at reduced sizes (modelled ms; wall clock alongside)",
        &["d", "n", "method", "total model ms", "wall ms"],
    );
    for r in lsq_breakdown_measured_rows(42) {
        measured.push_row(vec![
            format!("2^{}", r.point.d.trailing_zeros()),
            r.point.n.to_string(),
            r.method.to_string(),
            ms(r.total_model_ms),
            ms(r.wall_ms),
        ]);
    }
    measured.print();
}
