//! Section 7: distributed sketching — per-process compute and communication volumes.

use sketch_bench::report::{sci, Table};
use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};
use sketch_dist::{
    distributed_countsketch, distributed_gaussian, distributed_multisketch, BlockRowMatrix,
    DistributedRun,
};
use sketch_gpu_sim::Device;
use sketch_la::{Layout, Matrix};

fn main() {
    let device = Device::unlimited();
    let d = 1 << 14;
    let n = 32;
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 42, 0);

    // The three Section 7 sketches, declared as specs and built once; the typed
    // drivers then reuse each global sketch across every process count (the
    // spec-driven `distributed_sketch` entry point would rebuild per call).
    let gauss = SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), 2)
        .resolve(n)
        .build_gaussian(&device)
        .expect("fits in memory");
    let count = SketchSpec::countsketch(d, EmbeddingDim::Square(2), 1)
        .resolve(n)
        .build_countsketch(&device)
        .expect("valid spec");
    let multi = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 3)
        .build_multisketch(&device, n)
        .expect("fits in memory");

    let mut table = Table::new(
        "Section 7 — distributed sketching (d = 2^14, n = 32)",
        &["p", "method", "comm words", "per-process flops (max)"],
    );
    for p in [2usize, 4, 8, 16] {
        let dist = BlockRowMatrix::split(&a, p);
        let runs: [(&str, DistributedRun); 3] = [
            (
                "Gaussian",
                distributed_gaussian(&device, &dist, &gauss).unwrap(),
            ),
            (
                "CountSketch",
                distributed_countsketch(&device, &dist, &count).unwrap(),
            ),
            (
                "MultiSketch",
                distributed_multisketch(&device, &dist, &multi).unwrap(),
            ),
        ];
        for (label, run) in runs {
            let max_flops = run
                .per_process_cost
                .iter()
                .map(|c| c.flops)
                .max()
                .unwrap_or(0);
            table.push_row(vec![
                p.to_string(),
                label.to_string(),
                sci(run.comm.total_words() as f64),
                sci(max_flops as f64),
            ]);
        }
    }
    table.print();
    println!(
        "The multisketch matches the Gaussian's communication volume while keeping the \
         CountSketch's tiny per-process compute cost (Section 7's conclusion)."
    );
}
