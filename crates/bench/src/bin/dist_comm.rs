//! Section 7: distributed sketching — per-process compute and communication volumes.

use sketch_bench::report::{sci, Table};
use sketch_core::{CountSketch, GaussianSketch, MultiSketch};
use sketch_dist::{
    distributed_countsketch, distributed_gaussian, distributed_multisketch, BlockRowMatrix,
};
use sketch_gpu_sim::Device;
use sketch_la::{Layout, Matrix};

fn main() {
    let device = Device::unlimited();
    let d = 1 << 14;
    let n = 32;
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 42, 0);

    let count = CountSketch::generate(&device, d, 2 * n * n, 1);
    let gauss = GaussianSketch::generate(&device, d, 2 * n, 2).unwrap();
    let multi = MultiSketch::generate(&device, d, 2 * n * n, 2 * n, 3).unwrap();

    let mut table = Table::new(
        "Section 7 — distributed sketching (d = 2^14, n = 32)",
        &["p", "method", "comm words", "per-process flops (max)"],
    );
    for p in [2usize, 4, 8, 16] {
        let dist = BlockRowMatrix::split(&a, p);
        let runs = [
            (
                "Gaussian",
                distributed_gaussian(&device, &dist, &gauss).unwrap(),
            ),
            (
                "CountSketch",
                distributed_countsketch(&device, &dist, &count).unwrap(),
            ),
            (
                "MultiSketch",
                distributed_multisketch(&device, &dist, &multi).unwrap(),
            ),
        ];
        for (label, run) in runs {
            let max_flops = run
                .per_process_cost
                .iter()
                .map(|c| c.flops)
                .max()
                .unwrap_or(0);
            table.push_row(vec![
                p.to_string(),
                label.to_string(),
                sci(run.comm.total_words() as f64),
                sci(max_flops as f64),
            ]);
        }
    }
    table.print();
    println!(
        "The multisketch matches the Gaussian's communication volume while keeping the \
         CountSketch's tiny per-process compute cost (Section 7's conclusion)."
    );
}
