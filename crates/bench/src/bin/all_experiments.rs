//! Runs every figure/table harness in sequence (the EXPERIMENTS.md generator).

use std::process::Command;

fn main() {
    let binaries = [
        "table1",
        "fig2_sketch_times",
        "fig3_mem_throughput",
        "fig4_flops",
        "fig5_lsq_breakdown",
        "fig6_residual_easy",
        "fig7_residual_hard",
        "fig8_stability",
        "dist_comm",
        "ablations",
    ];
    // When invoked through cargo the sibling binaries live next to this executable.
    let current = std::env::current_exe().expect("current executable path");
    let dir = current
        .parent()
        .expect("executable directory")
        .to_path_buf();
    for name in binaries {
        println!("\n########## {name} ##########");
        let path = dir.join(name);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-q",
                    "-p",
                    "sketch-bench",
                    "--bin",
                    name,
                ])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{name} exited with {s}"),
            Err(e) => eprintln!("failed to launch {name}: {e}"),
        }
    }
}
