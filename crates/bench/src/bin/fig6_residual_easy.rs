//! Regenerates Figure 6: relative least squares residuals on the "easy" (low noise)
//! problem.

use sketch_bench::lsq_experiments::residual_rows;
use sketch_bench::report::{sci, Table};

fn main() {
    let mut table = Table::new(
        "Figure 6 — relative residuals, easy problem (eta ~ N(0, 0.01))",
        &["d", "n", "method", "||b - Ax|| / ||b||"],
    );
    for r in residual_rows(false, 42) {
        table.push_row(vec![
            format!("2^{}", r.point.d.trailing_zeros()),
            r.point.n.to_string(),
            r.method.to_string(),
            r.residual.map(sci).unwrap_or_else(|| "failed".into()),
        ]);
    }
    table.print();
}
