//! Measured wall-clock benchmark: the real kernels timed on this host under the
//! threaded rayon shim, swept across thread counts, emitted as
//! `BENCH_walltime.json`.
//!
//! Every other figure binary reports *modelled* H100 times.  This one measures
//! what the build actually does: six kernels (dense GEMM, the SYRK-path Gram
//! matrix, the tiled FWHT, the CountSketch ordered-gather scatter, CSR SpMM,
//! and the end-to-end `sketch_and_solve` least-squares driver) each run under
//! explicit pools of
//! 1/2/4 threads (`--smoke`: 1/2), with warm-up discarded and median/min over
//! repeated samples reported per row.  The modelled H100 time is recorded
//! alongside for scale.
//!
//! Two gates, so the CI smoke run doubles as a regression test:
//!
//! * **bitwise** (unconditional): every kernel's output at every thread count
//!   must be bit-for-bit identical to its 1-thread output — the threading
//!   model's core promise (deterministic task boundaries + ordered reduction).
//! * **speedup** (only when the host has more than one core): the best
//!   multi-thread speedup among large kernels must clear a sanity threshold
//!   (1.0 full, 0.5 smoke).  On a single-core host a measured speedup is physically
//!   impossible, so the gate is skipped and recorded as such in the JSON —
//!   the numbers stay honest either way.
//!
//! Run with: `cargo run --release -p sketch-bench --bin fig_walltime [-- --smoke] [--out PATH]`

use sketch_bench::report::{ms, Table};
use sketch_bench::walltime::{
    bits_of, host_cores, time_fn, time_fn_traced, with_thread_pool, Sample,
};
use sketch_core::fwht::{fwht_matrix_columns, DEFAULT_TILE};
use sketch_core::{CountSketch, EmbeddingDim, JsonValue, Operand, Pipeline, SketchOperator};
use sketch_dist::ExecutorOptions;
use sketch_gpu_sim::{Device, DevicePool};
use sketch_la::blas3::{gemm, syrk_gram};
use sketch_la::{Layout, Matrix};
use sketch_lsq::{sketch_and_solve, LsqProblem};
use sketch_obs::{chrome_trace_with_metrics, write_json, MetricsRegistry, RecorderHandle};
use sketch_rng::fill;
use sketch_sparse::{spmm_into, CooMatrix, CsrMatrix};

/// Kernels must reach this many elements before they count toward the
/// full-run speedup gate (small problems are launch-overhead-bound).
const GATE_MIN_ELEMS: usize = 1 << 20;

/// One (kernel, thread count) measurement.
struct Row {
    kernel: &'static str,
    threads: usize,
    /// Problem size in f64 elements (nnz for sparse operands) — the scale axis.
    elems: usize,
    sample: Sample,
    modelled_h100_ms: f64,
    /// Median-time ratio vs the 1-thread row of the same kernel.
    speedup_vs_1t: f64,
    /// Output bits identical to the 1-thread output of the same kernel.
    bitwise_equal: bool,
}

impl Row {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("kernel".into(), JsonValue::Str(self.kernel.into())),
            ("threads".into(), JsonValue::UInt(self.threads as u64)),
            ("elems".into(), JsonValue::UInt(self.elems as u64)),
            (
                "median_ms".into(),
                JsonValue::Float(self.sample.median_ms()),
            ),
            ("min_ms".into(), JsonValue::Float(self.sample.min_ms())),
            (
                "samples".into(),
                JsonValue::UInt(self.sample.samples as u64),
            ),
            (
                "modelled_h100_ms".into(),
                JsonValue::Float(self.modelled_h100_ms),
            ),
            ("speedup_vs_1t".into(), JsonValue::Float(self.speedup_vs_1t)),
            ("bitwise_equal".into(), JsonValue::Bool(self.bitwise_equal)),
        ])
    }
}

/// Fold per-thread-count measurements into rows: speedups and bitwise equality
/// are both computed against the 1-thread entry (always the first in `sweep`).
fn finish_rows(
    kernel: &'static str,
    elems: usize,
    modelled_h100_ms: f64,
    sweep: Vec<(usize, Sample, Vec<u64>)>,
) -> Vec<Row> {
    let base_median = sweep[0].1.median_ns;
    let base_bits = sweep[0].2.clone();
    sweep
        .into_iter()
        .map(|(threads, sample, bits)| Row {
            kernel,
            threads,
            elems,
            sample,
            modelled_h100_ms,
            speedup_vs_1t: base_median / sample.median_ns,
            bitwise_equal: bits == base_bits,
        })
        .collect()
}

/// Sample `routine`, emitting wall-track trace events named `name` when a
/// recorder is attached (`--trace`).
fn sample_kernel(trace: Option<&RecorderHandle>, name: &str, routine: &mut impl FnMut()) -> Sample {
    match trace {
        Some(recorder) => time_fn_traced(recorder, name, routine),
        None => time_fn(routine),
    }
}

/// Modelled H100 roofline time (ms) for one execution of `run`.
fn modelled_ms_of(device: &Device, run: impl FnOnce()) -> f64 {
    let (_, cost) = device.tracker().measure(run);
    device.model_time(&cost) * 1e3
}

/// Deterministic random CSR matrix targeting `target_density` stored fill
/// (same construction as `fig_scaling`; coincident draws merge).
fn random_csr(d: usize, n: usize, target_density: f64, seed: u64) -> CsrMatrix {
    let draws = ((d * n) as f64 * target_density).round().max(1.0) as usize;
    let rows = fill::uniform_index_vec(seed, 10, draws, d);
    let cols = fill::uniform_index_vec(seed, 11, draws, n);
    let vals = fill::gaussian_vec(seed, 12, draws);
    let mut coo = CooMatrix::with_capacity(d, n, draws);
    for i in 0..draws {
        coo.push(rows[i], cols[i], vals[i]);
    }
    CsrMatrix::from_coo(&coo)
}

/// Dense GEMM: `C = A B` with a fresh output each iteration.
fn bench_gemm(grid: &[usize], smoke: bool, trace: Option<&RecorderHandle>) -> Vec<Row> {
    let (m, k, n) = if smoke {
        (256, 256, 64)
    } else {
        (512, 512, 128)
    };
    let device = Device::h100();
    let a = Matrix::random_gaussian(m, k, Layout::RowMajor, 11, 0);
    let b = Matrix::random_gaussian(k, n, Layout::RowMajor, 12, 0);
    let modelled = modelled_ms_of(&device, || {
        gemm(&device, 1.0, &a, &b, 0.0, None).expect("gemm fits the modelled device");
    });
    let mut sweep = Vec::new();
    for &t in grid {
        let (sample, bits) = with_thread_pool(t, || {
            let mut c = None;
            let sample = sample_kernel(trace, &format!("gemm @{t}t"), &mut || {
                c = Some(gemm(&device, 1.0, &a, &b, 0.0, None).expect("gemm fits"));
            });
            (
                sample,
                bits_of(c.expect("at least one sample ran").as_slice()),
            )
        });
        sweep.push((t, sample, bits));
    }
    finish_rows("gemm", m * k, modelled, sweep)
}

/// Gram matrix `G = AᵀA` through the SYRK path (upper triangle computed, lower
/// mirrored) — the bottleneck of `sketch_and_solve`'s normal-equations phase.
fn bench_gram(grid: &[usize], smoke: bool, trace: Option<&RecorderHandle>) -> Vec<Row> {
    let (d, n) = if smoke { (2048, 128) } else { (4096, 256) };
    let device = Device::h100();
    let a = Matrix::random_gaussian(d, n, Layout::ColMajor, 61, 0);
    let modelled = modelled_ms_of(&device, || {
        let _ = syrk_gram(&device, &a);
    });
    let mut sweep = Vec::new();
    for &t in grid {
        let (sample, bits) = with_thread_pool(t, || {
            let mut g = None;
            let sample = sample_kernel(trace, &format!("gram @{t}t"), &mut || {
                g = Some(syrk_gram(&device, &a));
            });
            (
                sample,
                bits_of(g.expect("at least one sample ran").as_slice()),
            )
        });
        sweep.push((t, sample, bits));
    }
    finish_rows("gram", d * n, modelled, sweep)
}

/// Tiled FWHT over the columns of a tall matrix, restored from a pristine
/// copy each iteration (the transform is in-place).
fn bench_fwht(grid: &[usize], smoke: bool, trace: Option<&RecorderHandle>) -> Vec<Row> {
    let d = if smoke { 1 << 15 } else { 1 << 18 };
    let n = 4;
    let device = Device::h100();
    let pristine = Matrix::random_gaussian(d, n, Layout::ColMajor, 21, 0);
    let mut work = pristine.clone();
    let modelled = modelled_ms_of(&device, || {
        fwht_matrix_columns(&device, &mut work, DEFAULT_TILE);
    });
    let mut sweep = Vec::new();
    for &t in grid {
        let (sample, bits) = with_thread_pool(t, || {
            let sample = sample_kernel(trace, &format!("fwht @{t}t"), &mut || {
                work.as_mut_slice().copy_from_slice(pristine.as_slice());
                fwht_matrix_columns(&device, &mut work, DEFAULT_TILE);
            });
            (sample, bits_of(work.as_slice()))
        });
        sweep.push((t, sample, bits));
    }
    finish_rows("fwht", d * n, modelled, sweep)
}

/// The CountSketch kernel (ordered gather) into a reused output buffer.
fn bench_countsketch(grid: &[usize], smoke: bool, trace: Option<&RecorderHandle>) -> Vec<Row> {
    let d = if smoke { 1 << 14 } else { 1 << 17 };
    let (n, k) = (8, 4096);
    let device = Device::h100();
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 31, 0);
    let cs = CountSketch::generate(&device, d, k, 32);
    let mut out = Matrix::zeros_with_layout(k, n, Layout::RowMajor);
    let modelled = modelled_ms_of(&device, || {
        cs.apply_into(&device, Operand::Dense(&a), &mut out.view_mut())
            .expect("countsketch fits the modelled device");
    });
    let mut sweep = Vec::new();
    for &t in grid {
        let (sample, bits) = with_thread_pool(t, || {
            let sample = sample_kernel(trace, &format!("countsketch @{t}t"), &mut || {
                cs.apply_into(&device, Operand::Dense(&a), &mut out.view_mut())
                    .expect("countsketch fits");
            });
            (sample, bits_of(out.as_slice()))
        });
        sweep.push((t, sample, bits));
    }
    finish_rows("countsketch_scatter", d * n, modelled, sweep)
}

/// Row-parallel CSR SpMM into a reused output buffer.
fn bench_spmm(grid: &[usize], smoke: bool, trace: Option<&RecorderHandle>) -> Vec<Row> {
    let (k, d) = if smoke {
        (1024, 1 << 14)
    } else {
        (4096, 1 << 17)
    };
    let n = 8;
    let device = Device::h100();
    let s = random_csr(k, d, 0.002, 41);
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 42, 0);
    let mut out = Matrix::zeros_with_layout(k, n, Layout::RowMajor);
    let modelled = modelled_ms_of(&device, || {
        spmm_into(&device, &s, &a, &mut out.view_mut());
    });
    let nnz = s.nnz();
    let mut sweep = Vec::new();
    for &t in grid {
        let (sample, bits) = with_thread_pool(t, || {
            let sample = sample_kernel(trace, &format!("spmm @{t}t"), &mut || {
                spmm_into(&device, &s, &a, &mut out.view_mut());
            });
            (sample, bits_of(out.as_slice()))
        });
        sweep.push((t, sample, bits));
    }
    finish_rows("spmm_csr", nnz, modelled, sweep)
}

/// End-to-end sketch-and-solve with the Count-Gauss pipeline.
fn bench_sketch_and_solve(grid: &[usize], smoke: bool, trace: Option<&RecorderHandle>) -> Vec<Row> {
    let d = if smoke { 1 << 12 } else { 1 << 14 };
    let n = 16;
    let pool = DevicePool::h100(1);
    let device = pool.device(0);
    let problem =
        LsqProblem::performance(device, d, n, 51).expect("problem fits the modelled device");
    let plan = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 52);
    let opts = ExecutorOptions::default();
    let modelled = modelled_ms_of(device, || {
        let _ = sketch_and_solve(&pool, &problem, &plan, &opts).expect("solver succeeds");
    });
    let mut sweep = Vec::new();
    for &t in grid {
        let (sample, bits) = with_thread_pool(t, || {
            let mut x = None;
            let sample = sample_kernel(trace, &format!("sketch_and_solve @{t}t"), &mut || {
                let (solution, _) =
                    sketch_and_solve(&pool, &problem, &plan, &opts).expect("solver succeeds");
                x = Some(solution.x);
            });
            (sample, bits_of(&x.expect("at least one sample ran")))
        });
        sweep.push((t, sample, bits));
    }
    finish_rows("sketch_and_solve", d * n, modelled, sweep)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_walltime.json", String::as_str)
        .to_string();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let grid: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let cores = host_cores();
    println!("host cores: {cores}; thread grid: {grid:?}; smoke: {smoke}");

    let collector = trace_path
        .as_ref()
        .map(|_| sketch_obs::TraceCollector::shared());
    let trace: Option<RecorderHandle> = collector.clone().map(|c| c as RecorderHandle);

    let mut rows: Vec<Row> = Vec::new();
    rows.extend(bench_gemm(grid, smoke, trace.as_ref()));
    rows.extend(bench_gram(grid, smoke, trace.as_ref()));
    rows.extend(bench_fwht(grid, smoke, trace.as_ref()));
    rows.extend(bench_countsketch(grid, smoke, trace.as_ref()));
    rows.extend(bench_spmm(grid, smoke, trace.as_ref()));
    rows.extend(bench_sketch_and_solve(grid, smoke, trace.as_ref()));

    // Text report.
    let mut table = Table::new(
        format!("Measured wall-clock (host cores: {cores})"),
        &[
            "kernel",
            "threads",
            "elems",
            "median ms",
            "min ms",
            "n",
            "H100 model ms",
            "speedup",
            "bitwise",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.kernel.to_string(),
            r.threads.to_string(),
            r.elems.to_string(),
            ms(r.sample.median_ms()),
            ms(r.sample.min_ms()),
            r.sample.samples.to_string(),
            ms(r.modelled_h100_ms),
            format!("{:.2}", r.speedup_vs_1t),
            if r.bitwise_equal { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    table.print();

    // Gate 1 (unconditional): bit-for-bit equality with the 1-thread run.
    let mismatches: Vec<&Row> = rows.iter().filter(|r| !r.bitwise_equal).collect();
    for r in &mismatches {
        eprintln!(
            "VIOLATION: {} at {} threads is not bitwise-identical to 1 thread",
            r.kernel, r.threads
        );
    }
    let bitwise_status = if mismatches.is_empty() {
        "passed"
    } else {
        "FAILED"
    };

    // Gate 2 (only meaningful on a multi-core host): some large kernel must
    // show a sane multi-thread speedup.  Smoke runs use reduced sizes, so the
    // smoke gate drops the size floor and only rejects pathological slowdowns.
    let threshold = if smoke { 0.5 } else { 1.0 };
    let candidates = rows
        .iter()
        .filter(|r| r.threads > 1 && (smoke || r.elems >= GATE_MIN_ELEMS));
    let best = candidates.fold(0.0f64, |acc, r| acc.max(r.speedup_vs_1t));
    let speedup_status = if cores <= 1 {
        println!("speedup gate skipped: single-core host (best observed {best:.2}x)");
        "skipped (single-core host)".to_string()
    } else if best > threshold {
        format!("passed (best {best:.2}x > {threshold})")
    } else {
        format!("FAILED (best {best:.2}x <= {threshold})")
    };

    // JSON report.  The `host` header pins the machine the numbers came from:
    // measured wall-clock times are only comparable against the same host
    // shape (core count, swept thread counts) and compiler.
    let doc = JsonValue::Object(vec![
        ("experiment".into(), JsonValue::Str("fig_walltime".into())),
        (
            "host".into(),
            JsonValue::Object(vec![
                ("cores".into(), JsonValue::UInt(cores as u64)),
                (
                    "thread_grid".into(),
                    JsonValue::Array(grid.iter().map(|&t| JsonValue::UInt(t as u64)).collect()),
                ),
                ("rustc".into(), JsonValue::Str(sketch_obs::rustc_version())),
            ]),
        ),
        ("smoke".into(), JsonValue::Bool(smoke)),
        ("host_cores".into(), JsonValue::UInt(cores as u64)),
        (
            "thread_grid".into(),
            JsonValue::Array(grid.iter().map(|&t| JsonValue::UInt(t as u64)).collect()),
        ),
        ("bitwise_gate".into(), JsonValue::Str(bitwise_status.into())),
        (
            "speedup_gate".into(),
            JsonValue::Str(speedup_status.clone()),
        ),
        (
            "rows".into(),
            JsonValue::Array(rows.iter().map(Row::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write walltime JSON");
    println!("wrote {out_path}");

    // Perfetto-compatible trace: one wall event per timed sample, plus the
    // metrics summary (host shape and thread-pool activity).
    if let (Some(path), Some(collector)) = (&trace_path, &collector) {
        let metrics = MetricsRegistry::new();
        metrics.add("host.cores", cores as u64);
        let stats = rayon::pool_stats();
        metrics.add("rayon.batches", stats.batches);
        metrics.add("rayon.tasks", stats.tasks);
        metrics.add("rayon.inline_tasks", stats.inline_tasks);
        for r in &rows {
            metrics.observe(
                "walltime.median_ms",
                r.sample.median_ms(),
                &[0.01, 0.1, 1.0, 10.0, 100.0],
            );
        }
        let trace_doc = chrome_trace_with_metrics(&collector.snapshot(), Some(&metrics));
        write_json(std::path::Path::new(path), &trace_doc).expect("write trace JSON");
        println!("wrote {path}");
    }

    if !mismatches.is_empty() {
        eprintln!(
            "{} row(s) failed the bitwise gate — thread-count-dependent results",
            mismatches.len()
        );
        std::process::exit(1);
    }
    println!("bitwise gate passed: every kernel identical at every thread count");
    if speedup_status.starts_with("FAILED") {
        eprintln!("speedup gate {speedup_status}");
        std::process::exit(1);
    }
    println!("speedup gate {speedup_status}");
}
