//! Low-rank workload figure: randomized SVD (per test-matrix family, with and
//! without power iteration) versus the deterministic truncated-QR SVD on synthetic
//! low-rank-plus-noise matrices.
//!
//! Reports the Frobenius-relative reconstruction error and the modelled H100 time of
//! each method; the randomized paths read `A` O(1) times instead of once per
//! Householder panel, which is where their modelled-time advantage comes from.
//!
//! Run with: `cargo run --release -p sketch-bench --bin fig_lowrank [-- --smoke]`

use sketch_bench::report::{sci, Table};
use sketch_gpu_sim::Device;
use sketch_la::cond::{geometric_singular_values, matrix_with_singular_values};
use sketch_la::norms::frobenius_rel_diff;
use sketch_la::Matrix;
use sketch_lowrank::{deterministic_svd, rsvd, LowRankParams, RangeSketch};

fn frob_rel_err(device: &Device, a: &Matrix, approx: &Matrix) -> f64 {
    frobenius_rel_diff(device, a, approx).expect("matching shapes")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // (m, n, k) problem sizes; smoke mode keeps CI fast.
    let sizes: &[(usize, usize, usize)] = if smoke {
        &[(512, 48, 6)]
    } else {
        &[(4096, 128, 10), (16384, 256, 16)]
    };

    let mut table = Table::new(
        "Low-rank: RSVD vs deterministic truncated QR on rank-k + noise matrices",
        &[
            "m x n",
            "k",
            "method",
            "rel. Frobenius err",
            "modelled H100 ms",
        ],
    );

    for &(m, n, k) in sizes {
        // k strong directions, then a noise floor 1e5 below them.
        let setup = Device::unlimited();
        let mut sigma = geometric_singular_values(k, 1e2);
        sigma.resize(n, 1e-7);
        let a = matrix_with_singular_values(&setup, m, n, &sigma, 42).expect("valid spectrum");
        let shape = format!("{m} x {n}");

        let mut push = |method: String, err: f64, ms: f64| {
            table.push_row(vec![
                shape.clone(),
                k.to_string(),
                method,
                sci(err),
                format!("{ms:.3}"),
            ]);
        };

        for sketch in [
            RangeSketch::Gaussian,
            RangeSketch::CountSketch,
            RangeSketch::Srht,
        ] {
            for q in [0usize, 1] {
                let device = Device::h100();
                let params = LowRankParams::new(k)
                    .with_sketch(sketch)
                    .with_power_iters(q)
                    .with_seed(7, 0);
                let svd = rsvd(&device, &a, &params).expect("rsvd succeeds");
                let back = svd.reconstruct(&device).expect("shapes agree");
                let ms = device.model_time(&device.tracker().snapshot()) * 1e3;
                push(
                    format!("RSVD {} (q={q})", sketch.name()),
                    frob_rel_err(&device, &a, &back),
                    ms,
                );
            }
        }

        let device = Device::h100();
        let det = deterministic_svd(&device, &a, k).expect("tall input");
        let back = det.reconstruct(&device).expect("shapes agree");
        let ms = device.model_time(&device.tracker().snapshot()) * 1e3;
        push(
            "truncated QR SVD".to_string(),
            frob_rel_err(&device, &a, &back),
            ms,
        );
    }

    table.print();
}
