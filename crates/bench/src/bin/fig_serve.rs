//! Multi-tenant serving figure: co-scheduling vs. FIFO-one-at-a-time on the
//! shared device pool.
//!
//! Sweeps tenant counts × pool sizes over a fixed mixed workload (CountSketch,
//! Gaussian, Count-Gauss; dense and CSR operands; every job a single-device
//! "shard class").  For each cell the same fair-queue drain order is executed
//! twice:
//!
//! * **co-scheduled** — the [`Scheduler`] packs jobs onto disjoint device
//!   subsets via `DevicePool::subpool`, so independent jobs run concurrently
//!   on the modelled cluster clock;
//! * **FIFO** — every job is widened to the whole pool and run back to back,
//!   the "one job owns the cluster" baseline.
//!
//! The binary *enforces* the headline property — on every pool of ≥ 2 devices
//! with ≥ 4 independent jobs the co-scheduled makespan is strictly below the
//! FIFO makespan — and exits non-zero on any violation, so the CI smoke run
//! doubles as a regression gate.
//!
//! Run with: `cargo run --release -p sketch-bench --bin fig_serve [-- --smoke] [--out PATH] [--trace PATH]`

use sketch_bench::report::{ms, Table};
use sketch_core::{EmbeddingDim, JsonValue, Pipeline, SketchSpec};
use sketch_gpu_sim::DevicePool;
use sketch_obs::{chrome_trace_with_metrics, write_json, MetricsRegistry};
use sketch_serve::{JobQueue, JobSpec, OperandSpec, Scheduler, ServiceRun};

/// One swept configuration: the same drained job list, scheduled both ways.
struct Cell {
    tenants: usize,
    jobs: usize,
    devices: usize,
    cosched: ServiceRun,
    fifo: ServiceRun,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.fifo.makespan() / self.cosched.makespan()
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("tenants".into(), JsonValue::UInt(self.tenants as u64)),
            ("jobs".into(), JsonValue::UInt(self.jobs as u64)),
            ("devices".into(), JsonValue::UInt(self.devices as u64)),
            (
                "cosched_makespan_ms".into(),
                JsonValue::Float(self.cosched.makespan() * 1e3),
            ),
            (
                "fifo_makespan_ms".into(),
                JsonValue::Float(self.fifo.makespan() * 1e3),
            ),
            ("speedup_vs_fifo".into(), JsonValue::Float(self.speedup())),
            (
                "cosched_utilization".into(),
                JsonValue::Array(
                    self.cosched
                        .utilizations()
                        .into_iter()
                        .map(JsonValue::Float)
                        .collect(),
                ),
            ),
        ])
    }
}

/// The fixed mixed workload: `jobs_per_tenant` single-device jobs for each of
/// `tenants` tenants, cycling through sketch kinds and operand layouts.
/// Deterministic: seeds derive from the job index alone.
fn workload(tenants: usize, jobs_per_tenant: usize, d: usize) -> Vec<JobSpec> {
    let mut jobs = Vec::with_capacity(tenants * jobs_per_tenant);
    for t in 0..tenants {
        for j in 0..jobs_per_tenant {
            let idx = (t * jobs_per_tenant + j) as u64;
            let seed = 1000 + idx;
            let plan = match idx % 3 {
                0 => Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(2), seed)),
                1 => Pipeline::single(SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), seed)),
                _ => {
                    Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), seed)
                }
            };
            let operand = if idx.is_multiple_of(2) {
                OperandSpec::Dense {
                    rows: d,
                    cols: 8,
                    seed,
                }
            } else {
                OperandSpec::Csr {
                    rows: d,
                    cols: 8,
                    nnz_target: d / 2,
                    seed,
                }
            };
            jobs.push(JobSpec::new(format!("tenant-{t}"), plan, operand));
        }
    }
    jobs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_serve.json", String::as_str)
        .to_string();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let d = if smoke { 1 << 12 } else { 1 << 15 };
    let tenant_counts: &[usize] = &[2, 4];
    let device_counts: &[usize] = &[1, 2, 4];
    let jobs_per_tenant = 2usize;

    let scheduler = Scheduler::new();
    let mut cells: Vec<Cell> = Vec::new();
    for &tenants in tenant_counts {
        for &devices in device_counts {
            // Drain through the fair queue so both schedules see the same
            // deterministic job order.
            let mut queue = JobQueue::new(tenants * jobs_per_tenant);
            for job in workload(tenants, jobs_per_tenant, d) {
                queue.push(job).expect("workload fits the queue bound");
            }
            let drained = queue.drain();
            let pool = DevicePool::h100(devices);
            let cosched = scheduler
                .run(&pool, &drained)
                .expect("co-scheduled run fits the modelled pool");
            let fifo = scheduler
                .run_fifo(&pool, &drained)
                .expect("FIFO run fits the modelled pool");
            cells.push(Cell {
                tenants,
                jobs: drained.len(),
                devices,
                cosched,
                fifo,
            });
        }
    }

    // Text report.
    let mut table = Table::new(
        format!("Co-scheduling vs FIFO (d = {d}, {jobs_per_tenant} jobs/tenant)"),
        &[
            "tenants",
            "jobs",
            "devices",
            "cosched ms",
            "fifo ms",
            "speedup",
        ],
    );
    for c in &cells {
        table.push_row(vec![
            c.tenants.to_string(),
            c.jobs.to_string(),
            c.devices.to_string(),
            ms(c.cosched.makespan() * 1e3),
            ms(c.fifo.makespan() * 1e3),
            format!("{:.2}", c.speedup()),
        ]);
    }
    table.print();

    // JSON report.
    let doc = JsonValue::Object(vec![
        ("experiment".into(), JsonValue::Str("fig_serve".into())),
        ("smoke".into(), JsonValue::Bool(smoke)),
        ("device".into(), JsonValue::Str("H100 (modelled)".into())),
        (
            "interconnect".into(),
            JsonValue::Str("NVLink 4 (modelled)".into()),
        ),
        ("d".into(), JsonValue::UInt(d as u64)),
        (
            "jobs_per_tenant".into(),
            JsonValue::UInt(jobs_per_tenant as u64),
        ),
        (
            "cells".into(),
            JsonValue::Array(cells.iter().map(Cell::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write serve JSON");
    println!("wrote {out_path}");

    // Perfetto-compatible trace of one representative cell: the largest sweep
    // point, re-scheduled and exported through the service timeline (per-job
    // clocks shifted onto the merged cluster clock, so every track stays
    // monotone).
    if let Some(path) = &trace_path {
        let cell = cells
            .iter()
            .max_by_key(|c| (c.devices, c.tenants))
            .expect("sweep is non-empty");
        let events = cell.cosched.to_trace_events();
        let metrics = MetricsRegistry::new();
        metrics.add("serve.trace_jobs", cell.jobs as u64);
        let trace_doc = chrome_trace_with_metrics(&events, Some(&metrics));
        write_json(std::path::Path::new(path), &trace_doc).expect("write trace JSON");
        println!(
            "wrote {path} ({} events, {} devices)",
            events.len(),
            cell.devices
        );
    }

    // Gate: with >= 2 devices and >= 4 independent jobs, co-scheduling must
    // strictly beat running the jobs one at a time across the whole pool.
    let mut violations = 0usize;
    for c in &cells {
        if c.devices >= 2 && c.jobs >= 4 && c.cosched.makespan() >= c.fifo.makespan() {
            eprintln!(
                "VIOLATION: {} jobs on {} devices: co-scheduled {:.6} ms >= FIFO {:.6} ms",
                c.jobs,
                c.devices,
                c.cosched.makespan() * 1e3,
                c.fifo.makespan() * 1e3
            );
            violations += 1;
        }
    }
    if violations > 0 {
        eprintln!("{violations} configuration(s) failed the co-scheduling gate");
        std::process::exit(1);
    }
    println!("co-scheduling gate passed: cosched < FIFO on every pool of >= 2 devices");
}
