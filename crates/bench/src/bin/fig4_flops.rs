//! Regenerates Figure 4: percent of peak FLOP/s per sketch method.

use sketch_bench::report::{pct, Table};
use sketch_bench::sketch_experiments::sketch_timing_rows;
use sketch_bench::ExperimentScale;

fn main() {
    let rows = sketch_timing_rows(ExperimentScale::PaperModel, 42);
    let mut table = Table::new(
        "Figure 4 — percent of peak FP64 FLOP/s (paper scale, H100 model)",
        &["d", "n", "method", "% peak FLOP/s"],
    );
    for r in rows {
        table.push_row(vec![
            format!("2^{}", r.point.d.trailing_zeros()),
            r.point.n.to_string(),
            r.method.label().to_string(),
            if r.out_of_memory {
                "OOM".into()
            } else {
                pct(r.pct_peak_flops)
            },
        ]);
    }
    table.print();
}
