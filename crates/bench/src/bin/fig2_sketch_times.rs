//! Regenerates Figure 2: sketch generation + apply time versus the Gram matrix, at the
//! paper's sizes (roofline model) and at reduced measured sizes.

use sketch_bench::report::{ms, Table};
use sketch_bench::sketch_experiments::sketch_timing_rows;
use sketch_bench::ExperimentScale;

fn print_scale(scale: ExperimentScale, title: &str) {
    let rows = sketch_timing_rows(scale, 42);
    let mut table = Table::new(
        title,
        &[
            "d", "n", "method", "gen ms", "apply ms", "total ms", "wall ms", "note",
        ],
    );
    for r in rows {
        table.push_row(vec![
            format!("2^{}", r.point.d.trailing_zeros()),
            r.point.n.to_string(),
            r.method.label().to_string(),
            ms(r.gen_model_ms),
            ms(r.apply_model_ms),
            ms(r.total_model_ms()),
            ms(r.wall_ms),
            if r.out_of_memory {
                "OOM (blank bar)".into()
            } else {
                String::new()
            },
        ]);
    }
    table.print();
}

fn main() {
    print_scale(
        ExperimentScale::PaperModel,
        "Figure 2 — paper scale (modelled H100 time)",
    );
    print_scale(
        ExperimentScale::Measured,
        "Figure 2 — measured at reduced sizes (modelled H100 time + host wall clock)",
    );
}
