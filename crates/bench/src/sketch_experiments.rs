//! Figure 2–4 experiments: sketch application times and percent-of-peak plots.

use crate::analytic::SketchMethod;
use crate::config::{ExperimentScale, SweepPoint};
use sketch_core::{EmbeddingDim, Pipeline, SketchOperator, SketchSpec};
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::blas3::gram_gemm;
use sketch_la::{Layout, Matrix};
use sketch_obs::Stopwatch;

/// One bar of Figure 2 (and one point of Figures 3–4).
#[derive(Debug, Clone)]
pub struct SketchTimingRow {
    /// Problem size.
    pub point: SweepPoint,
    /// Which operation this row describes.
    pub method: SketchMethod,
    /// Modelled H100 time of the generation step, in milliseconds.
    pub gen_model_ms: f64,
    /// Modelled H100 time of the apply step, in milliseconds.
    pub apply_model_ms: f64,
    /// Wall-clock milliseconds measured on this machine (generation + apply); zero for
    /// analytic (paper-scale) rows.
    pub wall_ms: f64,
    /// Percent of peak memory throughput, normalised by the Table 1 useful traffic.
    pub pct_peak_bandwidth: f64,
    /// Percent of peak FP64 throughput, normalised by the Table 1 useful arithmetic.
    pub pct_peak_flops: f64,
    /// Whether the configuration exceeds the modelled device memory (blank bars).
    pub out_of_memory: bool,
}

impl SketchTimingRow {
    /// Total modelled time (generation + apply).
    pub fn total_model_ms(&self) -> f64 {
        self.gen_model_ms + self.apply_model_ms
    }
}

/// Percent-of-peak helpers shared by the measured and analytic paths.
fn percents(device: &Device, useful: &KernelCost, total_seconds: f64) -> (f64, f64) {
    (
        device.percent_peak_bandwidth(useful, total_seconds),
        device.percent_peak_flops(useful, total_seconds),
    )
}

/// Build one analytic (paper-scale) row.
fn analytic_row(device: &Device, point: SweepPoint, method: SketchMethod) -> SketchTimingRow {
    let oom = crate::analytic::exceeds_suite_memory(method, point.d, point.n, device.spec());
    let gen = method.generation_cost(point.d, point.n);
    let apply = method.apply_cost(point.d, point.n);
    let gen_s = device.model_time(&gen);
    let apply_s = device.model_time(&apply);
    let useful = method.useful_cost(point.d, point.n);
    let (bw, fl) = percents(device, &useful, apply_s);
    SketchTimingRow {
        point,
        method,
        gen_model_ms: if oom { 0.0 } else { gen_s * 1e3 },
        apply_model_ms: if oom { 0.0 } else { apply_s * 1e3 },
        wall_ms: 0.0,
        pct_peak_bandwidth: if oom { 0.0 } else { bw },
        pct_peak_flops: if oom { 0.0 } else { fl },
        out_of_memory: oom,
    }
}

/// Run one measured row: the kernels actually execute at the given (reduced) size.
fn measured_row(point: SweepPoint, method: SketchMethod, seed: u64) -> SketchTimingRow {
    let device = Device::h100();
    let SweepPoint { d, n } = point;
    let a = Matrix::random_gaussian(d, n, Layout::RowMajor, seed, 0);

    let start = Stopwatch::start();
    let (gen_cost, apply_cost, oom) = match method {
        SketchMethod::Gram => {
            let (_, apply) = device.tracker().measure(|| gram_gemm(&device, &a).unwrap());
            (KernelCost::zero(), apply, false)
        }
        SketchMethod::Gaussian => {
            let spec = SketchSpec::gaussian(d, EmbeddingDim::Ratio(2), seed);
            match spec.resolve(n).build_gaussian(&device) {
                Ok(s) => {
                    let gen = device.tracker().snapshot();
                    let (res, apply) = device.tracker().measure(|| s.apply_matrix(&device, &a));
                    (gen, apply, res.is_err())
                }
                Err(_) => (KernelCost::zero(), KernelCost::zero(), true),
            }
        }
        SketchMethod::CountAlg2 => {
            let s = SketchSpec::countsketch(d, EmbeddingDim::Square(2), seed)
                .resolve(n)
                .build_countsketch(&device)
                .expect("CountSketch spec is always buildable");
            let gen = device.tracker().snapshot();
            device.tracker().reset();
            let (_, apply) = device
                .tracker()
                .measure(|| s.apply_matrix(&device, &a).unwrap());
            (gen, apply, false)
        }
        SketchMethod::CountSpmm => {
            let s = SketchSpec::countsketch(d, EmbeddingDim::Square(2), seed)
                .resolve(n)
                .build_countsketch(&device)
                .expect("CountSketch spec is always buildable");
            let gen = device.tracker().snapshot();
            device.tracker().reset();
            let (_, apply) = device
                .tracker()
                .measure(|| s.apply_matrix_spmm(&device, &a).unwrap());
            (gen, apply, false)
        }
        SketchMethod::MultiSketch => {
            let s = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), seed)
                .build_multisketch(&device, n)
                .unwrap();
            let gen = device.tracker().snapshot();
            device.tracker().reset();
            let (_, apply) = device
                .tracker()
                .measure(|| s.apply_matrix(&device, &a).unwrap());
            (gen, apply, false)
        }
        SketchMethod::Srht => {
            let s = SketchSpec::srht(d, EmbeddingDim::Ratio(2), seed)
                .resolve(n)
                .build_srht(&device)
                .unwrap();
            let gen = device.tracker().snapshot();
            device.tracker().reset();
            let (_, apply) = device
                .tracker()
                .measure(|| s.apply_matrix(&device, &a).unwrap());
            (gen, apply, false)
        }
    };
    let wall_ms = start.elapsed_seconds() * 1e3;

    let gen_s = device.model_time(&gen_cost);
    let apply_s = device.model_time(&apply_cost);
    let useful = method.useful_cost(d, n);
    let (bw, fl) = percents(&device, &useful, apply_s);
    SketchTimingRow {
        point,
        method,
        gen_model_ms: gen_s * 1e3,
        apply_model_ms: apply_s * 1e3,
        wall_ms,
        pct_peak_bandwidth: if oom { 0.0 } else { bw },
        pct_peak_flops: if oom { 0.0 } else { fl },
        out_of_memory: oom,
    }
}

/// Produce every row of Figure 2 (and the data behind Figures 3–4) at the given scale.
pub fn sketch_timing_rows(scale: ExperimentScale, seed: u64) -> Vec<SketchTimingRow> {
    let device = Device::h100();
    let mut rows = Vec::new();
    for point in scale.sweep() {
        for method in SketchMethod::ALL {
            let row = match scale {
                ExperimentScale::Measured => measured_row(point, method, seed),
                ExperimentScale::PaperModel => analytic_row(&device, point, method),
            };
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_rows_reproduce_the_figure2_ordering() {
        let rows = sketch_timing_rows(ExperimentScale::PaperModel, 1);
        // At d = 2^21, n = 256 the paper's ordering is:
        //   Count (Alg 2) < Multi < Gram < Count (SPMM), and Gauss is slowest / OOM.
        let at = |m: SketchMethod| {
            rows.iter()
                .find(|r| r.point.d == 1 << 21 && r.point.n == 256 && r.method == m)
                .unwrap()
        };
        let count = at(SketchMethod::CountAlg2).total_model_ms();
        let multi = at(SketchMethod::MultiSketch).total_model_ms();
        let gram = at(SketchMethod::Gram).total_model_ms();
        let spmm = at(SketchMethod::CountSpmm).total_model_ms();
        assert!(count < gram, "CountSketch {count} vs Gram {gram}");
        assert!(multi < gram, "Multi {multi} vs Gram {gram}");
        assert!(
            spmm > count,
            "SPMM {spmm} should lose to the dedicated kernel {count}"
        );
        let gauss = at(SketchMethod::Gaussian);
        assert!(gauss.out_of_memory || gauss.total_model_ms() > gram);
    }

    #[test]
    fn paper_model_reproduces_the_gaussian_oom_points() {
        let rows = sketch_timing_rows(ExperimentScale::PaperModel, 1);
        let oom_expected = [(1usize << 22, 256usize), (1 << 23, 128)];
        for (d, n) in oom_expected {
            let row = rows
                .iter()
                .find(|r| r.point.d == d && r.point.n == n && r.method == SketchMethod::Gaussian)
                .unwrap();
            assert!(row.out_of_memory, "Gaussian should OOM at d={d}, n={n}");
        }
        // The CountSketch and multisketch never OOM.
        assert!(rows
            .iter()
            .filter(|r| matches!(
                r.method,
                SketchMethod::CountAlg2 | SketchMethod::MultiSketch
            ))
            .all(|r| !r.out_of_memory));
    }

    #[test]
    fn percent_of_peak_bands_match_figure3() {
        let rows = sketch_timing_rows(ExperimentScale::PaperModel, 1);
        for r in &rows {
            if r.out_of_memory {
                continue;
            }
            match r.method {
                SketchMethod::CountAlg2 => {
                    assert!(
                        (40.0..75.0).contains(&r.pct_peak_bandwidth),
                        "Alg2 bandwidth {}% at n={}",
                        r.pct_peak_bandwidth,
                        r.point.n
                    );
                }
                SketchMethod::CountSpmm => {
                    assert!(
                        r.pct_peak_bandwidth < 30.0,
                        "SPMM bandwidth {}% should be poor",
                        r.pct_peak_bandwidth
                    );
                }
                SketchMethod::Srht => {
                    assert!(
                        r.pct_peak_bandwidth > 50.0,
                        "SRHT bandwidth {}%",
                        r.pct_peak_bandwidth
                    );
                }
                _ => {}
            }
            // Memory-bound sketches achieve a negligible fraction of peak FLOP/s.
            if matches!(
                r.method,
                SketchMethod::CountAlg2 | SketchMethod::CountSpmm | SketchMethod::Srht
            ) {
                assert!(r.pct_peak_flops < 10.0);
            }
        }
    }

    #[test]
    fn measured_rows_execute_and_fill_wall_clock_times() {
        let rows: Vec<SketchTimingRow> = [
            SketchMethod::Gram,
            SketchMethod::CountAlg2,
            SketchMethod::MultiSketch,
        ]
        .into_iter()
        .map(|m| measured_row(SweepPoint { d: 4096, n: 16 }, m, 3))
        .collect();
        for r in &rows {
            assert!(!r.out_of_memory);
            assert!(r.wall_ms > 0.0);
            assert!(r.apply_model_ms > 0.0);
        }
    }
}
