//! Analytic cost formulas used to project the experiments to the paper's problem sizes.
//!
//! The kernels in this workspace record deterministic costs that depend only on the
//! operand shapes, so each figure can be evaluated at `d = 2²¹ … 2²³` without allocating
//! terabytes of data: this module re-states those cost formulas as closed-form functions
//! of `(d, n)` and the unit tests check them against the costs the real kernels record
//! at small sizes, guaranteeing the projection cannot drift from the implementation.

use sketch_core::fwht::global_passes;
use sketch_core::fwht::DEFAULT_TILE;
use sketch_gpu_sim::{KernelCost, Phase};

/// Bytes of `n` doubles.
const fn f64b(n: u64) -> u64 {
    n * 8
}

/// Fraction of the device memory one method's working set may occupy before the
/// benchmark harness marks it out-of-memory (the blank bars of Figures 2 and 5).
///
/// The paper reports the Gaussian sketch failing at `(d, n) = (2²², 256)` and
/// `(2²³, 128)`, where `A` plus the stored `2n x d` Gaussian is ≈26 GB — well below the
/// card's 80 GB, so the failure must come from the rest of the benchmark suite's
/// resident buffers (both layouts of `A`, every other method's sketches and outputs,
/// cuRAND states, 100-trial bookkeeping).  A 30 % budget for a single method's working
/// set reproduces exactly the paper's blank set: both reported points exceed it and
/// every point the paper does plot stays below it.  See EXPERIMENTS.md for the
/// calibration table.
pub const SUITE_MEMORY_FRACTION: f64 = 0.3;

/// Whether a method's working set (operand + method-specific buffers) exceeds the
/// benchmark-suite memory budget on the given device.
pub fn exceeds_suite_memory(
    method: SketchMethod,
    d: usize,
    n: usize,
    spec: &sketch_gpu_sim::DeviceSpec,
) -> bool {
    let a_bytes = (d * n * 8) as u64;
    let budget = (spec.memory_bytes as f64 * SUITE_MEMORY_FRACTION) as u64;
    a_bytes + method.extra_device_bytes(d, n) > budget
}

/// The operations compared in Figures 2–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SketchMethod {
    /// Gram matrix `AᵀA` via GEMM (the normal-equations reference cost).
    Gram,
    /// Dense Gaussian sketch, `k = 2n`.
    Gaussian,
    /// CountSketch with the Algorithm 2 kernel, `k = 2n²`.
    CountAlg2,
    /// CountSketch applied with the generic SpMM baseline, `k = 2n²`.
    CountSpmm,
    /// Multisketch: CountSketch to `2n²` then Gaussian to `2n`.
    MultiSketch,
    /// SRHT with the radix-4 FWHT, `k = 2n`.
    Srht,
}

impl SketchMethod {
    /// All methods in the order Figure 2 plots them.
    pub const ALL: [SketchMethod; 6] = [
        SketchMethod::Gram,
        SketchMethod::Gaussian,
        SketchMethod::CountAlg2,
        SketchMethod::CountSpmm,
        SketchMethod::MultiSketch,
        SketchMethod::Srht,
    ];

    /// Label matching the paper's x-axis ticks.
    pub fn label(&self) -> &'static str {
        match self {
            SketchMethod::Gram => "Gram",
            SketchMethod::Gaussian => "Gauss",
            SketchMethod::CountAlg2 => "Count (Alg 2)",
            SketchMethod::CountSpmm => "Count (SPMM)",
            SketchMethod::MultiSketch => "Multi",
            SketchMethod::Srht => "SRHT",
        }
    }

    /// Output dimension used by the paper's experiments for a width-`n` operand.
    pub fn embedding_dim(&self, n: usize) -> usize {
        match self {
            SketchMethod::Gram => n,
            SketchMethod::Gaussian | SketchMethod::MultiSketch | SketchMethod::Srht => 2 * n,
            SketchMethod::CountAlg2 | SketchMethod::CountSpmm => 2 * n * n,
        }
    }

    /// Bytes the method must hold on the device beyond `A` itself (used to reproduce
    /// the Gaussian OOM at the largest paper sizes).
    pub fn extra_device_bytes(&self, d: usize, n: usize) -> u64 {
        let d = d as u64;
        let n = n as u64;
        match self {
            SketchMethod::Gram => f64b(n * n),
            // The stored 2n x d Gaussian plus the 2n x n result.
            SketchMethod::Gaussian => f64b(2 * n * d) + f64b(2 * n * n),
            SketchMethod::CountAlg2 | SketchMethod::CountSpmm => f64b(2 * n * n * n) + 5 * d,
            SketchMethod::MultiSketch => {
                f64b(2 * n * n * n) + 5 * d + f64b(2 * n * 2 * n * n) + f64b(2 * n * n)
            }
            SketchMethod::Srht => f64b((d.next_power_of_two()) * n) + f64b(2 * n * n),
        }
    }

    /// Cost of generating the sketch's random ingredients (the `Sketch gen` stack of
    /// Figure 2); mirrors the `generation_cost` each operator records.
    pub fn generation_cost(&self, d: usize, n: usize) -> KernelCost {
        let d64 = d as u64;
        let n64 = n as u64;
        match self {
            SketchMethod::Gram => KernelCost::zero(),
            SketchMethod::Gaussian => {
                let k = 2 * n64;
                KernelCost::new(0, f64b(k * d64), k * d64 * 12, 1)
            }
            SketchMethod::CountAlg2 | SketchMethod::CountSpmm => {
                KernelCost::new(0, d64 * 5, d64, 1)
            }
            SketchMethod::MultiSketch => {
                let k1 = 2 * n64 * n64;
                let k2 = 2 * n64;
                KernelCost::new(0, d64 * 5, d64, 1)
                    + KernelCost::new(0, f64b(k2 * k1), k2 * k1 * 12, 1)
            }
            SketchMethod::Srht => {
                let k = 2 * n64;
                KernelCost::new(0, d64 + 4 * k, d64 + k, 1)
            }
        }
    }

    /// Cost of applying the operator to a dense row-major `d x n` matrix; mirrors the
    /// costs the kernels record (validated against them in the tests below).
    pub fn apply_cost(&self, d: usize, n: usize) -> KernelCost {
        let d64 = d as u64;
        let n64 = n as u64;
        match self {
            SketchMethod::Gram => gemm_cost(n64, d64, n64, false),
            SketchMethod::Gaussian => gemm_cost(2 * n64, d64, n64, false),
            SketchMethod::CountAlg2 => countsketch_apply_cost(d64, n64, 2 * n64 * n64),
            SketchMethod::CountSpmm => {
                // spmm: nnz = d, output rows k = 2n².
                let k = 2 * n64 * n64;
                let nnz = d64;
                let idx_bytes = 8 * (nnz + k + 1);
                KernelCost::new(
                    f64b(nnz) + idx_bytes + f64b(nnz * n64) * sketch_sparse::SPMM_GATHER_PENALTY,
                    f64b(k * n64),
                    2 * nnz * n64,
                    1,
                )
            }
            SketchMethod::MultiSketch => {
                let k1 = 2 * n64 * n64;
                let k2 = 2 * n64;
                // CountSketch stage + (Zᵀ = Yᵀ Gᵀ) GEMM + transpose of the small result.
                countsketch_apply_cost(d64, n64, k1)
                    + gemm_cost(n64, k1, k2, false)
                    + KernelCost::new(f64b(k2 * n64), f64b(k2 * n64), 0, 1)
            }
            SketchMethod::Srht => {
                let k = 2 * n64;
                let d_pad = (d.next_power_of_two()) as u64;
                let bits = d_pad.trailing_zeros() as u64;
                let passes = global_passes(d.next_power_of_two(), DEFAULT_TILE);
                // Sign flip + pad, FWHT passes, sampling.
                KernelCost::new(f64b(d64 * n64) + f64b(d64), f64b(d_pad * n64), d64 * n64, 1)
                    + KernelCost::new(
                        f64b(d_pad * n64) * passes,
                        f64b(d_pad * n64) * passes,
                        2 * d_pad * n64 * bits,
                        passes.max(1),
                    )
                    + KernelCost::new(f64b(k * n64) + 4 * k, f64b(k * n64), k * n64, 1)
            }
        }
    }

    /// The *useful* (Table 1) traffic and arithmetic, used to normalise Figures 3–4.
    pub fn useful_cost(&self, d: usize, n: usize) -> KernelCost {
        let d64 = d as u64;
        let n64 = n as u64;
        match self {
            SketchMethod::Gram => {
                KernelCost::new(f64b(d64 * n64), f64b(n64 * n64), 2 * d64 * n64 * n64, 1)
            }
            SketchMethod::Gaussian => KernelCost::new(
                f64b(d64 * n64),
                f64b(2 * n64 * n64),
                2 * d64 * n64 * 2 * n64,
                1,
            ),
            SketchMethod::CountAlg2 | SketchMethod::CountSpmm => {
                KernelCost::new(f64b(d64 * n64), f64b(d64 * n64), d64 * n64, 1)
            }
            SketchMethod::MultiSketch => {
                let k1 = 2 * n64 * n64;
                let k2 = 2 * n64;
                KernelCost::new(f64b(d64 * n64), f64b(d64 * n64), d64 * n64, 1)
                    + KernelCost::new(f64b(k1 * n64), f64b(k2 * n64), 2 * k1 * k2 * n64, 1)
            }
            SketchMethod::Srht => {
                let d_pad = (d.next_power_of_two()) as u64;
                let bits = d_pad.trailing_zeros() as u64;
                let passes = global_passes(d.next_power_of_two(), DEFAULT_TILE);
                KernelCost::new(
                    f64b(d_pad * n64) * passes,
                    f64b(d_pad * n64) * passes,
                    2 * d_pad * n64 * bits,
                    1,
                )
            }
        }
    }
}

/// Cost the GEMM kernel records for an `m x k` times `k x n` product.
pub fn gemm_cost(m: u64, k: u64, n: u64, accumulate: bool) -> KernelCost {
    let read_c = if accumulate { m * n } else { 0 };
    KernelCost::new(f64b(m * k + k * n + read_c), f64b(m * n), 2 * m * n * k, 1)
}

/// Cost the Algorithm 2 CountSketch kernel records for a row-major `d x n` operand.
pub fn countsketch_apply_cost(d: u64, n: u64, k: u64) -> KernelCost {
    KernelCost::new(
        f64b(d * n) + f64b(d * n) + d * 5,
        f64b(d * n) + f64b(k * n),
        d * n,
        2,
    )
}

/// Cost the GEMV kernel records for an `m x k` operand (no initial `y`).
pub fn gemv_cost(m: u64, k: u64) -> KernelCost {
    KernelCost::new(f64b(m * k + k), f64b(m), 2 * m * k, 1)
}

/// Cost the Householder QR records for an `m x n` factorisation.
pub fn geqrf_cost(m: u64, n: u64) -> KernelCost {
    let flops = 2 * m * n * n - (2 * n * n * n) / 3;
    let passes = n.div_ceil(32).max(1);
    KernelCost::new(f64b(m * n) * passes, f64b(m * n) * passes, flops, n)
}

/// Cost of applying `Qᵀ` (from an `m x n` QR) to one vector.
pub fn ormqr_cost(m: u64, n: u64) -> KernelCost {
    KernelCost::new(f64b(m * n + m), f64b(m), 4 * m * n, 1)
}

/// Cost of a Cholesky factorisation of an `n x n` Gram matrix.
pub fn potrf_cost(n: u64) -> KernelCost {
    KernelCost::new(
        f64b(n * n),
        f64b(n * (n + 1) / 2),
        n * n * n / 3 + 2 * n * n,
        1,
    )
}

/// Cost of one triangular solve with an `n x n` factor.
pub fn trsv_cost(n: u64) -> KernelCost {
    KernelCost::new(f64b(n * (n + 1) / 2 + n), f64b(n), n * n, 1)
}

/// Cost of the right-sided TRSM preconditioning `A₀ = A R⁻¹` (`d x n` operand).
pub fn trsm_right_cost(d: u64, n: u64) -> KernelCost {
    KernelCost::new(f64b(n * (n + 1) / 2 + d * n), f64b(d * n), d * n * n, 1)
}

/// Cost of a row/column-major layout conversion of a `rows x cols` matrix.
pub fn layout_conversion_cost(rows: u64, cols: u64) -> KernelCost {
    KernelCost::new(f64b(rows * cols), f64b(rows * cols), 0, 1)
}

/// The least squares methods of Figure 5, with their per-phase analytic costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LsqMethod {
    /// Normal equations.
    NormalEq,
    /// Sketch-and-solve with the given sketch.
    SketchAndSolve(SketchMethod),
    /// rand_cholQR least squares driven by the multisketch.
    RandCholQr,
}

impl LsqMethod {
    /// The six methods of Figure 5, in plot order.
    pub const FIGURE5: [LsqMethod; 6] = [
        LsqMethod::NormalEq,
        LsqMethod::SketchAndSolve(SketchMethod::Gaussian),
        LsqMethod::SketchAndSolve(SketchMethod::CountAlg2),
        LsqMethod::SketchAndSolve(SketchMethod::MultiSketch),
        LsqMethod::SketchAndSolve(SketchMethod::Srht),
        LsqMethod::RandCholQr,
    ];

    /// Label matching the paper's Figure 5 x-axis.
    pub fn label(&self) -> &'static str {
        match self {
            LsqMethod::NormalEq => "Normal Eq",
            LsqMethod::SketchAndSolve(SketchMethod::Gaussian) => "Gauss",
            LsqMethod::SketchAndSolve(SketchMethod::CountAlg2) => "Count",
            LsqMethod::SketchAndSolve(SketchMethod::MultiSketch) => "Multi",
            LsqMethod::SketchAndSolve(SketchMethod::Srht) => "SRHT",
            LsqMethod::SketchAndSolve(_) => "Sketch",
            LsqMethod::RandCholQr => "rand_cholQR",
        }
    }

    /// Per-phase analytic costs of solving a `d x n` least squares problem.
    pub fn phase_costs(&self, d: usize, n: usize) -> Vec<(Phase, KernelCost)> {
        let d64 = d as u64;
        let n64 = n as u64;
        match self {
            LsqMethod::NormalEq => vec![
                (Phase::GramMatrix, gemm_cost(n64, d64, n64, false)),
                (Phase::ATransposeB, gemv_cost(n64, d64)),
                (Phase::Potrf, potrf_cost(n64)),
                (Phase::Trsv, trsv_cost(n64)),
                (Phase::Trsv, trsv_cost(n64)),
            ],
            LsqMethod::SketchAndSolve(sketch) => {
                let k = sketch.embedding_dim(n) as u64;
                vec![
                    (Phase::SketchGen, sketch.generation_cost(d, n)),
                    (Phase::MatrixSketch, sketch.apply_cost(d, n)),
                    (Phase::VectorSketch, sketch_vector_cost(*sketch, d64, n64)),
                    (
                        Phase::Geqrf,
                        layout_conversion_cost(k, n64) + geqrf_cost(k, n64),
                    ),
                    (Phase::Ormqr, ormqr_cost(k, n64)),
                    (Phase::Trsv, trsv_cost(n64)),
                ]
            }
            LsqMethod::RandCholQr => {
                let sketch = SketchMethod::MultiSketch;
                let k = sketch.embedding_dim(n) as u64;
                vec![
                    (Phase::SketchGen, sketch.generation_cost(d, n)),
                    (Phase::MatrixSketch, sketch.apply_cost(d, n)),
                    (
                        Phase::Geqrf,
                        layout_conversion_cost(k, n64) + geqrf_cost(k, n64),
                    ),
                    (Phase::Trsm, trsm_right_cost(d64, n64)),
                    (Phase::GramMatrix, gemm_cost(n64, d64, n64, false)),
                    (Phase::ATransposeB, gemv_cost(n64, d64)),
                    (Phase::Potrf, potrf_cost(n64)),
                    (Phase::Trsv, trsv_cost(n64)),
                    (Phase::Trsv, trsv_cost(n64)),
                    (Phase::Trsv, trsv_cost(n64)),
                ]
            }
        }
    }

    /// Total analytic cost across phases.
    pub fn total_cost(&self, d: usize, n: usize) -> KernelCost {
        self.phase_costs(d, n)
            .into_iter()
            .fold(KernelCost::zero(), |acc, (_, c)| acc + c)
    }
}

/// Analytic cost of sketching the right-hand side vector.
fn sketch_vector_cost(sketch: SketchMethod, d: u64, n: u64) -> KernelCost {
    match sketch {
        SketchMethod::Gram => KernelCost::zero(),
        SketchMethod::Gaussian => gemv_cost(2 * n, d),
        SketchMethod::CountAlg2 | SketchMethod::CountSpmm => {
            let k = 2 * n * n;
            KernelCost::new(f64b(2 * d) + d * 5, f64b(d + k), d, 2)
        }
        SketchMethod::MultiSketch => {
            let k1 = 2 * n * n;
            KernelCost::new(f64b(2 * d) + d * 5, f64b(d + k1), d, 2) + gemv_cost(2 * n, k1)
        }
        SketchMethod::Srht => {
            let d_usize = d as usize;
            SketchMethod::Srht.apply_cost(d_usize, 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};
    use sketch_gpu_sim::Device;
    use sketch_la::blas3::gram_gemm;
    use sketch_la::{Layout, Matrix};

    /// The paper-convention spec for one sketch method (None for the Gram baseline).
    fn pipeline_of(method: SketchMethod, d: usize, seed: u64) -> Option<Pipeline> {
        match method {
            SketchMethod::Gram => None,
            SketchMethod::Gaussian => Some(Pipeline::single(SketchSpec::gaussian(
                d,
                EmbeddingDim::Ratio(2),
                seed,
            ))),
            SketchMethod::CountAlg2 | SketchMethod::CountSpmm => Some(Pipeline::single(
                SketchSpec::countsketch(d, EmbeddingDim::Square(2), seed),
            )),
            SketchMethod::MultiSketch => Some(Pipeline::count_gauss(
                d,
                EmbeddingDim::Square(2),
                EmbeddingDim::Ratio(2),
                seed,
            )),
            SketchMethod::Srht => Some(Pipeline::single(SketchSpec::srht(
                d,
                EmbeddingDim::Ratio(2),
                seed,
            ))),
        }
    }

    /// The guarantee behind the paper-scale projections: the analytic formulas must
    /// match the costs the real kernels record, byte for byte and flop for flop.
    #[test]
    fn analytic_apply_costs_match_recorded_costs() {
        let d = 2048usize;
        let n = 16usize;
        let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 1, 0);

        for method in SketchMethod::ALL {
            let device = Device::unlimited();
            match method {
                SketchMethod::Gram => {
                    let _ = gram_gemm(&device, &a).unwrap();
                }
                SketchMethod::CountSpmm => {
                    let s = pipeline_of(method, d, 3).unwrap().stages[0]
                        .resolve(n)
                        .build_countsketch(&device)
                        .unwrap();
                    device.tracker().reset();
                    let _ = s.apply_matrix_spmm(&device, &a).unwrap();
                }
                _ => {
                    let s = pipeline_of(method, d, 3)
                        .unwrap()
                        .build_for(&device, n)
                        .unwrap();
                    device.tracker().reset();
                    let _ = s.apply_matrix(&device, &a).unwrap();
                }
            }
            let recorded = device.tracker().snapshot();
            let analytic = method.apply_cost(d, n);
            assert_eq!(
                recorded,
                analytic,
                "{}: recorded {recorded:?} vs analytic {analytic:?}",
                method.label()
            );
        }
    }

    #[test]
    fn analytic_generation_costs_match_recorded_costs() {
        let d = 1024usize;
        let n = 8usize;
        for method in [
            SketchMethod::Gaussian,
            SketchMethod::CountAlg2,
            SketchMethod::MultiSketch,
            SketchMethod::Srht,
        ] {
            let device = Device::unlimited();
            let _ = pipeline_of(method, d, 3)
                .unwrap()
                .build_for(&device, n)
                .unwrap();
            assert_eq!(
                device.tracker().snapshot(),
                method.generation_cost(d, n),
                "{}",
                method.label()
            );
        }
    }

    #[test]
    fn gaussian_runs_out_of_memory_at_the_paper_sizes_where_the_bars_are_blank() {
        use sketch_gpu_sim::DeviceSpec;
        let spec = DeviceSpec::h100();
        // Figure 2: blank Gaussian bars at (2^22, 256) and (2^23, 128) — and nowhere
        // else in the sweep.
        for (d, n) in [(1usize << 22, 256usize), (1 << 23, 128)] {
            assert!(
                exceeds_suite_memory(SketchMethod::Gaussian, d, n, &spec),
                "expected the Gaussian to be flagged at d=2^{} n={n}",
                d.trailing_zeros()
            );
        }
        for (d, n) in [
            (1usize << 21, 256usize),
            (1 << 22, 128),
            (1 << 23, 64),
            (1 << 21, 32),
        ] {
            assert!(
                !exceeds_suite_memory(SketchMethod::Gaussian, d, n, &spec),
                "the Gaussian bar is plotted in the paper at d=2^{} n={n}",
                d.trailing_zeros()
            );
        }
        // The multisketch and CountSketch never exceed the budget.
        for (d, n) in [(1usize << 23, 128usize), (1 << 22, 256)] {
            assert!(!exceeds_suite_memory(
                SketchMethod::MultiSketch,
                d,
                n,
                &spec
            ));
            assert!(!exceeds_suite_memory(SketchMethod::CountAlg2, d, n, &spec));
        }
    }

    #[test]
    fn figure5_labels_and_phase_sets_are_sensible() {
        assert_eq!(LsqMethod::FIGURE5.len(), 6);
        for m in LsqMethod::FIGURE5 {
            let phases = m.phase_costs(1 << 16, 64);
            assert!(!phases.is_empty());
            let total = m.total_cost(1 << 16, 64);
            assert!(total.flops > 0);
            assert!(!m.label().is_empty());
        }
        // The normal equations have no sketch phases.
        let ne_phases = LsqMethod::NormalEq.phase_costs(1024, 8);
        assert!(ne_phases.iter().all(|(p, _)| *p != Phase::MatrixSketch));
    }

    #[test]
    fn multisketch_beats_normal_equations_at_the_papers_headline_point() {
        // d = 2^22, n = 256: the paper reports the multisketched solver is up to 77%
        // faster than the normal equations.
        let device = Device::h100();
        let d = 1 << 22;
        let n = 256;
        let ne: f64 = LsqMethod::NormalEq
            .phase_costs(d, n)
            .iter()
            .map(|(_, c)| device.model_time(c))
            .sum();
        let multi: f64 = LsqMethod::SketchAndSolve(SketchMethod::MultiSketch)
            .phase_costs(d, n)
            .iter()
            .map(|(_, c)| device.model_time(c))
            .sum();
        assert!(
            multi < ne,
            "multi {multi} should beat normal equations {ne}"
        );
        let speedup = (ne - multi) / ne;
        assert!(
            speedup > 0.3,
            "expected a substantial speedup, got {:.1}%",
            100.0 * speedup
        );
    }
}
