//! Figure 5–8 experiments: least squares runtimes, residuals and stability.

use crate::analytic::LsqMethod;
use crate::config::{ExperimentScale, SweepPoint};
use sketch_gpu_sim::{Device, DevicePool, Phase};
use sketch_lsq::{solve, LsqProblem, Method};
use sketch_obs::Stopwatch;
use std::collections::BTreeMap;

/// One bar of Figure 5: the per-phase breakdown of one solver at one problem size.
#[derive(Debug, Clone)]
pub struct LsqBreakdownRow {
    /// Problem size.
    pub point: SweepPoint,
    /// Solver label ("Normal Eq", "Gauss", …).
    pub method: &'static str,
    /// Modelled milliseconds per phase (ordered as executed).
    pub phase_ms: Vec<(Phase, f64)>,
    /// Total modelled milliseconds.
    pub total_model_ms: f64,
    /// Wall-clock milliseconds (zero for analytic rows).
    pub wall_ms: f64,
    /// Whether the method failed with a modelled out-of-memory error.
    pub out_of_memory: bool,
}

/// One point of Figures 6–8: the relative residual of one solver.
#[derive(Debug, Clone)]
pub struct ResidualRow {
    /// Problem size.
    pub point: SweepPoint,
    /// Condition number of the coefficient matrix (1e2 for Figures 6–7).
    pub kappa: f64,
    /// Solver label.
    pub method: &'static str,
    /// Relative residual `||b - A x|| / ||b||`; `None` when the solver failed
    /// (e.g. Cholesky breakdown of the normal equations in Figure 8).
    pub residual: Option<f64>,
}

/// Figure 5 at the paper's sizes, via the analytic cost model.
pub fn lsq_breakdown_paper_rows() -> Vec<LsqBreakdownRow> {
    let device = Device::h100();
    let mut rows = Vec::new();
    for point in ExperimentScale::PaperModel.sweep() {
        for method in LsqMethod::FIGURE5 {
            let oom = match method {
                LsqMethod::SketchAndSolve(s) => {
                    crate::analytic::exceeds_suite_memory(s, point.d, point.n, device.spec())
                }
                _ => false,
            };
            let phase_ms: Vec<(Phase, f64)> = method
                .phase_costs(point.d, point.n)
                .into_iter()
                .map(|(p, c)| (p, device.model_time(&c) * 1e3))
                .collect();
            let total = phase_ms.iter().map(|(_, t)| t).sum();
            rows.push(LsqBreakdownRow {
                point,
                method: method.label(),
                phase_ms: if oom { Vec::new() } else { phase_ms },
                total_model_ms: if oom { 0.0 } else { total },
                wall_ms: 0.0,
                out_of_memory: oom,
            });
        }
    }
    rows
}

/// Figure 5 measured at reduced sizes: the solvers actually run.
pub fn lsq_breakdown_measured_rows(seed: u64) -> Vec<LsqBreakdownRow> {
    let mut rows = Vec::new();
    for point in ExperimentScale::Measured.sweep() {
        let device = Device::h100();
        let problem = LsqProblem::performance(&device, point.d, point.n, seed)
            .expect("measured sweep sizes are always valid");
        for method in Method::FIGURE5 {
            // Serial execution through the unified engine: a pool of one H100.
            let pool = DevicePool::h100(1);
            let start = Stopwatch::start();
            match solve(&pool, &problem, method, seed) {
                Ok(sol) => {
                    let phase_ms: Vec<(Phase, f64)> = sol
                        .breakdown
                        .phases
                        .iter()
                        .map(|p| (p.phase, p.model_seconds * 1e3))
                        .collect();
                    rows.push(LsqBreakdownRow {
                        point,
                        method: method.label(),
                        total_model_ms: sol.breakdown.total_model_ms(),
                        phase_ms,
                        wall_ms: start.elapsed_seconds() * 1e3,
                        out_of_memory: false,
                    });
                }
                Err(e) => rows.push(LsqBreakdownRow {
                    point,
                    method: method.label(),
                    phase_ms: Vec::new(),
                    total_model_ms: 0.0,
                    wall_ms: start.elapsed_seconds() * 1e3,
                    out_of_memory: e.is_out_of_memory(),
                }),
            }
        }
    }
    rows
}

/// Figures 6–7: relative residuals on the easy/hard problems.
pub fn residual_rows(hard: bool, seed: u64) -> Vec<ResidualRow> {
    let mut rows = Vec::new();
    for point in ExperimentScale::Measured.residual_sweep() {
        let device = Device::unlimited();
        let problem = if hard {
            LsqProblem::hard(&device, point.d, point.n, seed).expect("valid sweep")
        } else {
            LsqProblem::easy(&device, point.d, point.n, seed).expect("valid sweep")
        };
        let pool = DevicePool::unlimited(1);
        for method in Method::ALL {
            let residual = solve(&pool, &problem, method, seed)
                .ok()
                .and_then(|sol| sol.relative_residual(&device, &problem).ok());
            rows.push(ResidualRow {
                point,
                kappa: 1e2,
                method: method.label(),
                residual,
            });
        }
    }
    rows
}

/// Figure 8: residual versus condition number on the exactly-consistent problem.
pub fn stability_rows(seed: u64) -> Vec<ResidualRow> {
    let (point, kappas) = ExperimentScale::Measured.stability_sweep();
    let methods = [
        Method::NormalEquations,
        Method::Gaussian,
        Method::CountSketch,
        Method::MultiSketch,
        Method::Qr,
    ];
    let mut rows = Vec::new();
    for &kappa in &kappas {
        let device = Device::unlimited();
        let problem = LsqProblem::conditioned(&device, point.d, point.n, kappa, seed)
            .expect("valid stability problem");
        let pool = DevicePool::unlimited(1);
        for method in methods {
            let residual = solve(&pool, &problem, method, seed)
                .ok()
                .and_then(|sol| sol.relative_residual(&device, &problem).ok())
                .filter(|r| r.is_finite());
            rows.push(ResidualRow {
                point,
                kappa,
                method: method.label(),
                residual,
            });
        }
    }
    rows
}

/// Summarise residual rows per method (used by the binaries and EXPERIMENTS.md):
/// method -> (min, max) residual over the sweep.
pub fn residual_summary(rows: &[ResidualRow]) -> BTreeMap<&'static str, (f64, f64)> {
    let mut out: BTreeMap<&'static str, (f64, f64)> = BTreeMap::new();
    for row in rows {
        if let Some(r) = row.residual {
            let entry = out.entry(row.method).or_insert((f64::INFINITY, 0.0));
            entry.0 = entry.0.min(r);
            entry.1 = entry.1.max(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_figure5_shows_the_multisketch_winning_for_wide_matrices() {
        let rows = lsq_breakdown_paper_rows();
        let total = |d: usize, n: usize, label: &str| {
            rows.iter()
                .find(|r| r.point.d == d && r.point.n == n && r.method == label)
                .map(|r| r.total_model_ms)
                .unwrap()
        };
        // The paper's headline: d = 2^22, n = 256, multisketch up to 77% faster than
        // the normal equations.
        let ne = total(1 << 22, 256, "Normal Eq");
        let multi = total(1 << 22, 256, "Multi");
        assert!(multi < ne);
        let speedup = (ne - multi) / ne;
        assert!(
            (0.3..0.95).contains(&speedup),
            "speedup {:.2} out of the plausible band",
            speedup
        );
        // rand_cholQR is slower than sketch-and-solve but still competitive.
        let rc = total(1 << 22, 256, "rand_cholQR");
        assert!(rc > multi);
    }

    #[test]
    fn paper_scale_figure5_rows_cover_all_methods_and_sizes() {
        let rows = lsq_breakdown_paper_rows();
        assert_eq!(rows.len(), 11 * 6);
        assert!(rows.iter().any(|r| r.method == "Gauss" && r.out_of_memory));
    }

    #[test]
    fn measured_residuals_track_the_true_residual_within_o1() {
        let rows = residual_rows(false, 5);
        // Group by problem size and compare each sketched method to QR.
        for point in ExperimentScale::Measured.residual_sweep() {
            let of = |label: &str| {
                rows.iter()
                    .find(|r| r.point == point && r.method == label)
                    .and_then(|r| r.residual)
                    .unwrap()
            };
            let qr = of("QR");
            for label in ["Gauss", "Count", "Multi", "SRHT"] {
                let res = of(label);
                assert!(
                    res + 1e-12 >= qr,
                    "{label} residual {res} below optimum {qr}"
                );
                assert!(res < 3.0 * qr, "{label} residual {res} vs QR {qr}");
            }
            for label in ["Normal Eq", "rand_cholQR"] {
                let res = of(label);
                assert!((res - qr).abs() / qr < 1e-4, "{label} should match QR");
            }
        }
    }

    #[test]
    fn hard_problem_residuals_exceed_easy_problem_residuals() {
        let easy = residual_summary(&residual_rows(false, 7));
        let hard = residual_summary(&residual_rows(true, 7));
        let easy_qr = easy["QR"].1;
        let hard_qr = hard["QR"].0;
        assert!(hard_qr > easy_qr, "hard {hard_qr} vs easy {easy_qr}");
    }

    #[test]
    fn stability_sweep_breaks_the_normal_equations_but_not_the_sketches() {
        let rows = stability_rows(3);
        // At kappa = 1e12 the normal equations must have failed or become inaccurate...
        let ne = rows
            .iter()
            .find(|r| r.kappa == 1e12 && r.method == "Normal Eq")
            .unwrap();
        let ne_bad = ne.residual.is_none() || ne.residual.unwrap() > 1e-4;
        assert!(ne_bad, "normal equations at kappa=1e12: {:?}", ne.residual);
        // ...while QR and the multisketch stay accurate.
        for label in ["QR", "Multi"] {
            let r = rows
                .iter()
                .find(|r| r.kappa == 1e12 && r.method == label)
                .unwrap();
            assert!(
                r.residual.unwrap_or(f64::INFINITY) < 1e-4,
                "{label}: {:?}",
                r.residual
            );
        }
    }
}
