//! # sketch-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's evaluation plus
//! Criterion micro-benchmarks for the individual kernels.
//!
//! Every figure is regenerated at two scales:
//!
//! * **measured** — the kernels actually run on this machine at a reduced problem size
//!   (no GPU; the rayon shim schedules real host threads); both the modelled H100 time
//!   and the wall-clock time are reported,
//! * **paper scale** — the same cost formulas evaluated analytically at the paper's
//!   `d ∈ {2²¹, 2²², 2²³}`, `n ∈ {32 … 256}` and pushed through the H100 roofline model.
//!   A unit test (`analytic::tests`) checks the analytic formulas against the costs the
//!   real kernels record, so the projection cannot silently drift from the
//!   implementation.
//!
//! Binaries (run with `cargo run -p sketch-bench --release --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 (complexity summary + measured counter check) |
//! | `fig2_sketch_times` | Figure 2 (sketch gen/apply time vs Gram matrix) |
//! | `fig3_mem_throughput` | Figure 3 (percent of peak memory throughput) |
//! | `fig4_flops` | Figure 4 (percent of peak FLOP/s) |
//! | `fig5_lsq_breakdown` | Figure 5 (least squares runtime breakdown) |
//! | `fig6_residual_easy` | Figure 6 (relative residuals, easy problem) |
//! | `fig7_residual_hard` | Figure 7 (relative residuals, hard problem) |
//! | `fig8_stability` | Figure 8 (residual vs condition number) |
//! | `dist_comm` | Section 7 communication-volume comparison |
//! | `ablations` | design-choice ablations (atomic vs gather, layouts, radix, SyRK) |
//! | `fig_scaling` | multi-device strong/weak scaling + overlap ablation (modelled) |
//! | `fig_walltime` | measured wall-clock across thread counts + bitwise gate |
//! | `all_experiments` | everything above in sequence |

pub mod analytic;
pub mod config;
pub mod lsq_experiments;
pub mod report;
pub mod sketch_experiments;
pub mod walltime;

pub use config::{ExperimentScale, SweepPoint};
pub use report::Table;
