//! Problem-size sweeps for the experiments.

/// One `(d, n)` point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Number of rows of the coefficient matrix.
    pub d: usize,
    /// Number of columns of the coefficient matrix.
    pub n: usize,
}

/// Which scale an experiment runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Reduced sizes that run in seconds on a 2-core container (kernels actually
    /// execute; both modelled and wall-clock times are reported).
    Measured,
    /// The paper's sizes (`d ∈ {2²¹, 2²², 2²³}`, `n ∈ {32, 64, 128, 256}`), evaluated
    /// through the analytic cost model + H100 roofline only.
    PaperModel,
}

impl ExperimentScale {
    /// The `(d, n)` sweep for this scale, mirroring Figures 2–5.
    ///
    /// The paper drops `n = 256` at `d = 2²³` (the operand alone would be 17 GB); the
    /// measured sweep keeps every point small enough to execute quickly.
    pub fn sweep(&self) -> Vec<SweepPoint> {
        match self {
            ExperimentScale::Measured => {
                let mut points = Vec::new();
                for d in [1usize << 14, 1 << 15, 1 << 16] {
                    for n in [16usize, 32, 64] {
                        points.push(SweepPoint { d, n });
                    }
                }
                points
            }
            ExperimentScale::PaperModel => {
                let mut points = Vec::new();
                for d in [1usize << 21, 1 << 22, 1 << 23] {
                    for n in [32usize, 64, 128, 256] {
                        if d == (1 << 23) && n == 256 {
                            continue;
                        }
                        points.push(SweepPoint { d, n });
                    }
                }
                points
            }
        }
    }

    /// The sweep used by the residual experiments (Figures 6–7): a single `d` with the
    /// paper's `n` progression (scaled down for the measured variant).
    pub fn residual_sweep(&self) -> Vec<SweepPoint> {
        match self {
            ExperimentScale::Measured => [8usize, 16, 32]
                .into_iter()
                .map(|n| SweepPoint { d: 1 << 14, n })
                .collect(),
            ExperimentScale::PaperModel => [32usize, 64, 128, 256]
                .into_iter()
                .map(|n| SweepPoint { d: 1 << 21, n })
                .collect(),
        }
    }

    /// The condition-number sweep of Figure 8 (`d = 2¹⁷`, `n = 16` in the paper).
    pub fn stability_sweep(&self) -> (SweepPoint, Vec<f64>) {
        let point = match self {
            ExperimentScale::Measured => SweepPoint { d: 1 << 13, n: 16 },
            ExperimentScale::PaperModel => SweepPoint { d: 1 << 17, n: 16 },
        };
        let kappas = (0..=20)
            .step_by(2)
            .map(|e| 10f64.powi(e))
            .collect::<Vec<_>>();
        (point, kappas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_sweep_is_small_enough_to_run() {
        for p in ExperimentScale::Measured.sweep() {
            assert!(p.d <= 1 << 16);
            assert!(p.n <= 64);
        }
    }

    #[test]
    fn paper_sweep_matches_figure2_and_omits_oversized_point() {
        let sweep = ExperimentScale::PaperModel.sweep();
        assert!(sweep.contains(&SweepPoint { d: 1 << 21, n: 256 }));
        assert!(!sweep.contains(&SweepPoint { d: 1 << 23, n: 256 }));
        assert_eq!(sweep.len(), 11);
    }

    #[test]
    fn stability_sweep_spans_twenty_orders_of_magnitude() {
        let (_, kappas) = ExperimentScale::PaperModel.stability_sweep();
        assert_eq!(kappas.first().copied(), Some(1.0));
        assert_eq!(kappas.last().copied(), Some(1e20));
    }

    #[test]
    fn residual_sweeps_are_nonempty() {
        assert!(!ExperimentScale::Measured.residual_sweep().is_empty());
        assert_eq!(ExperimentScale::PaperModel.residual_sweep().len(), 4);
    }
}
