//! Plain-text table rendering for the figure binaries.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header_line.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format milliseconds with three decimals.
pub fn ms(value: f64) -> String {
    format!("{value:.3}")
}

/// Format a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{value:.1}")
}

/// Format a residual in scientific notation.
pub fn sci(value: f64) -> String {
    format!("{value:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["method", "ms"]);
        t.push_row(vec!["Gram".into(), ms(1.234567)]);
        t.push_row(vec!["CountSketch (Alg 2)".into(), ms(0.5)]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("CountSketch (Alg 2)"));
        assert!(r.contains("1.235"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_width_is_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(2.0), "2.000");
        assert_eq!(pct(33.333), "33.3");
        assert!(sci(0.00123).contains('e'));
    }
}
