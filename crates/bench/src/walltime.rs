//! Measured wall-clock timing: sampling helpers and thread-pool scaffolding for
//! the `fig_walltime` binary.
//!
//! Everything else in this crate reports *modelled* `KernelCost` times (the H100
//! roofline).  This module is the measured counterpart: it times the kernels as
//! they actually execute on this host, under an explicit rayon pool whose size
//! the caller sweeps.  The two numbers are deliberately reported side by side —
//! modelled time answers "what would the paper's GPU do", measured time answers
//! "what does this build do on this machine, at N threads".
//!
//! The sampling discipline matches the workspace's criterion shim: warm-up
//! iterations are discarded, every timed iteration is an independent sample, and
//! the **median**/**minimum** are reported rather than a mean-of-few, so one
//! descheduled sample cannot poison a row of `BENCH_walltime.json`.

use sketch_obs::{CostBreakdown, RecorderHandle, Stopwatch, TraceEvent, Track};
use std::time::Duration;

/// Untimed executions before sampling starts (pool spin-up, cache warm-up).
pub const WARMUP_ITERS: usize = 1;

/// Minimum number of timed samples per measurement.
pub const MIN_SAMPLES: usize = 3;

/// Maximum number of timed samples per measurement.
pub const MAX_SAMPLES: usize = 15;

/// Soft time budget per measurement; sampling stops once it is exhausted
/// (but never before [`MIN_SAMPLES`]).
pub const SAMPLE_BUDGET: Duration = Duration::from_millis(400);

/// Wall-clock samples of one routine, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Median of the timed samples — the headline number.
    pub median_ns: f64,
    /// Minimum of the timed samples — the least noise-contaminated estimate.
    pub min_ns: f64,
    /// Number of timed samples taken.
    pub samples: usize,
}

impl Sample {
    /// Median time in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median_ns / 1e6
    }

    /// Minimum time in milliseconds.
    pub fn min_ms(&self) -> f64 {
        self.min_ns / 1e6
    }
}

/// Time `routine`: [`WARMUP_ITERS`] discarded runs, then per-iteration samples
/// until [`MIN_SAMPLES`]..[`MAX_SAMPLES`] within the [`SAMPLE_BUDGET`].
pub fn time_fn(mut routine: impl FnMut()) -> Sample {
    time_fn_with(&mut routine, |_| {})
}

/// Like [`time_fn`], but additionally emits one wall-track [`TraceEvent`] per
/// timed sample into `recorder`, named `name` — the measured half of a trace
/// whose modelled half stays deterministic.
pub fn time_fn_traced(recorder: &RecorderHandle, name: &str, mut routine: impl FnMut()) -> Sample {
    time_fn_with(&mut routine, |ns| {
        recorder.record(TraceEvent {
            name: name.to_string(),
            device: 0,
            track: Track::Wall,
            sim: None,
            wall_ns: ns as u64,
            cost: CostBreakdown::default(),
        });
    })
}

/// Shared sampling loop: `on_sample` observes each timed duration in ns.
fn time_fn_with(routine: &mut impl FnMut(), mut on_sample: impl FnMut(f64)) -> Sample {
    for _ in 0..WARMUP_ITERS {
        routine();
    }
    let mut samples: Vec<f64> = Vec::with_capacity(MIN_SAMPLES);
    let budget_start = Stopwatch::start();
    while samples.len() < MAX_SAMPLES
        && (samples.len() < MIN_SAMPLES
            || budget_start.elapsed_seconds() < SAMPLE_BUDGET.as_secs_f64())
    {
        let start = Stopwatch::start();
        routine();
        let ns = start.elapsed_ns() as f64;
        on_sample(ns);
        samples.push(ns);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    Sample {
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        samples: samples.len(),
    }
}

/// Run `f` with every parallel operation dispatched to a fresh pool of exactly
/// `threads` threads (the calling thread plus `threads - 1` workers).
pub fn with_thread_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool builds");
    pool.install(f)
}

/// Number of hardware threads this host exposes.  Measured speedup > 1 is only
/// physically possible when this exceeds 1; `fig_walltime` records it in the
/// JSON and conditions its speedup gate on it.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Bit patterns of a float slice, for exact cross-thread-count comparison
/// (`to_bits` distinguishes `-0.0` from `0.0`; `==` does not).
pub fn bits_of(data: &[f64]) -> Vec<u64> {
    data.iter().map(|x| x.to_bits()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_fn_respects_sample_bounds() {
        let mut runs = 0usize;
        let s = time_fn(|| {
            runs += 1;
            std::thread::sleep(Duration::from_micros(200));
        });
        assert_eq!(runs, WARMUP_ITERS + s.samples);
        assert!((MIN_SAMPLES..=MAX_SAMPLES).contains(&s.samples));
        assert!(s.min_ns > 0.0 && s.median_ns >= s.min_ns);
    }

    #[test]
    fn with_thread_pool_pins_current_num_threads() {
        for n in [1, 2, 4] {
            let seen = with_thread_pool(n, rayon::current_num_threads);
            assert_eq!(seen, n);
        }
    }

    #[test]
    fn bits_of_distinguishes_signed_zero() {
        assert_ne!(bits_of(&[0.0])[0], bits_of(&[-0.0])[0]);
    }

    #[test]
    fn traced_sampling_emits_one_wall_event_per_sample() {
        let collector = sketch_obs::TraceCollector::shared();
        let recorder: RecorderHandle = collector.clone();
        let s = time_fn_traced(&recorder, "spin", || {
            std::thread::sleep(Duration::from_micros(50));
        });
        let events = collector.snapshot();
        assert_eq!(events.len(), s.samples);
        for e in &events {
            assert_eq!(e.track, Track::Wall);
            assert_eq!(e.name, "spin");
            assert!(e.sim.is_none());
            assert!(e.wall_ns > 0);
        }
    }
}
