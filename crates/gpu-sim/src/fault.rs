//! Declarative fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] names, per pool position, the one fault a device suffers:
//!
//! * [`FaultSpec::Dies`] — the device's modelled clocks stop at
//!   `after_sim_seconds` into a run; any kernel or collective that would
//!   complete *after* that instant fails with the typed [`DeviceFailed`]
//!   error, surfaced at launch/enqueue time.
//! * [`FaultSpec::Straggler`] — every modelled kernel time on the device is
//!   multiplied by `slowdown_factor` (a factor of exactly `1.0` is
//!   bit-identical to no fault at all — pinned by the fault proptests).
//! * [`FaultSpec::LinkDegraded`] — the device's interconnect hops are
//!   multiplied by `factor`, modelling a flaky NVLink lane.
//!
//! Faults live on the [`Device`](crate::Device) handles themselves
//! ([`crate::DevicePool::apply_fault_plan`]), so subpool views built by a
//! service scheduler observe the same injected faults as the parent pool —
//! exactly as a real flaky GPU is flaky for every job scheduled onto it.
//! Nothing here perturbs numerics: faults bend modelled *time* only, and the
//! executor's recovery (`sketch-dist`) regenerates lost shards from their
//! Philox seeds, so recovered results stay bit-exact.
//!
//! Plans round-trip through JSON *exactly* — `f64` fields render via Rust's
//! shortest-round-trip formatting — so a chaos configuration can be checked
//! into a benchmark without drifting a single bit.

use sketch_obs::JsonValue;
use std::collections::BTreeMap;
use std::fmt;

/// The one fault injected into a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// The device dies this many simulated seconds into a run: any modelled
    /// operation completing after that instant fails with [`DeviceFailed`].
    Dies {
        /// Simulated seconds into the run at which the device stops.
        after_sim_seconds: f64,
    },
    /// Every modelled kernel on the device takes `slowdown_factor` times as
    /// long (1.0 = healthy, bit-exactly).
    Straggler {
        /// Multiplier applied to the device's modelled kernel times.
        slowdown_factor: f64,
    },
    /// Every interconnect hop charged to the device takes `factor` times as
    /// long.
    LinkDegraded {
        /// Multiplier applied to the device's modelled transfer times.
        factor: f64,
    },
}

impl FaultSpec {
    /// Multiplier for the device's modelled kernel times (1.0 unless the
    /// fault is a [`FaultSpec::Straggler`]).
    pub fn time_scale(&self) -> f64 {
        match self {
            FaultSpec::Straggler { slowdown_factor } => *slowdown_factor,
            _ => 1.0,
        }
    }

    /// Multiplier for the device's modelled interconnect hops (1.0 unless the
    /// fault is a [`FaultSpec::LinkDegraded`]).
    pub fn link_scale(&self) -> f64 {
        match self {
            FaultSpec::LinkDegraded { factor } => *factor,
            _ => 1.0,
        }
    }

    /// The simulated instant the device dies, if the fault is a
    /// [`FaultSpec::Dies`].
    pub fn death_time(&self) -> Option<f64> {
        match self {
            FaultSpec::Dies { after_sim_seconds } => Some(*after_sim_seconds),
            _ => None,
        }
    }

    /// Serialize to a tagged JSON object (`{"kind": "dies", ...}`).
    pub fn to_json_value(&self) -> JsonValue {
        let (kind, field, value) = match self {
            FaultSpec::Dies { after_sim_seconds } => {
                ("dies", "after_sim_seconds", *after_sim_seconds)
            }
            FaultSpec::Straggler { slowdown_factor } => {
                ("straggler", "slowdown_factor", *slowdown_factor)
            }
            FaultSpec::LinkDegraded { factor } => ("link_degraded", "factor", *factor),
        };
        JsonValue::Object(vec![
            ("kind".into(), JsonValue::Str(kind.into())),
            (field.into(), JsonValue::Float(value)),
        ])
    }

    /// Parse the tagged JSON object produced by [`FaultSpec::to_json_value`].
    pub fn from_json_value(value: &JsonValue) -> Result<Self, FaultParseError> {
        let kind = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| FaultParseError::new("fault spec needs a \"kind\" string"))?;
        let field = |name: &str| -> Result<f64, FaultParseError> {
            value.get(name).and_then(JsonValue::as_f64).ok_or_else(|| {
                FaultParseError::new(format!("fault kind {kind:?} needs a number field {name:?}"))
            })
        };
        match kind {
            "dies" => Ok(FaultSpec::Dies {
                after_sim_seconds: field("after_sim_seconds")?,
            }),
            "straggler" => Ok(FaultSpec::Straggler {
                slowdown_factor: field("slowdown_factor")?,
            }),
            "link_degraded" => Ok(FaultSpec::LinkDegraded {
                factor: field("factor")?,
            }),
            other => Err(FaultParseError::new(format!(
                "unknown fault kind {other:?} (expected dies, straggler, or link_degraded)"
            ))),
        }
    }
}

/// A per-device fault assignment, keyed by pool position.
///
/// The plan is *total* over the pool it is applied to: positions it does not
/// name are explicitly healthy, and
/// [`DevicePool::apply_fault_plan`](crate::DevicePool::apply_fault_plan)
/// clears any previously injected fault on them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: every device healthy.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// Add (or replace) the fault of the device at pool position `device`.
    #[must_use]
    pub fn with_fault(mut self, device: usize, fault: FaultSpec) -> Self {
        self.faults.insert(device, fault);
        self
    }

    /// The fault injected at pool position `device`, if any.
    pub fn get(&self, device: usize) -> Option<FaultSpec> {
        self.faults.get(&device).copied()
    }

    /// Number of faulted devices in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects no fault at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Faulted positions and their specs, in ascending pool position order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, FaultSpec)> + '_ {
        self.faults.iter().map(|(&d, &s)| (d, s))
    }

    /// Serialize to a JSON object keyed by decimal pool position.
    ///
    /// The rendering is *exact*: finite `f64` fields use shortest-round-trip
    /// formatting, so `FaultPlan::from_json(plan.to_json().render())`
    /// reproduces the plan bit for bit (pinned by the gpu-sim proptests).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.faults
                .iter()
                .map(|(d, s)| (d.to_string(), s.to_json_value()))
                .collect(),
        )
    }

    /// Parse a JSON document produced by [`FaultPlan::to_json`].
    pub fn from_json(input: &str) -> Result<Self, FaultParseError> {
        let doc = JsonValue::parse(input).map_err(|e| FaultParseError::new(e.message()))?;
        Self::from_json_value(&doc)
    }

    /// Parse the object form produced by [`FaultPlan::to_json`].
    pub fn from_json_value(value: &JsonValue) -> Result<Self, FaultParseError> {
        let JsonValue::Object(fields) = value else {
            return Err(FaultParseError::new(
                "fault plan must be an object keyed by device position",
            ));
        };
        let mut faults = BTreeMap::new();
        for (key, spec) in fields {
            let device: usize = key.parse().map_err(|_| {
                FaultParseError::new(format!("fault plan key {key:?} is not a device position"))
            })?;
            faults.insert(device, FaultSpec::from_json_value(spec)?);
        }
        Ok(Self { faults })
    }
}

/// A `FaultPlan` or `FaultSpec` document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    detail: String,
}

impl FaultParseError {
    fn new(detail: impl Into<String>) -> Self {
        Self {
            detail: detail.into(),
        }
    }

    /// What was wrong with the document.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan parse error: {}", self.detail)
    }
}

impl std::error::Error for FaultParseError {}

/// The typed device-death error: a modelled operation would complete after
/// the device's injected [`FaultSpec::Dies`] instant.
///
/// Carries the *physical* ordinal of the dead device (its position in the
/// parent pool, which subpool views preserve) and the simulated instant it
/// died, so a scheduler can retire exactly the right device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceFailed {
    /// Physical ordinal of the device that died.
    pub ordinal: usize,
    /// Simulated seconds into the run at which it died.
    pub after_sim_seconds: f64,
}

impl fmt::Display for DeviceFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {} died {:.6}s into the simulated run",
            self.ordinal, self.after_sim_seconds
        )
    }
}

impl std::error::Error for DeviceFailed {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_scales_default_to_healthy() {
        let dies = FaultSpec::Dies {
            after_sim_seconds: 0.25,
        };
        assert_eq!(dies.time_scale(), 1.0);
        assert_eq!(dies.link_scale(), 1.0);
        assert_eq!(dies.death_time(), Some(0.25));
        let slow = FaultSpec::Straggler {
            slowdown_factor: 4.0,
        };
        assert_eq!(slow.time_scale(), 4.0);
        assert_eq!(slow.link_scale(), 1.0);
        assert_eq!(slow.death_time(), None);
        let link = FaultSpec::LinkDegraded { factor: 8.0 };
        assert_eq!(link.time_scale(), 1.0);
        assert_eq!(link.link_scale(), 8.0);
        assert_eq!(link.death_time(), None);
    }

    #[test]
    fn plan_builders_and_queries() {
        let plan = FaultPlan::healthy()
            .with_fault(
                2,
                FaultSpec::Dies {
                    after_sim_seconds: 1.0,
                },
            )
            .with_fault(
                0,
                FaultSpec::Straggler {
                    slowdown_factor: 2.0,
                },
            );
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::healthy().is_empty());
        assert_eq!(plan.get(1), None);
        assert_eq!(plan.get(2).unwrap().death_time(), Some(1.0));
        let positions: Vec<usize> = plan.iter().map(|(d, _)| d).collect();
        assert_eq!(positions, vec![0, 2], "iteration is position-ordered");
    }

    #[test]
    fn plan_json_round_trips() {
        let plan = FaultPlan::healthy()
            .with_fault(
                1,
                FaultSpec::Dies {
                    after_sim_seconds: 0.125,
                },
            )
            .with_fault(3, FaultSpec::LinkDegraded { factor: 2.5 });
        let rendered = plan.to_json().render();
        let parsed = FaultPlan::from_json(&rendered).unwrap();
        assert_eq!(parsed, plan);
        // And the rendering itself is stable.
        assert_eq!(parsed.to_json().render(), rendered);
    }

    #[test]
    fn malformed_plans_are_typed_errors() {
        assert!(FaultPlan::from_json("[1, 2]").is_err());
        assert!(
            FaultPlan::from_json("{\"x\": {\"kind\": \"dies\", \"after_sim_seconds\": 1}}")
                .is_err()
        );
        assert!(FaultPlan::from_json("{\"0\": {\"kind\": \"melts\"}}").is_err());
        assert!(FaultPlan::from_json("{\"0\": {\"kind\": \"dies\"}}").is_err());
        assert!(FaultPlan::from_json("not json").is_err());
        let err = FaultPlan::from_json("{\"0\": {\"kind\": \"melts\"}}").unwrap_err();
        assert!(err.to_string().contains("melts"), "{err}");
        assert!(err.detail().contains("unknown fault kind"));
    }

    #[test]
    fn integer_fault_times_parse_as_floats() {
        let plan = FaultPlan::from_json("{\"0\": {\"kind\": \"dies\", \"after_sim_seconds\": 2}}")
            .unwrap();
        assert_eq!(plan.get(0).unwrap().death_time(), Some(2.0));
    }

    #[test]
    fn device_failed_renders() {
        let e = DeviceFailed {
            ordinal: 3,
            after_sim_seconds: 0.5,
        };
        assert!(e.to_string().contains("device 3"));
        assert!(e.to_string().contains("0.5"));
    }
}
