//! A pool of simulated devices connected by a modelled interconnect.
//!
//! The multi-device executor in `sketch-dist` shards work across the pool's
//! [`Device`]s and uses [`InterconnectSpec`] to price the transfers that stitch the
//! shards back together.  Each device keeps its own cost tracker and memory model, so
//! per-device utilization and per-device OOM behaviour fall out of the same idioms
//! the single-device code already uses.
//!
//! ```
//! use sketch_gpu_sim::{DevicePool, KernelCost};
//!
//! let pool = DevicePool::h100(4);
//! pool.device(2).record(KernelCost::new(1 << 20, 1 << 20, 1 << 10, 1));
//! assert_eq!(pool.num_devices(), 4);
//! assert_eq!(pool.total_cost().launches, 1);
//! // An NVLink hop for 1 MiB:
//! assert!(pool.interconnect().transfer_time(1 << 20) > 0.0);
//! ```

use crate::counters::KernelCost;
use crate::device::{Device, DeviceSpec};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Published characteristics of the device-to-device interconnect.
///
/// The executor models ring collectives, so the numbers describe one link of the
/// ring; the defaults follow NVIDIA's NVLink 4 datasheet figures de-rated the same
/// way [`DeviceSpec`] de-rates HBM bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    /// Human readable name used in reports.
    pub name: &'static str,
    /// Sustained point-to-point bandwidth of one link, in bytes per second.
    pub link_bandwidth_bytes_per_s: f64,
    /// Fixed per-transfer latency in seconds (ring hop setup, NCCL launch, …).
    pub latency_s: f64,
}

impl InterconnectSpec {
    /// NVLink 4 (H100 generation): 900 GB/s aggregate per GPU; a single ring
    /// direction sustains roughly half, de-rated to 80 %.
    pub const fn nvlink4() -> Self {
        Self {
            name: "NVLink 4 (modelled)",
            link_bandwidth_bytes_per_s: 360.0e9,
            latency_s: 5.0e-6,
        }
    }

    /// PCIe 5.0 x16: the fallback fabric when GPUs are not NVLink-connected.
    pub const fn pcie5() -> Self {
        Self {
            name: "PCIe 5.0 x16 (modelled)",
            link_bandwidth_bytes_per_s: 50.0e9,
            latency_s: 1.0e-5,
        }
    }

    /// The degenerate interconnect of a single-device pool: no transfer ever
    /// crosses a link, so every hop is free.  This is what makes a
    /// [`DevicePool::single`] a zero-overhead execution target — the executor's
    /// collectives degenerate to no-ops and the timeline reduces to bare device
    /// launches.
    pub const fn local() -> Self {
        Self {
            name: "local (single device)",
            link_bandwidth_bytes_per_s: f64::INFINITY,
            latency_s: 0.0,
        }
    }

    /// Time for one link to move `bytes`, in seconds.
    ///
    /// A zero-byte transfer is free — `0.0`, *not* `latency_s` — by design:
    /// the executor elides empty collectives entirely (no NCCL launch is
    /// issued for a payload that does not exist), so there is no hop to pay
    /// latency on.  This elision is also what keeps single-device pools and
    /// comm-free stages exactly zero-overhead ([`InterconnectSpec::local`]'s
    /// contract).  Pinned for both real presets by
    /// `zero_byte_transfers_are_elided_on_every_preset`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_s + bytes as f64 / self.link_bandwidth_bytes_per_s
    }
}

impl Default for InterconnectSpec {
    fn default() -> Self {
        Self::nvlink4()
    }
}

/// Why [`DevicePool::subpool`] refused to build a view.
///
/// Rejections are typed errors, not panics: a service layer turns these into
/// per-request failures instead of tearing the process down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The requested subset named no devices.
    Empty,
    /// An ordinal is not a position in the parent pool.
    OutOfRange {
        /// The offending ordinal.
        ordinal: usize,
        /// Number of devices in the parent pool.
        num_devices: usize,
    },
    /// The same ordinal appeared more than once in the subset.
    Duplicate {
        /// The repeated ordinal.
        ordinal: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Empty => write!(f, "subpool needs at least one device ordinal"),
            PoolError::OutOfRange {
                ordinal,
                num_devices,
            } => write!(
                f,
                "device ordinal {ordinal} is out of range for a pool of {num_devices}"
            ),
            PoolError::Duplicate { ordinal } => {
                write!(f, "device ordinal {ordinal} appears more than once")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// A fixed set of simulated devices plus the interconnect between them.
///
/// Devices are reference-counted so a [`DevicePool::subpool`] view shares the
/// parent's devices: kernel costs and memory pressure recorded through a
/// subpool accumulate on the parent's trackers, exactly as concurrent jobs on
/// a shared cluster would.
#[derive(Debug, Default, Clone)]
pub struct DevicePool {
    devices: Vec<Arc<Device>>,
    interconnect: InterconnectSpec,
}

impl DevicePool {
    /// A pool of `n` identical devices built from one spec, NVLink-connected.
    ///
    /// # Panics
    /// Panics if `n` is zero — an executor needs at least one device.
    pub fn homogeneous(n: usize, spec: DeviceSpec) -> Self {
        assert!(n > 0, "a device pool needs at least one device");
        Self {
            devices: (0..n)
                .map(|i| Arc::new(Device::with_ordinal(spec, i)))
                .collect(),
            interconnect: InterconnectSpec::default(),
        }
    }

    /// `n` modelled H100s (the paper's device).
    pub fn h100(n: usize) -> Self {
        Self::homogeneous(n, DeviceSpec::h100())
    }

    /// A first-class single-device pool with the degenerate
    /// [`InterconnectSpec::local`] interconnect.
    ///
    /// This is how "serial" execution is expressed in the unified engine: every
    /// driver takes a pool, and a pool of one runs the exact single-device kernels
    /// with zero communication — the executor's timeline produces the same makespan
    /// as bare [`Device`] launches.
    pub fn single(spec: DeviceSpec) -> Self {
        Self {
            devices: vec![Arc::new(Device::new(spec))],
            interconnect: InterconnectSpec::local(),
        }
    }

    /// `n` devices that never report out-of-memory; convenient in tests.
    pub fn unlimited(n: usize) -> Self {
        Self::homogeneous(n, DeviceSpec::unlimited())
    }

    /// Replace the interconnect model.
    #[must_use]
    pub fn with_interconnect(mut self, interconnect: InterconnectSpec) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Number of devices in the pool.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Device `i` (pool position).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// All devices, in pool order.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// A view over the devices at the given pool positions, sharing the parent
    /// pool's devices and interconnect.
    ///
    /// The returned pool is a first-class execution target: the executor
    /// shards across its positions as usual, while every launch lands on the
    /// parent's cost trackers and memory models.  A service scheduler uses
    /// disjoint subpools to co-schedule independent jobs on one cluster.
    ///
    /// Devices keep their parent ordinals, so trace and utilization reports
    /// from a subpool run still name the physical devices.
    ///
    /// Rejects empty subsets, out-of-range ordinals and duplicates with a
    /// typed [`PoolError`] instead of panicking.
    pub fn subpool(&self, ordinals: &[usize]) -> Result<DevicePool, PoolError> {
        if ordinals.is_empty() {
            return Err(PoolError::Empty);
        }
        let mut seen = vec![false; self.devices.len()];
        let mut devices = Vec::with_capacity(ordinals.len());
        for &ordinal in ordinals {
            if ordinal >= self.devices.len() {
                return Err(PoolError::OutOfRange {
                    ordinal,
                    num_devices: self.devices.len(),
                });
            }
            if seen[ordinal] {
                return Err(PoolError::Duplicate { ordinal });
            }
            seen[ordinal] = true;
            devices.push(Arc::clone(&self.devices[ordinal]));
        }
        let interconnect = if devices.len() == 1 {
            InterconnectSpec::local()
        } else {
            self.interconnect
        };
        Ok(DevicePool {
            devices,
            interconnect,
        })
    }

    /// The interconnect model.
    pub fn interconnect(&self) -> &InterconnectSpec {
        &self.interconnect
    }

    /// Sum of every device's accumulated cost counters.
    pub fn total_cost(&self) -> KernelCost {
        self.devices
            .iter()
            .fold(KernelCost::zero(), |acc, d| acc + d.tracker().snapshot())
    }

    /// Reset every device's cost counters.
    pub fn reset_counters(&self) {
        for d in &self.devices {
            d.tracker().reset();
        }
    }

    /// Attach one recorder to every device in the pool; the executor also
    /// picks it up from here for its stream-timeline events.  Pass a
    /// [`sketch_obs::TraceCollector`] to capture a trace of everything the
    /// pool runs.
    pub fn attach_recorder(&self, recorder: std::sync::Arc<dyn sketch_obs::Recorder>) {
        for d in &self.devices {
            d.set_recorder(Some(recorder.clone()));
        }
    }

    /// Detach any recorder from every device.
    pub fn detach_recorder(&self) {
        for d in &self.devices {
            d.set_recorder(None);
        }
    }

    /// The recorder attached to the pool's devices, if any is enabled.
    pub fn recorder(&self) -> Option<std::sync::Arc<dyn sketch_obs::Recorder>> {
        self.devices.first().and_then(|d| d.recorder())
    }

    /// Inject `plan`'s faults into the pool's devices, keyed by pool position.
    ///
    /// The plan is total: positions it does not name get any previous fault
    /// *cleared* (and their sticky failed flags reset), so re-applying a plan
    /// restarts a fresh run's fault clocks.  Plan entries beyond the pool are
    /// ignored.  Because subpool views share the parent's devices, faults
    /// applied here are observed by every view — a flaky GPU is flaky for
    /// every job scheduled onto it.
    pub fn apply_fault_plan(&self, plan: &crate::FaultPlan) {
        for (i, d) in self.devices.iter().enumerate() {
            d.set_fault(plan.get(i));
        }
    }

    /// Clear every injected fault (and sticky failed flag) in the pool.
    pub fn clear_faults(&self) {
        for d in &self.devices {
            d.set_fault(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_pool_has_independent_trackers() {
        let pool = DevicePool::h100(3);
        pool.device(0).record(KernelCost::new(8, 8, 2, 1));
        pool.device(2).record(KernelCost::new(16, 0, 4, 1));
        assert_eq!(pool.device(0).tracker().snapshot().flops, 2);
        assert_eq!(pool.device(1).tracker().snapshot().flops, 0);
        assert_eq!(pool.total_cost().flops, 6);
        pool.reset_counters();
        assert_eq!(pool.total_cost(), KernelCost::zero());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_pool_is_rejected() {
        DevicePool::h100(0);
    }

    #[test]
    fn interconnect_presets_are_ordered_sensibly() {
        let nvlink = InterconnectSpec::nvlink4();
        let pcie = InterconnectSpec::pcie5();
        assert!(nvlink.link_bandwidth_bytes_per_s > pcie.link_bandwidth_bytes_per_s);
        let bytes = 1u64 << 24;
        assert!(nvlink.transfer_time(bytes) < pcie.transfer_time(bytes));
        assert_eq!(nvlink.transfer_time(0), 0.0);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let ic = InterconnectSpec::nvlink4();
        let t = ic.transfer_time(1);
        assert!(t >= ic.latency_s);
    }

    #[test]
    fn zero_byte_transfers_are_elided_on_every_preset() {
        // Decision (ISSUE 9 satellite): an empty payload launches no
        // collective, so it pays no latency — 0.0 exactly, on every fabric.
        for ic in [InterconnectSpec::nvlink4(), InterconnectSpec::pcie5()] {
            assert_eq!(ic.transfer_time(0), 0.0, "{}", ic.name);
            // The first real byte does pay the hop setup.
            assert!(ic.transfer_time(1) >= ic.latency_s, "{}", ic.name);
        }
    }

    #[test]
    fn fault_plans_apply_by_pool_position_and_clear() {
        use crate::fault::{FaultPlan, FaultSpec};
        let pool = DevicePool::unlimited(3);
        let plan = FaultPlan::healthy()
            .with_fault(
                1,
                FaultSpec::Dies {
                    after_sim_seconds: 0.5,
                },
            )
            .with_fault(
                2,
                FaultSpec::Straggler {
                    slowdown_factor: 3.0,
                },
            )
            // Beyond the pool: ignored.
            .with_fault(9, FaultSpec::LinkDegraded { factor: 2.0 });
        pool.apply_fault_plan(&plan);
        assert_eq!(pool.device(0).fault(), None);
        assert_eq!(pool.device(1).death_time(), Some(0.5));
        assert_eq!(pool.device(2).time_scale(), 3.0);
        // Subpool views observe the parent's faults.
        let sub = pool.subpool(&[1, 2]).unwrap();
        assert_eq!(sub.device(0).death_time(), Some(0.5));
        // Marking a death through the view is visible on the parent handle.
        assert!(sub.device(0).check_alive(1.0).is_err());
        assert!(pool.device(1).is_failed());
        // An empty plan (or clear_faults) heals everything.
        pool.apply_fault_plan(&FaultPlan::healthy());
        assert_eq!(pool.device(1).fault(), None);
        assert!(!pool.device(1).is_failed());
        pool.apply_fault_plan(&plan);
        pool.clear_faults();
        assert_eq!(pool.device(2).time_scale(), 1.0);
    }

    #[test]
    fn single_device_pool_has_a_free_interconnect() {
        let pool = DevicePool::single(DeviceSpec::h100());
        assert_eq!(pool.num_devices(), 1);
        assert_eq!(pool.interconnect().transfer_time(1 << 30), 0.0);
        assert_eq!(pool.interconnect().name, "local (single device)");
        assert_eq!(pool.device(0).spec().name, DeviceSpec::h100().name);
    }

    #[test]
    fn pool_ordinals_follow_pool_positions() {
        let pool = DevicePool::h100(3);
        for (i, d) in pool.devices().iter().enumerate() {
            assert_eq!(d.ordinal(), i);
        }
    }

    #[test]
    fn recorder_attaches_to_every_device_and_detaches() {
        let pool = DevicePool::h100(2);
        assert!(pool.recorder().is_none());
        let collector = sketch_obs::TraceCollector::shared();
        pool.attach_recorder(collector.clone());
        assert!(pool.recorder().is_some());
        pool.device(1).launch("k", KernelCost::new(8, 8, 2, 1));
        assert_eq!(collector.len(), 1);
        assert_eq!(collector.snapshot()[0].device, 1);
        pool.detach_recorder();
        assert!(pool.recorder().is_none());
    }

    #[test]
    fn subpool_shares_devices_and_keeps_ordinals() {
        let pool = DevicePool::unlimited(4);
        let sub = pool.subpool(&[1, 3]).unwrap();
        assert_eq!(sub.num_devices(), 2);
        assert_eq!(sub.device(0).ordinal(), 1);
        assert_eq!(sub.device(1).ordinal(), 3);
        // Costs recorded through the view land on the parent's trackers.
        sub.device(0).record(KernelCost::new(8, 8, 2, 1));
        assert_eq!(pool.device(1).tracker().snapshot().flops, 2);
        assert_eq!(pool.total_cost().flops, 2);
        // Multi-device subpools inherit the parent fabric.
        assert_eq!(sub.interconnect().name, pool.interconnect().name);
    }

    #[test]
    fn single_device_subpool_gets_the_local_interconnect() {
        let pool = DevicePool::h100(4);
        let sub = pool.subpool(&[2]).unwrap();
        assert_eq!(sub.num_devices(), 1);
        assert_eq!(sub.device(0).ordinal(), 2);
        // A one-device view is a zero-comm execution target, exactly like
        // `DevicePool::single`.
        assert_eq!(sub.interconnect().transfer_time(1 << 30), 0.0);
    }

    #[test]
    fn subpool_rejects_bad_subsets_with_typed_errors() {
        let pool = DevicePool::unlimited(3);
        assert_eq!(pool.subpool(&[]).unwrap_err(), PoolError::Empty);
        assert_eq!(
            pool.subpool(&[0, 3]).unwrap_err(),
            PoolError::OutOfRange {
                ordinal: 3,
                num_devices: 3
            }
        );
        assert_eq!(
            pool.subpool(&[1, 2, 1]).unwrap_err(),
            PoolError::Duplicate { ordinal: 1 }
        );
        // Errors render as readable messages.
        assert!(PoolError::Empty.to_string().contains("at least one"));
        assert!(pool
            .subpool(&[9])
            .unwrap_err()
            .to_string()
            .contains("out of range"));
    }

    #[test]
    fn overlapping_subpools_accumulate_onto_the_same_device() {
        let pool = DevicePool::unlimited(2);
        let a = pool.subpool(&[0]).unwrap();
        let b = pool.subpool(&[0, 1]).unwrap();
        a.device(0).record(KernelCost::new(0, 0, 1, 1));
        b.device(0).record(KernelCost::new(0, 0, 10, 1));
        assert_eq!(pool.device(0).tracker().snapshot().flops, 11);
        assert_eq!(pool.device(1).tracker().snapshot().flops, 0);
    }

    #[test]
    fn pool_interconnect_is_swappable() {
        let pool = DevicePool::unlimited(2).with_interconnect(InterconnectSpec::pcie5());
        assert_eq!(pool.interconnect().name, "PCIe 5.0 x16 (modelled)");
        assert_eq!(pool.devices().len(), 2);
    }
}
