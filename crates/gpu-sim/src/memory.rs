//! Device memory capacity modelling.
//!
//! The paper notes twice (Figures 2 and 5) that the Gaussian sketch bars are blank for
//! the largest problems "because the GPU ran out of memory": a `2n x d` dense Gaussian
//! at `d = 2^22, n = 256` is ~17 GB on top of `A` itself and the 80 GB card cannot hold
//! it alongside the workspace.  Rather than letting the host's RAM silently absorb such
//! allocations, kernels reserve their working set through [`MemoryTracker`], which
//! enforces the modelled capacity and returns [`MemoryError`] exactly where the paper
//! reports an OOM.

use parking_lot::Mutex;
use std::fmt;

/// Error returned when a reservation would exceed the modelled device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryError {
    /// Bytes that were requested.
    pub requested: u64,
    /// Bytes already in use at the time of the request.
    pub in_use: u64,
    /// Total modelled capacity.
    pub capacity: u64,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes with {} of {} bytes already in use",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for MemoryError {}

/// Tracks modelled device memory usage.
#[derive(Debug)]
pub struct MemoryTracker {
    capacity: u64,
    state: Mutex<MemoryState>,
}

#[derive(Debug, Default)]
struct MemoryState {
    in_use: u64,
    peak: u64,
    allocations: u64,
}

impl Default for MemoryTracker {
    fn default() -> Self {
        Self::new(u64::MAX)
    }
}

impl MemoryTracker {
    /// Create a tracker with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            state: Mutex::new(MemoryState::default()),
        }
    }

    /// Total modelled capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> u64 {
        self.state.lock().in_use
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.state.lock().peak
    }

    /// Number of successful reservations made so far (the modelled `cudaMalloc`
    /// count).  Buffer-reusing kernels such as `SketchOperator::apply_into` are
    /// certified allocation-free by checking this counter does not move.
    pub fn allocations(&self) -> u64 {
        self.state.lock().allocations
    }

    /// Try to reserve `bytes`; the reservation is released when the returned guard drops.
    pub fn try_reserve(&self, bytes: u64) -> Result<Reservation<'_>, MemoryError> {
        let mut state = self.state.lock();
        let new_in_use = state.in_use.saturating_add(bytes);
        if new_in_use > self.capacity {
            return Err(MemoryError {
                requested: bytes,
                in_use: state.in_use,
                capacity: self.capacity,
            });
        }
        state.in_use = new_in_use;
        state.peak = state.peak.max(new_in_use);
        state.allocations += 1;
        Ok(Reservation {
            tracker: self,
            bytes,
        })
    }

    /// Check whether `bytes` additional bytes would fit right now, without reserving.
    pub fn would_fit(&self, bytes: u64) -> bool {
        let state = self.state.lock();
        state
            .in_use
            .checked_add(bytes)
            .map(|total| total <= self.capacity)
            .unwrap_or(false)
    }

    fn release(&self, bytes: u64) {
        let mut state = self.state.lock();
        state.in_use = state.in_use.saturating_sub(bytes);
    }
}

/// RAII guard for a modelled device allocation.
#[derive(Debug)]
pub struct Reservation<'a> {
    tracker: &'a MemoryTracker,
    bytes: u64,
}

impl Reservation<'_> {
    /// Size of this reservation in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        self.tracker.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let t = MemoryTracker::new(1000);
        {
            let r = t.try_reserve(400).unwrap();
            assert_eq!(r.bytes(), 400);
            assert_eq!(t.in_use(), 400);
            let _r2 = t.try_reserve(600).unwrap();
            assert_eq!(t.in_use(), 1000);
        }
        assert_eq!(t.in_use(), 0);
        assert_eq!(t.peak(), 1000);
    }

    #[test]
    fn over_capacity_fails_with_details() {
        let t = MemoryTracker::new(100);
        let _held = t.try_reserve(60).unwrap();
        let err = t.try_reserve(50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.in_use, 60);
        assert_eq!(err.capacity, 100);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn failed_reservation_does_not_leak() {
        let t = MemoryTracker::new(100);
        assert!(t.try_reserve(200).is_err());
        assert_eq!(t.in_use(), 0);
        assert!(t.try_reserve(100).is_ok());
    }

    #[test]
    fn allocation_counter_counts_successful_reservations_only() {
        let t = MemoryTracker::new(100);
        assert_eq!(t.allocations(), 0);
        {
            let _a = t.try_reserve(40).unwrap();
            let _b = t.try_reserve(40).unwrap();
            assert!(t.try_reserve(40).is_err());
        }
        // Releases do not decrement the counter: it counts mallocs, not residency.
        assert_eq!(t.allocations(), 2);
        let _c = t.try_reserve(10).unwrap();
        assert_eq!(t.allocations(), 3);
    }

    #[test]
    fn would_fit_is_consistent() {
        let t = MemoryTracker::new(100);
        assert!(t.would_fit(100));
        assert!(!t.would_fit(101));
        let _r = t.try_reserve(40).unwrap();
        assert!(t.would_fit(60));
        assert!(!t.would_fit(61));
    }

    #[test]
    fn overflowing_request_is_rejected() {
        let t = MemoryTracker::new(u64::MAX - 1);
        let _r = t.try_reserve(10).unwrap();
        assert!(t.try_reserve(u64::MAX).is_err());
        assert!(!t.would_fit(u64::MAX));
    }

    #[test]
    fn default_tracker_is_effectively_unlimited() {
        let t = MemoryTracker::default();
        assert!(t.try_reserve(1 << 50).is_ok());
    }
}
