//! Simulated streams, events and the execution [`Timeline`].
//!
//! Real multi-GPU pipelines hide communication behind compute by enqueueing kernels
//! and NCCL collectives on separate CUDA streams and expressing cross-stream
//! dependencies with events (`cudaEventRecord` / `cudaStreamWaitEvent`).  This module
//! reproduces that machinery on the modelled clock: a [`SimStream`] is an ordered
//! queue with a cursor in simulated seconds, an [`Event`] is a completion timestamp
//! another stream can wait on, and a [`StreamSet`] owns one compute stream and one
//! communication stream per device plus the [`Timeline`] of everything that ran.
//!
//! The scheduling rule is the CUDA one: an operation starts at the maximum of its
//! stream's cursor (in-order streams) and every event it waits on, and finishes
//! `duration` later.  Nothing here executes numerics — the executor in `sketch-dist`
//! runs the kernels for real on the [`Device`](crate::Device)s and uses this module
//! only to answer "when would this have happened on real hardware".
//!
//! ```
//! use sketch_gpu_sim::{StreamKind, StreamSet};
//!
//! // Two devices; overlap device 1's communication with device 0's compute.
//! let mut set = StreamSet::new(2);
//! let c0 = set.enqueue(0, StreamKind::Compute, "k0", &[], 2.0);
//! let m0 = set.enqueue(0, StreamKind::Comm, "send0", &[c0], 1.0);
//! let c1 = set.enqueue(1, StreamKind::Compute, "k1", &[], 2.5);
//! let _m1 = set.enqueue(1, StreamKind::Comm, "send1", &[c1, m0], 1.0);
//! let timeline = set.finish();
//! assert_eq!(timeline.makespan(), 4.0);          // send1 waits for send0 (ring order)
//! assert_eq!(timeline.serial_seconds(), 6.5);    // what a single stream would take
//! assert!(timeline.utilization(0) > 0.0);
//! ```

/// A completion timestamp on the simulated clock, recorded when an operation is
/// enqueued and waitable from any stream (the `cudaEvent` analogue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated time (seconds) at which the recorded operation completes.
    pub at: f64,
}

impl Event {
    /// An event that is already complete at time zero (waiting on it is a no-op).
    pub const fn ready() -> Self {
        Self { at: 0.0 }
    }
}

/// Which of a device's two streams an operation ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// The kernel-execution stream.
    Compute,
    /// The communication (interconnect) stream.
    Comm,
}

/// One in-order operation queue with a cursor in simulated seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStream {
    cursor: f64,
}

impl SimStream {
    /// A fresh stream with its cursor at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time at which the last enqueued operation completes.
    pub fn cursor(&self) -> f64 {
        self.cursor
    }

    /// Enqueue an operation that waits for `waits` (cross-stream events) and for every
    /// earlier operation on this stream, then runs for `duration` seconds.
    ///
    /// Returns `(start, end)`; the stream cursor advances to `end`.
    pub fn enqueue(&mut self, waits: &[Event], duration: f64) -> (f64, f64) {
        let start = waits
            .iter()
            .fold(self.cursor, |acc, event| acc.max(event.at));
        let end = start + duration.max(0.0);
        self.cursor = end;
        (start, end)
    }
}

/// One scheduled operation in a [`Timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Pool index of the device the operation ran on.
    pub device: usize,
    /// Which of the device's streams it ran on.
    pub stream: StreamKind,
    /// Human-readable label ("CountSketch shard 3", "allreduce fold 3", …).
    pub label: String,
    /// Simulated start time in seconds.
    pub start: f64,
    /// Simulated completion time in seconds.
    pub end: f64,
}

impl TimelineEntry {
    /// Duration of the operation in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The complete record of a simulated multi-device execution.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
    devices: usize,
}

impl Timeline {
    /// An empty timeline spanning `devices` devices — the starting point for
    /// a service-level timeline that merges per-job runs with
    /// [`Timeline::merge_shifted`].
    pub fn with_devices(devices: usize) -> Self {
        Self {
            entries: Vec::new(),
            devices,
        }
    }

    /// Merge another timeline into this one, shifting every entry forward by
    /// `offset_s` seconds and remapping its device positions through
    /// `device_map` (`device_map[i]` is the position in *this* timeline of the
    /// other timeline's device `i`).
    ///
    /// This is the modelled cluster clock: a job scheduled at `offset_s` on a
    /// device subset contributes its per-job timeline to the service-level
    /// view, on the physical device rows it actually occupied.
    ///
    /// # Panics
    /// Panics if `device_map` is shorter than the other timeline's device
    /// count, or maps to a position outside this timeline.
    pub fn merge_shifted(&mut self, other: &Timeline, offset_s: f64, device_map: &[usize]) {
        assert!(
            device_map.len() >= other.num_devices(),
            "device_map covers every device of the merged timeline"
        );
        for entry in other.entries() {
            let device = device_map[entry.device];
            assert!(
                device < self.devices,
                "device_map stays inside the target timeline"
            );
            self.entries.push(TimelineEntry {
                device,
                stream: entry.stream,
                label: entry.label.clone(),
                start: entry.start + offset_s,
                end: entry.end + offset_s,
            });
        }
    }

    /// The scheduled operations, in enqueue order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Number of devices the timeline spans.
    pub fn num_devices(&self) -> usize {
        self.devices
    }

    /// Completion time of the last operation (the pipelined makespan), in seconds.
    pub fn makespan(&self) -> f64 {
        self.entries.iter().fold(0.0, |acc, e| acc.max(e.end))
    }

    /// Sum of every operation's duration — the makespan a single device with a single
    /// stream (no overlap at all) would need, in seconds.
    pub fn serial_seconds(&self) -> f64 {
        self.entries.iter().map(TimelineEntry::duration).sum()
    }

    /// Total duration of operations of one stream kind, in seconds.
    pub fn seconds_of(&self, kind: StreamKind) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.stream == kind)
            .map(TimelineEntry::duration)
            .sum()
    }

    /// Seconds during which `device` had at least one stream busy (union of its
    /// compute and comm intervals).
    pub fn busy_seconds(&self, device: usize) -> f64 {
        let mut intervals: Vec<(f64, f64)> = self
            .entries
            .iter()
            .filter(|e| e.device == device && e.end > e.start)
            .map(|e| (e.start, e.end))
            .collect();
        intervals.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let mut busy = 0.0;
        let mut current: Option<(f64, f64)> = None;
        for (s, e) in intervals {
            match current {
                Some((cs, ce)) if s <= ce => current = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    busy += ce - cs;
                    current = Some((s, e));
                }
                None => current = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = current {
            busy += ce - cs;
        }
        busy
    }

    /// Fraction of the makespan during which `device` was busy (0 when nothing ran).
    pub fn utilization(&self, device: usize) -> f64 {
        let makespan = self.makespan();
        if makespan <= 0.0 {
            return 0.0;
        }
        self.busy_seconds(device) / makespan
    }

    /// Per-device utilization, indexed by pool position.
    pub fn utilizations(&self) -> Vec<f64> {
        (0..self.devices).map(|d| self.utilization(d)).collect()
    }
}

/// One compute stream and one comm stream per device, plus the shared timeline.
///
/// With a recorder attached ([`StreamSet::attach_recorder`]), every enqueued
/// operation also emits a [`sketch_obs::TraceEvent`] on the matching
/// device×stream sim track; [`StreamSet::enqueue_costed`] additionally carries
/// the operation's cost counters into the event.
#[derive(Debug, Clone, Default)]
pub struct StreamSet {
    compute: Vec<SimStream>,
    comm: Vec<SimStream>,
    timeline: Timeline,
    recorder: Option<std::sync::Arc<dyn sketch_obs::Recorder>>,
}

impl StreamSet {
    /// Create streams for `devices` devices.
    pub fn new(devices: usize) -> Self {
        Self {
            compute: vec![SimStream::new(); devices],
            comm: vec![SimStream::new(); devices],
            timeline: Timeline {
                entries: Vec::new(),
                devices,
            },
            recorder: None,
        }
    }

    /// Attach a recorder; subsequent enqueues emit trace events.  A disabled
    /// recorder (e.g. [`sketch_obs::NoopRecorder`]) is dropped here, so the
    /// enqueue path stays event-free.
    #[must_use]
    pub fn with_recorder(
        mut self,
        recorder: Option<std::sync::Arc<dyn sketch_obs::Recorder>>,
    ) -> Self {
        self.recorder = recorder.filter(|r| r.enabled());
        self
    }

    /// Attach a recorder in place (see [`StreamSet::with_recorder`]).
    pub fn attach_recorder(&mut self, recorder: std::sync::Arc<dyn sketch_obs::Recorder>) {
        self.recorder = Some(recorder).filter(|r| r.enabled());
    }

    /// Number of devices this set schedules for.
    pub fn num_devices(&self) -> usize {
        self.compute.len()
    }

    /// Enqueue an operation on `device`'s `kind` stream, waiting on `waits`, running
    /// for `duration` seconds.  Records a [`TimelineEntry`] and returns the
    /// completion [`Event`].
    ///
    /// # Panics
    /// Panics if `device` is out of range.
    pub fn enqueue(
        &mut self,
        device: usize,
        kind: StreamKind,
        label: impl Into<String>,
        waits: &[Event],
        duration: f64,
    ) -> Event {
        self.enqueue_costed(
            device,
            kind,
            label,
            waits,
            duration,
            sketch_obs::CostBreakdown::default(),
        )
    }

    /// [`StreamSet::enqueue`] carrying the operation's cost counters, so the
    /// emitted trace event (when a recorder is attached) reports what the
    /// region read, wrote, computed, and moved over the interconnect.
    pub fn enqueue_costed(
        &mut self,
        device: usize,
        kind: StreamKind,
        label: impl Into<String>,
        waits: &[Event],
        duration: f64,
        cost: sketch_obs::CostBreakdown,
    ) -> Event {
        let stream = match kind {
            StreamKind::Compute => &mut self.compute[device],
            StreamKind::Comm => &mut self.comm[device],
        };
        let (start, end) = stream.enqueue(waits, duration);
        let label = label.into();
        if let Some(recorder) = &self.recorder {
            recorder.record(sketch_obs::TraceEvent {
                name: label.clone(),
                device,
                track: match kind {
                    StreamKind::Compute => sketch_obs::Track::Compute,
                    StreamKind::Comm => sketch_obs::Track::Comm,
                },
                sim: Some((start, end)),
                wall_ns: 0,
                cost,
            });
        }
        self.timeline.entries.push(TimelineEntry {
            device,
            stream: kind,
            label,
            start,
            end,
        });
        Event { at: end }
    }

    /// Consume the set and return the recorded timeline.
    pub fn finish(self) -> Timeline {
        self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_serialises_its_own_operations() {
        let mut s = SimStream::new();
        let (a0, a1) = s.enqueue(&[], 2.0);
        assert_eq!((a0, a1), (0.0, 2.0));
        let (b0, b1) = s.enqueue(&[], 1.5);
        assert_eq!((b0, b1), (2.0, 3.5));
        assert_eq!(s.cursor(), 3.5);
    }

    #[test]
    fn events_delay_starts_across_streams() {
        let mut a = SimStream::new();
        let mut b = SimStream::new();
        let (_, a_end) = a.enqueue(&[], 4.0);
        let (b_start, _) = b.enqueue(&[Event { at: a_end }], 1.0);
        assert_eq!(b_start, 4.0);
        // A ready event never delays anything.
        let (c_start, _) = b.enqueue(&[Event::ready()], 1.0);
        assert_eq!(c_start, 5.0);
    }

    #[test]
    fn negative_durations_are_clamped() {
        let mut s = SimStream::new();
        let (start, end) = s.enqueue(&[], -3.0);
        assert_eq!(start, end);
    }

    #[test]
    fn timeline_makespan_and_serial_time() {
        let mut set = StreamSet::new(2);
        let c0 = set.enqueue(0, StreamKind::Compute, "k0", &[], 3.0);
        set.enqueue(1, StreamKind::Compute, "k1", &[], 2.0);
        set.enqueue(0, StreamKind::Comm, "m0", &[c0], 1.0);
        let t = set.finish();
        assert_eq!(t.makespan(), 4.0); // dev0 compute then comm
        assert_eq!(t.serial_seconds(), 6.0);
        assert_eq!(t.seconds_of(StreamKind::Comm), 1.0);
        assert_eq!(t.num_devices(), 2);
        assert_eq!(t.entries().len(), 3);
    }

    #[test]
    fn busy_seconds_unions_overlapping_streams() {
        let mut set = StreamSet::new(1);
        let c = set.enqueue(0, StreamKind::Compute, "k", &[], 4.0);
        // Comm fully inside the compute window must not double count.
        set.enqueue(0, StreamKind::Comm, "m", &[], 2.0);
        set.enqueue(0, StreamKind::Comm, "m2", &[c], 1.0);
        let t = set.finish();
        assert_eq!(t.busy_seconds(0), 5.0);
        assert!((t.utilization(0) - 1.0).abs() < 1e-12);
        assert_eq!(t.utilizations().len(), 1);
    }

    #[test]
    fn empty_timeline_is_all_zero() {
        let t = StreamSet::new(3).finish();
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.serial_seconds(), 0.0);
        assert_eq!(t.utilization(1), 0.0);
    }

    #[test]
    fn utilization_of_an_empty_timeline_is_zero_for_any_device() {
        // Degenerate but reachable: a pool whose schedule produced no ops.
        let t = StreamSet::new(2).finish();
        assert_eq!(t.serial_seconds(), 0.0);
        assert_eq!(t.busy_seconds(0), 0.0);
        // Out-of-range device indices must not panic either — utilization is
        // a query, not an invariant.
        assert_eq!(t.utilization(0), 0.0);
        assert_eq!(t.utilization(99), 0.0);
        assert_eq!(t.utilizations(), vec![0.0, 0.0]);
    }

    #[test]
    fn zero_duration_ops_contribute_nothing_but_keep_event_semantics() {
        let mut set = StreamSet::new(1);
        let a = set.enqueue(0, StreamKind::Compute, "instant", &[], 0.0);
        assert_eq!(a.at, 0.0);
        let b = set.enqueue(0, StreamKind::Compute, "real", &[a], 2.0);
        // A zero-duration op after the real one starts (and ends) at the cursor.
        set.enqueue(0, StreamKind::Compute, "instant2", &[b], 0.0);
        let t = set.finish();
        assert_eq!(t.entries().len(), 3);
        assert_eq!(t.makespan(), 2.0);
        assert_eq!(t.serial_seconds(), 2.0);
        // busy_seconds filters empty intervals, so zero-duration ops cannot
        // create spurious busy windows.
        assert_eq!(t.busy_seconds(0), 2.0);
        assert!((t.utilization(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_duration_timeline_has_zero_utilization_not_nan() {
        let mut set = StreamSet::new(1);
        set.enqueue(0, StreamKind::Compute, "a", &[], 0.0);
        set.enqueue(0, StreamKind::Comm, "b", &[], 0.0);
        let t = set.finish();
        assert_eq!(t.makespan(), 0.0);
        let u = t.utilization(0);
        assert!(u == 0.0 && !u.is_nan(), "zero makespan must not divide");
    }

    #[test]
    fn single_stream_pool_of_one_serial_equals_makespan() {
        // The pool-of-one "serial" shape: every op on one compute stream, no
        // comm.  serial_seconds and makespan must agree exactly, and
        // utilization is exactly 1.
        let mut set = StreamSet::new(1);
        for i in 0..4 {
            set.enqueue(0, StreamKind::Compute, format!("k{i}"), &[], 0.25);
        }
        let t = set.finish();
        assert_eq!(t.makespan(), 1.0);
        assert_eq!(t.serial_seconds(), t.makespan());
        assert_eq!(t.seconds_of(StreamKind::Comm), 0.0);
        assert_eq!(t.utilization(0), 1.0);
    }

    #[test]
    fn attached_recorder_sees_every_enqueue_with_costs() {
        let collector = sketch_obs::TraceCollector::shared();
        let mut set = StreamSet::new(2);
        set.attach_recorder(collector.clone());
        let c0 = set.enqueue_costed(
            0,
            StreamKind::Compute,
            "k0",
            &[],
            2.0,
            sketch_obs::CostBreakdown {
                bytes_read: 64,
                bytes_written: 32,
                flops: 16,
                launches: 1,
                comm_bytes: 0,
            },
        );
        set.enqueue_costed(
            1,
            StreamKind::Comm,
            "send",
            &[c0],
            1.0,
            sketch_obs::CostBreakdown {
                comm_bytes: 64,
                ..Default::default()
            },
        );
        set.enqueue(0, StreamKind::Compute, "k1", &[], 1.0);
        let events = collector.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].sim, Some((0.0, 2.0)));
        assert_eq!(events[0].cost.bytes_read, 64);
        assert_eq!(events[1].device, 1);
        assert_eq!(events[1].track, sketch_obs::Track::Comm);
        assert_eq!(events[1].sim, Some((2.0, 3.0)));
        assert_eq!(events[1].cost.comm_bytes, 64);
        assert_eq!(events[2].cost, sketch_obs::CostBreakdown::default());
        // Events mirror the timeline exactly.
        let t = set.finish();
        for (event, entry) in events.iter().zip(t.entries()) {
            assert_eq!(event.name, entry.label);
            assert_eq!(event.sim, Some((entry.start, entry.end)));
        }
    }

    #[test]
    fn disabled_recorders_are_dropped_at_attach_time() {
        let set =
            StreamSet::new(1).with_recorder(Some(std::sync::Arc::new(sketch_obs::NoopRecorder)));
        // The noop recorder is filtered out, so the clone cost stays zero.
        assert!(format!("{set:?}").contains("recorder: None"));
    }

    #[test]
    fn merge_shifted_offsets_and_remaps_devices() {
        // Job A: one op on its device 0.  Job B: ops on its devices 0 and 1.
        let mut a = StreamSet::new(1);
        a.enqueue(0, StreamKind::Compute, "a-k", &[], 2.0);
        let a = a.finish();
        let mut b = StreamSet::new(2);
        let c = b.enqueue(0, StreamKind::Compute, "b-k", &[], 1.0);
        b.enqueue(1, StreamKind::Comm, "b-m", &[c], 0.5);
        let b = b.finish();

        // Cluster of 4 devices: A on physical device 3 at t=1, B on physical
        // devices 0 and 2 at t=2.
        let mut service = Timeline::with_devices(4);
        service.merge_shifted(&a, 1.0, &[3]);
        service.merge_shifted(&b, 2.0, &[0, 2]);
        assert_eq!(service.num_devices(), 4);
        assert_eq!(service.entries().len(), 3);
        assert_eq!(service.makespan(), 3.5); // B's comm: 2.0 + 1.0 + 0.5
        assert_eq!(service.serial_seconds(), 3.5);
        let a_entry = &service.entries()[0];
        assert_eq!((a_entry.device, a_entry.start, a_entry.end), (3, 1.0, 3.0));
        let m_entry = &service.entries()[2];
        assert_eq!(m_entry.device, 2);
        assert_eq!(m_entry.stream, StreamKind::Comm);
        // Device 1 never ran anything.
        assert_eq!(service.busy_seconds(1), 0.0);
        assert!(service.utilization(3) > 0.0);
    }

    #[test]
    #[should_panic(expected = "device_map covers")]
    fn merge_shifted_rejects_short_device_maps() {
        let mut inner = StreamSet::new(2);
        inner.enqueue(0, StreamKind::Compute, "k", &[], 1.0);
        let inner = inner.finish();
        let mut service = Timeline::with_devices(4);
        service.merge_shifted(&inner, 0.0, &[1]);
    }

    #[test]
    #[should_panic(expected = "inside the target")]
    fn merge_shifted_rejects_out_of_range_targets() {
        let mut inner = StreamSet::new(1);
        inner.enqueue(0, StreamKind::Compute, "k", &[], 1.0);
        let inner = inner.finish();
        let mut service = Timeline::with_devices(2);
        service.merge_shifted(&inner, 0.0, &[5]);
    }

    #[test]
    fn comm_overlaps_next_shard_compute() {
        // The executor's pattern: shard i's comm runs while shard i+1 computes.
        let mut set = StreamSet::new(1);
        let mut prev_comm: Option<Event> = None;
        for i in 0..3 {
            let c = set.enqueue(0, StreamKind::Compute, format!("shard {i}"), &[], 2.0);
            let mut waits = vec![c];
            if let Some(p) = prev_comm {
                waits.push(p);
            }
            prev_comm = Some(set.enqueue(0, StreamKind::Comm, format!("fold {i}"), &waits, 1.0));
        }
        let t = set.finish();
        // 3 computes back to back (6s) + the last fold (1s) = 7, not 9.
        assert_eq!(t.makespan(), 7.0);
        assert_eq!(t.serial_seconds(), 9.0);
    }
}
