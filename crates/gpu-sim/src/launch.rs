//! Kernel launch primitives: chunked parallel-for and atomic double-precision adds.
//!
//! The CountSketch kernel of Algorithm 2 is "parallel for j in 0..d { atomicAdd(...) }".
//! On the simulated device the grid is a rayon parallel iterator over index chunks and
//! `atomicAdd(double*, double)` is a compare-and-swap loop over the bit pattern — the
//! exact strategy CUDA used before native double atomics existed, and semantically
//! identical to the hardware instruction.
//!
//! **Determinism caveat.**  The workspace's rayon shim runs on real threads, so
//! the *order* in which concurrent [`AtomicF64`] adds land on one cell is
//! scheduling-dependent; f64 addition is not associative, so a sum accumulated
//! through atomics is reproducible only up to rounding.  That mirrors the GPU
//! exactly — and is why the workspace's bit-exact kernels (CountSketch, SpMM)
//! are structured as ordered gathers over *disjoint* outputs instead of atomic
//! scatters.  [`parallel_for`] / [`parallel_for_chunks`] themselves cut blocks
//! by length only and stay deterministic whenever block writes are disjoint.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of indices processed per simulated thread block.
pub const DEFAULT_BLOCK: usize = 4096;

/// Run `body(i)` for every `i in 0..n` in parallel.
///
/// The iteration space is split into blocks of `DEFAULT_BLOCK` indices; each block is a
/// rayon task, mirroring a CUDA thread block.
pub fn parallel_for<F>(n: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let blocks = n.div_ceil(DEFAULT_BLOCK);
    (0..blocks).into_par_iter().for_each(|b| {
        let start = b * DEFAULT_BLOCK;
        let end = (start + DEFAULT_BLOCK).min(n);
        for i in start..end {
            body(i);
        }
    });
}

/// Run `body(start, end)` over contiguous index ranges covering `0..n`.
///
/// Useful when the body wants to amortise per-block setup (e.g. creating a Philox
/// stream per block).
pub fn parallel_for_chunks<F>(n: usize, block: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let block = block.max(1);
    let blocks = n.div_ceil(block);
    (0..blocks).into_par_iter().for_each(|b| {
        let start = b * block;
        let end = (start + block).min(n);
        body(start, end);
    });
}

/// A double precision value supporting atomic add, stored as its IEEE-754 bit pattern.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Create from an initial value.
    #[inline]
    pub fn new(value: f64) -> Self {
        Self {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Load the current value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Store a value.
    #[inline]
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Atomically add `delta`, returning the previous value.
    ///
    /// This is the CAS loop CUDA documents for `atomicAdd(double*)` emulation.
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return f64::from_bits(current),
                Err(actual) => current = actual,
            }
        }
    }
}

/// A shared atomic view over a mutable `f64` buffer.
///
/// Holding the exclusive borrow of the underlying slice for the lifetime of the view
/// guarantees no non-atomic access can alias the atomic cells, so reinterpreting the
/// memory as [`AtomicF64`] (same size, alignment and bit layout as `u64`) is sound.
/// This is how the simulated kernel writes into the output matrix `Y` concurrently.
pub struct AtomicF64View<'a> {
    cells: &'a [AtomicF64],
}

impl<'a> AtomicF64View<'a> {
    /// Create an atomic view over `data`.
    pub fn new(data: &'a mut [f64]) -> Self {
        const _: () = assert!(std::mem::size_of::<AtomicF64>() == std::mem::size_of::<f64>());
        const _: () = assert!(std::mem::align_of::<AtomicF64>() == std::mem::align_of::<f64>());
        // SAFETY: `AtomicF64` is repr(transparent) over AtomicU64, which has the same
        // size and alignment as f64/u64. The exclusive borrow of `data` is held by this
        // view for its whole lifetime, so all access goes through the atomics.
        let cells = unsafe {
            std::slice::from_raw_parts(data.as_mut_ptr() as *const AtomicF64, data.len())
        };
        Self { cells }
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomically add `delta` to element `i`.
    #[inline]
    pub fn add(&self, i: usize, delta: f64) {
        self.cells[i].fetch_add(delta);
    }

    /// Read element `i` (relaxed).
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        self.cells[i].load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 100_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_zero_is_noop() {
        parallel_for(0, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_chunks_covers_range_without_overlap() {
        let n = 10_001;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_chunks(n, 97, |start, end| {
            assert!(start < end && end <= n);
            for i in start..end {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_chunks_accepts_zero_block_size() {
        let hits = AtomicUsize::new(0);
        parallel_for_chunks(10, 0, |s, e| {
            hits.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn atomic_f64_fetch_add_sums_correctly() {
        let cell = AtomicF64::new(1.5);
        let prev = cell.fetch_add(2.5);
        assert_eq!(prev, 1.5);
        assert_eq!(cell.load(), 4.0);
        cell.store(-1.0);
        assert_eq!(cell.load(), -1.0);
    }

    #[test]
    fn atomic_view_concurrent_adds_are_lossless() {
        let mut data = vec![0.0f64; 8];
        {
            let view = AtomicF64View::new(&mut data);
            parallel_for(80_000, |i| {
                view.add(i % 8, 1.0);
            });
            assert_eq!(view.len(), 8);
            assert!(!view.is_empty());
        }
        assert!(data.iter().all(|&x| x == 10_000.0));
    }

    #[test]
    fn atomic_view_reflects_initial_contents() {
        let mut data = vec![3.0, -4.0];
        let view = AtomicF64View::new(&mut data);
        assert_eq!(view.load(0), 3.0);
        assert_eq!(view.load(1), -4.0);
        view.add(1, 1.0);
        assert_eq!(view.load(1), -3.0);
    }
}
