//! Byte and flop accounting.
//!
//! Every kernel in the workspace (dense GEMM, sparse SpMM, the CountSketch kernel, the
//! FWHT, …) reports exactly how many bytes it read, how many it wrote, how many floating
//! point operations it performed, and how many kernel launches it needed.  These counts
//! are the raw material of the paper's Figures 3 and 4 and of the roofline time model.

use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// The cost of one kernel (or one accumulated region of kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCost {
    /// Bytes read from device global memory.
    pub bytes_read: u64,
    /// Bytes written to device global memory.
    pub bytes_written: u64,
    /// Floating point operations executed.
    pub flops: u64,
    /// Number of kernel launches (each pays a fixed launch latency in the model).
    pub launches: u64,
}

impl KernelCost {
    /// Construct a cost record.
    #[inline]
    pub const fn new(bytes_read: u64, bytes_written: u64, flops: u64, launches: u64) -> Self {
        Self {
            bytes_read,
            bytes_written,
            flops,
            launches,
        }
    }

    /// A zero cost.
    #[inline]
    pub const fn zero() -> Self {
        Self::new(0, 0, 0, 0)
    }

    /// Total bytes moved (read + written).
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in flops per byte moved; zero traffic yields infinity.
    #[inline]
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes == 0 {
            if self.flops == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.flops as f64 / bytes as f64
        }
    }

    /// Cost of reading/writing `n` double precision values.
    #[inline]
    pub const fn f64_bytes(n: u64) -> u64 {
        n * 8
    }
}

impl Add for KernelCost {
    type Output = KernelCost;
    fn add(self, rhs: KernelCost) -> KernelCost {
        KernelCost {
            bytes_read: self.bytes_read + rhs.bytes_read,
            bytes_written: self.bytes_written + rhs.bytes_written,
            flops: self.flops + rhs.flops,
            launches: self.launches + rhs.launches,
        }
    }
}

impl AddAssign for KernelCost {
    fn add_assign(&mut self, rhs: KernelCost) {
        *self = *self + rhs;
    }
}

impl Sub for KernelCost {
    type Output = KernelCost;
    fn sub(self, rhs: KernelCost) -> KernelCost {
        KernelCost {
            bytes_read: self.bytes_read.saturating_sub(rhs.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(rhs.bytes_written),
            flops: self.flops.saturating_sub(rhs.flops),
            launches: self.launches.saturating_sub(rhs.launches),
        }
    }
}

/// Thread-safe accumulator of [`KernelCost`]s.
///
/// Kernels run inside rayon parallel regions, so the tracker uses relaxed atomics; the
/// numbers are only ever read after the parallel region finishes.
#[derive(Debug, Default)]
pub struct CostTracker {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    flops: AtomicU64,
    launches: AtomicU64,
}

impl CostTracker {
    /// New tracker with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one kernel's cost.
    #[inline]
    pub fn record(&self, cost: KernelCost) {
        self.bytes_read
            .fetch_add(cost.bytes_read, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(cost.bytes_written, Ordering::Relaxed);
        self.flops.fetch_add(cost.flops, Ordering::Relaxed);
        self.launches.fetch_add(cost.launches, Ordering::Relaxed);
    }

    /// Current accumulated totals.
    #[inline]
    pub fn snapshot(&self) -> KernelCost {
        KernelCost {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
        self.launches.store(0, Ordering::Relaxed);
    }

    /// Run a closure and return its result along with the cost it added to the tracker.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, KernelCost) {
        let before = self.snapshot();
        let out = f();
        let after = self.snapshot();
        (out, after - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_addition_and_subtraction() {
        let a = KernelCost::new(10, 20, 30, 1);
        let b = KernelCost::new(1, 2, 3, 1);
        assert_eq!(a + b, KernelCost::new(11, 22, 33, 2));
        assert_eq!(a - b, KernelCost::new(9, 18, 27, 0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn subtraction_saturates() {
        let a = KernelCost::new(1, 1, 1, 1);
        let b = KernelCost::new(5, 5, 5, 5);
        assert_eq!(a - b, KernelCost::zero());
    }

    #[test]
    fn arithmetic_intensity_cases() {
        assert_eq!(KernelCost::zero().arithmetic_intensity(), 0.0);
        assert!(KernelCost::new(0, 0, 10, 1)
            .arithmetic_intensity()
            .is_infinite());
        let c = KernelCost::new(50, 50, 200, 1);
        assert!((c.arithmetic_intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn f64_bytes_helper() {
        assert_eq!(KernelCost::f64_bytes(3), 24);
    }

    #[test]
    fn tracker_accumulates() {
        let t = CostTracker::new();
        t.record(KernelCost::new(1, 2, 3, 1));
        t.record(KernelCost::new(10, 20, 30, 1));
        assert_eq!(t.snapshot(), KernelCost::new(11, 22, 33, 2));
        t.reset();
        assert_eq!(t.snapshot(), KernelCost::zero());
    }

    #[test]
    fn tracker_measure_returns_delta_only() {
        let t = CostTracker::new();
        t.record(KernelCost::new(100, 100, 100, 1));
        let ((), delta) = t.measure(|| t.record(KernelCost::new(5, 6, 7, 1)));
        assert_eq!(delta, KernelCost::new(5, 6, 7, 1));
    }

    #[test]
    fn tracker_is_thread_safe() {
        let t = CostTracker::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        t.record(KernelCost::new(1, 1, 1, 1));
                    }
                });
            }
        });
        assert_eq!(t.snapshot(), KernelCost::new(4000, 4000, 4000, 4000));
    }
}
