//! Roofline execution-time model.
//!
//! The paper's performance story is a roofline story: the CountSketch touches each
//! element of `A` once (memory bound, Figure 3), the Gaussian sketch and Gram matrix are
//! GEMMs (compute bound, Figure 4), and the SRHT moves `d·n·log d` words through the
//! FWHT.  Given the exact byte/flop counts collected by [`crate::CostTracker`], the
//! model predicts the time each kernel would take on the target device as
//!
//! ```text
//! time = launches * launch_overhead
//!      + max( bytes / (BW * streaming_efficiency),  flops / (peak * gemm_efficiency) )
//! ```
//!
//! which is the classical roofline with a fixed launch latency.  The same counts yield
//! the percent-of-peak plots of Figures 3 and 4.

use crate::counters::KernelCost;
use crate::device::DeviceSpec;

/// Roofline model bound to one device spec.
#[derive(Debug, Clone, Copy)]
pub struct RooflineModel {
    spec: DeviceSpec,
}

impl RooflineModel {
    /// Build a model for the given spec.
    #[inline]
    pub fn new(spec: DeviceSpec) -> Self {
        Self { spec }
    }

    /// The spec this model uses.
    #[inline]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Effective sustained bandwidth in bytes/s.
    #[inline]
    pub fn effective_bandwidth(&self) -> f64 {
        self.spec.peak_bandwidth_bytes_per_s * self.spec.streaming_efficiency
    }

    /// Effective sustained FP64 throughput in FLOP/s.
    #[inline]
    pub fn effective_flops(&self) -> f64 {
        self.spec.peak_flops_f64 * self.spec.gemm_efficiency
    }

    /// Modelled execution time in seconds.
    pub fn time(&self, cost: &KernelCost) -> f64 {
        let mem_time = cost.total_bytes() as f64 / self.effective_bandwidth();
        let flop_time = cost.flops as f64 / self.effective_flops();
        let launch_time = cost.launches as f64 * self.spec.kernel_launch_overhead_s;
        launch_time + mem_time.max(flop_time)
    }

    /// Modelled execution time in milliseconds (the unit of the paper's figures).
    #[inline]
    pub fn time_ms(&self, cost: &KernelCost) -> f64 {
        self.time(cost) * 1e3
    }

    /// Whether the roofline classifies this cost as memory bound on this device.
    pub fn is_memory_bound(&self, cost: &KernelCost) -> bool {
        let mem_time = cost.total_bytes() as f64 / self.effective_bandwidth();
        let flop_time = cost.flops as f64 / self.effective_flops();
        mem_time >= flop_time
    }

    /// Achieved bandwidth in bytes/s given an execution time.
    #[inline]
    pub fn achieved_bandwidth(&self, cost: &KernelCost, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        cost.total_bytes() as f64 / seconds
    }

    /// Achieved FLOP/s given an execution time.
    #[inline]
    pub fn achieved_flops(&self, cost: &KernelCost, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        cost.flops as f64 / seconds
    }

    /// Percent of *peak* memory bandwidth achieved (the y-axis of Figure 3).
    #[inline]
    pub fn percent_peak_bandwidth(&self, cost: &KernelCost, seconds: f64) -> f64 {
        100.0 * self.achieved_bandwidth(cost, seconds) / self.spec.peak_bandwidth_bytes_per_s
    }

    /// Percent of *peak* FP64 throughput achieved (the y-axis of Figure 4).
    #[inline]
    pub fn percent_peak_flops(&self, cost: &KernelCost, seconds: f64) -> f64 {
        100.0 * self.achieved_flops(cost, seconds) / self.spec.peak_flops_f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RooflineModel {
        RooflineModel::new(DeviceSpec::h100())
    }

    #[test]
    fn streaming_kernel_is_memory_bound() {
        // One pass over 1 GiB with one flop per byte read: clearly memory bound.
        let cost = KernelCost::new(1 << 30, 0, 1 << 27, 1);
        assert!(model().is_memory_bound(&cost));
        let t = model().time(&cost);
        let expected = (1u64 << 30) as f64 / model().effective_bandwidth()
            + DeviceSpec::h100().kernel_launch_overhead_s;
        assert!((t - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn gemm_like_kernel_is_compute_bound() {
        // 1e9 flops on only 1 MiB of traffic.
        let cost = KernelCost::new(1 << 20, 1 << 20, 1_000_000_000, 1);
        assert!(!model().is_memory_bound(&cost));
    }

    #[test]
    fn launch_overhead_dominates_empty_kernels() {
        let cost = KernelCost::new(0, 0, 0, 10);
        let t = model().time(&cost);
        assert!((t - 10.0 * DeviceSpec::h100().kernel_launch_overhead_s).abs() < 1e-15);
    }

    #[test]
    fn percent_peak_bandwidth_upper_bound() {
        let cost = KernelCost::new(1 << 30, 1 << 30, 0, 1);
        let t = model().time(&cost);
        let pct = model().percent_peak_bandwidth(&cost, t);
        // Cannot exceed the streaming efficiency ceiling by construction (launch
        // overhead only pushes it lower).
        assert!(pct <= 100.0 * DeviceSpec::h100().streaming_efficiency + 1e-9);
        assert!(pct > 50.0);
    }

    #[test]
    fn percent_peak_flops_of_pure_gemm() {
        let cost = KernelCost::new(1 << 20, 1 << 20, 10_000_000_000, 1);
        let t = model().time(&cost);
        let pct = model().percent_peak_flops(&cost, t);
        assert!(pct <= 100.0 * DeviceSpec::h100().gemm_efficiency + 1e-9);
        assert!(pct > 50.0);
    }

    #[test]
    fn zero_time_guards() {
        let cost = KernelCost::new(100, 100, 100, 1);
        assert_eq!(model().achieved_bandwidth(&cost, 0.0), 0.0);
        assert_eq!(model().achieved_flops(&cost, -1.0), 0.0);
    }

    #[test]
    fn time_ms_is_scaled_time() {
        let cost = KernelCost::new(1 << 28, 1 << 28, 1 << 20, 2);
        let m = model();
        assert!((m.time_ms(&cost) - 1e3 * m.time(&cost)).abs() < 1e-12);
    }
}
