//! Device specifications and the [`Device`] handle shared by every kernel.

use crate::counters::{CostTracker, KernelCost};
use crate::fault::{DeviceFailed, FaultSpec};
use crate::memory::{MemoryError, MemoryTracker, Reservation};
use crate::roofline::RooflineModel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sketch_obs::{CostBreakdown, Recorder, TraceEvent, Track};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Published peak characteristics of the accelerator being modelled.
///
/// The defaults follow NVIDIA's public datasheets; the efficiency factor captures the
/// fact that real streaming kernels do not achieve the full theoretical bandwidth (the
/// paper's own best kernels plateau at 50–70 % of peak, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human readable name used in reports.
    pub name: &'static str,
    /// Peak global memory bandwidth in bytes per second.
    pub peak_bandwidth_bytes_per_s: f64,
    /// Peak double precision throughput in FLOP/s (without tensor cores, as used by
    /// cuBLAS DGEMM on FP64 data).
    pub peak_flops_f64: f64,
    /// Device memory capacity in bytes (used to reproduce the out-of-memory behaviour
    /// of the Gaussian sketch at the largest problem sizes).
    pub memory_bytes: u64,
    /// Fixed overhead charged per kernel launch, in seconds.
    pub kernel_launch_overhead_s: f64,
    /// Fraction of peak bandwidth a well-written streaming kernel actually sustains.
    pub streaming_efficiency: f64,
    /// Fraction of peak FLOP/s a well-written GEMM actually sustains.
    pub gemm_efficiency: f64,
}

impl DeviceSpec {
    /// NVIDIA H100 SXM5 80 GB — the device used throughout the paper's evaluation.
    pub const fn h100() -> Self {
        Self {
            name: "NVIDIA H100 SXM5 80GB (modelled)",
            // 3.35 TB/s HBM3.
            peak_bandwidth_bytes_per_s: 3.35e12,
            // 34 TFLOP/s FP64 (non tensor-core).
            peak_flops_f64: 34.0e12,
            memory_bytes: 80 * (1 << 30),
            kernel_launch_overhead_s: 5.0e-6,
            streaming_efficiency: 0.85,
            gemm_efficiency: 0.80,
        }
    }

    /// NVIDIA A100 SXM4 80 GB — the device used by the rand_cholQR paper the authors
    /// compare against; provided for cross-checking.
    pub const fn a100() -> Self {
        Self {
            name: "NVIDIA A100 SXM4 80GB (modelled)",
            peak_bandwidth_bytes_per_s: 2.039e12,
            peak_flops_f64: 9.7e12,
            memory_bytes: 80 * (1 << 30),
            kernel_launch_overhead_s: 5.0e-6,
            streaming_efficiency: 0.85,
            gemm_efficiency: 0.80,
        }
    }

    /// A modest host CPU, useful when interpreting the measured wall-clock numbers that
    /// accompany the modelled device times in the benchmark reports.
    pub const fn host_cpu() -> Self {
        Self {
            name: "host CPU (modelled)",
            peak_bandwidth_bytes_per_s: 5.0e10,
            peak_flops_f64: 1.0e11,
            memory_bytes: 16 * (1 << 30),
            kernel_launch_overhead_s: 1.0e-7,
            streaming_efficiency: 0.7,
            gemm_efficiency: 0.7,
        }
    }

    /// A spec with effectively unlimited memory, used by tests that should never hit
    /// the modelled OOM path.
    pub const fn unlimited() -> Self {
        let mut spec = Self::h100();
        spec.memory_bytes = u64::MAX;
        spec
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::h100()
    }
}

/// A handle to the simulated device: spec + cost counters + memory tracker.
///
/// The handle is `Send + Sync`; kernels take `&Device` and record their costs into it.
///
/// A [`Recorder`] can be attached
/// ([`Device::set_recorder`]); labelled kernels entered through
/// [`Device::launch`] then emit [`TraceEvent`]s on the device's serial
/// modelled clock.  The default is no recorder: the hot-path overhead is one
/// relaxed atomic load, and no event is allocated or built.
#[derive(Debug, Default)]
pub struct Device {
    spec: DeviceSpec,
    tracker: CostTracker,
    memory: MemoryTracker,
    ordinal: usize,
    recording: AtomicBool,
    recorder: Mutex<Option<Arc<dyn Recorder>>>,
    kernel_clock: Mutex<f64>,
    fault: Mutex<Option<FaultSpec>>,
    failed: AtomicBool,
}

impl From<KernelCost> for CostBreakdown {
    fn from(cost: KernelCost) -> Self {
        CostBreakdown {
            bytes_read: cost.bytes_read,
            bytes_written: cost.bytes_written,
            flops: cost.flops,
            launches: cost.launches,
            comm_bytes: 0,
        }
    }
}

impl Device {
    /// Create a device from an explicit spec.
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            memory: MemoryTracker::new(spec.memory_bytes),
            tracker: CostTracker::new(),
            spec,
            ordinal: 0,
            recording: AtomicBool::new(false),
            recorder: Mutex::new(None),
            kernel_clock: Mutex::new(0.0),
            fault: Mutex::new(None),
            failed: AtomicBool::new(false),
        }
    }

    /// Create a device with an explicit pool position (used by `DevicePool` so
    /// trace events carry the right device id).
    pub fn with_ordinal(spec: DeviceSpec, ordinal: usize) -> Self {
        let mut device = Self::new(spec);
        device.ordinal = ordinal;
        device
    }

    /// The H100 used in the paper.
    pub fn h100() -> Self {
        Self::new(DeviceSpec::h100())
    }

    /// An A100 for cross-checks.
    pub fn a100() -> Self {
        Self::new(DeviceSpec::a100())
    }

    /// A device that never reports out-of-memory; convenient in unit tests.
    pub fn unlimited() -> Self {
        Self::new(DeviceSpec::unlimited())
    }

    /// The spec this device was built with.
    #[inline]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The cost tracker accumulating every kernel executed on this device.
    #[inline]
    pub fn tracker(&self) -> &CostTracker {
        &self.tracker
    }

    /// The memory tracker modelling device memory capacity.
    #[inline]
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// This device's position in its pool (0 for a standalone device).
    #[inline]
    pub fn ordinal(&self) -> usize {
        self.ordinal
    }

    /// Attach (or with `None` detach) the recorder labelled kernels and
    /// profiler phases emit into.  A disabled recorder (e.g.
    /// [`sketch_obs::NoopRecorder`]) keeps the hot path event-free.
    pub fn set_recorder(&self, recorder: Option<Arc<dyn Recorder>>) {
        let enabled = recorder.as_ref().is_some_and(|r| r.enabled());
        *self.recorder.lock() = recorder;
        self.recording.store(enabled, Ordering::Release);
    }

    /// The attached recorder, if any (and enabled).
    pub fn recorder(&self) -> Option<Arc<dyn Recorder>> {
        if !self.recording() {
            return None;
        }
        self.recorder.lock().clone()
    }

    /// Whether an enabled recorder is attached (one relaxed atomic load).
    #[inline]
    pub fn recording(&self) -> bool {
        self.recording.load(Ordering::Relaxed)
    }

    /// Current position of the device's serial modelled kernel clock, in
    /// seconds: the sum of the modelled times of every [`Device::launch`] so
    /// far.  Deterministic — it advances only by roofline times.
    pub fn kernel_clock(&self) -> f64 {
        *self.kernel_clock.lock()
    }

    /// Record a kernel cost.
    #[inline]
    pub fn record(&self, cost: KernelCost) {
        self.tracker.record(cost);
    }

    /// Record a *labelled* kernel cost: identical to [`Device::record`], plus,
    /// when an enabled recorder is attached, a [`TraceEvent`] on the device's
    /// serial kernel track (`Track::Kernel`), spanning the kernel's modelled
    /// time on the device's [`Device::kernel_clock`].
    ///
    /// Without a recorder this is exactly `record` plus one relaxed atomic
    /// load — no allocation, no lock.
    #[inline]
    pub fn launch(&self, label: &str, cost: KernelCost) {
        self.tracker.record(cost);
        if self.recording() {
            self.emit_kernel_span(label, cost);
        }
    }

    #[cold]
    fn emit_kernel_span(&self, label: &str, cost: KernelCost) {
        let Some(recorder) = self.recorder.lock().clone() else {
            return;
        };
        let duration = self.model_time(&cost);
        let (start, end) = {
            let mut clock = self.kernel_clock.lock();
            let start = *clock;
            *clock = start + duration;
            (start, *clock)
        };
        recorder.record(TraceEvent {
            name: label.to_string(),
            device: self.ordinal,
            track: Track::Kernel,
            sim: Some((start, end)),
            wall_ns: 0,
            cost: cost.into(),
        });
    }

    /// Inject (or with `None` clear) this device's fault.  Clearing or
    /// replacing a fault also resets the sticky [`Device::is_failed`] flag —
    /// re-applying a [`crate::FaultPlan`] starts a fresh run's fault clocks.
    pub fn set_fault(&self, fault: Option<FaultSpec>) {
        *self.fault.lock() = fault;
        self.failed.store(false, Ordering::Release);
    }

    /// The injected fault, if any.
    pub fn fault(&self) -> Option<FaultSpec> {
        *self.fault.lock()
    }

    /// Multiplier on this device's modelled kernel times (1.0 when healthy —
    /// see [`FaultSpec::time_scale`]).
    pub fn time_scale(&self) -> f64 {
        self.fault.lock().map_or(1.0, |f| f.time_scale())
    }

    /// Multiplier on this device's modelled interconnect hops (1.0 when
    /// healthy — see [`FaultSpec::link_scale`]).
    pub fn link_scale(&self) -> f64 {
        self.fault.lock().map_or(1.0, |f| f.link_scale())
    }

    /// The simulated instant this device dies, if a [`FaultSpec::Dies`] fault
    /// is injected.
    pub fn death_time(&self) -> Option<f64> {
        self.fault.lock().and_then(|f| f.death_time())
    }

    /// Modelled execution time of `cost` on this device *including* any
    /// injected straggler slowdown.
    ///
    /// The healthy path multiplies by exactly `1.0`, so a
    /// [`FaultSpec::Straggler`] with factor 1.0 is bit-identical to no fault
    /// at all (pinned by the fault proptests).
    #[inline]
    pub fn scaled_time(&self, cost: &KernelCost) -> f64 {
        self.model_time(cost) * self.time_scale()
    }

    /// Check that the device survives to simulated instant `at_sim_seconds`.
    ///
    /// A [`FaultSpec::Dies`] fault kills the device strictly *after* its
    /// death instant: an operation ending exactly at `after_sim_seconds`
    /// still completes.  On failure the sticky [`Device::is_failed`] flag is
    /// set, so schedulers can retire the device without re-deriving the
    /// timeline.
    pub fn check_alive(&self, at_sim_seconds: f64) -> Result<(), DeviceFailed> {
        if let Some(death) = self.death_time() {
            if at_sim_seconds > death {
                self.failed.store(true, Ordering::Release);
                return Err(DeviceFailed {
                    ordinal: self.ordinal,
                    after_sim_seconds: death,
                });
            }
        }
        Ok(())
    }

    /// Whether a [`Device::check_alive`] (or [`Device::try_launch`]) has
    /// already observed this device's death.  Death is permanent for the
    /// lifetime of the injected fault: the flag clears only when the fault is
    /// replaced via [`Device::set_fault`].
    #[inline]
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Fallible launch: record `cost` (the work really was attempted — the
    /// bytes moved and flops burned land on the tracker like a real kernel
    /// that dies mid-flight), then fail with [`DeviceFailed`] if the kernel's
    /// modelled end time falls after the device's injected death instant.
    ///
    /// Returns the kernel's modelled end time (straggler-scaled) on success.
    pub fn try_launch(
        &self,
        label: &str,
        cost: KernelCost,
        start_s: f64,
    ) -> Result<f64, DeviceFailed> {
        self.launch(label, cost);
        let end = start_s + self.scaled_time(&cost);
        self.check_alive(end)?;
        Ok(end)
    }

    /// Reserve `bytes` of modelled device memory, failing like `cudaMalloc` would.
    pub fn try_reserve(&self, bytes: u64) -> Result<Reservation<'_>, MemoryError> {
        self.memory.try_reserve(bytes)
    }

    /// The roofline model for this device.
    #[inline]
    pub fn roofline(&self) -> RooflineModel {
        RooflineModel::new(self.spec)
    }

    /// Modelled execution time of a kernel cost on this device, in seconds.
    #[inline]
    pub fn model_time(&self, cost: &KernelCost) -> f64 {
        self.roofline().time(cost)
    }

    /// Percent of peak memory bandwidth achieved by `cost` if it ran in `seconds`.
    #[inline]
    pub fn percent_peak_bandwidth(&self, cost: &KernelCost, seconds: f64) -> f64 {
        self.roofline().percent_peak_bandwidth(cost, seconds)
    }

    /// Percent of peak FP64 throughput achieved by `cost` if it ran in `seconds`.
    #[inline]
    pub fn percent_peak_flops(&self, cost: &KernelCost, seconds: f64) -> f64 {
        self.roofline().percent_peak_flops(cost, seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_relationships() {
        let h100 = DeviceSpec::h100();
        let a100 = DeviceSpec::a100();
        assert!(h100.peak_bandwidth_bytes_per_s > a100.peak_bandwidth_bytes_per_s);
        assert!(h100.peak_flops_f64 > a100.peak_flops_f64);
        assert_eq!(h100.memory_bytes, 80 * (1 << 30));
    }

    #[test]
    fn device_records_costs() {
        let d = Device::h100();
        d.record(KernelCost::new(8, 8, 2, 1));
        d.record(KernelCost::new(8, 0, 1, 1));
        let snap = d.tracker().snapshot();
        assert_eq!(snap.bytes_read, 16);
        assert_eq!(snap.bytes_written, 8);
        assert_eq!(snap.flops, 3);
        assert_eq!(snap.launches, 2);
    }

    #[test]
    fn device_memory_reservation_fails_beyond_capacity() {
        let d = Device::h100();
        assert!(d.try_reserve(1 << 30).is_ok());
        assert!(d.try_reserve(100 * (1 << 30)).is_err());
    }

    #[test]
    fn unlimited_device_never_ooms() {
        let d = Device::unlimited();
        assert!(d.try_reserve(u64::MAX / 2).is_ok());
    }

    #[test]
    fn model_time_positive_for_nonzero_cost() {
        let d = Device::h100();
        let t = d.model_time(&KernelCost::new(1 << 20, 1 << 20, 1 << 10, 1));
        assert!(t > 0.0);
    }

    #[test]
    fn launch_without_recorder_only_records_cost() {
        let d = Device::h100();
        assert!(!d.recording());
        d.launch("gemm", KernelCost::new(8, 8, 2, 1));
        assert_eq!(d.tracker().snapshot().launches, 1);
        assert_eq!(d.kernel_clock(), 0.0);
        assert!(d.recorder().is_none());
    }

    #[test]
    fn noop_recorder_keeps_the_hot_path_disabled() {
        let d = Device::h100();
        d.set_recorder(Some(Arc::new(sketch_obs::NoopRecorder)));
        assert!(!d.recording());
        d.launch("gemm", KernelCost::new(8, 8, 2, 1));
        assert_eq!(d.kernel_clock(), 0.0);
    }

    #[test]
    fn healthy_device_has_unit_scales_and_never_dies() {
        let d = Device::h100();
        assert_eq!(d.fault(), None);
        assert_eq!(d.time_scale(), 1.0);
        assert_eq!(d.link_scale(), 1.0);
        assert_eq!(d.death_time(), None);
        assert!(!d.is_failed());
        assert!(d.check_alive(f64::MAX).is_ok());
        let cost = KernelCost::new(1 << 20, 1 << 20, 1 << 10, 1);
        // The healthy scaled time is *bit-identical* to the raw model time.
        assert_eq!(
            d.scaled_time(&cost).to_bits(),
            d.model_time(&cost).to_bits()
        );
    }

    #[test]
    fn straggler_scales_kernel_times() {
        let d = Device::h100();
        d.set_fault(Some(FaultSpec::Straggler {
            slowdown_factor: 4.0,
        }));
        let cost = KernelCost::new(1 << 20, 1 << 20, 1 << 10, 1);
        assert_eq!(d.scaled_time(&cost), 4.0 * d.model_time(&cost));
        assert_eq!(d.time_scale(), 4.0);
        // Stragglers are slow, not dead.
        assert!(d.check_alive(f64::MAX).is_ok());
        assert!(!d.is_failed());
    }

    #[test]
    fn death_is_sticky_until_the_fault_is_replaced() {
        let d = Device::with_ordinal(DeviceSpec::h100(), 2);
        d.set_fault(Some(FaultSpec::Dies {
            after_sim_seconds: 1.0,
        }));
        // Ending exactly at the death instant still completes.
        assert!(d.check_alive(1.0).is_ok());
        assert!(!d.is_failed());
        let err = d.check_alive(1.5).unwrap_err();
        assert_eq!(err.ordinal, 2);
        assert_eq!(err.after_sim_seconds, 1.0);
        assert!(d.is_failed());
        // Death is permanent: even an early operation now sees a failed flag.
        assert!(d.is_failed());
        // Re-applying a plan resets the run's fault clocks.
        d.set_fault(Some(FaultSpec::Dies {
            after_sim_seconds: 1.0,
        }));
        assert!(!d.is_failed());
        d.set_fault(None);
        assert!(d.check_alive(f64::MAX).is_ok());
    }

    #[test]
    fn try_launch_records_attempted_work_then_fails() {
        let d = Device::h100();
        let cost = KernelCost::new(1 << 20, 1 << 20, 1 << 10, 1);
        let t = d.model_time(&cost);
        // Healthy: returns start + modelled time.
        let end = d.try_launch("k", cost, 1.0).unwrap();
        assert_eq!(end, 1.0 + t);
        assert_eq!(d.tracker().snapshot().launches, 1);
        // Dying mid-kernel: the cost still lands (the kernel really ran until
        // the device stopped), but the launch reports the typed failure.
        d.set_fault(Some(FaultSpec::Dies {
            after_sim_seconds: t / 2.0,
        }));
        assert!(d.try_launch("k", cost, 0.0).is_err());
        assert_eq!(d.tracker().snapshot().launches, 2);
        assert!(d.is_failed());
    }

    #[test]
    fn launch_emits_sequential_kernel_spans() {
        let d = Device::with_ordinal(DeviceSpec::h100(), 3);
        assert_eq!(d.ordinal(), 3);
        let collector = sketch_obs::TraceCollector::shared();
        d.set_recorder(Some(collector.clone()));
        assert!(d.recording());
        let cost = KernelCost::new(1 << 20, 1 << 20, 1 << 10, 1);
        d.launch("k0", cost);
        d.launch("k1", cost);
        let events = collector.snapshot();
        assert_eq!(events.len(), 2);
        let t = d.model_time(&cost);
        assert_eq!(events[0].sim, Some((0.0, t)));
        assert_eq!(events[1].sim, Some((t, 2.0 * t)));
        assert_eq!(events[0].device, 3);
        assert_eq!(events[0].track, Track::Kernel);
        assert_eq!(events[0].cost.flops, 1 << 10);
        assert_eq!(d.kernel_clock(), 2.0 * t);
        // Detaching stops emission and re-disables the fast path.
        d.set_recorder(None);
        d.launch("k2", cost);
        assert_eq!(collector.len(), 2);
    }
}
