//! # sketch-gpu-sim
//!
//! A simulated GPU device for the CountSketch reproduction.
//!
//! The paper evaluates its kernels on an NVIDIA H100 SXM5 80 GB and argues about
//! performance almost entirely in terms of *memory traffic* (Table 1, Figures 3–4): the
//! CountSketch and SRHT are memory-bound, the Gaussian sketch and Gram matrix are
//! compute-bound GEMMs.  This crate provides the pieces needed to reproduce those
//! arguments without CUDA hardware:
//!
//! * [`DeviceSpec`] — published peak numbers for an H100 (HBM3 bandwidth, FP64 peak,
//!   device memory) plus an A100 preset and a "host CPU" preset;
//! * [`CostTracker`] / [`KernelCost`] — every kernel in the workspace reports the exact
//!   bytes it read, bytes it wrote, and flops it executed;
//! * [`roofline`] — converts a [`KernelCost`] into a modelled execution time and into
//!   the percent-of-peak numbers plotted in Figures 3 and 4;
//! * [`launch`] — a chunked parallel-for "kernel launcher" with an [`launch::AtomicF64`]
//!   helper that mirrors CUDA's `atomicAdd(double*)`, used by Algorithm 2;
//! * [`Profiler`] — named phases matching the legend of Figure 5 (Gram matrix, Aᵀb,
//!   sketch gen, matrix sketch, vector sketch, POTRF, GEQRF, ORMQR, TRSV, TRSM);
//! * [`MemoryTracker`] — models the 80 GB device capacity so the "Gaussian bar is blank
//!   because the GPU ran out of memory" behaviour of Figures 2 and 5 is reproduced as a
//!   typed error instead of silently succeeding on a big-RAM host;
//! * [`DevicePool`] / [`InterconnectSpec`] — N devices with independent trackers,
//!   joined by a modelled NVLink/PCIe ring for the multi-device executor in
//!   `sketch-dist`;
//! * [`stream`] — simulated CUDA streams and events: in-order queues on a virtual
//!   clock, cross-stream waits, and a [`Timeline`] that reports makespan, per-device
//!   utilization and how much communication was hidden behind compute;
//! * [`fault`] — declarative fault injection: a [`FaultPlan`] names which devices die
//!   mid-run ([`FaultSpec::Dies`]), run slow ([`FaultSpec::Straggler`]) or sit on a
//!   degraded link ([`FaultSpec::LinkDegraded`]), and the device clocks consult it so
//!   failures surface as the typed [`DeviceFailed`] error at launch time.
//!
//! ## Example: cost tracking and the roofline clock
//!
//! ```
//! use sketch_gpu_sim::{Device, KernelCost, Phase};
//!
//! let device = Device::h100();
//! // A kernel that streamed 1 GiB and did almost no math:
//! let cost = KernelCost::new(1 << 30, 1 << 20, 1 << 20, 1);
//! device.record(cost);
//! let t = device.model_time(&cost);
//! assert!(t > 0.0);
//! let pct = device.percent_peak_bandwidth(&cost, t);
//! assert!(pct > 50.0); // memory bound kernel runs near the modelled bandwidth ceiling
//! let _ = Phase::MatrixSketch;
//! ```
//!
//! ## Example: a pool of devices and an overlapped two-stream schedule
//!
//! ```
//! use sketch_gpu_sim::{DevicePool, KernelCost, StreamKind, StreamSet};
//!
//! let pool = DevicePool::h100(2);
//! let cost = KernelCost::new(1 << 24, 1 << 20, 1 << 20, 1);
//! let kernel_s = pool.device(0).model_time(&cost);
//! let comm_s = pool.interconnect().transfer_time(1 << 20);
//!
//! // Each device computes its shard; device 0's transfer overlaps device 1's kernel.
//! let mut set = StreamSet::new(pool.num_devices());
//! let k0 = set.enqueue(0, StreamKind::Compute, "shard 0", &[], kernel_s);
//! set.enqueue(0, StreamKind::Comm, "fold 0", &[k0], comm_s);
//! let k1 = set.enqueue(1, StreamKind::Compute, "shard 1", &[], kernel_s);
//! set.enqueue(1, StreamKind::Comm, "fold 1", &[k1], comm_s);
//! let timeline = set.finish();
//! assert!(timeline.makespan() < timeline.serial_seconds()); // overlap won
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod device;
pub mod fault;
pub mod launch;
pub mod memory;
pub mod pool;
pub mod profile;
pub mod roofline;
pub mod stream;

pub use counters::{CostTracker, KernelCost};
pub use device::{Device, DeviceSpec};
pub use fault::{DeviceFailed, FaultParseError, FaultPlan, FaultSpec};
pub use launch::{parallel_for, parallel_for_chunks, AtomicF64, AtomicF64View};
pub use memory::{MemoryError, MemoryTracker, Reservation};
pub use pool::{DevicePool, InterconnectSpec, PoolError};
pub use profile::{Phase, PhaseRecord, PhaseSpan, Profiler, RunBreakdown};
pub use roofline::RooflineModel;
pub use stream::{Event, SimStream, StreamKind, StreamSet, Timeline, TimelineEntry};

// The observability layer this crate's instrumentation emits into (see
// `Device::launch`, `DevicePool::attach_recorder`, `StreamSet::enqueue_costed`).
pub use sketch_obs as obs;
