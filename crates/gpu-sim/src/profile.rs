//! Phase-level profiling matching the paper's runtime breakdowns.
//!
//! Figure 5 stacks the least-squares solver runtimes into named phases: "Gram matrix",
//! "AT*b", "Sketch gen", "Matrix sketch", "Vector sketch", "POTRF", "GEQRF", "ORMQR",
//! "TRSV", "TRSM".  Figure 2 similarly splits sketch times into generation and apply.
//! [`Profiler`] captures, for each phase, both the modelled device time (from the cost
//! counters) and the measured wall-clock time, so the bench harness can print the exact
//! same stacks.

//! Since the observability layer landed, each phase is captured as a
//! [`sketch_obs::TraceEvent`] span first (fed to the device's attached
//! [`Recorder`](sketch_obs::Recorder), if any) and the [`PhaseRecord`] is
//! derived from that span, so Figure 5 and a Perfetto trace always agree.
//! Wall time is captured with the monotonic [`Stopwatch`] and accumulated
//! *exclusively* per phase: when phases nest (the same `Phase` re-entered via
//! [`Profiler::enter`] guards, e.g. a per-shard sketch apply inside a driver
//! phase), the inner span's wall time is subtracted from the outer record, so
//! the total wall across records never double-counts.

use crate::counters::KernelCost;
use crate::device::Device;
use serde::Serialize;
use sketch_obs::{Stopwatch, TraceEvent, Track};
use std::cell::RefCell;

/// The phases used across the paper's breakdown figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Phase {
    /// Gram matrix `AᵀA` (normal equations / comparisons in Figure 2).
    GramMatrix,
    /// Right-hand side product `Aᵀb`.
    ATransposeB,
    /// Random generation of the sketch ingredients.
    SketchGen,
    /// Applying the sketch to the coefficient matrix.
    MatrixSketch,
    /// Applying the sketch to the right-hand side vector.
    VectorSketch,
    /// Cholesky factorisation.
    Potrf,
    /// Householder QR factorisation.
    Geqrf,
    /// Application of the Householder reflectors to the right-hand side.
    Ormqr,
    /// Triangular solve with a vector.
    Trsv,
    /// Triangular solve with a matrix.
    Trsm,
    /// Anything else (named free-form).
    Other(&'static str),
}

impl Phase {
    /// The label used in reports; matches the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::GramMatrix => "Gram matrix",
            Phase::ATransposeB => "AT*b",
            Phase::SketchGen => "Sketch gen",
            Phase::MatrixSketch => "Matrix sketch",
            Phase::VectorSketch => "Vector sketch",
            Phase::Potrf => "POTRF",
            Phase::Geqrf => "GEQRF",
            Phase::Ormqr => "ORMQR",
            Phase::Trsv => "TRSV",
            Phase::Trsm => "TRSM",
            Phase::Other(name) => name,
        }
    }
}

/// One recorded phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PhaseRecord {
    /// Which phase this record belongs to.
    pub phase: Phase,
    /// Cost accumulated on the device during the phase.
    #[serde(skip)]
    pub cost: KernelCost,
    /// Modelled device time in seconds.
    pub model_seconds: f64,
    /// Measured host wall-clock time in seconds.
    pub wall_seconds: f64,
}

/// A completed run: an ordered list of phase records.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RunBreakdown {
    /// Phases in execution order.
    pub phases: Vec<PhaseRecord>,
}

impl RunBreakdown {
    /// Total modelled time across phases, in seconds.
    pub fn total_model_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.model_seconds).sum()
    }

    /// Total modelled time in milliseconds.
    pub fn total_model_ms(&self) -> f64 {
        self.total_model_seconds() * 1e3
    }

    /// Total wall-clock time across phases, in seconds.
    pub fn total_wall_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_seconds).sum()
    }

    /// Total device cost across phases.
    pub fn total_cost(&self) -> KernelCost {
        self.phases
            .iter()
            .fold(KernelCost::zero(), |acc, p| acc + p.cost)
    }

    /// Modelled time of a specific phase (summed over repeats), in seconds.
    pub fn model_seconds_of(&self, phase: Phase) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.phase == phase)
            .map(|p| p.model_seconds)
            .sum()
    }

    /// Merge another breakdown after this one (e.g. sketch phases + solve phases).
    pub fn extend(&mut self, other: RunBreakdown) {
        self.phases.extend(other.phases);
    }
}

/// A phase currently being captured (an open span).
#[derive(Debug)]
struct ActivePhase {
    phase: Phase,
    start_cost: KernelCost,
    watch: Stopwatch,
    /// Wall seconds already attributed to spans nested inside this one.
    child_wall: f64,
}

#[derive(Debug, Default)]
struct ProfilerState {
    breakdown: RunBreakdown,
    active: Vec<ActivePhase>,
    /// Profiler-local modelled clock for the Phase trace track, in seconds.
    phase_clock: f64,
}

/// Records phases executed on one device.
#[derive(Debug)]
pub struct Profiler<'a> {
    device: &'a Device,
    state: RefCell<ProfilerState>,
}

impl<'a> Profiler<'a> {
    /// Start profiling on a device.
    pub fn new(device: &'a Device) -> Self {
        Self {
            device,
            state: RefCell::new(ProfilerState::default()),
        }
    }

    /// The device being profiled.
    #[inline]
    pub fn device(&self) -> &Device {
        self.device
    }

    /// Run `f` as `phase`, recording its device cost delta and wall time.
    pub fn phase<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let span = self.enter(phase);
        let out = f();
        drop(span);
        out
    }

    /// Open `phase` as a guard; the record is captured when the guard drops.
    ///
    /// Unlike [`Profiler::phase`], guards allow the same `Phase` to be open
    /// twice (nested): each entry still produces its own [`PhaseRecord`], but
    /// wall time is attributed exclusively — the inner span's elapsed time is
    /// subtracted from the outer record (clamped at zero), so
    /// [`RunBreakdown::total_wall_seconds`] never double-counts a nanosecond.
    pub fn enter(&self, phase: Phase) -> PhaseSpan<'_, 'a> {
        self.state.borrow_mut().active.push(ActivePhase {
            phase,
            start_cost: self.device.tracker().snapshot(),
            watch: Stopwatch::start(),
            child_wall: 0.0,
        });
        PhaseSpan { profiler: self }
    }

    /// Close the innermost open span: derive its record, feed it to the
    /// device's recorder, and charge its wall time to the parent span.
    fn exit_innermost(&self) {
        let mut state = self.state.borrow_mut();
        let Some(open) = state.active.pop() else {
            return;
        };
        let elapsed = open.watch.elapsed_seconds();
        let wall = (elapsed - open.child_wall).max(0.0);
        if let Some(parent) = state.active.last_mut() {
            parent.child_wall += elapsed;
        }
        let cost = self.device.tracker().snapshot() - open.start_cost;
        let model = self.device.model_time(&cost);
        let start = state.phase_clock;
        state.phase_clock = start + model;
        if let Some(recorder) = self.device.recorder() {
            recorder.record(TraceEvent {
                name: open.phase.label().to_string(),
                device: self.device.ordinal(),
                track: Track::Phase,
                sim: Some((start, start + model)),
                wall_ns: (wall * 1e9) as u64,
                cost: cost.into(),
            });
        }
        state.breakdown.phases.push(PhaseRecord {
            phase: open.phase,
            cost,
            model_seconds: model,
            wall_seconds: wall,
        });
    }

    /// Finish and return the breakdown.
    pub fn finish(self) -> RunBreakdown {
        self.state.into_inner().breakdown
    }
}

/// Guard for an open profiler phase; dropping it captures the record.
#[derive(Debug)]
pub struct PhaseSpan<'p, 'a> {
    profiler: &'p Profiler<'a>,
}

impl Drop for PhaseSpan<'_, '_> {
    fn drop(&mut self) {
        self.profiler.exit_innermost();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_match_figure5_legend() {
        assert_eq!(Phase::GramMatrix.label(), "Gram matrix");
        assert_eq!(Phase::ATransposeB.label(), "AT*b");
        assert_eq!(Phase::SketchGen.label(), "Sketch gen");
        assert_eq!(Phase::MatrixSketch.label(), "Matrix sketch");
        assert_eq!(Phase::VectorSketch.label(), "Vector sketch");
        assert_eq!(Phase::Potrf.label(), "POTRF");
        assert_eq!(Phase::Geqrf.label(), "GEQRF");
        assert_eq!(Phase::Ormqr.label(), "ORMQR");
        assert_eq!(Phase::Trsv.label(), "TRSV");
        assert_eq!(Phase::Trsm.label(), "TRSM");
        assert_eq!(Phase::Other("custom").label(), "custom");
    }

    #[test]
    fn profiler_records_cost_deltas_per_phase() {
        let device = Device::h100();
        let mut prof = Profiler::new(&device);
        prof.phase(Phase::MatrixSketch, || {
            device.record(KernelCost::new(1000, 500, 100, 1));
        });
        prof.phase(Phase::Geqrf, || {
            device.record(KernelCost::new(10, 10, 10_000, 1));
        });
        let breakdown = prof.finish();
        assert_eq!(breakdown.phases.len(), 2);
        assert_eq!(breakdown.phases[0].cost.bytes_read, 1000);
        assert_eq!(breakdown.phases[1].cost.flops, 10_000);
        assert!(breakdown.total_model_seconds() > 0.0);
        assert!(breakdown.total_wall_seconds() >= 0.0);
        assert_eq!(breakdown.total_cost().launches, 2);
    }

    #[test]
    fn model_seconds_of_sums_repeated_phases() {
        let device = Device::h100();
        let mut prof = Profiler::new(&device);
        for _ in 0..3 {
            prof.phase(Phase::Trsv, || {
                device.record(KernelCost::new(800, 800, 100, 1));
            });
        }
        let b = prof.finish();
        let single = b.phases[0].model_seconds;
        assert!((b.model_seconds_of(Phase::Trsv) - 3.0 * single).abs() < 1e-12);
        assert_eq!(b.model_seconds_of(Phase::Potrf), 0.0);
    }

    #[test]
    fn extend_concatenates_breakdowns() {
        let device = Device::h100();
        let mut p1 = Profiler::new(&device);
        p1.phase(Phase::SketchGen, || {
            device.record(KernelCost::new(8, 8, 1, 1))
        });
        let mut b1 = p1.finish();

        let mut p2 = Profiler::new(&device);
        p2.phase(Phase::MatrixSketch, || {
            device.record(KernelCost::new(8, 8, 1, 1))
        });
        let b2 = p2.finish();

        b1.extend(b2);
        assert_eq!(b1.phases.len(), 2);
        assert_eq!(b1.phases[1].phase, Phase::MatrixSketch);
    }

    #[test]
    fn reentrant_phases_never_double_count_wall_time() {
        // Regression: the same Phase entered twice with overlapping lifetimes
        // (per-shard sketch apply inside a driver phase).  The old capture
        // took two independent `Instant` windows, so the inner window's time
        // was counted twice in total_wall_seconds.  Exclusive accounting must
        // keep the total at (roughly) the true elapsed time.
        let device = Device::h100();
        let prof = Profiler::new(&device);
        let total = Stopwatch::start();
        {
            let _outer = prof.enter(Phase::MatrixSketch);
            device.record(KernelCost::new(100, 100, 10, 1));
            {
                let _inner = prof.enter(Phase::MatrixSketch);
                device.record(KernelCost::new(50, 50, 5, 1));
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
        let elapsed = total.elapsed_seconds();
        let b = prof.finish();
        assert_eq!(b.phases.len(), 2, "each entry still yields its own record");
        // Completion order: the inner span closes first; the outer cost delta
        // includes the nested kernel (cost nests, wall time does not).
        assert_eq!(b.phases[0].cost.launches, 1);
        assert_eq!(b.phases[1].cost.launches, 2);
        for p in &b.phases {
            assert!(p.wall_seconds >= 0.0);
        }
        // Double counting would make the sum exceed the true elapsed time by
        // the inner sleep (~10ms); exclusive accounting keeps it at <= elapsed
        // (plus bookkeeping noise well under a millisecond).
        assert!(
            b.total_wall_seconds() <= elapsed + 1e-3,
            "wall sum {} exceeds elapsed {}",
            b.total_wall_seconds(),
            elapsed
        );
        // The inner sleep is inside exactly one record, so the sum is also at
        // least the sleep duration.
        assert!(b.total_wall_seconds() >= 10e-3 - 1e-4);
    }

    #[test]
    fn sequential_reentry_still_yields_one_record_per_entry() {
        let device = Device::h100();
        let mut prof = Profiler::new(&device);
        for _ in 0..2 {
            prof.phase(Phase::MatrixSketch, || {
                device.record(KernelCost::new(100, 100, 10, 1));
            });
        }
        let b = prof.finish();
        assert_eq!(b.phases.len(), 2);
        assert_eq!(b.phases[0].cost, b.phases[1].cost);
        assert!(b.phases.iter().all(|p| p.wall_seconds >= 0.0));
    }

    #[test]
    fn phases_feed_the_device_recorder_as_spans() {
        let device = Device::h100();
        let collector = sketch_obs::TraceCollector::shared();
        device.set_recorder(Some(collector.clone()));
        let mut prof = Profiler::new(&device);
        prof.phase(Phase::SketchGen, || {
            device.record(KernelCost::new(1 << 20, 1 << 20, 1 << 10, 1));
        });
        prof.phase(Phase::MatrixSketch, || {
            device.record(KernelCost::new(1 << 21, 1 << 20, 1 << 12, 1));
        });
        let b = prof.finish();
        let events = collector.snapshot();
        assert_eq!(events.len(), 2);
        // The span IS the record: same names, same modelled durations, laid
        // end-to-end on the profiler's deterministic phase clock.
        assert_eq!(events[0].name, "Sketch gen");
        assert_eq!(events[1].name, "Matrix sketch");
        let (s0, e0) = events[0].sim.unwrap();
        let (s1, e1) = events[1].sim.unwrap();
        assert_eq!(s0, 0.0);
        assert_eq!(e0 - s0, b.phases[0].model_seconds);
        assert_eq!(s1, e0);
        assert_eq!(e1 - s1, b.phases[1].model_seconds);
        assert_eq!(events[0].track, sketch_obs::Track::Phase);
        assert_eq!(events[1].cost.flops, 1 << 12);
    }

    #[test]
    fn breakdown_is_identical_with_and_without_a_recorder() {
        // The Figure-5 acceptance criterion: attaching the trace layer must
        // not perturb the Profiler output at all.
        let run = |device: &Device| {
            let mut prof = Profiler::new(device);
            prof.phase(Phase::GramMatrix, || {
                device.record(KernelCost::new(4096, 64, 1 << 14, 1));
            });
            prof.phase(Phase::Potrf, || {
                device.record(KernelCost::new(512, 512, 1 << 10, 3));
            });
            prof.finish()
        };
        let bare = Device::h100();
        let without = run(&bare);
        let traced = Device::h100();
        traced.set_recorder(Some(sketch_obs::TraceCollector::shared()));
        let with = run(&traced);
        assert_eq!(without.phases.len(), with.phases.len());
        for (a, b) in without.phases.iter().zip(&with.phases) {
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.model_seconds.to_bits(), b.model_seconds.to_bits());
        }
    }

    #[test]
    fn profiler_passes_through_return_values() {
        let device = Device::h100();
        let mut prof = Profiler::new(&device);
        let value = prof.phase(Phase::Other("compute"), || 42);
        assert_eq!(value, 42);
        assert!(std::ptr::eq(prof.device(), &device));
    }
}
