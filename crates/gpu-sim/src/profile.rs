//! Phase-level profiling matching the paper's runtime breakdowns.
//!
//! Figure 5 stacks the least-squares solver runtimes into named phases: "Gram matrix",
//! "AT*b", "Sketch gen", "Matrix sketch", "Vector sketch", "POTRF", "GEQRF", "ORMQR",
//! "TRSV", "TRSM".  Figure 2 similarly splits sketch times into generation and apply.
//! [`Profiler`] captures, for each phase, both the modelled device time (from the cost
//! counters) and the measured wall-clock time, so the bench harness can print the exact
//! same stacks.

use crate::counters::KernelCost;
use crate::device::Device;
use serde::Serialize;
use std::time::Instant;

/// The phases used across the paper's breakdown figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Phase {
    /// Gram matrix `AᵀA` (normal equations / comparisons in Figure 2).
    GramMatrix,
    /// Right-hand side product `Aᵀb`.
    ATransposeB,
    /// Random generation of the sketch ingredients.
    SketchGen,
    /// Applying the sketch to the coefficient matrix.
    MatrixSketch,
    /// Applying the sketch to the right-hand side vector.
    VectorSketch,
    /// Cholesky factorisation.
    Potrf,
    /// Householder QR factorisation.
    Geqrf,
    /// Application of the Householder reflectors to the right-hand side.
    Ormqr,
    /// Triangular solve with a vector.
    Trsv,
    /// Triangular solve with a matrix.
    Trsm,
    /// Anything else (named free-form).
    Other(&'static str),
}

impl Phase {
    /// The label used in reports; matches the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::GramMatrix => "Gram matrix",
            Phase::ATransposeB => "AT*b",
            Phase::SketchGen => "Sketch gen",
            Phase::MatrixSketch => "Matrix sketch",
            Phase::VectorSketch => "Vector sketch",
            Phase::Potrf => "POTRF",
            Phase::Geqrf => "GEQRF",
            Phase::Ormqr => "ORMQR",
            Phase::Trsv => "TRSV",
            Phase::Trsm => "TRSM",
            Phase::Other(name) => name,
        }
    }
}

/// One recorded phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PhaseRecord {
    /// Which phase this record belongs to.
    pub phase: Phase,
    /// Cost accumulated on the device during the phase.
    #[serde(skip)]
    pub cost: KernelCost,
    /// Modelled device time in seconds.
    pub model_seconds: f64,
    /// Measured host wall-clock time in seconds.
    pub wall_seconds: f64,
}

/// A completed run: an ordered list of phase records.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RunBreakdown {
    /// Phases in execution order.
    pub phases: Vec<PhaseRecord>,
}

impl RunBreakdown {
    /// Total modelled time across phases, in seconds.
    pub fn total_model_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.model_seconds).sum()
    }

    /// Total modelled time in milliseconds.
    pub fn total_model_ms(&self) -> f64 {
        self.total_model_seconds() * 1e3
    }

    /// Total wall-clock time across phases, in seconds.
    pub fn total_wall_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_seconds).sum()
    }

    /// Total device cost across phases.
    pub fn total_cost(&self) -> KernelCost {
        self.phases
            .iter()
            .fold(KernelCost::zero(), |acc, p| acc + p.cost)
    }

    /// Modelled time of a specific phase (summed over repeats), in seconds.
    pub fn model_seconds_of(&self, phase: Phase) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.phase == phase)
            .map(|p| p.model_seconds)
            .sum()
    }

    /// Merge another breakdown after this one (e.g. sketch phases + solve phases).
    pub fn extend(&mut self, other: RunBreakdown) {
        self.phases.extend(other.phases);
    }
}

/// Records phases executed on one device.
#[derive(Debug)]
pub struct Profiler<'a> {
    device: &'a Device,
    breakdown: RunBreakdown,
}

impl<'a> Profiler<'a> {
    /// Start profiling on a device.
    pub fn new(device: &'a Device) -> Self {
        Self {
            device,
            breakdown: RunBreakdown::default(),
        }
    }

    /// The device being profiled.
    #[inline]
    pub fn device(&self) -> &Device {
        self.device
    }

    /// Run `f` as `phase`, recording its device cost delta and wall time.
    pub fn phase<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let before = self.device.tracker().snapshot();
        let start = Instant::now();
        let out = f();
        let wall = start.elapsed().as_secs_f64();
        let cost = self.device.tracker().snapshot() - before;
        let model = self.device.model_time(&cost);
        self.breakdown.phases.push(PhaseRecord {
            phase,
            cost,
            model_seconds: model,
            wall_seconds: wall,
        });
        out
    }

    /// Finish and return the breakdown.
    pub fn finish(self) -> RunBreakdown {
        self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_match_figure5_legend() {
        assert_eq!(Phase::GramMatrix.label(), "Gram matrix");
        assert_eq!(Phase::ATransposeB.label(), "AT*b");
        assert_eq!(Phase::SketchGen.label(), "Sketch gen");
        assert_eq!(Phase::MatrixSketch.label(), "Matrix sketch");
        assert_eq!(Phase::VectorSketch.label(), "Vector sketch");
        assert_eq!(Phase::Potrf.label(), "POTRF");
        assert_eq!(Phase::Geqrf.label(), "GEQRF");
        assert_eq!(Phase::Ormqr.label(), "ORMQR");
        assert_eq!(Phase::Trsv.label(), "TRSV");
        assert_eq!(Phase::Trsm.label(), "TRSM");
        assert_eq!(Phase::Other("custom").label(), "custom");
    }

    #[test]
    fn profiler_records_cost_deltas_per_phase() {
        let device = Device::h100();
        let mut prof = Profiler::new(&device);
        prof.phase(Phase::MatrixSketch, || {
            device.record(KernelCost::new(1000, 500, 100, 1));
        });
        prof.phase(Phase::Geqrf, || {
            device.record(KernelCost::new(10, 10, 10_000, 1));
        });
        let breakdown = prof.finish();
        assert_eq!(breakdown.phases.len(), 2);
        assert_eq!(breakdown.phases[0].cost.bytes_read, 1000);
        assert_eq!(breakdown.phases[1].cost.flops, 10_000);
        assert!(breakdown.total_model_seconds() > 0.0);
        assert!(breakdown.total_wall_seconds() >= 0.0);
        assert_eq!(breakdown.total_cost().launches, 2);
    }

    #[test]
    fn model_seconds_of_sums_repeated_phases() {
        let device = Device::h100();
        let mut prof = Profiler::new(&device);
        for _ in 0..3 {
            prof.phase(Phase::Trsv, || {
                device.record(KernelCost::new(800, 800, 100, 1));
            });
        }
        let b = prof.finish();
        let single = b.phases[0].model_seconds;
        assert!((b.model_seconds_of(Phase::Trsv) - 3.0 * single).abs() < 1e-12);
        assert_eq!(b.model_seconds_of(Phase::Potrf), 0.0);
    }

    #[test]
    fn extend_concatenates_breakdowns() {
        let device = Device::h100();
        let mut p1 = Profiler::new(&device);
        p1.phase(Phase::SketchGen, || {
            device.record(KernelCost::new(8, 8, 1, 1))
        });
        let mut b1 = p1.finish();

        let mut p2 = Profiler::new(&device);
        p2.phase(Phase::MatrixSketch, || {
            device.record(KernelCost::new(8, 8, 1, 1))
        });
        let b2 = p2.finish();

        b1.extend(b2);
        assert_eq!(b1.phases.len(), 2);
        assert_eq!(b1.phases[1].phase, Phase::MatrixSketch);
    }

    #[test]
    fn profiler_passes_through_return_values() {
        let device = Device::h100();
        let mut prof = Profiler::new(&device);
        let value = prof.phase(Phase::Other("compute"), || 42);
        assert_eq!(value, 42);
        assert!(std::ptr::eq(prof.device(), &device));
    }
}
