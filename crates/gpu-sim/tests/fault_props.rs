//! Property tests for the fault-injection layer (ISSUE 9 satellite).
//!
//! Two contracts are pinned here:
//!
//! 1. A [`FaultPlan`] survives a JSON round-trip *exactly* — every `f64`
//!    field comes back bit-for-bit, for arbitrary finite values, because the
//!    JSON layer renders floats with Rust's shortest-round-trip formatting.
//! 2. A [`FaultSpec::Straggler`] with factor exactly 1.0 is cost-identical
//!    to no fault at all: per-kernel scaled times and whole-pipeline
//!    [`Timeline`] makespans agree in their *bits*, not just approximately.

use proptest::prelude::*;
use sketch_gpu_sim::{
    DevicePool, FaultPlan, FaultSpec, KernelCost, StreamKind, StreamSet, Timeline,
};

/// A positive finite f64 derived from raw proptest bits.
fn f64_from_draw(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        v.abs()
    } else {
        // Map the non-finite patterns onto an odd but perfectly legal value.
        (bits >> 11) as f64 * 1.25e-3
    }
}

/// Run the same little two-stage pipeline on `pool`, with every duration
/// taken through the fault-aware clocks, and return its timeline.
fn mini_pipeline(pool: &DevicePool) -> Timeline {
    let cost = KernelCost::new(1 << 22, 1 << 20, 1 << 18, 1);
    let mut set = StreamSet::new(pool.num_devices());
    let mut stage_done = Vec::new();
    for d in 0..pool.num_devices() {
        let dur = pool.device(d).scaled_time(&cost);
        let k = set.enqueue(d, StreamKind::Compute, "shard", &[], dur);
        let comm = pool.interconnect().transfer_time(1 << 20) * pool.device(d).link_scale();
        stage_done.push(set.enqueue(d, StreamKind::Comm, "fold", &[k], comm));
    }
    for d in 0..pool.num_devices() {
        let dur = 2.0 * pool.device(d).scaled_time(&cost);
        set.enqueue(d, StreamKind::Compute, "stage2", &stage_done, dur);
    }
    set.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any plan over any mix of fault kinds round-trips through its JSON
    /// rendering without perturbing a single bit of any float field.
    #[test]
    fn prop_fault_plan_json_round_trips_exactly(
        bits_a in 0u64..u64::MAX,
        bits_b in 0u64..u64::MAX,
        bits_c in 0u64..u64::MAX,
        dev_a in 0usize..16,
        dev_gap in 1usize..16,
    ) {
        let t_dies = f64_from_draw(bits_a);
        let t_slow = f64_from_draw(bits_b);
        let t_link = f64_from_draw(bits_c);
        let plan = FaultPlan::healthy()
            .with_fault(dev_a, FaultSpec::Dies { after_sim_seconds: t_dies })
            .with_fault(dev_a + dev_gap, FaultSpec::Straggler { slowdown_factor: t_slow })
            .with_fault(dev_a + 2 * dev_gap, FaultSpec::LinkDegraded { factor: t_link });
        let rendered = plan.to_json().render();
        let parsed = FaultPlan::from_json(&rendered).expect("own rendering parses");
        // PartialEq on f64 would already accept -0.0 == 0.0; compare bits.
        prop_assert_eq!(parsed.len(), plan.len());
        for ((da, sa), (db, sb)) in parsed.iter().zip(plan.iter()) {
            prop_assert_eq!(da, db);
            let bits = |s: FaultSpec| match s {
                FaultSpec::Dies { after_sim_seconds } => (0u8, after_sim_seconds.to_bits()),
                FaultSpec::Straggler { slowdown_factor } => (1u8, slowdown_factor.to_bits()),
                FaultSpec::LinkDegraded { factor } => (2u8, factor.to_bits()),
            };
            prop_assert_eq!(bits(sa), bits(sb), "device {} drifted through JSON", da);
        }
        // And the rendering itself is a fixed point.
        prop_assert_eq!(parsed.to_json().render(), rendered);
    }

    /// A straggler factor of exactly 1.0 leaves every modelled clock
    /// bit-identical to the healthy run: per-kernel scaled times and the
    /// makespan of a whole overlapped pipeline.
    #[test]
    fn prop_unit_straggler_is_bitwise_no_fault(
        devices in 1usize..8,
        victim in 0usize..8,
        bytes_exp in 10u32..28,
    ) {
        let victim = victim % devices;
        let healthy = DevicePool::h100(devices);
        let faulted = DevicePool::h100(devices);
        faulted.apply_fault_plan(
            &FaultPlan::healthy().with_fault(victim, FaultSpec::Straggler { slowdown_factor: 1.0 }),
        );

        let cost = KernelCost::new(1u64 << bytes_exp, 1 << 16, 1 << 12, 1);
        for d in 0..devices {
            prop_assert_eq!(
                healthy.device(d).scaled_time(&cost).to_bits(),
                faulted.device(d).scaled_time(&cost).to_bits(),
                "device {} kernel clock drifted under a unit straggler", d
            );
        }

        let reference = mini_pipeline(&healthy);
        let perturbed = mini_pipeline(&faulted);
        prop_assert_eq!(
            reference.makespan().to_bits(),
            perturbed.makespan().to_bits(),
            "Timeline makespan drifted under a unit straggler"
        );
        prop_assert_eq!(
            reference.serial_seconds().to_bits(),
            perturbed.serial_seconds().to_bits()
        );
    }
}

#[test]
fn unit_straggler_is_byte_identical_in_json_too() {
    // The JSON rendering of a factor-1.0 straggler is stable and explicit —
    // the plan is not silently dropped just because it is a no-op in time.
    let plan = FaultPlan::healthy().with_fault(
        0,
        FaultSpec::Straggler {
            slowdown_factor: 1.0,
        },
    );
    let rendered = plan.to_json().render();
    assert!(rendered.contains("straggler"), "{rendered}");
    assert_eq!(FaultPlan::from_json(&rendered).unwrap(), plan);
}
