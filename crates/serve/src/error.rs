//! Typed errors of the service layer.
//!
//! Admission and scheduling failures are *per-request* conditions: a tenant
//! exceeding its quota must produce a ledger entry and an error value, never a
//! panic.  [`RejectReason`] enumerates the declarative limits a job can trip;
//! [`ServeError`] wraps rejections together with the lower layers' errors
//! (pool subset validation, spec parsing, executor failures).

use sketch_gpu_sim::PoolError;

/// Why the admission controller or queue refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded job queue is full.
    QueueFull {
        /// The queue's capacity.
        capacity: usize,
    },
    /// The tenant already has its maximum number of jobs in flight.
    TooManyInFlight {
        /// The tenant's in-flight limit.
        limit: usize,
    },
    /// The job's modelled sketch output exceeds the tenant's byte budget.
    SketchBytesExceeded {
        /// Modelled bytes the job would produce.
        modelled: u64,
        /// The tenant's byte limit.
        limit: u64,
    },
    /// The job's modelled flop count exceeds the tenant's compute budget.
    FlopsExceeded {
        /// Modelled flops the job would execute.
        modelled: u64,
        /// The tenant's flop limit.
        limit: u64,
    },
    /// Every execution attempt hit a dead device and the tenant's retry
    /// budget ([`TenantLimits::max_retries`](crate::TenantLimits::max_retries))
    /// is spent — or no live device is left to retry on.
    RetriesExhausted {
        /// Execution attempts that failed before the job was abandoned.
        attempts: usize,
    },
}

impl RejectReason {
    /// Stable machine-readable tag, used in ledgers and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::TooManyInFlight { .. } => "too_many_in_flight",
            RejectReason::SketchBytesExceeded { .. } => "sketch_bytes_exceeded",
            RejectReason::FlopsExceeded { .. } => "flops_exceeded",
            RejectReason::RetriesExhausted { .. } => "retries_exhausted",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "job queue is full (capacity {capacity})")
            }
            RejectReason::TooManyInFlight { limit } => {
                write!(f, "tenant already has {limit} job(s) in flight")
            }
            RejectReason::SketchBytesExceeded { modelled, limit } => write!(
                f,
                "modelled sketch output of {modelled} bytes exceeds the tenant limit of {limit}"
            ),
            RejectReason::FlopsExceeded { modelled, limit } => write!(
                f,
                "modelled {modelled} flops exceed the tenant limit of {limit}"
            ),
            RejectReason::RetriesExhausted { attempts } => write!(
                f,
                "abandoned after {attempts} failed attempt(s) on dying devices"
            ),
        }
    }
}

/// Any failure surfaced by the service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A job was rejected by admission control or the bounded queue.
    Rejected {
        /// The tenant whose job was refused.
        tenant: String,
        /// Why it was refused.
        reason: RejectReason,
    },
    /// A device-subset request was malformed (empty, duplicate, out of range).
    Pool(PoolError),
    /// A lower-layer error: spec resolution, operand build, executor failure.
    Core(sketch_core::Error),
    /// A job file or job spec failed to parse.
    Spec {
        /// What was wrong with the document.
        detail: String,
    },
}

impl ServeError {
    /// A spec/parse error with a human-readable detail string.
    pub fn spec(detail: impl Into<String>) -> Self {
        ServeError::Spec {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected { tenant, reason } => {
                write!(f, "job from tenant {tenant:?} rejected: {reason}")
            }
            ServeError::Pool(e) => write!(f, "device subset error: {e}"),
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::Spec { detail } => write!(f, "job spec error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PoolError> for ServeError {
    fn from(e: PoolError) -> Self {
        ServeError::Pool(e)
    }
}

impl From<sketch_core::Error> for ServeError {
    fn from(e: sketch_core::Error) -> Self {
        ServeError::Core(e)
    }
}

impl From<sketch_obs::JsonError> for ServeError {
    fn from(e: sketch_obs::JsonError) -> Self {
        ServeError::spec(e.message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_render_and_tag() {
        let r = RejectReason::SketchBytesExceeded {
            modelled: 100,
            limit: 10,
        };
        assert_eq!(r.as_str(), "sketch_bytes_exceeded");
        assert!(r.to_string().contains("100"));
        let e = ServeError::Rejected {
            tenant: "acme".into(),
            reason: r,
        };
        assert!(e.to_string().contains("acme"));
    }

    #[test]
    fn lower_layer_errors_convert() {
        let pool_err: ServeError = PoolError::Empty.into();
        assert!(matches!(pool_err, ServeError::Pool(PoolError::Empty)));
        let core_err: ServeError = sketch_core::Error::invalid_param("nope").into();
        assert!(core_err.to_string().contains("nope"));
    }
}
