//! Declarative per-tenant admission control.
//!
//! A [`TenantLimits`] names the three budgets a tenant's jobs are admitted
//! against — in-flight jobs, modelled sketch bytes, modelled flops — with
//! "unlimited" as the default for each.  The [`AdmissionController`] holds a
//! default policy plus per-tenant overrides (both parse from the job file),
//! and [`AdmissionController::admit`] answers with a typed
//! [`RejectReason`] — never a panic — so the service
//! turns quota violations into ledger entries.
//!
//! The resource models are the job's own declarative estimates
//! ([`JobSpec::sketch_output_bytes`], [`JobSpec::modelled_flops`]): admission
//! is decided *before* any operand is materialised.

use crate::error::{RejectReason, ServeError};
use crate::job::JobSpec;
use sketch_core::JsonValue;
use std::collections::BTreeMap;

/// A tenant's declarative resource budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLimits {
    /// Maximum jobs the tenant may have admitted-but-not-completed.
    pub max_in_flight: usize,
    /// Maximum modelled sketch output bytes per job.
    pub max_sketch_bytes: u64,
    /// Maximum modelled flops per job.
    pub max_modelled_flops: u64,
    /// Maximum *retries* after a job's first execution attempt dies with a
    /// device failure: `0` abandons on the first failure, the default
    /// `usize::MAX` retries as long as live devices remain.
    pub max_retries: usize,
}

impl TenantLimits {
    /// No limits at all (the default policy).
    pub const fn unlimited() -> Self {
        Self {
            max_in_flight: usize::MAX,
            max_sketch_bytes: u64::MAX,
            max_modelled_flops: u64::MAX,
            max_retries: usize::MAX,
        }
    }

    /// Cap in-flight jobs.
    #[must_use]
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Cap modelled sketch bytes per job.
    #[must_use]
    pub fn with_max_sketch_bytes(mut self, max_sketch_bytes: u64) -> Self {
        self.max_sketch_bytes = max_sketch_bytes;
        self
    }

    /// Cap modelled flops per job.
    #[must_use]
    pub fn with_max_modelled_flops(mut self, max_modelled_flops: u64) -> Self {
        self.max_modelled_flops = max_modelled_flops;
        self
    }

    /// Cap retries after a device-failure attempt (`0` = fail fast).
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Serialize to a [`JsonValue`] (omitted fields mean "unlimited").
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = Vec::new();
        if self.max_in_flight != usize::MAX {
            fields.push((
                "max_in_flight".into(),
                JsonValue::UInt(self.max_in_flight as u64),
            ));
        }
        if self.max_sketch_bytes != u64::MAX {
            fields.push((
                "max_sketch_bytes".into(),
                JsonValue::UInt(self.max_sketch_bytes),
            ));
        }
        if self.max_modelled_flops != u64::MAX {
            fields.push((
                "max_modelled_flops".into(),
                JsonValue::UInt(self.max_modelled_flops),
            ));
        }
        if self.max_retries != usize::MAX {
            fields.push((
                "max_retries".into(),
                JsonValue::UInt(self.max_retries as u64),
            ));
        }
        JsonValue::Object(fields)
    }

    /// Parse from a [`JsonValue`]; every field is optional.
    pub fn from_json_value(value: &JsonValue) -> Result<Self, ServeError> {
        let mut limits = Self::unlimited();
        let get = |key: &str| -> Result<Option<u64>, ServeError> {
            match value.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| ServeError::spec(format!("\"{key}\" must be an integer"))),
            }
        };
        if let Some(v) = get("max_in_flight")? {
            limits.max_in_flight = v as usize;
        }
        if let Some(v) = get("max_sketch_bytes")? {
            limits.max_sketch_bytes = v;
        }
        if let Some(v) = get("max_modelled_flops")? {
            limits.max_modelled_flops = v;
        }
        if let Some(v) = get("max_retries")? {
            limits.max_retries = v as usize;
        }
        Ok(limits)
    }
}

impl Default for TenantLimits {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// The admission policy: a default [`TenantLimits`] plus per-tenant overrides.
#[derive(Debug, Clone, Default)]
pub struct AdmissionController {
    default: TenantLimits,
    per_tenant: BTreeMap<String, TenantLimits>,
}

impl AdmissionController {
    /// A controller admitting everything (unlimited default, no overrides).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the default policy applied to tenants without an override.
    #[must_use]
    pub fn with_default(mut self, default: TenantLimits) -> Self {
        self.default = default;
        self
    }

    /// Override the policy for one tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>, limits: TenantLimits) -> Self {
        self.per_tenant.insert(tenant.into(), limits);
        self
    }

    /// The limits in force for `tenant`.
    pub fn limits_for(&self, tenant: &str) -> TenantLimits {
        self.per_tenant.get(tenant).copied().unwrap_or(self.default)
    }

    /// Decide whether `job` may enter the queue, given how many of the
    /// tenant's jobs are already in flight (admitted but not completed).
    ///
    /// Returns the limits that were checked on success, and a typed
    /// [`ServeError::Rejected`] naming the first violated budget otherwise.
    pub fn admit(
        &self,
        job: &JobSpec,
        tenant_in_flight: usize,
    ) -> Result<TenantLimits, ServeError> {
        let limits = self.limits_for(&job.tenant);
        let reject = |reason: RejectReason| ServeError::Rejected {
            tenant: job.tenant.clone(),
            reason,
        };
        if tenant_in_flight >= limits.max_in_flight {
            return Err(reject(RejectReason::TooManyInFlight {
                limit: limits.max_in_flight,
            }));
        }
        let modelled_bytes = job.sketch_output_bytes()?;
        if modelled_bytes > limits.max_sketch_bytes {
            return Err(reject(RejectReason::SketchBytesExceeded {
                modelled: modelled_bytes,
                limit: limits.max_sketch_bytes,
            }));
        }
        let modelled_flops = job.modelled_flops()?;
        if modelled_flops > limits.max_modelled_flops {
            return Err(reject(RejectReason::FlopsExceeded {
                modelled: modelled_flops,
                limit: limits.max_modelled_flops,
            }));
        }
        Ok(limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::OperandSpec;
    use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};

    fn job(tenant: &str) -> JobSpec {
        JobSpec::new(
            tenant,
            Pipeline::single(SketchSpec::countsketch(512, EmbeddingDim::Square(2), 7)),
            OperandSpec::Dense {
                rows: 512,
                cols: 6,
                seed: 42,
            },
        )
    }

    #[test]
    fn unlimited_default_admits_everything() {
        let ctl = AdmissionController::new();
        assert!(ctl.admit(&job("anyone"), 1_000_000).is_ok());
    }

    #[test]
    fn in_flight_limit_rejects_typed() {
        let ctl = AdmissionController::new()
            .with_default(TenantLimits::unlimited().with_max_in_flight(2));
        assert!(ctl.admit(&job("t"), 1).is_ok());
        match ctl.admit(&job("t"), 2).unwrap_err() {
            ServeError::Rejected { reason, .. } => {
                assert_eq!(reason, RejectReason::TooManyInFlight { limit: 2 });
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn byte_and_flop_budgets_reject_typed() {
        let j = job("t");
        let bytes = j.sketch_output_bytes().unwrap();
        let flops = j.modelled_flops().unwrap();
        let ctl = AdmissionController::new().with_tenant(
            "t",
            TenantLimits::unlimited().with_max_sketch_bytes(bytes - 1),
        );
        assert_eq!(
            match ctl.admit(&j, 0).unwrap_err() {
                ServeError::Rejected { reason, .. } => reason.as_str(),
                _ => panic!(),
            },
            "sketch_bytes_exceeded"
        );
        let ctl = AdmissionController::new().with_tenant(
            "t",
            TenantLimits::unlimited().with_max_modelled_flops(flops - 1),
        );
        assert_eq!(
            match ctl.admit(&j, 0).unwrap_err() {
                ServeError::Rejected { reason, .. } => reason.as_str(),
                _ => panic!(),
            },
            "flops_exceeded"
        );
        // Exactly at the budget is admitted.
        let ctl = AdmissionController::new().with_tenant(
            "t",
            TenantLimits::unlimited()
                .with_max_sketch_bytes(bytes)
                .with_max_modelled_flops(flops),
        );
        assert!(ctl.admit(&j, 0).is_ok());
    }

    #[test]
    fn overrides_only_touch_their_tenant() {
        let ctl = AdmissionController::new()
            .with_tenant("capped", TenantLimits::unlimited().with_max_in_flight(0));
        assert!(ctl.admit(&job("capped"), 0).is_err());
        assert!(ctl.admit(&job("free"), 0).is_ok());
        assert_eq!(ctl.limits_for("capped").max_in_flight, 0);
        assert_eq!(ctl.limits_for("free"), TenantLimits::unlimited());
    }

    #[test]
    fn limits_round_trip_through_json() {
        let limits = TenantLimits::unlimited()
            .with_max_in_flight(4)
            .with_max_sketch_bytes(1 << 20)
            .with_max_retries(2);
        let parsed = TenantLimits::from_json_value(&limits.to_json_value()).unwrap();
        assert_eq!(parsed, limits);
        // Empty object means unlimited.
        let parsed = TenantLimits::from_json_value(&JsonValue::Object(Vec::new())).unwrap();
        assert_eq!(parsed, TenantLimits::unlimited());
        assert!(TenantLimits::from_json_value(
            &JsonValue::parse(r#"{"max_in_flight": "lots"}"#).unwrap()
        )
        .is_err());
    }
}
