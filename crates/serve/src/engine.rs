//! The in-process request stream: submit → admit → queue → schedule → ledger.
//!
//! [`ServeEngine`] is the service front door.  `submit` runs each request
//! through admission control and the bounded fair queue (typed rejections are
//! *recorded* — a rejected job is a ledger entry, not a lost event); `run`
//! drains the queue through the [`Scheduler`] and settles a
//! [`ServiceReport`]: one [`TenantLedger`] per tenant (jobs run/rejected,
//! modelled compute seconds, comm bytes, queue-wait quantiles) plus the
//! service-level [`ServiceRun`].  The report exports to
//! [`sketch_obs::MetricsRegistry`] under the `serve.*` namespace with
//! deterministic ordering, and to a flat JSON document for the batch driver.

use crate::admission::AdmissionController;
use crate::error::ServeError;
use crate::job::JobSpec;
use crate::queue::JobQueue;
use crate::scheduler::{Scheduler, ServiceRun};
use sketch_core::JsonValue;
use sketch_gpu_sim::DevicePool;
use sketch_obs::MetricsRegistry;
use std::collections::BTreeMap;

/// Histogram bucket bounds (seconds) for queue-wait observations.
pub const QUEUE_WAIT_BOUNDS: [f64; 6] = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

/// Histogram bucket bounds for per-tenant rejection counts.
pub const REJECTION_BOUNDS: [f64; 5] = [0.0, 1.0, 2.0, 4.0, 8.0];

/// What the service did for (and to) one tenant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantLedger {
    /// Jobs executed to completion.
    pub jobs_run: u64,
    /// Jobs refused by admission control or the bounded queue.
    pub jobs_rejected: u64,
    /// Rejections by [`RejectReason::as_str`](crate::RejectReason::as_str) tag.
    pub rejected_by_reason: BTreeMap<String, u64>,
    /// Summed modelled makespan of the tenant's jobs, seconds.
    pub compute_seconds: f64,
    /// Summed modelled interconnect traffic of the tenant's jobs, bytes.
    pub comm_bytes: u64,
    /// Queue waits of the tenant's executed jobs, sorted ascending, seconds.
    pub queue_waits: Vec<f64>,
}

impl TenantLedger {
    /// Exact `q`-quantile (nearest-rank) of the tenant's queue waits; 0 when
    /// the tenant ran no jobs.
    pub fn queue_wait_quantile(&self, q: f64) -> f64 {
        if self.queue_waits.is_empty() {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.queue_waits.len() as f64).ceil() as usize;
        self.queue_waits[rank.max(1) - 1]
    }

    /// Median queue wait, seconds.
    pub fn queue_wait_p50(&self) -> f64 {
        self.queue_wait_quantile(0.50)
    }

    /// 95th-percentile queue wait, seconds.
    pub fn queue_wait_p95(&self) -> f64 {
        self.queue_wait_quantile(0.95)
    }
}

/// The settled outcome of one service batch: per-tenant ledgers plus the
/// service-level schedule.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-tenant ledgers, keyed by tenant id (deterministic order).
    pub tenants: BTreeMap<String, TenantLedger>,
    /// The scheduled service run.
    pub service: ServiceRun,
}

impl ServiceReport {
    /// Total jobs executed across tenants.
    pub fn jobs_run(&self) -> u64 {
        self.tenants.values().map(|t| t.jobs_run).sum()
    }

    /// Total jobs rejected across tenants.
    pub fn jobs_rejected(&self) -> u64 {
        self.tenants.values().map(|t| t.jobs_rejected).sum()
    }

    /// Export the report into a [`MetricsRegistry`] under the `serve.*`
    /// namespace: service and per-tenant counters, a queue-wait histogram
    /// ([`QUEUE_WAIT_BOUNDS`]) and a per-tenant rejection-count histogram
    /// ([`REJECTION_BOUNDS`]).  Keys are lexicographically ordered in the
    /// registry's flat JSON summary, so exports are byte-deterministic.
    pub fn record_metrics(&self, metrics: &MetricsRegistry) {
        metrics.add("serve.jobs_run", self.jobs_run());
        metrics.add("serve.jobs_rejected", self.jobs_rejected());
        metrics.add("serve.retries", self.service.retries);
        metrics.add("serve.straggler_evictions", self.service.evictions);
        for (tenant, ledger) in &self.tenants {
            metrics.add(&format!("serve.tenant.{tenant}.jobs_run"), ledger.jobs_run);
            metrics.add(
                &format!("serve.tenant.{tenant}.jobs_rejected"),
                ledger.jobs_rejected,
            );
            metrics.add(
                &format!("serve.tenant.{tenant}.comm_bytes"),
                ledger.comm_bytes,
            );
            metrics.add(
                &format!("serve.tenant.{tenant}.compute_us"),
                (ledger.compute_seconds * 1e6).round() as u64,
            );
            for wait in &ledger.queue_waits {
                metrics.observe("serve.queue_wait_seconds", *wait, &QUEUE_WAIT_BOUNDS);
            }
            metrics.observe(
                "serve.tenant_rejections",
                ledger.jobs_rejected as f64,
                &REJECTION_BOUNDS,
            );
        }
    }

    /// The report as a flat JSON document (tenants in key order, jobs in
    /// execution order) — what the `sketch_serve` batch driver writes.
    pub fn to_json(&self) -> JsonValue {
        let tenants = self
            .tenants
            .iter()
            .map(|(tenant, l)| {
                (
                    tenant.clone(),
                    JsonValue::Object(vec![
                        ("jobs_run".into(), JsonValue::UInt(l.jobs_run)),
                        ("jobs_rejected".into(), JsonValue::UInt(l.jobs_rejected)),
                        (
                            "rejected_by_reason".into(),
                            JsonValue::Object(
                                l.rejected_by_reason
                                    .iter()
                                    .map(|(k, v)| (k.clone(), JsonValue::UInt(*v)))
                                    .collect(),
                            ),
                        ),
                        (
                            "compute_seconds".into(),
                            JsonValue::Float(l.compute_seconds),
                        ),
                        ("comm_bytes".into(), JsonValue::UInt(l.comm_bytes)),
                        (
                            "queue_wait_p50_s".into(),
                            JsonValue::Float(l.queue_wait_p50()),
                        ),
                        (
                            "queue_wait_p95_s".into(),
                            JsonValue::Float(l.queue_wait_p95()),
                        ),
                    ]),
                )
            })
            .collect();
        let jobs = self
            .service
            .jobs
            .iter()
            .map(|j| {
                JsonValue::Object(vec![
                    ("tenant".into(), JsonValue::Str(j.tenant.clone())),
                    ("seq".into(), JsonValue::UInt(j.seq)),
                    ("start_s".into(), JsonValue::Float(j.start)),
                    ("end_s".into(), JsonValue::Float(j.end)),
                    ("queue_wait_s".into(), JsonValue::Float(j.queue_wait())),
                    (
                        "devices".into(),
                        JsonValue::Array(
                            j.device_ordinals
                                .iter()
                                .map(|&d| JsonValue::UInt(d as u64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("tenants".into(), JsonValue::Object(tenants)),
            (
                "service".into(),
                JsonValue::Object(vec![
                    (
                        "devices".into(),
                        JsonValue::UInt(self.service.devices as u64),
                    ),
                    (
                        "makespan_s".into(),
                        JsonValue::Float(self.service.makespan()),
                    ),
                    (
                        "utilization".into(),
                        JsonValue::Array(
                            self.service
                                .utilizations()
                                .into_iter()
                                .map(JsonValue::Float)
                                .collect(),
                        ),
                    ),
                    ("jobs".into(), JsonValue::Array(jobs)),
                ]),
            ),
        ])
    }
}

/// The in-process service: admission + bounded fair queue + scheduler over a
/// shared pool.
#[derive(Debug)]
pub struct ServeEngine<'p> {
    pool: &'p DevicePool,
    queue: JobQueue,
    admission: AdmissionController,
    scheduler: Scheduler,
    /// Rejection tags per tenant, recorded at submit time.
    rejections: BTreeMap<String, BTreeMap<String, u64>>,
}

impl<'p> ServeEngine<'p> {
    /// A service over `pool` with the given admission policy and queue bound.
    pub fn new(
        pool: &'p DevicePool,
        admission: AdmissionController,
        queue_capacity: usize,
    ) -> Self {
        Self {
            pool,
            queue: JobQueue::new(queue_capacity),
            admission,
            scheduler: Scheduler::new(),
            rejections: BTreeMap::new(),
        }
    }

    /// Replace the scheduler (e.g. to change [`sketch_dist::ExecutorOptions`]).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Jobs currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Submit one request: admission control, then the bounded queue.
    ///
    /// On success returns the job's queue sequence number.  On rejection the
    /// typed error is returned *and* tallied for the tenant's ledger — a
    /// refused request is part of the service record.
    pub fn submit(&mut self, job: JobSpec) -> Result<u64, ServeError> {
        let tenant = job.tenant.clone();
        let in_flight = self.queue.queued_for(&tenant);
        let result = self
            .admission
            .admit(&job, in_flight)
            .and_then(|_| self.queue.push(job));
        if let Err(ServeError::Rejected { tenant, reason }) = &result {
            *self
                .rejections
                .entry(tenant.clone())
                .or_default()
                .entry(reason.as_str().to_string())
                .or_insert(0) += 1;
        }
        result
    }

    /// Drain the queue through the scheduler and settle the report.
    ///
    /// Rejection tallies recorded by [`ServeEngine::submit`] are folded into
    /// the ledgers and cleared, so consecutive batches don't double-count.
    pub fn run(&mut self) -> Result<ServiceReport, ServeError> {
        let jobs = self.queue.drain();
        let service = self
            .scheduler
            .run_with_admission(self.pool, &jobs, &self.admission)?;
        let mut tenants: BTreeMap<String, TenantLedger> = BTreeMap::new();
        for job in &service.jobs {
            let ledger = tenants.entry(job.tenant.clone()).or_default();
            ledger.jobs_run += 1;
            ledger.compute_seconds += job.run.pipelined_seconds;
            ledger.comm_bytes += job.run.comm_total_bytes();
            ledger.queue_waits.push(job.queue_wait());
        }
        for (tenant, by_reason) in std::mem::take(&mut self.rejections) {
            let ledger = tenants.entry(tenant).or_default();
            ledger.jobs_rejected += by_reason.values().sum::<u64>();
            ledger.rejected_by_reason = by_reason;
        }
        // Jobs the scheduler abandoned mid-run (retry budget spent on dying
        // devices) are rejections too — merged, not assigned, so they coexist
        // with submit-time tallies.
        for job in &service.abandoned {
            let ledger = tenants.entry(job.tenant.clone()).or_default();
            ledger.jobs_rejected += 1;
            *ledger
                .rejected_by_reason
                .entry(job.reason.as_str().to_string())
                .or_insert(0) += 1;
        }
        for ledger in tenants.values_mut() {
            ledger
                .queue_waits
                .sort_by(|a, b| a.partial_cmp(b).expect("finite waits"));
        }
        Ok(ServiceReport { tenants, service })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::TenantLimits;
    use crate::job::{JobSpec, OperandSpec};
    use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};

    fn job(tenant: &str, seed: u64) -> JobSpec {
        JobSpec::new(
            tenant,
            Pipeline::single(SketchSpec::countsketch(
                1 << 10,
                EmbeddingDim::Square(2),
                seed,
            )),
            OperandSpec::Dense {
                rows: 1 << 10,
                cols: 6,
                seed,
            },
        )
    }

    #[test]
    fn submit_run_ledger_round_trip() {
        let pool = DevicePool::unlimited(2);
        let mut engine = ServeEngine::new(&pool, AdmissionController::new(), 8);
        for (t, s) in [("a", 1), ("b", 2), ("b", 4)] {
            engine.submit(job(t, s)).unwrap();
        }
        // One job spans both devices, so its run pays interconnect traffic.
        engine.submit(job("a", 3).with_devices(2)).unwrap();
        assert_eq!(engine.queued(), 4);
        let report = engine.run().unwrap();
        assert_eq!(engine.queued(), 0);
        assert_eq!(report.jobs_run(), 4);
        assert_eq!(report.jobs_rejected(), 0);
        let a = &report.tenants["a"];
        assert_eq!(a.jobs_run, 2);
        assert!(a.compute_seconds > 0.0);
        assert!(a.comm_bytes > 0, "the two-device job models comm traffic");
        assert_eq!(a.queue_waits.len(), 2);
        // Makespan beats running everything serially on the cluster clock.
        assert!(report.service.makespan() < report.service.timeline.serial_seconds());
    }

    #[test]
    fn rejections_land_in_the_ledger_not_a_panic() {
        let pool = DevicePool::unlimited(1);
        let admission = AdmissionController::new()
            .with_tenant("capped", TenantLimits::unlimited().with_max_in_flight(1));
        let mut engine = ServeEngine::new(&pool, admission, 8);
        engine.submit(job("capped", 1)).unwrap();
        assert!(engine.submit(job("capped", 2)).is_err());
        engine.submit(job("free", 3)).unwrap();
        let report = engine.run().unwrap();
        let capped = &report.tenants["capped"];
        assert_eq!((capped.jobs_run, capped.jobs_rejected), (1, 1));
        assert_eq!(capped.rejected_by_reason["too_many_in_flight"], 1);
        assert_eq!(report.tenants["free"].jobs_rejected, 0);
        // A second batch does not double-count the old rejection.
        engine.submit(job("capped", 4)).unwrap();
        let second = engine.run().unwrap();
        assert_eq!(second.tenants["capped"].jobs_rejected, 0);
    }

    #[test]
    fn rejected_only_tenants_still_get_a_ledger() {
        let pool = DevicePool::unlimited(1);
        let admission = AdmissionController::new()
            .with_tenant("blocked", TenantLimits::unlimited().with_max_in_flight(0));
        let mut engine = ServeEngine::new(&pool, admission, 4);
        assert!(engine.submit(job("blocked", 1)).is_err());
        engine.submit(job("ok", 2)).unwrap();
        let report = engine.run().unwrap();
        let blocked = &report.tenants["blocked"];
        assert_eq!((blocked.jobs_run, blocked.jobs_rejected), (0, 1));
        assert_eq!(blocked.queue_wait_p50(), 0.0);
    }

    #[test]
    fn abandoned_jobs_are_ledgered_as_retry_exhaustion() {
        use sketch_gpu_sim::{FaultPlan, FaultSpec};

        let pool = DevicePool::unlimited(1);
        pool.apply_fault_plan(&FaultPlan::healthy().with_fault(
            0,
            FaultSpec::Dies {
                after_sim_seconds: 0.0,
            },
        ));
        let admission = AdmissionController::new()
            .with_tenant("doomed", TenantLimits::unlimited().with_max_retries(0));
        let mut engine = ServeEngine::new(&pool, admission, 4);
        engine.submit(job("doomed", 1)).unwrap();
        let report = engine.run().unwrap();
        let ledger = &report.tenants["doomed"];
        assert_eq!((ledger.jobs_run, ledger.jobs_rejected), (0, 1));
        assert_eq!(ledger.rejected_by_reason["retries_exhausted"], 1);
        assert_eq!(report.service.abandoned.len(), 1);

        let metrics = MetricsRegistry::new();
        report.record_metrics(&metrics);
        assert_eq!(metrics.counter("serve.jobs_rejected"), 1);
        assert_eq!(metrics.counter("serve.retries"), 0);
    }

    #[test]
    fn metrics_export_is_deterministic_and_namespaced() {
        let pool = DevicePool::unlimited(2);
        let render = || {
            let mut engine = ServeEngine::new(&pool, AdmissionController::new(), 8);
            for (t, s) in [("a", 1), ("b", 2), ("a", 3)] {
                engine.submit(job(t, s)).unwrap();
            }
            let report = engine.run().unwrap();
            let metrics = MetricsRegistry::new();
            report.record_metrics(&metrics);
            metrics.to_json().render()
        };
        let (first, second) = (render(), render());
        assert_eq!(first, second, "metrics export must be byte-deterministic");
        let doc = JsonValue::parse(&first).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("serve.jobs_run"))
                .and_then(JsonValue::as_u64),
            Some(3)
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("serve.tenant.a.jobs_run"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
        let wait = doc
            .get("histograms")
            .and_then(|h| h.get("serve.queue_wait_seconds"))
            .expect("queue-wait histogram is exported");
        assert_eq!(wait.get("count").and_then(JsonValue::as_u64), Some(3));
        let rej = doc
            .get("histograms")
            .and_then(|h| h.get("serve.tenant_rejections"))
            .expect("rejection histogram is exported");
        assert_eq!(rej.get("count").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn report_json_round_trips_and_orders_tenants() {
        let pool = DevicePool::unlimited(2);
        let mut engine = ServeEngine::new(&pool, AdmissionController::new(), 8);
        for (t, s) in [("zeta", 1), ("alpha", 2)] {
            engine.submit(job(t, s)).unwrap();
        }
        let report = engine.run().unwrap();
        let doc = report.to_json();
        match doc.get("tenants").unwrap() {
            JsonValue::Object(fields) => {
                assert_eq!(fields[0].0, "alpha");
                assert_eq!(fields[1].0, "zeta");
            }
            _ => panic!("tenants must be an object"),
        }
        assert_eq!(JsonValue::parse(&doc.render()).unwrap(), doc);
        assert!(doc
            .get("service")
            .and_then(|s| s.get("makespan_s"))
            .and_then(JsonValue::as_f64)
            .is_some());
    }

    #[test]
    fn ledger_quantiles_are_exact_nearest_rank() {
        let ledger = TenantLedger {
            queue_waits: vec![0.1, 0.2, 0.3, 0.4],
            ..Default::default()
        };
        assert_eq!(ledger.queue_wait_quantile(0.5), 0.2);
        assert_eq!(ledger.queue_wait_quantile(0.95), 0.4);
        assert_eq!(ledger.queue_wait_quantile(0.0), 0.1);
        assert_eq!(ledger.queue_wait_quantile(1.0), 0.4);
        assert_eq!(TenantLedger::default().queue_wait_p95(), 0.0);
    }
}
